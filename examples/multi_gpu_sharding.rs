//! Sharding a recommendation model's embedding tables across a multi-GPU
//! cluster.
//!
//! Production DLRM deployments do not fit their embedding tables on one
//! device: tables are sharded table-wise, each device executes its shard,
//! and the pooled embeddings are gathered over the interconnect before the
//! dense pipeline runs. This example builds clusters of 1/2/4/8 devices,
//! compares the built-in sharding strategies, and breaks one deployment
//! down per device.
//!
//! ```text
//! cargo run --release --example multi_gpu_sharding [scale]
//! ```

use dlrm::WorkloadScale;
use dlrm_datasets::{HeterogeneousMix, MixKind};
use gpu_sim::GpuConfig;
use perf_envelope::{
    CampaignCache, Cluster, Experiment, InterconnectConfig, Scheme, ShardingSpec, Workload,
};

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| WorkloadScale::from_name(&s))
        .unwrap_or(WorkloadScale::Test);
    let gpu = GpuConfig::a100();
    let mix = HeterogeneousMix::paper_mix(MixKind::Mix2, 0.1);
    let workload = Workload::end_to_end(mix.clone());
    let scheme = Scheme::combined();
    // One shared cache: every per-shard cell is cached individually, so the
    // strategies' overlapping shards (and the 1-device baseline) are
    // simulated once.
    let cache = CampaignCache::new();

    println!(
        "sharding {} ({} tables) on {} at {} scale under {}\n",
        mix.name(),
        mix.total_tables(),
        gpu.name,
        scale.name(),
        scheme.paper_label()
    );

    let experiment = |devices: usize| {
        Experiment::new(gpu.clone(), scale)
            .with_cluster(Cluster::homogeneous(
                gpu.clone(),
                devices,
                InterconnectConfig::nvlink3(),
            ))
            .with_cache(cache.clone())
    };

    // --- 1. Scaling: devices x strategy. ----------------------------------
    let baseline = experiment(1).run(&workload, &scheme);
    println!(
        "unsharded baseline: {:.2} ms end-to-end",
        baseline.latency_ms()
    );
    println!(
        "\n{:<8} {:<14} {:>12} {:>12} {:>12} {:>9}",
        "devices", "strategy", "stage us", "a2a us", "e2e ms", "speedup"
    );
    for devices in [1usize, 2, 4, 8] {
        for spec in ShardingSpec::ALL {
            let report = experiment(devices).run(&workload.clone().with_sharding(spec), &scheme);
            let cluster = report.devices.as_ref().expect("sharded run");
            println!(
                "{:<8} {:<14} {:>12.1} {:>12.2} {:>12.2} {:>8.2}x",
                devices,
                spec.name(),
                cluster.embedding_stage_us(),
                cluster.all_to_all_us,
                report.latency_ms(),
                report.speedup_over(&baseline)
            );
        }
    }

    // --- 2. Per-device breakdown of one deployment. -----------------------
    let report = experiment(4).run(
        &workload.clone().with_sharding(ShardingSpec::HotCold),
        &scheme,
    );
    let cluster = report.devices.as_ref().expect("sharded run");
    println!(
        "\nhot_cold on 4 devices (critical path {:.1} us + all-to-all {:.2} us):",
        cluster.critical_path_us, cluster.all_to_all_us
    );
    for (d, dev) in cluster.per_device.iter().enumerate() {
        let bar = "#".repeat((40.0 * dev.embedding_us / cluster.critical_path_us) as usize);
        println!(
            "  device {d}: {:>3} tables {:>10.1} us  {bar}",
            dev.tables, dev.embedding_us
        );
    }
    let e2e = report.end_to_end.expect("end-to-end run");
    println!(
        "end-to-end: {:.2} ms (embedding {:.1}%, dense pipeline on the root device)",
        report.latency_ms(),
        report.batch_latency().unwrap().embedding_share_pct()
    );
    assert!(e2e.embedding_us >= cluster.critical_path_us);
    println!(
        "\ncache: {} distinct cells simulated, {} served from cache",
        cache.misses(),
        cache.hits()
    );
}
