//! The static profiling framework of Section VII, applied end to end:
//! profile the off-the-shelf kernel, let the framework recommend a scheme,
//! apply it, and verify the improvement.
//!
//! ```text
//! cargo run --release --example profiling_framework -- [test|default] [dataset]
//! ```

use dlrm::WorkloadScale;
use dlrm_datasets::AccessPattern;
use gpu_sim::GpuConfig;
use perf_envelope::{ExperimentContext, Scheme, StaticProfiler, WorkloadHint};

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| WorkloadScale::from_name(&s))
        .unwrap_or(WorkloadScale::Test);
    let pattern = std::env::args()
        .nth(2)
        .and_then(|s| AccessPattern::from_cli_name(&s))
        .unwrap_or(AccessPattern::MedHot);

    let gpu = GpuConfig::a100();
    let ctx = ExperimentContext::new(gpu.clone(), scale);
    println!("profiling the off-the-shelf embedding-bag kernel on {} ({pattern})\n", gpu.name);

    // Step 0: run the baseline kernel and collect its NCU-style statistics.
    let baseline = ctx.run_embedding_kernel(pattern, &Scheme::base());
    println!("{baseline}");

    // The profiler additionally needs the workload's reuse structure, which
    // an offline trace analysis provides.
    let trace = ctx.model().embedding.trace.generate(pattern, 1);
    let hint = WorkloadHint {
        working_set_bytes: trace.working_set_bytes(ctx.model().embedding.row_bytes()),
        access_skew: trace.coverage_curve().skew(),
    };
    println!(
        "workload hint: working set {:.1} MB, access skew {:.2}\n",
        hint.working_set_bytes as f64 / 1e6,
        hint.access_skew
    );

    // Steps (i)-(vii): walk the framework.
    let report = StaticProfiler::new().analyze(&baseline, &gpu, &hint);
    println!("{}", report.render());

    // Apply the recommendation and verify it against the baseline.
    let recommended = report.recommended;
    let base_stage = ctx.run_embedding_stage(pattern, &Scheme::base());
    let tuned_stage = ctx.run_embedding_stage(pattern, &recommended);
    println!(
        "embedding stage: base {:.2} ms -> {} {:.2} ms ({:.2}x)",
        base_stage.latency_us / 1e3,
        recommended.paper_label(),
        tuned_stage.latency_us / 1e3,
        tuned_stage.speedup_over(&base_stage)
    );
}
