//! The static profiling framework of Section VII, applied end to end:
//! profile the off-the-shelf kernel, let the framework recommend a scheme,
//! apply it, and verify the improvement.
//!
//! ```text
//! cargo run --release --example profiling_framework -- [test|default] [dataset]
//! ```

use dlrm::WorkloadScale;
use dlrm_datasets::AccessPattern;
use gpu_sim::GpuConfig;
use perf_envelope::{Experiment, Scheme, StaticProfiler, Workload, WorkloadHint};

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| WorkloadScale::from_name(&s))
        .unwrap_or(WorkloadScale::Test);
    let pattern = std::env::args()
        .nth(2)
        .and_then(|s| AccessPattern::from_cli_name(&s))
        .unwrap_or(AccessPattern::MedHot);

    let gpu = GpuConfig::a100();
    let experiment = Experiment::new(gpu.clone(), scale);
    println!(
        "profiling the off-the-shelf embedding-bag kernel on {} ({pattern})\n",
        gpu.name
    );

    // Step 0: run the baseline kernel and collect its NCU-style statistics.
    let baseline = experiment.run(&Workload::kernel(pattern), &Scheme::base());
    println!("{}", baseline.stats);

    // The profiler additionally needs the workload's reuse structure, which
    // an offline trace analysis provides.
    let trace = experiment.model().embedding.trace.generate(pattern, 1);
    let hint = WorkloadHint {
        working_set_bytes: trace.working_set_bytes(experiment.model().embedding.row_bytes()),
        access_skew: trace.coverage_curve().skew(),
    };
    println!(
        "workload hint: working set {:.1} MB, access skew {:.2}\n",
        hint.working_set_bytes as f64 / 1e6,
        hint.access_skew
    );

    // Steps (i)-(vii): walk the framework.
    let report = StaticProfiler::new().analyze(&baseline.stats, &gpu, &hint);
    println!("{}", report.render());

    // Apply the recommendation and verify it against the baseline.
    let recommended = report.recommended;
    let stage = Workload::stage(pattern);
    let base_stage = experiment.run(&stage, &Scheme::base());
    let tuned_stage = experiment.run(&stage, &recommended);
    println!(
        "embedding stage: base {:.2} ms -> {} {:.2} ms ({:.2}x)",
        base_stage.latency_ms(),
        tuned_stage.scheme,
        tuned_stage.latency_ms(),
        tuned_stage.speedup_over(&base_stage)
    );
}
