//! Design-space exploration: reproduce the paper's tuning methodology on a
//! simulated A100 — sweep warp-level parallelism (Figure 6), sweep the
//! prefetch distance (Figure 9), and compare the four prefetch buffer
//! stations (Figure 15) — then report the chosen operating point.
//!
//! Each sweep is a thin `Campaign` definition under the hood, so its grid
//! cells execute in parallel across the machine's cores.
//!
//! ```text
//! cargo run --release --example design_space_exploration -- [test|default]
//! ```

use dlrm::WorkloadScale;
use dlrm_datasets::AccessPattern;
use embedding_kernels::BufferStation;
use gpu_sim::GpuConfig;
use perf_envelope::{
    buffer_station_comparison, find_optimal_distance, find_optimal_multithreading,
    prefetch_distance_sweep, register_sweep, CampaignCache, Experiment, PAPER_WARP_SWEEP,
};

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| WorkloadScale::from_name(&s))
        .unwrap_or(WorkloadScale::Test);
    // One shared result cache: the sweeps below overlap (every sweep
    // re-evaluates the base scheme on the same patterns), so overlapping
    // cells execute once and later sweeps reuse them.
    let experiment = Experiment::new(GpuConfig::a100(), scale).with_cache(CampaignCache::new());
    let patterns = [AccessPattern::HighHot, AccessPattern::Random];

    println!("== step 1: warp-level parallelism sweep (-maxrregcount) ==");
    let points = register_sweep(&experiment, &patterns, &PAPER_WARP_SWEEP);
    for p in &points {
        let speedups: Vec<String> = p
            .speedups
            .iter()
            .map(|(d, s)| format!("{d}: {s:.2}x"))
            .collect();
        println!(
            "  {:>2} warps/SM ({} regs/thread): {}  [local loads {:.2} M]",
            p.target_warps,
            p.regs_per_thread,
            speedups.join(", "),
            p.local_loads_millions
        );
    }
    let optmt = find_optimal_multithreading(&points).expect("sweep produced points");
    println!(
        "  -> OptMT = {} warps/SM via -maxrregcount {}\n",
        optmt.target_warps, optmt.regs_per_thread
    );

    println!("== step 2: prefetch distance sweep (RPF on top of OptMT) ==");
    let distances = [1u32, 2, 4, 6, 8];
    let sweep = prefetch_distance_sweep(
        &experiment,
        BufferStation::Register,
        &distances,
        &patterns,
        true,
    );
    for p in &sweep {
        let speedups: Vec<String> = p
            .speedups
            .iter()
            .map(|(d, s)| format!("{d}: {s:.2}x"))
            .collect();
        println!("  distance {:>2}: {}", p.distance, speedups.join(", "));
    }
    let best_distance = find_optimal_distance(&sweep).expect("sweep produced points");
    println!("  -> optimal prefetch distance = {best_distance}\n");

    println!("== step 3: buffer-station comparison (with OptMT) ==");
    for row in buffer_station_comparison(&experiment, &patterns, true) {
        let speedups: Vec<String> = row
            .speedups
            .iter()
            .map(|(d, s)| format!("{d}: {s:.2}x"))
            .collect();
        println!(
            "  {:<6} (distance {:>2}): {}",
            row.station.abbreviation(),
            row.distance,
            speedups.join(", ")
        );
    }
    println!(
        "\nchosen operating point: RPF at distance {best_distance} + L2 pinning + {} warps/SM",
        optmt.target_warps
    );
}
