//! A day in the life of a serving fleet: replica sets, routing policies
//! and reactive autoscaling on top of the PR 10 fleet layer
//! (`perf_envelope::fleet`).
//!
//! The example (1) builds a heterogeneous fleet from the cluster presets —
//! two NVLink-connected 2×A100 replicas next to one older PCIe replica —
//! and anchors the latency SLA to the measured service time, (2) compares
//! the three routing policies under rush-hour load, watching how much
//! traffic each hands the slow PCIe replica, (3) serves a full diurnal
//! day twice, statically provisioned and reactively autoscaled, and
//! compares device-hours against SLA attainment, and (4) shows the
//! fleet-wide campaign cache pricing every distinct batch shape exactly
//! once across the whole day, no matter how many replicas share it.
//!
//! ```text
//! cargo run --release --example fleet_day [SCALE]
//! ```

use dlrm::WorkloadScale;
use dlrm_datasets::{HeterogeneousMix, MixKind};
use gpu_sim::GpuConfig;
use perf_envelope::{
    max_sustainable_qps, AutoscalePolicy, BatchingPolicy, CampaignCache, Cluster, Experiment,
    Fleet, ReplicaGroup, RoutingPolicy, Scheme, ServingScenario, ShardingSpec, TrafficModel,
    Workload,
};

const BATCH: u32 = 64;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| WorkloadScale::from_name(&s))
        .unwrap_or(WorkloadScale::Test);
    let cache = CampaignCache::new();
    let workload = Workload::stage(HeterogeneousMix::paper_mix(MixKind::Mix2, 0.02))
        .with_sharding(ShardingSpec::RoundRobin);
    let scheme = Scheme::combined();

    // --- 1. The fleet: two NVLink 2xA100 replicas + one PCIe replica. ----
    let nvlink = Experiment::new(GpuConfig::a100(), scale)
        .with_cluster(Cluster::a100_replica(2))
        .with_cache(cache.clone());
    let pcie = Experiment::new(GpuConfig::a100(), scale)
        .with_cluster(Cluster::a100_pcie_replica(2))
        .with_cache(cache.clone());
    let service_us = nvlink
        .clone()
        .with_batch_size(BATCH)
        .run(&workload, &scheme)
        .latency_us;
    let sla_us = 4.0 * service_us;
    let scenario = || {
        ServingScenario::new(
            TrafficModel::poisson(20_000.0),
            BatchingPolicy::fixed_size(BATCH),
        )
        .with_sla_us(sla_us)
    };
    let capacity = max_sustainable_qps(&nvlink, &workload, &scheme, &scenario()).max_qps;
    println!(
        "fleet of 2x NVLink A100 pairs + 1x PCIe pair serving {} at {scale:?} scale",
        HeterogeneousMix::paper_mix(MixKind::Mix2, 0.02).name()
    );
    println!(
        "  one batch of {BATCH}: {service_us:.0} us on NVLink; SLA {sla_us:.0} us; \
         one NVLink replica sustains {capacity:.0} qps\n"
    );

    // --- 2. Rush hour: how each routing policy treats the slow replica. --
    println!("rush hour at 2x single-replica capacity, by routing policy:");
    let rush = |routing: RoutingPolicy| {
        Fleet::new(TrafficModel::poisson(2.0 * capacity), 1_024, 2024)
            .with_routing(routing)
            .with_group(ReplicaGroup::new(nvlink.clone(), scenario()).with_replicas(2))
            .with_group(ReplicaGroup::new(pcie.clone(), scenario()))
            .simulate(&workload, &scheme)
    };
    for routing in [
        RoutingPolicy::round_robin(),
        RoutingPolicy::least_outstanding(),
        RoutingPolicy::latency_aware(0.3),
    ] {
        let report = rush(routing);
        println!(
            "  {:<22} p50 {:>7.1} us  p99 {:>7.1} us  attainment {:>6.1}%  \
             pcie share {:>3}/{}",
            routing.label(),
            report.latency.p50_us,
            report.latency.p99_us,
            report.sla_attainment * 100.0,
            report.replicas[2].routed_requests,
            report.requests,
        );
    }

    // --- 3. A diurnal day, static vs reactively autoscaled. --------------
    let requests = 2_048u32;
    let mean_qps = (1.5 * capacity + 0.05 * capacity) / 2.0;
    let period_s = requests as f64 / mean_qps / 2.0;
    let day = || {
        Fleet::new(
            TrafficModel::diurnal(1.5 * capacity, 0.05 * capacity, period_s),
            requests,
            2024,
        )
        .with_group(ReplicaGroup::new(nvlink.clone(), scenario()).with_replicas(3))
        .with_interval_us(period_s * 1e6 / 10.0)
    };
    let static_day = day().simulate(&workload, &scheme);
    let scaled_day = day()
        .with_autoscale(AutoscalePolicy::reactive(0.8, 0.3, 0, 1, 3))
        .simulate(&workload, &scheme);
    println!("\na diurnal day ({requests} requests, peak 1.5x / trough 0.05x capacity):");
    for (label, report) in [("static x3", &static_day), ("autoscaled", &scaled_day)] {
        println!(
            "  {:<11} {:>6.0} device-us  attainment {:>5.1}%  served {}/{}  \
             scale events {}",
            label,
            report.cost.device_us,
            report.sla_attainment * 100.0,
            report.served_requests,
            report.requests,
            report.autoscale_events.len(),
        );
    }
    for event in &scaled_day.autoscale_events {
        println!(
            "    t={:>8.0} us  {:<9}  -> {} live (utilization {:.2})",
            event.at_us, event.action, event.live_replicas, event.utilization
        );
    }
    println!(
        "  autoscaling saved {:.0} device-us; the drain contract lost no work",
        static_day.cost.device_us - scaled_day.cost.device_us
    );

    // --- 4. One cache priced the whole day. ------------------------------
    println!(
        "\ncampaign cache: {} distinct cells simulated, {} servings from cache",
        cache.misses(),
        cache.hits()
    );
}
