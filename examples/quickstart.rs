//! Quickstart: run the embedding-bag kernel under the off-the-shelf
//! configuration and under the paper's combined optimization
//! (RPF + L2P + OptMT) on a simulated A100, and compare them.
//!
//! ```text
//! cargo run --release --example quickstart            # test scale (fast)
//! cargo run --release --example quickstart -- default # larger workload
//! ```

use dlrm::WorkloadScale;
use dlrm_datasets::AccessPattern;
use gpu_sim::GpuConfig;
use perf_envelope::{ExperimentContext, Scheme};

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| WorkloadScale::from_name(&s))
        .unwrap_or(WorkloadScale::Test);
    let ctx = ExperimentContext::new(GpuConfig::a100(), scale);
    println!(
        "device: {}, workload scale: {}, batch {} x pooling {} over {} tables",
        ctx.gpu().name,
        scale.name(),
        ctx.model().batch_size(),
        ctx.model().embedding.trace.pooling_factor,
        ctx.model().num_tables,
    );

    for pattern in [AccessPattern::HighHot, AccessPattern::Random] {
        println!("\n=== dataset: {pattern} ===");
        let base = ctx.run_end_to_end(pattern, &Scheme::base());
        let combined = ctx.run_end_to_end(pattern, &Scheme::combined());

        println!("base          : {}", base.latency);
        println!("RPF+L2P+OptMT : {}", combined.latency);
        println!(
            "embedding-only speedup: {:.2}x, end-to-end speedup: {:.2}x",
            base.embedding.latency_us / combined.embedding.latency_us,
            combined.latency.speedup_over(&base.latency),
        );
        println!(
            "base kernel profile: {:.1} long-scoreboard stall cycles/inst, {} warps/SM, L2 hit {:.1}%",
            base.embedding.stats.long_scoreboard_per_inst(),
            base.embedding.stats.theoretical_warps_per_sm,
            base.embedding.stats.l2_hit_rate_pct(),
        );
        println!(
            "optimized profile  : {:.1} long-scoreboard stall cycles/inst, {} warps/SM, L2 hit {:.1}%",
            combined.embedding.stats.long_scoreboard_per_inst(),
            combined.embedding.stats.theoretical_warps_per_sm,
            combined.embedding.stats.l2_hit_rate_pct(),
        );
    }
}
