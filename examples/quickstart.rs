//! Quickstart: run end-to-end DLRM inference under the off-the-shelf
//! configuration and under the paper's combined optimization
//! (RPF + L2P + OptMT) on a simulated A100, and compare them.
//!
//! ```text
//! cargo run --release --example quickstart            # test scale (fast)
//! cargo run --release --example quickstart -- default # larger workload
//! ```

use dlrm::WorkloadScale;
use dlrm_datasets::AccessPattern;
use gpu_sim::GpuConfig;
use perf_envelope::{Experiment, Scheme, Workload};

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| WorkloadScale::from_name(&s))
        .unwrap_or(WorkloadScale::Test);
    let experiment = Experiment::new(GpuConfig::a100(), scale);
    println!(
        "device: {}, workload scale: {}, batch {} x pooling {} over {} tables",
        experiment.gpu().name,
        scale.name(),
        experiment.model().batch_size(),
        experiment.model().embedding.trace.pooling_factor,
        experiment.model().num_tables,
    );

    for pattern in [AccessPattern::HighHot, AccessPattern::Random] {
        println!("\n=== dataset: {pattern} ===");
        let workload = Workload::end_to_end(pattern);
        let base = experiment.run(&workload, &Scheme::base());
        let combined = experiment.run(&workload, &Scheme::combined());

        println!(
            "base          : {}",
            base.batch_latency().expect("end-to-end run")
        );
        println!(
            "RPF+L2P+OptMT : {}",
            combined.batch_latency().expect("end-to-end run")
        );
        println!(
            "embedding-only speedup: {:.2}x, end-to-end speedup: {:.2}x",
            combined.embedding_speedup_over(&base),
            combined.speedup_over(&base),
        );
        println!(
            "base kernel profile: {:.1} long-scoreboard stall cycles/inst, {} warps/SM, L2 hit {:.1}%",
            base.stats.long_scoreboard_per_inst(),
            base.stats.theoretical_warps_per_sm,
            base.stats.l2_hit_rate_pct(),
        );
        println!(
            "optimized profile  : {:.1} long-scoreboard stall cycles/inst, {} warps/SM, L2 hit {:.1}%",
            combined.stats.long_scoreboard_per_inst(),
            combined.stats.theoretical_warps_per_sm,
            combined.stats.l2_hit_rate_pct(),
        );
        println!("\nas JSON: {}", combined.to_json());
    }
}
