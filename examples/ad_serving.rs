//! An ad-serving style scenario: a production model whose embedding tables
//! differ in hotness (the paper's heterogeneous mixes, Table VII), served
//! under an SLA.
//!
//! The example (1) runs the functional DLRM forward pass to rank ads for a
//! batch of requests, and (2) runs one `Campaign` — mixes × schemes,
//! end-to-end, in parallel across cores — comparing every deployment's
//! batch latency against the SLA.
//!
//! ```text
//! cargo run --release --example ad_serving
//! ```

use dlrm::{DlrmConfig, DlrmForward, WorkloadScale};
use dlrm_datasets::{AccessPattern, HeterogeneousMix, MixKind};
use gpu_sim::GpuConfig;
use perf_envelope::{Campaign, CampaignCache, Experiment, Scheme, Workload};

fn main() {
    // --- 1. Functional pass: rank ads for a small batch of requests. ------
    let config = DlrmConfig::at_scale(WorkloadScale::Test);
    let model = DlrmForward::new(config.clone(), 2024);
    let traces: Vec<_> = (0..config.num_tables)
        .map(|t| {
            config
                .embedding
                .trace
                .generate(AccessPattern::HighHot, 100 + t as u64)
        })
        .collect();
    let dense: Vec<f32> = (0..config.batch_size() as usize * config.bottom_mlp[0] as usize)
        .map(|i| ((i * 37) % 101) as f32 / 101.0 - 0.5)
        .collect();
    let output = model.forward(&dense, &traces);
    println!(
        "scored {} ad candidates; top-5 by predicted CTR:",
        output.batch_size()
    );
    for (rank, idx) in output.top_k(5).into_iter().enumerate() {
        println!(
            "  #{:<2} candidate {:<4} ctr={:.4}",
            rank + 1,
            idx,
            output.predictions[idx]
        );
    }

    // --- 2. Serving latency under heterogeneous table mixes. --------------
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| WorkloadScale::from_name(&s))
        .unwrap_or(WorkloadScale::Test);
    let sla_ms = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(25.0f64);
    println!(
        "\nserving-latency study at {} scale (SLA {sla_ms:.1} ms per batch):",
        scale.name()
    );

    let mixes: Vec<HeterogeneousMix> = MixKind::ALL
        .into_iter()
        .map(|kind| HeterogeneousMix::paper_mix(kind, 1.0))
        .collect();
    let schemes = [
        Scheme::base(),
        Scheme::optmt(),
        Scheme::rpf_optmt(),
        Scheme::combined(),
    ];
    // One shared cache for every campaign this process runs: the paper
    // mixes share their base-scheme cells across what-if re-runs, so each
    // distinct cell is simulated exactly once.
    let cache = CampaignCache::new();
    let campaign = Campaign::new(Experiment::new(GpuConfig::a100(), scale))
        .with_cache(cache.clone())
        .workloads(mixes.iter().cloned().map(Workload::end_to_end))
        .schemes(schemes);
    let run = campaign.run();

    for (w, mix) in mixes.iter().enumerate() {
        println!("\n--- {} ({} tables) ---", mix.name(), mix.total_tables());
        let base = run.get(w, 0, 0, 0);
        for s in 0..schemes.len() {
            let report = run.get(w, s, 0, 0);
            let latency = report.batch_latency().expect("end-to-end run");
            let meets = if latency.total_ms() <= sla_ms {
                "meets SLA"
            } else {
                "violates SLA"
            };
            println!(
                "{:<16} {:>8.2} ms  (emb {:>5.1}%, {:.2}x vs base)  {}",
                report.scheme,
                latency.total_ms(),
                latency.embedding_share_pct(),
                report.speedup_over(base),
                meets
            );
        }
    }

    // --- 3. What-if: re-check the fleet against a peak-traffic SLA. -------
    // The re-run revisits exactly the same cells; with the shared cache
    // attached nothing is re-simulated.
    let peak_sla_ms = sla_ms / 2.0;
    let rerun = campaign.run();
    let compliant = rerun
        .reports()
        .iter()
        .filter(|r| r.latency_ms() <= peak_sla_ms)
        .count();
    println!(
        "\npeak-traffic what-if (SLA {peak_sla_ms:.1} ms): {compliant}/{} deployments comply",
        rerun.len()
    );
    println!(
        "cache: {} cells simulated once, {} served from cache",
        cache.misses(),
        cache.hits()
    );
    assert_eq!(
        cache.hits(),
        run.len() as u64,
        "the re-run must be served entirely from cache"
    );
}
