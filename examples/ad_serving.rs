//! An ad-serving style scenario: a production model whose embedding tables
//! differ in hotness (the paper's heterogeneous mixes, Table VII), served
//! under a latency SLA.
//!
//! The example (1) runs the functional DLRM forward pass to rank ads for a
//! batch of requests, then drives the real serving layer
//! (`perf_envelope::serving`): (2) for every paper mix it simulates Poisson
//! traffic through an adaptive batcher on each optimization scheme and
//! picks the cheapest scheme meeting the SLA, (3) it binary-searches
//! the chosen deployment's capacity — the max sustainable QPS under the
//! SLA — unsharded and sharded across a 2-GPU cluster, (4) it asks
//! the what-if question a capacity planner actually has: how much more
//! traffic does the same GPU sustain with K batches co-resident
//! (CUDA-streams/MPS style), sweeping K with `stream_capacity_sweep`, and
//! (5) it rehearses an incident: a replica crash-and-recover mid-rush,
//! comparing no retries against a hedged policy on two streams. A
//! shared `CampaignCache` prices every distinct batch shape exactly once
//! across the whole study.
//!
//! ```text
//! cargo run --release --example ad_serving [SCALE] [SLA_MS] [QPS]
//! ```

use dlrm::{DlrmConfig, DlrmForward, WorkloadScale};
use dlrm_datasets::{AccessPattern, HeterogeneousMix, MixKind};
use gpu_sim::{GpuConfig, StreamPartition};
use perf_envelope::{
    max_sustainable_qps, select_scheme, stream_capacity_sweep, BatchingPolicy, CampaignCache,
    Cluster, Experiment, FaultEvent, FaultPlan, InterconnectConfig, RetryPolicy, Scheme,
    ServingScenario, ShardingSpec, StreamConfig, TrafficModel, Workload,
};

fn main() {
    // --- 1. Functional pass: rank ads for a small batch of requests. ------
    let config = DlrmConfig::at_scale(WorkloadScale::Test);
    let model = DlrmForward::new(config.clone(), 2024);
    let traces: Vec<_> = (0..config.num_tables)
        .map(|t| {
            config
                .embedding
                .trace
                .generate(AccessPattern::HighHot, 100 + t as u64)
        })
        .collect();
    let dense: Vec<f32> = (0..config.batch_size() as usize * config.bottom_mlp[0] as usize)
        .map(|i| ((i * 37) % 101) as f32 / 101.0 - 0.5)
        .collect();
    let output = model.forward(&dense, &traces);
    println!(
        "scored {} ad candidates; top-5 by predicted CTR:",
        output.batch_size()
    );
    for (rank, idx) in output.top_k(5).into_iter().enumerate() {
        println!(
            "  #{:<2} candidate {:<4} ctr={:.4}",
            rank + 1,
            idx,
            output.predictions[idx]
        );
    }

    // --- 2. SLA-aware serving: pick the cheapest qualifying scheme. -------
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| WorkloadScale::from_name(&s))
        .unwrap_or(WorkloadScale::Test);
    let sla_ms = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(25.0f64);
    let qps = std::env::args()
        .nth(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(120_000.0f64);
    println!(
        "\nserving study at {} scale: Poisson traffic at {qps:.0} qps, \
         adaptive batching, SLA p99 <= {sla_ms:.1} ms:",
        scale.name()
    );

    // Cheapest first: every scheme to the right costs more engineering
    // (register tuning, prefetch stations, L2 carve-outs) than the ones
    // before it, so the selection stops at the first that qualifies.
    let schemes = [
        Scheme::base(),
        Scheme::optmt(),
        Scheme::rpf_optmt(),
        Scheme::combined(),
    ];
    let cache = CampaignCache::new();
    let experiment = Experiment::new(GpuConfig::a100(), scale).with_cache(cache.clone());
    let policy = BatchingPolicy::adaptive(16, 256);

    let scenario_for = |experiment: &Experiment, workload: &Workload| {
        // Size the trace so a saturated backlog overshoots the SLA: the
        // boundary must sit inside the simulated horizon.
        let service_us = experiment
            .run(workload, &Scheme::base())
            .latency_us
            .max(1.0);
        let batches = (sla_ms * 1e3 * 3.0 / service_us).ceil() as u32 + 2;
        ServingScenario::new(TrafficModel::poisson(qps), policy)
            .with_requests(batches * 256)
            .with_sla_us(sla_ms * 1e3)
    };

    let mixes: Vec<HeterogeneousMix> = MixKind::ALL
        .into_iter()
        .map(|kind| HeterogeneousMix::paper_mix(kind, 1.0))
        .collect();
    for mix in &mixes {
        let workload = Workload::end_to_end(mix.clone());
        let scenario = scenario_for(&experiment, &workload);
        println!("\n--- {} ({} tables) ---", mix.name(), mix.total_tables());
        for scheme in &schemes {
            let report = scenario.simulate(&experiment, &workload, scheme);
            println!(
                "{:<16} p99 {:>7.2} ms  viol {:>5.1}%  util {:>5.1}%  {}",
                report.scheme,
                report.latency.p99_us / 1e3,
                report.sla_violation_rate * 100.0,
                report.utilization[0].utilization * 100.0,
                if report.meets_sla() {
                    "meets SLA"
                } else {
                    "violates SLA"
                }
            );
        }
        match select_scheme(&experiment, &workload, &schemes, &scenario) {
            Some(choice) => println!(
                "=> cheapest qualifying scheme: {} (p99 {:.2} ms)",
                choice.report.scheme,
                choice.report.latency.p99_us / 1e3
            ),
            None => println!("=> no scheme meets the SLA at {qps:.0} qps"),
        }
    }

    // --- 3. Capacity: how much traffic does the deployment sustain? -------
    let workload = Workload::end_to_end(mixes[1].clone());
    let scheme = Scheme::combined();
    let scenario = scenario_for(&experiment, &workload);
    let unsharded = max_sustainable_qps(&experiment, &workload, &scheme, &scenario);

    let sharded_experiment = experiment.clone().with_cluster(Cluster::homogeneous(
        GpuConfig::a100(),
        2,
        InterconnectConfig::nvlink3(),
    ));
    let sharded_workload = workload.clone().with_sharding(ShardingSpec::SizeBalanced);
    let sharded_scenario = scenario_for(&sharded_experiment, &sharded_workload);
    let sharded = max_sustainable_qps(
        &sharded_experiment,
        &sharded_workload,
        &scheme,
        &sharded_scenario,
    );

    println!(
        "\ncapacity under the {sla_ms:.1} ms SLA ({} under {}):",
        mixes[1].name(),
        scheme.paper_label()
    );
    println!(
        "  1x {:<16} {:>9.0} qps  ({} search probes)",
        experiment.gpu().name,
        unsharded.max_qps,
        unsharded.probes
    );
    println!(
        "  2x {:<16} {:>9.0} qps  ({:.2}x, size-balanced sharding)",
        experiment.gpu().name,
        sharded.max_qps,
        sharded.max_qps / unsharded.max_qps.max(1.0)
    );
    // --- 4. What-if: K concurrent streams on the same single GPU. ---------
    // The A100 preset admits up to 7 co-resident streams; sweep the
    // interesting low end. Interleaved issue shares every SM's issue
    // slots, so co-resident batches hide each other's memory stalls.
    let candidates: Vec<StreamConfig> = [1u32, 2, 4]
        .iter()
        .map(|&k| StreamConfig::new(k, StreamPartition::Interleaved))
        .collect();
    let sweep = stream_capacity_sweep(&experiment, &workload, &scheme, &scenario, &candidates);
    println!(
        "\nwhat-if: concurrent streams on one {}:",
        experiment.gpu().name
    );
    for point in &sweep {
        if point.capacity.probes > 64 {
            // The doubling search hit its probe cap: with this many streams
            // the fixed trace drains inside the SLA at any offered load.
            println!(
                "  K={} ({:<13}) effectively unbounded (trace drains within the SLA)",
                point.streams.streams(),
                point.streams.name(),
            );
        } else {
            println!(
                "  K={} ({:<13}) {:>9.0} qps  ({:.2}x of single-stream)",
                point.streams.streams(),
                point.streams.name(),
                point.capacity.max_qps,
                point.capacity.max_qps / sweep[0].capacity.max_qps.max(1.0)
            );
        }
    }

    // --- 5. What-if: a replica crash-and-recover mid-rush. ----------------
    // Two concurrent streams serve a traffic rush when one replica crashes
    // mid-flight and recovers 1.5 service times later. Without retries the
    // in-flight batches are simply lost; a hedged policy re-launches slow
    // or lost work on the other stream and wins it back.
    let k2 = StreamConfig::new(2, StreamPartition::Interleaved);
    let resilient_experiment = experiment.clone().with_streams(k2);
    let service_us = resilient_experiment
        .clone()
        .with_batch_size(256)
        .run(&workload, &scheme)
        .latency_us;
    let crash = FaultPlan::new(vec![FaultEvent::crash(
        0,
        2.5 * service_us,
        4.0 * service_us,
    )]);
    let rush = ServingScenario::new(
        TrafficModel::uniform(100.0 * 256.0 / service_us * 1e6),
        BatchingPolicy::fixed_size(256),
    )
    .with_requests(256 * 8)
    .with_sla_us(sla_ms * 1e3);
    let no_retry =
        rush.clone()
            .with_faults(crash.clone())
            .simulate(&resilient_experiment, &workload, &scheme);
    let hedged = rush
        .with_faults(crash)
        .with_retry(RetryPolicy::hedged(1.5))
        .simulate(&resilient_experiment, &workload, &scheme);
    println!(
        "\nwhat-if: one replica crashes at t={:.2} ms and recovers at t={:.2} ms \
         during a {}-request rush (K=2):",
        2.5 * service_us / 1e3,
        4.0 * service_us / 1e3,
        no_retry.requests
    );
    for (label, report) in [("no retries", &no_retry), ("hedged(1.5x)", &hedged)] {
        println!(
            "  {:<12} availability {:>6.3}  failed {:>4}  hedges {:>2}  \
             p99 {:>7.2} ms  goodput {:>8.0} qps",
            label,
            report.availability,
            report.failed_requests,
            report.hedges,
            report.latency.p99_us / 1e3,
            report.goodput_qps
        );
    }
    for entry in &no_retry.fault_events {
        println!(
            "  timeline: {} hit {} batches / {} requests without retries",
            entry.event, entry.batches_affected, entry.requests_affected
        );
    }

    println!(
        "\ncache: {} distinct cells simulated once, {} requests served from cache",
        cache.misses(),
        cache.hits()
    );
    assert!(
        cache.hits() > cache.misses(),
        "the shared cache must collapse repeated batch shapes across the study"
    );
}
