//! The fleet layer's equivalence and invariant anchors.
//!
//! PR 10 lifts serving to fleet scale: replica groups behind a routing
//! policy, autoscaling over the capacity search, and a device-hours cost
//! model. Its contract, proven here end to end:
//!
//! * **Degenerate equivalence** — a 1-replica fleet with identity routing
//!   (round-robin) and no autoscaling is **bit-exact** with
//!   [`ServingScenario::simulate`], on both engine modes, sharded across a
//!   multi-device cluster, K-streamed, and under a fault plan; and the
//!   identity fleet's fingerprint is **byte-identical** to the plain
//!   serving cell key, so a degenerate fleet shares persisted cache cells
//!   with the scenario it wraps.
//! * **Routing invariance** — every routing policy is a deterministic pure
//!   decision function: fleet reports are identical across repeated runs
//!   and across pricing thread counts.
//! * **Request conservation** — every offered request is routed to exactly
//!   one replica and accounted exactly once: summed over replicas,
//!   `served + shed + failed = offered`.
//! * **The drain contract** — scale-in only stops routing; with no faults
//!   and no admission control an autoscaled fleet serves *every* offered
//!   request even while replicas drain, so autoscaling never loses
//!   in-flight work.
//! * **Cross-replica cache sharing** — N identical replicas behind one
//!   [`CampaignCache`] price each distinct batch shape exactly once.
//!
//! This suite runs in release mode in CI, including under
//! `--features gpu-sim/contract-checks`.

use dlrm::WorkloadScale;
use dlrm_datasets::{AccessPattern, HeterogeneousMix, MixKind};
use gpu_sim::{EngineMode, GpuConfig, StreamPartition};
use perf_envelope::{
    max_sustainable_qps, AutoscalePolicy, BatchingPolicy, CampaignCache, Cluster, Experiment,
    FaultEvent, FaultPlan, Fleet, ReplicaGroup, RoutingPolicy, Scheme, ServingScenario,
    ShardingSpec, StreamConfig, TrafficModel, Workload,
};

fn exp() -> Experiment {
    Experiment::new(GpuConfig::test_small(), WorkloadScale::Test)
}

fn scenario() -> ServingScenario {
    ServingScenario::new(
        TrafficModel::poisson(20_000.0),
        BatchingPolicy::fixed_size(64),
    )
    .with_requests(256)
    .with_seed(0xA1)
}

// ---------------------------------------------------------------------------
// Degenerate equivalence: the 1-replica identity fleet IS the scenario
// ---------------------------------------------------------------------------

/// Asserts that the identity fleet over (`experiment`, `scenario`)
/// reproduces `scenario.simulate(experiment, ..)` bit-for-bit, embedded
/// report and aggregates alike.
fn assert_identity_anchor(
    experiment: &Experiment,
    scenario: &ServingScenario,
    workload: &Workload,
    scheme: &Scheme,
    label: &str,
) {
    let direct = scenario.simulate(experiment, workload, scheme);
    let fleet = Fleet::single(experiment.clone(), scenario.clone());
    assert!(fleet.is_identity());
    let report = fleet.simulate(workload, scheme);

    assert_eq!(report.replicas.len(), 1, "{label}: one replica expected");
    let replica = &report.replicas[0];
    assert_eq!(
        replica.report, direct,
        "{label}: the embedded replica report diverged from the scenario"
    );
    assert_eq!(replica.routed_requests, direct.requests);

    // Fleet-level aggregates of a single replica collapse to the
    // scenario's own numbers, to the bit.
    assert_eq!(report.requests, direct.requests);
    assert_eq!(report.served_requests, direct.served_requests);
    assert_eq!(report.shed_requests, direct.shed_requests);
    assert_eq!(report.failed_requests, direct.failed_requests);
    for (name, got, want) in [
        ("availability", report.availability, direct.availability),
        ("achieved_qps", report.achieved_qps, direct.achieved_qps),
        ("makespan", report.makespan_us, direct.makespan_us),
        ("p50", report.latency.p50_us, direct.latency.p50_us),
        ("p95", report.latency.p95_us, direct.latency.p95_us),
        ("p99", report.latency.p99_us, direct.latency.p99_us),
        ("max", report.latency.max_us, direct.latency.max_us),
        ("mean", report.latency.mean_us, direct.latency.mean_us),
    ] {
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "{label}: fleet {name} diverged from the scenario: {got} vs {want}"
        );
    }
    assert!(report.autoscale_events.is_empty());
}

#[test]
fn identity_fleet_is_bit_exact_on_both_engine_modes() {
    let workload = Workload::stage(AccessPattern::MedHot);
    for mode in [EngineMode::EventDriven, EngineMode::CycleAccurate] {
        assert_identity_anchor(
            &exp().with_engine_mode(mode),
            &scenario(),
            &workload,
            &Scheme::combined(),
            mode.name(),
        );
    }
}

#[test]
fn identity_fleet_is_bit_exact_on_a_sharded_cluster() {
    let workload = Workload::stage(HeterogeneousMix::paper_mix(MixKind::Mix2, 0.02))
        .with_sharding(ShardingSpec::RoundRobin);
    let experiment = exp().with_cluster(Cluster::homogeneous(
        GpuConfig::test_small(),
        2,
        perf_envelope::InterconnectConfig::nvlink3(),
    ));
    assert_identity_anchor(
        &experiment,
        &scenario(),
        &workload,
        &Scheme::combined(),
        "sharded",
    );
}

#[test]
fn identity_fleet_is_bit_exact_under_concurrent_streams() {
    let experiment = exp().with_streams(StreamConfig::new(2, StreamPartition::Interleaved));
    assert_identity_anchor(
        &experiment,
        &scenario(),
        &Workload::stage(AccessPattern::HighHot),
        &Scheme::optmt(),
        "K=2 streams",
    );
}

#[test]
fn identity_fleet_is_bit_exact_under_a_fault_plan() {
    let faulted = scenario().with_faults(FaultPlan::new(vec![
        FaultEvent::straggler(0, 2_000.0, 6_000.0, 2.0),
        FaultEvent::crash(0, 9_000.0, 9_500.0),
    ]));
    assert_identity_anchor(
        &exp(),
        &faulted,
        &Workload::stage(AccessPattern::MedHot),
        &Scheme::base(),
        "faulted",
    );
}

#[test]
fn identity_fleet_fingerprint_is_byte_identical_to_the_serving_cell_key() {
    let workload = Workload::stage(AccessPattern::MedHot);
    let scheme = Scheme::combined();
    let fleet = Fleet::single(exp(), scenario());
    assert_eq!(
        fleet.fingerprint(&workload, &scheme),
        exp().fingerprint(&workload, &scheme),
        "the identity fleet must share cache cells with the plain experiment"
    );

    // With a fault plan the identity fleet keys like the faulted pricing
    // experiment — exactly what serving dispatch prices through.
    let plan = FaultPlan::new(vec![FaultEvent::straggler(0, 0.0, 1_000.0, 1.5)]);
    let faulted_fleet = Fleet::single(exp(), scenario().with_faults(plan.clone()));
    assert_eq!(
        faulted_fleet.fingerprint(&workload, &scheme),
        exp().with_faults(plan).fingerprint(&workload, &scheme),
    );

    // Any non-identity axis partitions the key away from the plain cell.
    let plain = exp().fingerprint(&workload, &scheme);
    let routed = Fleet::single(exp(), scenario())
        .with_routing(RoutingPolicy::least_outstanding())
        .fingerprint(&workload, &scheme);
    let scaled = Fleet::single(exp(), scenario())
        .with_autoscale(AutoscalePolicy::reactive(0.8, 0.3, 1, 1, 1))
        .fingerprint(&workload, &scheme);
    let multi = Fleet::single(exp(), scenario())
        .with_group(ReplicaGroup::new(exp(), scenario()))
        .fingerprint(&workload, &scheme);
    assert_ne!(routed, plain);
    assert_ne!(scaled, plain);
    assert_ne!(multi, plain);
    assert_ne!(routed, scaled);
}

// ---------------------------------------------------------------------------
// Routing: determinism and thread-count invariance
// ---------------------------------------------------------------------------

fn three_replica_fleet(routing: RoutingPolicy, threads: usize) -> Fleet {
    let experiment = exp().with_threads(threads);
    Fleet::new(TrafficModel::bursty(40_000.0, 24), 512, 0xB2)
        .with_routing(routing)
        .with_group(ReplicaGroup::new(experiment.clone(), scenario()).with_replicas(2))
        .with_group(ReplicaGroup::new(
            experiment.with_streams(StreamConfig::new(2, StreamPartition::Interleaved)),
            ServingScenario::new(
                TrafficModel::poisson(20_000.0),
                BatchingPolicy::adaptive(16, 96),
            ),
        ))
}

#[test]
fn routing_is_deterministic_and_thread_count_invariant() {
    let workload = Workload::stage(HeterogeneousMix::paper_mix(MixKind::Mix2, 0.02));
    let scheme = Scheme::combined();
    for routing in [
        RoutingPolicy::round_robin(),
        RoutingPolicy::least_outstanding(),
        RoutingPolicy::latency_aware(0.3),
    ] {
        let serial = three_replica_fleet(routing, 1).simulate(&workload, &scheme);
        let repeat = three_replica_fleet(routing, 1).simulate(&workload, &scheme);
        let parallel = three_replica_fleet(routing, 4).simulate(&workload, &scheme);
        assert_eq!(serial, repeat, "{} must be deterministic", routing.label());
        assert_eq!(
            serial,
            parallel,
            "{} must not depend on the pricing thread count",
            routing.label()
        );
        assert_eq!(serial.to_json(), parallel.to_json());
    }
}

#[test]
fn distinct_routing_policies_spread_load_differently_but_conserve_requests() {
    let workload = Workload::stage(AccessPattern::MedHot);
    let scheme = Scheme::base();
    for routing in [
        RoutingPolicy::round_robin(),
        RoutingPolicy::least_outstanding(),
        RoutingPolicy::latency_aware(0.3),
    ] {
        let fleet = three_replica_fleet(routing, 1);
        let report = fleet.simulate(&workload, &scheme);
        let routed: u32 = report.replicas.iter().map(|r| r.routed_requests).sum();
        assert_eq!(routed, fleet.requests(), "{}", routing.label());
        assert_eq!(
            report.served_requests + report.shed_requests + report.failed_requests,
            fleet.requests(),
            "{}",
            routing.label()
        );
        assert_eq!(report.replicas.len(), 3);
        for replica in &report.replicas {
            assert!(
                replica.routed_requests > 0,
                "{}: replica {} starved",
                routing.label(),
                replica.replica
            );
        }
    }
}

#[test]
fn request_conservation_holds_under_per_replica_faults() {
    // A heterogeneous fleet where one replica group crashes mid-day:
    // failed requests appear, yet the fleet-wide ledger still adds up.
    // Timing is anchored the PR 8 way: bursts land whole batches at known
    // instants, and the crash window is expressed in measured service
    // times, so the faulted replica's first batch is provably in flight
    // when the crash strikes.
    let workload = Workload::stage(AccessPattern::MedHot);
    let scheme = Scheme::combined();
    let s = exp().with_batch_size(32).run(&workload, &scheme).latency_us;
    // Three replicas round-robin a burst of 96: the faulted one gets 32
    // requests at t = 0 — exactly one batch, in flight over [0, s).
    let faulted = ServingScenario::new(
        TrafficModel::bursty(30_000.0, 96),
        BatchingPolicy::fixed_size(32),
    )
    .with_faults(FaultPlan::new(vec![FaultEvent::crash(0, 0.5 * s, 2.5 * s)]));
    let fleet = Fleet::new(TrafficModel::bursty(30_000.0, 96), 384, 0xC3)
        .with_routing(RoutingPolicy::round_robin())
        .with_group(ReplicaGroup::new(exp(), scenario()).with_replicas(2))
        .with_group(ReplicaGroup::new(exp(), faulted));
    let report = fleet.simulate(&workload, &scheme);
    assert!(report.failed_requests > 0, "the crash must cost requests");
    assert_eq!(
        report.served_requests + report.shed_requests + report.failed_requests,
        fleet.requests()
    );
    assert!(report.availability < 1.0);
    let routed: u32 = report.replicas.iter().map(|r| r.routed_requests).sum();
    assert_eq!(routed, fleet.requests());
}

// ---------------------------------------------------------------------------
// Autoscaling: the drain contract
// ---------------------------------------------------------------------------

#[test]
fn autoscaling_never_loses_in_flight_work() {
    // Thresholds are anchored to the measured single-replica capacity so
    // the diurnal day deterministically forces both directions: peaks
    // overload one replica (scale-out), troughs idle the grown fleet
    // (scale-in, draining the leaver).
    let workload = Workload::stage(AccessPattern::MedHot);
    let scheme = Scheme::combined();
    let template = scenario();
    let capacity = max_sustainable_qps(&exp(), &workload, &scheme, &template).max_qps;
    assert!(capacity > 0.0, "the test deployment must sustain some load");

    // Size the period so the 2048-request day spans about two diurnal
    // cycles at the mean rate, whatever the absolute capacity is, and cut
    // each cycle into ~10 decision intervals.
    let requests = 2_048u32;
    let mean_qps = (1.5 * capacity + 0.05 * capacity) / 2.0;
    let period_s = requests as f64 / mean_qps / 2.0;
    let interval_us = period_s * 1e6 / 10.0;
    let traffic = TrafficModel::diurnal(1.5 * capacity, 0.05 * capacity, period_s);
    let fleet = Fleet::new(traffic, requests, 0xD4)
        .with_group(ReplicaGroup::new(exp(), template).with_replicas(3))
        .with_autoscale(AutoscalePolicy::reactive(0.8, 0.3, 0, 1, 3))
        .with_interval_us(interval_us);
    let report = fleet.simulate(&workload, &scheme);

    let outs = report
        .autoscale_events
        .iter()
        .filter(|e| e.action == "scale_out")
        .count();
    let ins = report
        .autoscale_events
        .iter()
        .filter(|e| e.action == "scale_in")
        .count();
    assert!(outs > 0, "the diurnal peak must force a scale-out");
    assert!(ins > 0, "the diurnal trough must force a scale-in");

    // The drain contract, end to end: no faults, no admission control —
    // so if draining lost work, served would fall short of offered.
    assert_eq!(report.served_requests, fleet.requests());
    assert_eq!(report.shed_requests, 0);
    assert_eq!(report.failed_requests, 0);
    assert_eq!(report.availability, 1.0);

    // Every replica that ever went live accounts for all its routed
    // requests, drained or not.
    let routed: u32 = report.replicas.iter().map(|r| r.routed_requests).sum();
    assert_eq!(routed, fleet.requests());
    for replica in &report.replicas {
        assert_eq!(replica.report.served_requests, replica.routed_requests);
        assert!(replica.active_until_us >= replica.active_from_us);
    }

    // A drained replica bills through its last completion, never less.
    let drained = report
        .replicas
        .iter()
        .find(|r| r.active_until_us < report.makespan_us)
        .expect("a scale-in must leave at least one drained replica");
    assert!(drained.active_until_us >= drained.report.makespan_us);

    // Autoscaling is deterministic too.
    let again = fleet.simulate(&workload, &scheme);
    assert_eq!(again, report);
}

// ---------------------------------------------------------------------------
// Cross-replica cache sharing
// ---------------------------------------------------------------------------

#[test]
fn identical_replicas_price_each_distinct_shape_once() {
    let workload = Workload::stage(AccessPattern::MedHot);
    let scheme = Scheme::combined();
    let misses_for = |replicas: u32| -> (u64, u64) {
        let cache = CampaignCache::new();
        let fleet = Fleet::new(TrafficModel::poisson(20_000.0), 300, 0xE5)
            .with_group(ReplicaGroup::new(exp(), scenario()).with_replicas(replicas))
            .with_cache(cache.clone());
        fleet.simulate(&workload, &scheme);
        (cache.misses(), cache.hits())
    };
    let (misses_one, _) = misses_for(1);
    let (misses_three, hits_three) = misses_for(3);
    assert_eq!(
        misses_three, misses_one,
        "N identical replicas must price each distinct shape exactly once"
    );
    assert!(
        hits_three > 0,
        "replicas 2 and 3 must serve their pricing from the shared cache"
    );
}
