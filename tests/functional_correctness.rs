//! Cross-crate functional-correctness tests: the numerical embedding-bag /
//! DLRM forward pass, independent of the timing simulation.

use dlrm::{DlrmConfig, DlrmForward, WorkloadScale};
use dlrm_datasets::{AccessPattern, EmbeddingTrace, TraceConfig};
use embedding_kernels::{embedding_bag_forward, embedding_bag_forward_simt, SyntheticTable};

fn traces_for(config: &DlrmConfig, pattern: AccessPattern, seed: u64) -> Vec<EmbeddingTrace> {
    (0..config.num_tables)
        .map(|t| config.embedding.trace.generate(pattern, seed + t as u64))
        .collect()
}

#[test]
fn simt_partitioning_matches_the_sequential_reference_on_every_pattern() {
    let table = SyntheticTable::new(50_000, 64, 11);
    let cfg = TraceConfig::new(50_000, 64, 24);
    for pattern in AccessPattern::ALL {
        let trace = cfg.generate(pattern, 3);
        assert_eq!(
            embedding_bag_forward(&table, &trace),
            embedding_bag_forward_simt(&table, &trace),
            "partitioned and sequential reductions disagree for {pattern}"
        );
    }
}

#[test]
fn embedding_bag_output_is_permutation_invariant_within_a_bag_sum() {
    // Sum pooling over the same multiset of rows must not depend on which
    // bag position each row occupies (floating-point order is preserved per
    // output element by construction, so equal multisets in the same order
    // give equal sums; here we check the stronger property on duplicates).
    let table = SyntheticTable::new(1_000, 32, 5);
    let cfg = TraceConfig::new(1_000, 1, 4);
    let mut trace = cfg.generate(AccessPattern::Random, 9);
    trace.indices = vec![7, 7, 7, 7];
    let out = embedding_bag_forward(&table, &trace);
    for col in 0..32u32 {
        let expected = table.value(7, col) * 4.0;
        assert!((out[col as usize] - expected).abs() < 1e-3);
    }
}

#[test]
fn dlrm_predictions_are_probabilities_and_respond_to_inputs() {
    let config = DlrmConfig::at_scale(WorkloadScale::Test);
    let model = DlrmForward::new(config.clone(), 99);
    let dense_a: Vec<f32> = (0..config.batch_size() as usize * config.bottom_mlp[0] as usize)
        .map(|i| (i % 7) as f32 / 7.0)
        .collect();
    let dense_b: Vec<f32> = dense_a.iter().map(|x| -x).collect();
    let traces = traces_for(&config, AccessPattern::MedHot, 1);

    let out_a = model.forward(&dense_a, &traces);
    let out_b = model.forward(&dense_b, &traces);
    assert_eq!(out_a.batch_size(), config.batch_size() as usize);
    assert!(out_a
        .predictions
        .iter()
        .all(|p| p.is_finite() && (0.0..=1.0).contains(p)));
    assert_ne!(
        out_a.predictions, out_b.predictions,
        "dense features must influence the CTR"
    );
}

#[test]
fn one_item_traces_make_every_sample_identical() {
    // With every lookup hitting the same row, all samples see the same
    // pooled embeddings; sample ordering differences can only come from the
    // dense features.
    let config = DlrmConfig::at_scale(WorkloadScale::Test);
    let model = DlrmForward::new(config.clone(), 3);
    let traces = traces_for(&config, AccessPattern::OneItem, 8);
    let batch = config.batch_size() as usize;
    let in_dim = config.bottom_mlp[0] as usize;
    // Identical dense features for every sample.
    let row: Vec<f32> = (0..in_dim).map(|i| (i % 5) as f32 / 5.0).collect();
    let dense: Vec<f32> = row.iter().copied().cycle().take(batch * in_dim).collect();
    let out = model.forward(&dense, &traces);
    let first = out.predictions[0];
    assert!(
        out.predictions.iter().all(|&p| (p - first).abs() < 1e-6),
        "identical inputs must yield identical predictions"
    );
}

#[test]
fn table_seed_changes_embeddings_but_not_shape() {
    let cfg = TraceConfig::new(10_000, 8, 4);
    let trace = cfg.generate(AccessPattern::LowHot, 4);
    let a = embedding_bag_forward(&SyntheticTable::new(10_000, 64, 1), &trace);
    let b = embedding_bag_forward(&SyntheticTable::new(10_000, 64, 2), &trace);
    assert_eq!(a.len(), b.len());
    assert_ne!(a, b);
}
