//! Property-style tests on the core data structures and invariants: the
//! cache model, the trace generators and hotness metrics, the occupancy
//! model, and the embedding-bag reference implementation.
//!
//! The build environment has no crates.io access, so instead of `proptest`
//! each property runs against 64 deterministic pseudo-random cases drawn
//! from the small [`Cases`] generator below. Failures print the case number
//! and drawn values, which (being deterministic) reproduce exactly.

use dlrm::WorkloadScale;
use dlrm_datasets::{AccessPattern, CoverageCurve, TraceConfig, ZipfSampler};
use embedding_kernels::{embedding_bag_forward, embedding_bag_forward_simt, SyntheticTable};
use gpu_sim::config::CacheConfig;
use gpu_sim::mem::Cache;
use gpu_sim::occupancy::Occupancy;
use gpu_sim::StreamPartition;
use gpu_sim::{GpuConfig, KernelLaunch, KernelStats};
use perf_envelope::json::Json;
use perf_envelope::{
    AdmissionPolicy, AutoscaleEvent, AutoscalePolicy, BatchShapeStats, BatchingPolicy,
    CampaignCache, ClusterBreakdown, DeviceBreakdown, DeviceUtilization, EndToEndBreakdown,
    Experiment, FaultEvent, FaultPlan, FaultTimelineEntry, Fleet, FleetCost, FleetReplicaReport,
    FleetReport, FleetSpec, LatencyStats, RetryPolicy, RoutingPolicy, RunReport, Scheme,
    ServingReport, ServingScenario, StreamConfig, StreamUtilization, TableBreakdown, TrafficModel,
    Workload, WorkloadKind,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 64;

/// A case generator on top of the workspace's deterministic `StdRng`:
/// deterministic per (property, case).
struct Cases {
    rng: StdRng,
}

impl Cases {
    fn new(property: &str, case: u64) -> Self {
        // Stable seed from the property name and case index (FNV-1a fold).
        let mut seed = 0xcbf2_9ce4_8422_2325u64 ^ case.wrapping_mul(0x0000_0100_0000_01b3);
        for b in property.bytes() {
            seed = (seed ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        Cases {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.rng.gen()
    }

    /// Uniform draw from `lo..hi`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        self.rng.gen_range(lo..hi)
    }

    fn pattern(&mut self) -> AccessPattern {
        AccessPattern::ALL[self.range(0, AccessPattern::ALL.len() as u64) as usize]
    }

    /// A vector of `len in 1..max_len` draws from `lo..hi`.
    fn vec(&mut self, max_len: u64, lo: u64, hi: u64) -> Vec<u64> {
        let len = self.range(1, max_len);
        (0..len).map(|_| self.range(lo, hi)).collect()
    }

    /// An arbitrary finite `f64`: a uniform bit pattern with NaNs and
    /// infinities rejected, so the full space — subnormals, negative zero,
    /// extreme exponents — is exercised.
    fn finite_f64(&mut self) -> f64 {
        loop {
            let f = f64::from_bits(self.next_u64());
            if f.is_finite() {
                return f;
            }
        }
    }

    /// A finite positive latency-like `f64` (what report latency fields
    /// hold in practice).
    fn latency_us(&mut self) -> f64 {
        self.range(1, 1_000_000_000) as f64 / 1024.0
    }
}

/// Runs `property` against `CASES` deterministic cases.
fn check(name: &str, property: impl Fn(&mut Cases)) {
    for case in 0..CASES {
        property(&mut Cases::new(name, case));
    }
}

#[test]
fn cache_hit_invariants() {
    // The cache never reports more hits than accesses and a just-filled line
    // always hits on the next access.
    check("cache_hit_invariants", |g| {
        let lines = g.range(4, 64);
        let assoc = g.range(1, 8) as usize;
        let addrs = g.vec(200, 0, 10_000);
        let mut cache = Cache::new(CacheConfig {
            capacity_bytes: lines * 128,
            line_bytes: 128,
            associativity: assoc,
            hit_latency: 10,
        });
        for (i, &a) in addrs.iter().enumerate() {
            let line = a * 128;
            if !cache.access(line, i as u64) {
                cache.fill(line, false, i as u64);
            }
            assert!(cache.probe(line), "a just-filled line must be resident");
        }
        assert!(cache.stats.hits <= cache.stats.accesses);
        assert!(cache.resident_lines() <= lines);
    });
}

#[test]
fn persisting_carveout_is_never_exceeded() {
    // Persistent lines never exceed the configured carve-out, no matter the
    // access pattern.
    check("persisting_carveout_is_never_exceeded", |g| {
        let carveout_lines = g.range(1, 32);
        let addrs = g.vec(300, 0, 5_000);
        let mut cache = Cache::new(CacheConfig {
            capacity_bytes: 64 * 128,
            line_bytes: 128,
            associativity: 8,
            hit_latency: 10,
        });
        cache.set_persisting_capacity(carveout_lines * 128);
        for (i, &a) in addrs.iter().enumerate() {
            cache.fill(a * 128, a % 2 == 0, i as u64);
            assert!(cache.persistent_lines() <= carveout_lines);
        }
    });
}

#[test]
fn trace_statistics_are_consistent() {
    // Generated traces always stay within the table bounds and report
    // consistent unique-access statistics.
    check("trace_statistics_are_consistent", |g| {
        let rows = g.range(100, 50_000);
        let batch = g.range(1, 64) as u32;
        let pooling = g.range(1, 32) as u32;
        let pattern = g.pattern();
        let seed = g.next_u64();
        let trace = TraceConfig::new(rows, batch, pooling).generate(pattern, seed);
        assert_eq!(trace.total_lookups(), batch as u64 * pooling as u64);
        assert!(trace.indices.iter().all(|&i| (i as u64) < rows));
        assert!(trace.unique_rows() <= trace.total_lookups());
        assert!(trace.unique_rows() <= rows);
        let pct = trace.unique_access_pct();
        assert!((0.0..=100.0).contains(&pct));
        // The offsets must partition the indices array.
        assert_eq!(trace.offsets[0], 0);
        assert_eq!(*trace.offsets.last().unwrap() as usize, trace.indices.len());
    });
}

#[test]
fn coverage_curves_are_monotone() {
    // Coverage curves are monotonically non-decreasing and end at 100%.
    check("coverage_curves_are_monotone", |g| {
        let indices: Vec<u32> = g.vec(500, 0, 2_000).into_iter().map(|v| v as u32).collect();
        let curve = CoverageCurve::from_indices(&indices);
        let series = curve.series();
        let mut prev = 0.0;
        for &(_, cov) in &series {
            assert!(cov + 1e-9 >= prev);
            prev = cov;
        }
        assert!((series.last().unwrap().1 - 100.0).abs() < 1e-6);
        let skew = curve.skew();
        assert!((0.0..=1.0).contains(&skew));
    });
}

#[test]
fn zipf_hot_rows_are_distinct() {
    // The Zipf sampler's rank-to-row mapping is a permutation prefix: no two
    // ranks map to the same row.
    check("zipf_hot_rows_are_distinct", |g| {
        let rows = g.range(10, 20_000);
        let count = g.range(1, 200) as usize;
        let sampler = ZipfSampler::new(rows, 1.0);
        let hot = sampler.hottest_rows(count);
        let mut dedup = hot.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), hot.len());
        assert!(hot.iter().all(|&r| r < rows));
    });
}

#[test]
fn occupancy_is_monotone_in_register_pressure() {
    // Occupancy never exceeds the hardware limits and decreases (weakly)
    // as registers per thread increase.
    check("occupancy_is_monotone_in_register_pressure", |g| {
        let regs_low = g.range(16, 64) as u32;
        let extra = g.range(8, 128) as u32;
        let threads = 1u32 << g.range(5, 9); // 32..=256
        let cfg = GpuConfig::a100();
        let launch = |regs: u32| {
            KernelLaunch::new("k", 100_000, threads).with_regs_per_thread(regs.min(255))
        };
        let low = Occupancy::compute(&cfg, &launch(regs_low));
        let high = Occupancy::compute(&cfg, &launch(regs_low + extra));
        assert!(low.warps_per_sm <= cfg.max_warps_per_sm as u32);
        assert!(high.warps_per_sm <= low.warps_per_sm);
        assert!(low.warps_per_sm >= 1);
    });
}

#[test]
fn embedding_bag_partitioning_is_exact() {
    // The SIMT-partitioned embedding-bag reduction matches the sequential
    // reference bit for bit on arbitrary traces.
    check("embedding_bag_partitioning_is_exact", |g| {
        let rows = g.range(10, 2_000);
        let batch = g.range(1, 16) as u32;
        let pooling = g.range(1, 16) as u32;
        let pattern = g.pattern();
        let seed = g.next_u64();
        let trace = TraceConfig::new(rows, batch, pooling).generate(pattern, seed);
        let table = SyntheticTable::new(rows, 32, seed ^ 0xABCD);
        assert_eq!(
            embedding_bag_forward(&table, &trace),
            embedding_bag_forward_simt(&table, &trace)
        );
    });
}

#[test]
fn fingerprint_floats_canonicalize_exactly() {
    // The fingerprint/report codec renders floats with shortest-round-trip
    // formatting; the rendering must parse back to the identical bits and
    // be stable across a re-encode — including the awkward corners of the
    // f64 space (negative zero, subnormals, extreme exponents).
    let edge_cases = [
        -0.0,
        0.0,
        f64::MIN_POSITIVE, // smallest normal
        -f64::MIN_POSITIVE,
        5e-324, // smallest subnormal
        -5e-324,
        2.225_073_858_507_201e-308, // largest subnormal
        f64::MAX,
        f64::MIN,
        0.1,
        1.0 / 3.0,
    ];
    let assert_canonical = |f: f64| {
        let rendered = Json::Num(f).render();
        let parsed = Json::parse(&rendered).expect("canonical floats parse");
        match parsed {
            Json::Num(back) => {
                assert_eq!(
                    back.to_bits(),
                    f.to_bits(),
                    "{rendered} must round-trip to the identical bits"
                );
                assert_eq!(
                    Json::Num(back).render(),
                    rendered,
                    "re-encoding must be byte-stable"
                );
            }
            other => panic!("{rendered} re-parsed as a non-float: {other:?}"),
        }
    };
    for f in edge_cases {
        assert_canonical(f);
    }
    check("fingerprint_floats_canonicalize_exactly", |g| {
        for _ in 0..8 {
            assert_canonical(g.finite_f64());
        }
    });
}

#[test]
fn run_reports_with_cluster_breakdowns_round_trip() {
    // The serving layer archives sharded RunReports (per-device
    // breakdowns); arbitrary well-formed reports must survive the JSON
    // round trip bit-for-bit, with canonical (re-encode-stable) rendering.
    check("run_reports_with_cluster_breakdowns_round_trip", |g| {
        let mut stats = KernelStats::empty("prop", &GpuConfig::test_small());
        stats.elapsed_cycles = g.next_u64() >> 8;
        stats.counters.insts_issued = g.next_u64() >> 8;
        stats.counters.load_insts = g.range(0, 1 << 40);
        stats.l2_accesses = g.range(0, 1 << 40);
        stats.l2_hits = g.range(0, stats.l2_accesses + 1);
        stats.dram_bytes_read = g.next_u64() >> 16;
        stats.theoretical_occupancy_pct = g.range(0, 101) as f64;

        let devices = g.range(1, 5) as usize;
        let per_device: Vec<DeviceBreakdown> = (0..devices)
            .map(|d| DeviceBreakdown {
                device: format!("GPU-{d}"),
                tables: g.range(1, 64) as u32,
                tables_simulated: g.range(1, 8) as u32,
                embedding_us: g.latency_us(),
            })
            .collect();
        let critical_path_us = per_device
            .iter()
            .map(|d| d.embedding_us)
            .fold(0.0f64, f64::max);
        let embedding_us = critical_path_us + g.latency_us();
        let non_embedding_us = g.latency_us();
        let report = RunReport {
            kind: WorkloadKind::EndToEnd,
            workload: format!("mix-{}", g.range(0, 100)),
            scheme: "RPF+L2P+OptMT".to_string(),
            device: "GPU-0".to_string(),
            scale: "test".to_string(),
            seed: g.next_u64(),
            pooling_factor: g.range(1, 256) as u32,
            latency_us: embedding_us + non_embedding_us,
            tables: Some(TableBreakdown {
                per_table_us: g.latency_us(),
                tables_total: g.range(1, 256) as u32,
                tables_simulated: g.range(1, 16) as u32,
            }),
            end_to_end: Some(EndToEndBreakdown {
                embedding_us,
                non_embedding_us,
            }),
            devices: Some(ClusterBreakdown {
                strategy: "round_robin".to_string(),
                per_device,
                critical_path_us,
                all_to_all_us: g.latency_us(),
            }),
            stats,
        };

        let text = report.to_json();
        let back = RunReport::from_json(&text).expect("report JSON parses back");
        assert_eq!(back, report, "round trip must be lossless");
        assert_eq!(back.to_json(), text, "rendering must be canonical");
        let cluster = back.devices.expect("breakdown survives");
        assert_eq!(cluster.num_devices(), devices);
    });
}

#[test]
fn stream_config_names_round_trip() {
    // Every constructible stream configuration survives the name
    // round trip — the encoding the cell fingerprint and bench reports
    // use — and one stream always canonicalizes to the single identity.
    check("stream_config_names_round_trip", |g| {
        let streams = g.range(1, 9) as u32;
        let partition = if g.range(0, 2) == 0 {
            StreamPartition::SmPartitioned
        } else {
            StreamPartition::Interleaved
        };
        let config = StreamConfig::new(streams, partition);
        let back = StreamConfig::from_name(&config.name());
        assert_eq!(
            back,
            Some(config),
            "name {:?} must parse back",
            config.name()
        );
        if streams == 1 {
            assert_eq!(config, StreamConfig::single());
            assert!(config.is_single());
            assert_eq!(config.name(), "single");
        } else {
            assert_eq!(config.streams(), streams);
            assert_eq!(config.partition(), partition);
        }
    });
}

#[test]
fn stream_configs_partition_the_campaign_cache() {
    // K=1 shares the pre-stream cache cell (persisted campaigns stay warm
    // across the refactor); every distinct K>1 configuration gets its own
    // cell and never collides with the single-stream one.
    check("stream_configs_partition_the_campaign_cache", |g| {
        let cache = CampaignCache::new();
        let base =
            Experiment::new(GpuConfig::test_small(), WorkloadScale::Test).with_cache(cache.clone());
        let workload = Workload::kernel(g.pattern());
        let scheme = Scheme::base();

        let default = base.run(&workload, &scheme);
        assert_eq!(cache.len(), 1, "one kernel workload is one cell");
        let single = base
            .clone()
            .with_streams(StreamConfig::single())
            .run(&workload, &scheme);
        assert_eq!(
            cache.len(),
            1,
            "an explicit single stream must hit the pre-stream cell"
        );
        assert_eq!(single, default);

        let streams = g.range(2, 5) as u32; // test_small holds 4 streams
        let partition = if g.range(0, 2) == 0 {
            StreamPartition::SmPartitioned
        } else {
            StreamPartition::Interleaved
        };
        base.clone()
            .with_streams(StreamConfig::new(streams, partition))
            .run(&workload, &scheme);
        assert_eq!(cache.len(), 2, "K={streams} must occupy a distinct cell");

        // The other partition policy at the same K is distinct again.
        let other = match partition {
            StreamPartition::SmPartitioned => StreamPartition::Interleaved,
            StreamPartition::Interleaved => StreamPartition::SmPartitioned,
        };
        base.clone()
            .with_streams(StreamConfig::new(streams, other))
            .run(&workload, &scheme);
        assert_eq!(cache.len(), 3, "the partition policy is part of the key");
    });
}

/// An arbitrary well-formed fault event drawn from a [`Cases`] generator.
fn arbitrary_fault_event(g: &mut Cases, devices: u64) -> FaultEvent {
    let device = g.range(0, devices) as u32;
    let start = g.range(0, 1_000_000) as f64;
    let end = start + g.range(1, 1_000_000) as f64;
    let factor = 1.0 + g.range(0, 1024) as f64 / 256.0;
    match g.range(0, 4) {
        0 => FaultEvent::crash(device, start, end),
        1 => FaultEvent::drain(device, start, end),
        2 => FaultEvent::straggler(device, start, end, factor),
        _ => FaultEvent::interconnect_degradation(start, end, factor),
    }
}

#[test]
fn fault_plans_round_trip_canonically() {
    // Arbitrary well-formed fault plans survive the JSON round trip exactly
    // and render canonically (sorted events, sorted keys).
    check("fault_plans_round_trip_canonically", |g| {
        let events: Vec<FaultEvent> = (0..g.range(1, 6))
            .map(|_| arbitrary_fault_event(g, 4))
            .collect();
        let plan = FaultPlan::new(events);
        let text = plan.to_json();
        let back = FaultPlan::from_json(&text).expect("fault-plan JSON parses back");
        assert_eq!(back, plan, "round trip must be lossless");
        assert_eq!(back.to_json(), text, "rendering must be canonical");
    });
}

#[test]
fn fault_plans_partition_the_campaign_cache() {
    // The empty plan shares the pre-fault cache cell byte-for-byte
    // (persisted campaigns stay warm across the resilience refactor);
    // every distinct non-empty plan gets its own cell.
    check("fault_plans_partition_the_campaign_cache", |g| {
        let cache = CampaignCache::new();
        let base =
            Experiment::new(GpuConfig::test_small(), WorkloadScale::Test).with_cache(cache.clone());
        let workload = Workload::kernel(g.pattern());
        let scheme = Scheme::base();

        let default = base.run(&workload, &scheme);
        assert_eq!(cache.len(), 1, "one kernel workload is one cell");
        let empty = base
            .clone()
            .with_faults(FaultPlan::empty())
            .run(&workload, &scheme);
        assert_eq!(
            cache.len(),
            1,
            "the empty fault plan must hit the pre-fault cell"
        );
        assert_eq!(empty, default);

        let event = arbitrary_fault_event(g, 1);
        base.clone()
            .with_faults(FaultPlan::new(vec![event]))
            .run(&workload, &scheme);
        assert_eq!(cache.len(), 2, "a fault plan must occupy a distinct cell");

        // A different window of the same kind is distinct again.
        let shifted = FaultEvent::drain(0, event.end_us() + 1.0, event.end_us() + 2.0);
        base.clone()
            .with_faults(FaultPlan::new(vec![event, shifted]))
            .run(&workload, &scheme);
        assert_eq!(cache.len(), 3, "every event is part of the key");
    });
}

#[test]
fn faulted_serving_reports_are_deterministic() {
    // A faulted, retried, admission-controlled serving run is exactly as
    // reproducible as a healthy one: byte-identical reports across repeats
    // and across worker-thread settings.
    check("faulted_serving_reports_are_deterministic", |g| {
        let cache = CampaignCache::new();
        let base =
            Experiment::new(GpuConfig::test_small(), WorkloadScale::Test).with_cache(cache.clone());
        let workload = Workload::kernel(g.pattern());
        let scheme = Scheme::base();
        let plan = FaultPlan::new(
            (0..g.range(1, 4))
                .map(|_| arbitrary_fault_event(g, 1))
                .collect(),
        );
        let scenario = ServingScenario::new(
            TrafficModel::poisson(g.range(1_000, 50_000) as f64),
            BatchingPolicy::fixed_size(1 << g.range(3, 7)),
        )
        .with_requests(g.range(32, 128) as u32)
        .with_seed(g.next_u64())
        .with_faults(plan)
        .with_retry(RetryPolicy::fixed(2, 250.0))
        .with_admission(AdmissionPolicy::queue_depth(64));

        let one = scenario.simulate(&base.clone().with_threads(1), &workload, &scheme);
        let four = scenario.simulate(&base.clone().with_threads(4), &workload, &scheme);
        let again = scenario.simulate(&base.clone().with_threads(1), &workload, &scheme);
        assert_eq!(
            one.to_json(),
            four.to_json(),
            "faulted percentiles must be thread-count-invariant"
        );
        assert_eq!(one.to_json(), again.to_json(), "repeats must be identical");
        assert_eq!(
            one.served_requests + one.shed_requests + one.failed_requests,
            one.requests
        );
    });
}

/// An arbitrary well-formed serving report (including the PR 6 stream
/// block) drawn from a [`Cases`] generator.
fn arbitrary_serving_report(g: &mut Cases) -> ServingReport {
    let streams = g.range(1, 8) as u32;
    let stream_utilization: Vec<StreamUtilization> = (0..streams)
        .map(|stream| StreamUtilization {
            stream,
            busy_us: g.latency_us(),
            batches: g.range(0, 1000) as u32,
            utilization: g.range(0, 1025) as f64 / 1024.0,
        })
        .collect();
    ServingReport {
        workload: format!("mix-{}", g.range(0, 100)),
        scheme: "RPF+L2P".to_string(),
        device: "Test GPU".to_string(),
        scale: "test".to_string(),
        seed: g.next_u64(),
        traffic: "poisson".to_string(),
        offered_qps: g.latency_us(),
        policy: "fixed_size(64)".to_string(),
        sla_us: g.latency_us(),
        requests: g.range(1, 10_000) as u32,
        served_requests: g.range(1, 10_000) as u32,
        shed_requests: g.range(0, 100) as u32,
        failed_requests: g.range(0, 100) as u32,
        retries: g.range(0, 16) as u32,
        hedges: g.range(0, 16) as u32,
        availability: g.range(0, 1025) as f64 / 1024.0,
        goodput_qps: g.latency_us(),
        fault_events: (0..g.range(0, 3))
            .map(|i| FaultTimelineEntry {
                event: format!("crash(dev{i}, 10us..20us)"),
                start_us: g.latency_us(),
                end_us: g.latency_us(),
                batches_affected: g.range(0, 100) as u32,
                requests_affected: g.range(0, 1_000) as u32,
            })
            .collect(),
        batches: g.range(1, 1_000) as u32,
        shapes: vec![BatchShapeStats {
            shape: 1 << g.range(0, 9),
            batches: g.range(1, 1_000) as u32,
            latency_us: g.latency_us(),
        }],
        achieved_qps: g.latency_us(),
        latency: LatencyStats {
            p50_us: g.latency_us(),
            p95_us: g.latency_us(),
            p99_us: g.latency_us(),
            max_us: g.latency_us(),
            mean_us: g.latency_us(),
        },
        mean_batch_wait_us: g.latency_us(),
        mean_queue_wait_us: g.latency_us(),
        sla_violation_rate: g.range(0, 1025) as f64 / 1024.0,
        utilization: vec![DeviceUtilization {
            device: "Test GPU".to_string(),
            busy_us: g.latency_us(),
            utilization: g.range(0, 1025) as f64 / 1024.0,
        }],
        streams,
        stream_utilization,
        makespan_us: g.latency_us(),
    }
}

#[test]
fn serving_reports_with_stream_utilization_round_trip() {
    // Arbitrary well-formed serving reports — including the PR 6 stream
    // block — survive the JSON round trip bit-for-bit with canonical
    // rendering.
    check("serving_reports_with_stream_utilization_round_trip", |g| {
        let report = arbitrary_serving_report(g);
        let text = report.to_json();
        let back = ServingReport::from_json(&text).expect("serving JSON parses back");
        assert_eq!(back, report, "round trip must be lossless");
        assert_eq!(back.to_json(), text, "rendering must be canonical");
        assert_eq!(back.stream_utilization.len(), back.streams as usize);
    });
}

/// An arbitrary valid routing policy drawn from a [`Cases`] generator.
fn arbitrary_routing_policy(g: &mut Cases) -> RoutingPolicy {
    match g.range(0, 3) {
        0 => RoutingPolicy::round_robin(),
        1 => RoutingPolicy::least_outstanding(),
        _ => RoutingPolicy::latency_aware(g.range(1, 1025) as f64 / 1024.0),
    }
}

/// An arbitrary valid autoscale policy drawn from a [`Cases`] generator.
fn arbitrary_autoscale_policy(g: &mut Cases) -> AutoscalePolicy {
    if g.range(0, 4) == 0 {
        return AutoscalePolicy::none();
    }
    let scale_in = g.range(1, 512) as f64 / 1024.0;
    let scale_out = scale_in + g.range(1, 2048) as f64 / 1024.0;
    let min = g.range(1, 4) as u32;
    let max = min + g.range(0, 4) as u32;
    AutoscalePolicy::reactive(scale_out, scale_in, g.range(0, 8) as u32, min, max)
}

#[test]
fn routing_policies_round_trip_canonically() {
    // Every constructible routing policy — including the EWMA smoothing
    // factor of the latency-aware one — survives the JSON round trip
    // exactly and renders canonically.
    check("routing_policies_round_trip_canonically", |g| {
        let policy = arbitrary_routing_policy(g);
        let text = policy.to_json();
        let back = RoutingPolicy::from_json(&text).expect("routing JSON parses back");
        assert_eq!(back, policy, "round trip must be lossless");
        assert_eq!(back.to_json(), text, "rendering must be canonical");
        assert_eq!(back.label(), policy.label());
        assert_eq!(back.is_identity(), policy.is_identity());
    });
}

#[test]
fn autoscale_policies_round_trip_canonically() {
    // Every constructible autoscale policy — static provisioning and
    // arbitrary valid reactive thresholds — survives the JSON round trip
    // exactly and renders canonically.
    check("autoscale_policies_round_trip_canonically", |g| {
        let policy = arbitrary_autoscale_policy(g);
        let text = policy.to_json();
        let back = AutoscalePolicy::from_json(&text).expect("autoscale JSON parses back");
        assert_eq!(back, policy, "round trip must be lossless");
        assert_eq!(back.to_json(), text, "rendering must be canonical");
        assert_eq!(back.is_none(), policy.is_none());
        assert_eq!(back.label(), policy.label());
    });
}

#[test]
fn fleet_specs_round_trip_canonically() {
    // Arbitrary fleet specs — any routing × autoscale × decision interval
    // — survive the JSON round trip exactly, render canonically, and
    // preserve the identity predicate the degenerate fleet anchor leans on.
    check("fleet_specs_round_trip_canonically", |g| {
        let spec = FleetSpec::new()
            .with_routing(arbitrary_routing_policy(g))
            .with_autoscale(arbitrary_autoscale_policy(g))
            .with_interval_us(g.range(1, 160_000_000) as f64 / 16.0);
        let text = spec.to_json();
        let back = FleetSpec::from_json(&text).expect("fleet-spec JSON parses back");
        assert_eq!(back, spec, "round trip must be lossless");
        assert_eq!(back.to_json(), text, "rendering must be canonical");
        assert_eq!(back.is_identity(), spec.is_identity());
    });
}

#[test]
fn fleet_fingerprints_partition_the_campaign_cache() {
    // The 1-replica identity fleet reuses the plain serving cell key
    // byte-for-byte (persisted campaigns stay warm under the fleet layer);
    // every non-identity routing policy keys a distinct cell of its own.
    check("fleet_fingerprints_partition_the_campaign_cache", |g| {
        let experiment = Experiment::new(GpuConfig::test_small(), WorkloadScale::Test);
        let scenario = ServingScenario::new(
            TrafficModel::poisson(g.range(1_000, 50_000) as f64),
            BatchingPolicy::fixed_size(1 << g.range(3, 7)),
        )
        .with_requests(g.range(32, 512) as u32)
        .with_seed(g.next_u64());
        let workload = Workload::kernel(g.pattern());
        let scheme = Scheme::base();
        let plain = experiment.fingerprint(&workload, &scheme);

        let identity = Fleet::single(experiment.clone(), scenario);
        assert!(identity.is_identity());
        assert_eq!(
            identity.fingerprint(&workload, &scheme),
            plain,
            "the identity fleet must reuse the plain serving cell key"
        );

        let outstanding = identity
            .clone()
            .with_routing(RoutingPolicy::least_outstanding())
            .fingerprint(&workload, &scheme);
        let aware = identity
            .clone()
            .with_routing(RoutingPolicy::latency_aware(
                g.range(1, 1025) as f64 / 1024.0,
            ))
            .fingerprint(&workload, &scheme);
        assert_ne!(outstanding, plain, "routed fleets must key distinct cells");
        assert_ne!(aware, plain, "routed fleets must key distinct cells");
        assert_ne!(
            outstanding, aware,
            "distinct routing policies must key distinct cells"
        );
    });
}

#[test]
fn fleet_reports_round_trip_bit_for_bit() {
    // Arbitrary well-formed fleet reports — autoscale timeline, cost
    // block, embedded per-replica serving reports — survive the JSON
    // round trip bit-for-bit with canonical rendering, with every
    // fleet-level float drawn from the full finite f64 space (negative
    // zero, subnormals, extreme exponents).
    check("fleet_reports_round_trip_bit_for_bit", |g| {
        let replicas: Vec<FleetReplicaReport> = (0..g.range(1, 4))
            .map(|i| FleetReplicaReport {
                replica: i as u32,
                group: g.range(0, 3) as u32,
                device: "Test GPU".to_string(),
                devices: g.range(1, 5) as u32,
                routed_requests: g.range(0, 10_000) as u32,
                active_from_us: g.finite_f64(),
                active_until_us: g.finite_f64(),
                report: arbitrary_serving_report(g),
            })
            .collect();
        let report = FleetReport {
            workload: format!("mix-{}", g.range(0, 100)),
            scheme: "RPF+L2P+OptMT".to_string(),
            traffic: "diurnal".to_string(),
            offered_qps: g.finite_f64(),
            requests: g.range(1, 100_000) as u32,
            seed: g.next_u64(),
            routing: arbitrary_routing_policy(g).label(),
            autoscale: arbitrary_autoscale_policy(g).label(),
            served_requests: g.range(0, 100_000) as u32,
            shed_requests: g.range(0, 100) as u32,
            failed_requests: g.range(0, 100) as u32,
            availability: g.finite_f64(),
            achieved_qps: g.finite_f64(),
            goodput_qps: g.finite_f64(),
            sla_attainment: g.finite_f64(),
            latency: LatencyStats {
                p50_us: g.finite_f64(),
                p95_us: g.finite_f64(),
                p99_us: g.finite_f64(),
                max_us: g.finite_f64(),
                mean_us: g.finite_f64(),
            },
            makespan_us: g.finite_f64(),
            cost: FleetCost {
                device_us: g.finite_f64(),
                device_hours: g.finite_f64(),
            },
            autoscale_events: (0..g.range(0, 4))
                .map(|interval| AutoscaleEvent {
                    interval: interval as u32,
                    at_us: g.finite_f64(),
                    action: "scale_out".to_string(),
                    live_replicas: g.range(1, 8) as u32,
                    offered_qps: g.finite_f64(),
                    utilization: g.finite_f64(),
                })
                .collect(),
            replicas,
        };
        let text = report.to_json();
        let back = FleetReport::from_json(&text).expect("fleet JSON parses back");
        assert_eq!(back, report, "round trip must be lossless");
        assert_eq!(back.to_json(), text, "rendering must be canonical");
        assert_eq!(back.replicas.len(), report.replicas.len());
    });
}

#[test]
fn working_set_matches_unique_rows() {
    // Every generated trace's working set in bytes equals unique rows times
    // the row width.
    check("working_set_matches_unique_rows", |g| {
        let rows = g.range(100, 10_000);
        let batch = g.range(1, 32) as u32;
        let pooling = g.range(1, 16) as u32;
        let row_bytes = [128u64, 256, 512][g.range(0, 3) as usize];
        let trace = TraceConfig::new(rows, batch, pooling).generate(AccessPattern::MedHot, 7);
        assert_eq!(
            trace.working_set_bytes(row_bytes),
            trace.unique_rows() * row_bytes
        );
    });
}
