//! Property-based tests (proptest) on the core data structures and
//! invariants: the cache model, the trace generators and hotness metrics,
//! the occupancy model, and the embedding-bag reference implementation.

use dlrm_datasets::{AccessPattern, CoverageCurve, TraceConfig, ZipfSampler};
use embedding_kernels::{embedding_bag_forward, embedding_bag_forward_simt, SyntheticTable};
use gpu_sim::config::CacheConfig;
use gpu_sim::mem::Cache;
use gpu_sim::occupancy::Occupancy;
use gpu_sim::{GpuConfig, KernelLaunch};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The cache never reports more hits than accesses and a just-filled line
    /// always hits on the next access.
    #[test]
    fn cache_hit_invariants(
        lines in 4u64..64,
        assoc in 1usize..8,
        addrs in prop::collection::vec(0u64..10_000, 1..200),
    ) {
        let mut cache = Cache::new(CacheConfig {
            capacity_bytes: lines * 128,
            line_bytes: 128,
            associativity: assoc,
            hit_latency: 10,
        });
        for (i, &a) in addrs.iter().enumerate() {
            let line = a * 128;
            if !cache.access(line, i as u64) {
                cache.fill(line, false, i as u64);
            }
            prop_assert!(cache.probe(line), "a just-filled line must be resident");
        }
        prop_assert!(cache.stats.hits <= cache.stats.accesses);
        prop_assert!(cache.resident_lines() <= lines);
    }

    /// Persistent lines never exceed the configured carve-out, no matter the
    /// access pattern.
    #[test]
    fn persisting_carveout_is_never_exceeded(
        carveout_lines in 1u64..32,
        addrs in prop::collection::vec(0u64..5_000, 1..300),
    ) {
        let mut cache = Cache::new(CacheConfig {
            capacity_bytes: 64 * 128,
            line_bytes: 128,
            associativity: 8,
            hit_latency: 10,
        });
        cache.set_persisting_capacity(carveout_lines * 128);
        for (i, &a) in addrs.iter().enumerate() {
            cache.fill(a * 128, a % 2 == 0, i as u64);
            prop_assert!(cache.persistent_lines() <= carveout_lines);
        }
    }

    /// Generated traces always stay within the table bounds and report
    /// consistent unique-access statistics.
    #[test]
    fn trace_statistics_are_consistent(
        rows in 100u64..50_000,
        batch in 1u32..64,
        pooling in 1u32..32,
        pattern_idx in 0usize..5,
        seed in any::<u64>(),
    ) {
        let pattern = AccessPattern::ALL[pattern_idx];
        let trace = TraceConfig::new(rows, batch, pooling).generate(pattern, seed);
        prop_assert_eq!(trace.total_lookups(), batch as u64 * pooling as u64);
        prop_assert!(trace.indices.iter().all(|&i| (i as u64) < rows));
        prop_assert!(trace.unique_rows() <= trace.total_lookups());
        prop_assert!(trace.unique_rows() <= rows);
        let pct = trace.unique_access_pct();
        prop_assert!((0.0..=100.0).contains(&pct));
        // The offsets must partition the indices array.
        prop_assert_eq!(trace.offsets[0], 0);
        prop_assert_eq!(*trace.offsets.last().unwrap() as usize, trace.indices.len());
    }

    /// Coverage curves are monotonically non-decreasing and end at 100%.
    #[test]
    fn coverage_curves_are_monotone(
        indices in prop::collection::vec(0u32..2_000, 1..500),
    ) {
        let curve = CoverageCurve::from_indices(&indices);
        let series = curve.series();
        let mut prev = 0.0;
        for &(_, cov) in &series {
            prop_assert!(cov + 1e-9 >= prev);
            prev = cov;
        }
        prop_assert!((series.last().unwrap().1 - 100.0).abs() < 1e-6);
        let skew = curve.skew();
        prop_assert!((0.0..=1.0).contains(&skew));
    }

    /// The Zipf sampler's rank-to-row mapping is a permutation prefix: no two
    /// ranks map to the same row.
    #[test]
    fn zipf_hot_rows_are_distinct(rows in 10u64..20_000, count in 1usize..200) {
        let sampler = ZipfSampler::new(rows, 1.0);
        let hot = sampler.hottest_rows(count);
        let mut dedup = hot.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), hot.len());
        prop_assert!(hot.iter().all(|&r| r < rows));
    }

    /// Occupancy never exceeds the hardware limits and decreases (weakly)
    /// as registers per thread increase.
    #[test]
    fn occupancy_is_monotone_in_register_pressure(
        regs_low in 16u32..64,
        extra in 8u32..128,
        threads_pow in 5u32..9,
    ) {
        let cfg = GpuConfig::a100();
        let threads = 1u32 << threads_pow; // 32..=256
        let launch = |regs: u32| {
            KernelLaunch::new("k", 100_000, threads).with_regs_per_thread(regs.min(255))
        };
        let low = Occupancy::compute(&cfg, &launch(regs_low));
        let high = Occupancy::compute(&cfg, &launch(regs_low + extra));
        prop_assert!(low.warps_per_sm <= cfg.max_warps_per_sm as u32);
        prop_assert!(high.warps_per_sm <= low.warps_per_sm);
        prop_assert!(low.warps_per_sm >= 1);
    }

    /// The SIMT-partitioned embedding-bag reduction matches the sequential
    /// reference bit for bit on arbitrary traces.
    #[test]
    fn embedding_bag_partitioning_is_exact(
        rows in 10u64..2_000,
        batch in 1u32..16,
        pooling in 1u32..16,
        seed in any::<u64>(),
        pattern_idx in 0usize..5,
    ) {
        let pattern = AccessPattern::ALL[pattern_idx];
        let trace = TraceConfig::new(rows, batch, pooling).generate(pattern, seed);
        let table = SyntheticTable::new(rows, 32, seed ^ 0xABCD);
        prop_assert_eq!(
            embedding_bag_forward(&table, &trace),
            embedding_bag_forward_simt(&table, &trace)
        );
    }

    /// Every generated trace's working set in bytes equals unique rows times
    /// the row width.
    #[test]
    fn working_set_matches_unique_rows(
        rows in 100u64..10_000,
        batch in 1u32..32,
        pooling in 1u32..16,
        row_bytes in prop::sample::select(vec![128u64, 256, 512]),
    ) {
        let trace = TraceConfig::new(rows, batch, pooling).generate(AccessPattern::MedHot, 7);
        prop_assert_eq!(trace.working_set_bytes(row_bytes), trace.unique_rows() * row_bytes);
    }
}
