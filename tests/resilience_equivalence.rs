//! Resilience-layer equivalence anchors and fault-semantics contracts.
//!
//! The PR 8 safety net, mirroring the engine/sharding/stream/serving
//! anchors of PR 3–6: a scenario carrying an **explicitly empty**
//! [`FaultPlan`] with `RetryPolicy::none()` and `AdmissionPolicy::none()`
//! must be **bit-exact** with the fault-free serving path — on both engine
//! modes, unsharded and sharded, with one stream and two. Beyond the
//! anchor: crash timelines are deterministic and thread-count-invariant,
//! a drain window delays but loses nothing, and a crash under
//! `RetryPolicy::none()` loses exactly the in-flight batch (and nothing
//! else), while a fixed retry policy wins it all back.

use dlrm::WorkloadScale;
use dlrm_datasets::{AccessPattern, HeterogeneousMix, MixKind};
use gpu_sim::{EngineMode, GpuConfig, StreamPartition};
use perf_envelope::{
    AdmissionPolicy, BatchingPolicy, Cluster, Experiment, FaultEvent, FaultPlan,
    InterconnectConfig, RetryPolicy, Scheme, ServingScenario, ShardingSpec, StreamConfig,
    TrafficModel, Workload,
};

fn exp() -> Experiment {
    Experiment::new(GpuConfig::test_small(), WorkloadScale::Test)
}

fn cluster(n: usize) -> Cluster {
    Cluster::homogeneous(GpuConfig::test_small(), n, InterconnectConfig::nvlink3())
}

/// The single-request degenerate scenario of `tests/serving_simulation.rs`,
/// with the resilience knobs spelled out explicitly at their identity
/// values — the whole point of the anchor.
fn degenerate_resilient_scenario(batch: u32) -> ServingScenario {
    ServingScenario::new(
        TrafficModel::poisson(100.0),
        BatchingPolicy::fixed_size(batch),
    )
    .with_requests(1)
    .with_seed(7)
    .with_faults(FaultPlan::empty())
    .with_retry(RetryPolicy::none())
    .with_admission(AdmissionPolicy::none())
}

/// Asserts the explicitly-fault-free degenerate scenario is bit-exact with
/// the direct experiment latency.
fn assert_degenerate_matches(experiment: &Experiment, workload: &Workload, scheme: &Scheme) {
    let direct = experiment.run(workload, scheme);
    let batch = experiment.model().batch_size();
    let serving = degenerate_resilient_scenario(batch).simulate(experiment, workload, scheme);
    assert_eq!(serving.requests, 1);
    assert_eq!(serving.served_requests, 1);
    assert_eq!(serving.shed_requests, 0);
    assert_eq!(serving.failed_requests, 0);
    assert_eq!(serving.availability, 1.0);
    assert!(serving.fault_events.is_empty());
    for (name, value) in [
        ("p50", serving.latency.p50_us),
        ("p99", serving.latency.p99_us),
        ("max", serving.latency.max_us),
        ("mean", serving.latency.mean_us),
    ] {
        assert_eq!(
            value.to_bits(),
            direct.latency_us.to_bits(),
            "{name} of the fault-free degenerate run must be bit-exact with \
             Experiment::run ({value} vs {}) on {workload}",
            direct.latency_us
        );
    }
}

#[test]
fn empty_plans_are_bit_exact_on_both_engine_modes_and_stream_counts() {
    let workloads = [
        Workload::stage(AccessPattern::MedHot),
        Workload::stage(HeterogeneousMix::paper_mix(MixKind::Mix2, 0.02)),
        Workload::end_to_end(AccessPattern::Random),
    ];
    for mode in [EngineMode::EventDriven, EngineMode::CycleAccurate] {
        for streams in [
            StreamConfig::single(),
            StreamConfig::new(2, StreamPartition::Interleaved),
        ] {
            let experiment = exp().with_engine_mode(mode).with_streams(streams);
            for workload in &workloads {
                assert_degenerate_matches(&experiment, workload, &Scheme::combined());
            }
        }
    }
}

#[test]
fn empty_plans_are_bit_exact_on_clusters_sharded_and_not() {
    let workload = Workload::end_to_end(HeterogeneousMix::paper_mix(MixKind::Mix1, 0.02));
    // A 1-device cluster, unsharded.
    assert_degenerate_matches(
        &exp().with_cluster(Cluster::single(GpuConfig::test_small())),
        &workload,
        &Scheme::combined(),
    );
    // A 2-device cluster through the sharded path, K = 1 and K = 2.
    let sharded = workload.with_sharding(ShardingSpec::SizeBalanced);
    for streams in [
        StreamConfig::single(),
        StreamConfig::new(2, StreamPartition::Interleaved),
    ] {
        assert_degenerate_matches(
            &exp().with_cluster(cluster(2)).with_streams(streams),
            &sharded,
            &Scheme::combined(),
        );
    }
}

#[test]
fn empty_plans_leave_multi_batch_reports_byte_identical() {
    // Not just the degenerate anchor: a full multi-batch Poisson run with
    // the resilience knobs at their identity values renders byte-for-byte
    // the same report as the plain scenario.
    let scenario = ServingScenario::new(
        TrafficModel::poisson(20_000.0),
        BatchingPolicy::adaptive(8, 64),
    )
    .with_requests(300)
    .with_seed(11);
    let workload = Workload::stage(AccessPattern::MedHot);
    let base = scenario.simulate(&exp(), &workload, &Scheme::base());
    let resilient = scenario
        .clone()
        .with_faults(FaultPlan::empty())
        .with_retry(RetryPolicy::none())
        .with_admission(AdmissionPolicy::none())
        .simulate(&exp(), &workload, &Scheme::base());
    assert_eq!(base.to_json(), resilient.to_json());
    assert_eq!(resilient.availability, 1.0);
    assert_eq!(resilient.served_requests, resilient.requests);
}

/// The nominal one-batch service latency on a 2-device sharded deployment:
/// the time unit the fault windows below are expressed in.
fn sharded_service_us(batch: u32) -> f64 {
    exp()
        .with_cluster(cluster(2))
        .with_batch_size(batch)
        .run(
            &Workload::stage(AccessPattern::MedHot).with_sharding(ShardingSpec::SizeBalanced),
            &Scheme::optmt(),
        )
        .latency_us
}

#[test]
fn crash_timelines_are_deterministic_and_thread_count_invariant() {
    let s = sharded_service_us(32);
    let workload = Workload::stage(AccessPattern::MedHot).with_sharding(ShardingSpec::SizeBalanced);
    let scenario = ServingScenario::new(
        TrafficModel::bursty(20_000.0, 16),
        BatchingPolicy::fixed_size(32),
    )
    .with_requests(192)
    .with_seed(13)
    .with_faults(FaultPlan::new(vec![
        FaultEvent::crash(0, 1.5 * s, 2.5 * s),
        FaultEvent::straggler(1, 4.0 * s, 6.0 * s, 3.0),
    ]))
    .with_retry(RetryPolicy::fixed(2, 100.0));

    let one = scenario.simulate(
        &exp().with_cluster(cluster(2)).with_threads(1),
        &workload,
        &Scheme::optmt(),
    );
    let four = scenario.simulate(
        &exp().with_cluster(cluster(2)).with_threads(4),
        &workload,
        &Scheme::optmt(),
    );
    let again = scenario.simulate(
        &exp().with_cluster(cluster(2)).with_threads(1),
        &workload,
        &Scheme::optmt(),
    );
    assert_eq!(
        one.to_json(),
        four.to_json(),
        "a crash timeline must not depend on the worker-thread setting"
    );
    assert_eq!(one.to_json(), again.to_json(), "repeats must be identical");
    assert_eq!(
        one.served_requests + one.shed_requests + one.failed_requests,
        one.requests
    );
}

/// Back-to-back batches of `batch` requests arriving near-simultaneously,
/// so fault windows expressed in service units land where intended.
fn burst_scenario(batch: u32, requests: u32) -> ServingScenario {
    ServingScenario::new(
        TrafficModel::uniform(100_000_000.0),
        BatchingPolicy::fixed_size(batch),
    )
    .with_requests(requests)
}

fn service_us(batch: u32) -> f64 {
    exp()
        .with_batch_size(batch)
        .run(&Workload::stage(AccessPattern::MedHot), &Scheme::base())
        .latency_us
}

#[test]
fn drains_lose_zero_requests() {
    let s = service_us(32);
    let workload = Workload::stage(AccessPattern::MedHot);
    let healthy = burst_scenario(32, 96).simulate(&exp(), &workload, &Scheme::base());
    let drained = burst_scenario(32, 96)
        .with_faults(FaultPlan::new(vec![FaultEvent::drain(0, 1.5 * s, 4.0 * s)]))
        .simulate(&exp(), &workload, &Scheme::base());
    assert_eq!(drained.failed_requests, 0, "a drain never loses work");
    assert_eq!(drained.shed_requests, 0);
    assert_eq!(drained.availability, 1.0);
    assert_eq!(drained.served_requests, drained.requests);
    assert!(
        drained.makespan_us > healthy.makespan_us,
        "deferred dispatch must stretch the run"
    );
    assert!(
        drained.latency.p99_us >= healthy.latency.p99_us,
        "waiting out a drain cannot improve the tail"
    );
    assert_eq!(drained.fault_events.len(), 1);
    assert!(
        drained.fault_events[0].batches_affected >= 1,
        "the queued batch was delayed by the drain"
    );
}

#[test]
fn crashes_without_retry_lose_exactly_the_inflight_set() {
    let s = service_us(32);
    let workload = Workload::stage(AccessPattern::MedHot);
    // Three back-to-back batches of 32; the crash opens mid-flight in
    // batch 2 and recovers later, so batch 2 is lost, batch 3 delayed,
    // batch 1 untouched.
    let report = burst_scenario(32, 96)
        .with_faults(FaultPlan::new(vec![FaultEvent::crash(0, 1.5 * s, 2.5 * s)]))
        .simulate(&exp(), &workload, &Scheme::base());
    assert_eq!(report.failed_requests, 32, "exactly the in-flight batch");
    assert_eq!(report.served_requests, 64);
    assert_eq!(report.shed_requests, 0);
    assert_eq!(report.availability, 64.0 / 96.0);
    // The timeline charges the crash with the batch it killed and the one
    // it pushed past recovery.
    assert_eq!(report.fault_events[0].batches_affected, 2);
    assert_eq!(report.fault_events[0].requests_affected, 64);
}

#[test]
fn fixed_retries_win_back_the_crashed_batch() {
    let s = service_us(32);
    let workload = Workload::stage(AccessPattern::MedHot);
    let report = burst_scenario(32, 96)
        .with_faults(FaultPlan::new(vec![FaultEvent::crash(0, 1.5 * s, 2.5 * s)]))
        .with_retry(RetryPolicy::fixed(3, 250.0))
        .simulate(&exp(), &workload, &Scheme::base());
    assert_eq!(report.failed_requests, 0);
    assert_eq!(report.served_requests, 96);
    assert_eq!(report.retries, 1, "one re-dispatch wins the batch back");
    assert_eq!(report.availability, 1.0);
    assert_eq!(report.batches, 4, "the retry is a fourth launch");
}

// ---------------------------------------------------------------------------
// Window-boundary edge cases (PR 10): half-open semantics under composition
// ---------------------------------------------------------------------------

#[test]
fn crash_opening_exactly_at_a_drain_boundary_defers_without_killing() {
    // Drain [1.5s, 3s) flows directly into crash [3s, 4s): the deferred
    // batch chains through BOTH windows (the fixed point of
    // next-dispatch), and because it starts exactly AT the crash opening
    // — not strictly after it — the half-open kill test must spare it.
    // Nothing is lost; the whole queue just waits out the outage.
    let s = service_us(32);
    let workload = Workload::stage(AccessPattern::MedHot);
    let report = burst_scenario(32, 96)
        .with_faults(FaultPlan::new(vec![
            FaultEvent::drain(0, 1.5 * s, 3.0 * s),
            FaultEvent::crash(0, 3.0 * s, 4.0 * s),
        ]))
        .simulate(&exp(), &workload, &Scheme::base());
    // Batch 1 runs [0, s); batch 2 starts at s, before the drain opens,
    // and runs [s, 2s); batch 3 is ready at 2s inside the drain, defers to
    // its end 3s, lands exactly on the crash opening, and defers again to
    // 4s — where it runs to completion untouched.
    assert_eq!(report.failed_requests, 0, "a boundary crash kills nothing");
    assert_eq!(report.served_requests, 96);
    assert_eq!(report.availability, 1.0);
    assert_eq!(report.batches, 3, "no batch is ever re-dispatched");
    assert_eq!(
        report.makespan_us.to_bits(),
        (4.0 * s + s).to_bits(),
        "the last batch must start exactly at the crash recovery"
    );
    // The timeline charges both windows with the batch they deferred.
    assert_eq!(report.fault_events.len(), 2);
    for entry in &report.fault_events {
        assert_eq!(entry.batches_affected, 1, "{}", entry.event);
        assert_eq!(entry.requests_affected, 32, "{}", entry.event);
    }
}

#[test]
fn overlapping_stragglers_on_one_device_compose_multiplicatively() {
    // Two stragglers sharing a window on the same device must behave
    // exactly like one straggler with the product factor — to the bit.
    let s = service_us(32);
    let workload = Workload::stage(AccessPattern::MedHot);
    let composed = burst_scenario(32, 96)
        .with_faults(FaultPlan::new(vec![
            FaultEvent::straggler(0, 0.0, 10.0 * s, 2.0),
            FaultEvent::straggler(0, 0.0, 10.0 * s, 3.0),
        ]))
        .simulate(&exp(), &workload, &Scheme::base());
    let single = burst_scenario(32, 96)
        .with_faults(FaultPlan::new(vec![FaultEvent::straggler(
            0,
            0.0,
            10.0 * s,
            6.0,
        )]))
        .simulate(&exp(), &workload, &Scheme::base());
    assert_eq!(composed.served_requests, single.served_requests);
    assert_eq!(composed.batches, single.batches);
    for (name, got, want) in [
        ("p50", composed.latency.p50_us, single.latency.p50_us),
        ("p99", composed.latency.p99_us, single.latency.p99_us),
        ("max", composed.latency.max_us, single.latency.max_us),
        ("mean", composed.latency.mean_us, single.latency.mean_us),
        ("makespan", composed.makespan_us, single.makespan_us),
    ] {
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "overlapping 2x·3x stragglers diverged from a single 6x on {name}: {got} vs {want}"
        );
    }
    // Slowdown genuinely happened versus the healthy run.
    let healthy = burst_scenario(32, 96).simulate(&exp(), &workload, &Scheme::base());
    assert!(composed.makespan_us > healthy.makespan_us);
}

#[test]
fn hedge_duplicates_landing_in_a_second_crash_window_are_lost_too() {
    // One batch, one stream. Crash A kills the primary; the hedge fires,
    // defers past crash A's recovery — and a second crash opens mid-flight
    // of the duplicate. Both attempts die: hedging only helps when some
    // window is clear, and the ledger must show the batch as failed, not
    // double-counted.
    let s = service_us(32);
    let workload = Workload::stage(AccessPattern::MedHot);
    let crashes = FaultPlan::new(vec![
        FaultEvent::crash(0, 0.5 * s, 2.0 * s),
        FaultEvent::crash(0, 2.5 * s, 4.0 * s),
    ]);
    let report = burst_scenario(32, 32)
        .with_faults(crashes.clone())
        .with_retry(RetryPolicy::hedged(1.5))
        .simulate(&exp(), &workload, &Scheme::base());
    assert_eq!(report.hedges, 1, "the killed primary must trigger a hedge");
    assert_eq!(report.failed_requests, 32, "the batch fails exactly once");
    assert_eq!(report.served_requests, 0);
    assert_eq!(report.availability, 0.0);
    assert_eq!(report.batches, 2, "primary launch plus hedge launch");
    // The second crash window is charged with the duplicate it killed.
    let second = report
        .fault_events
        .iter()
        .find(|e| e.start_us == 2.5 * s)
        .expect("the second crash appears on the timeline");
    assert_eq!(second.batches_affected, 1);
    assert_eq!(second.requests_affected, 32);

    // Control: with only the first crash, the same hedge wins the batch
    // back — proving it was the second window that killed the duplicate.
    let recovered = burst_scenario(32, 32)
        .with_faults(FaultPlan::new(vec![FaultEvent::crash(0, 0.5 * s, 2.0 * s)]))
        .with_retry(RetryPolicy::hedged(1.5))
        .simulate(&exp(), &workload, &Scheme::base());
    assert_eq!(recovered.failed_requests, 0);
    assert_eq!(recovered.served_requests, 32);
    assert_eq!(recovered.hedges, 1);
}
