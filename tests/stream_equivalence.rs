//! The concurrent-stream refactor's bit-exactness anchor.
//!
//! PR 6 threads a stream dimension (K concurrently-resident kernels per
//! device) from the engine's launch/occupancy bookkeeping up through the
//! experiment runner and into the serving queue model. The refactor's
//! contract, proven here end to end: **one stream is not a special case
//! that is merely close — it is bit-exact with the pre-stream pipeline**,
//! on every layer:
//!
//! * engine: a single-kernel [`Simulator::run_concurrent`] call returns
//!   the identical [`KernelStats`] as [`Simulator::run_with_memory`], on
//!   both engine modes and under both [`StreamPartition`] policies;
//! * experiment: `with_streams(StreamConfig::single())` reproduces the
//!   default run report bit-for-bit, unsharded and on a 1-device cluster;
//! * serving: the K-stream dispatch loop at K=1 reproduces a hand-rolled
//!   scalar-FIFO reference simulation to the bit, and the degenerate
//!   single-request anchor of PR 5 still collapses to a plain
//!   `Experiment::run`.
//!
//! Beyond the anchor, multi-stream runs must be deterministic and
//! engine-mode-invariant (the event-driven engine's cycle skipping may
//! not change co-residency interleaving), and per-stream accounting must
//! add up. This suite runs in release mode in CI.

use dlrm::WorkloadScale;
use dlrm_datasets::{AccessPattern, HeterogeneousMix, MixKind, TraceConfig};
use embedding_kernels::{
    BufferStation, EmbeddingConfig, EmbeddingKernelSpec, EmbeddingWorkload, PrefetchConfig,
};
use gpu_sim::mem::MemorySystem;
use gpu_sim::{EngineMode, GpuConfig, KernelProgram, KernelStats, Simulator, StreamPartition};
use perf_envelope::{
    BatchingPolicy, Cluster, Experiment, Scheme, ServingScenario, StreamConfig, TrafficModel,
    Workload,
};

fn exp() -> Experiment {
    Experiment::new(GpuConfig::test_small(), WorkloadScale::Test)
}

/// Panics with the first differing statistics field if `a` and `b` are not
/// bit-identical.
fn assert_stats_equal(a: &KernelStats, b: &KernelStats, label: &str) {
    if let Some(diff) = a.first_difference(b) {
        panic!("stream paths diverged on {label}: {diff}");
    }
    assert_eq!(
        a, b,
        "stream paths diverged on {label} outside compared fields"
    );
}

/// A cross-section of the embedding-bag kernel builds the schemes produce.
fn kernel_variants() -> Vec<(String, EmbeddingKernelSpec)> {
    vec![
        ("base".to_string(), EmbeddingKernelSpec::base()),
        (
            "maxrreg48".to_string(),
            EmbeddingKernelSpec::base().with_max_registers(48),
        ),
        (
            "prefetch+OptMT".to_string(),
            EmbeddingKernelSpec::base()
                .with_max_registers(48)
                .with_prefetch(PrefetchConfig::new(BufferStation::ALL[0], 4)),
        ),
    ]
}

// ---------------------------------------------------------------------------
// Engine layer
// ---------------------------------------------------------------------------

#[test]
fn single_kernel_run_concurrent_is_bit_exact_on_embedding_kernels() {
    let cfg = GpuConfig::test_small();
    let embedding = EmbeddingConfig::new(TraceConfig::new(20_000, 64, 10), 64);
    for mode in [EngineMode::CycleAccurate, EngineMode::EventDriven] {
        let sim = Simulator::new(cfg.clone()).with_mode(mode);
        for pattern in [AccessPattern::MedHot, AccessPattern::Random] {
            let workload = EmbeddingWorkload::generate(embedding, pattern, 0, 0x51);
            for (name, spec) in kernel_variants() {
                let launch = spec.launch(&workload);
                let kernel = spec.kernel(&workload);
                let mut direct_mem = MemorySystem::new(&cfg);
                let direct = sim.run_with_memory(&launch, &kernel, &mut direct_mem, 0);
                for partition in [StreamPartition::SmPartitioned, StreamPartition::Interleaved] {
                    let mut mem = MemorySystem::new(&cfg);
                    let streamed = sim.run_concurrent(
                        &[(&launch, &kernel as &dyn KernelProgram)],
                        partition,
                        &mut mem,
                        0,
                    );
                    assert_eq!(streamed.len(), 1);
                    let label = format!(
                        "{name}/{}/{}/{partition}",
                        pattern.paper_name(),
                        mode.name()
                    );
                    assert_stats_equal(&streamed[0], &direct, &label);
                }
            }
        }
    }
}

#[test]
fn concurrent_embedding_kernels_agree_across_engine_modes() {
    // The event-driven engine's cycle skipping must not change how two
    // co-resident embedding kernels interleave, under either partition.
    let cfg = GpuConfig::test_small();
    let embedding = EmbeddingConfig::new(TraceConfig::new(20_000, 64, 10), 64);
    let spec = EmbeddingKernelSpec::base().with_max_registers(48);
    let a = EmbeddingWorkload::generate(embedding, AccessPattern::MedHot, 0, 0x52);
    let b = EmbeddingWorkload::generate(embedding, AccessPattern::Random, 1, 0x53);
    let (launch_a, kernel_a) = (spec.launch(&a), spec.kernel(&a));
    let (launch_b, kernel_b) = (spec.launch(&b), spec.kernel(&b));
    for partition in [StreamPartition::SmPartitioned, StreamPartition::Interleaved] {
        let run = |mode: EngineMode| -> Vec<KernelStats> {
            let sim = Simulator::new(cfg.clone()).with_mode(mode);
            let mut mem = MemorySystem::new(&cfg);
            sim.run_concurrent(
                &[
                    (&launch_a, &kernel_a as &dyn KernelProgram),
                    (&launch_b, &kernel_b as &dyn KernelProgram),
                ],
                partition,
                &mut mem,
                0,
            )
        };
        let reference = run(EngineMode::CycleAccurate);
        let event = run(EngineMode::EventDriven);
        for (stream, (r, e)) in reference.iter().zip(event.iter()).enumerate() {
            assert!(r.counters.insts_issued > 0, "stream {stream} ran nothing");
            assert_stats_equal(r, e, &format!("{partition} stream {stream}"));
        }
    }
}

// ---------------------------------------------------------------------------
// Experiment layer
// ---------------------------------------------------------------------------

#[test]
fn explicit_single_stream_experiments_reproduce_the_default_reports() {
    // `with_streams(single)` — and the canonicalized 1-stream spelling of
    // either partition — must leave every run report bit-identical.
    for mode in [EngineMode::EventDriven, EngineMode::CycleAccurate] {
        let base = exp().with_engine_mode(mode);
        for workload in [
            Workload::kernel(AccessPattern::Random),
            Workload::stage(HeterogeneousMix::paper_mix(MixKind::Mix2, 0.02)),
            Workload::end_to_end(AccessPattern::MedHot),
        ] {
            for scheme in [Scheme::base(), Scheme::combined()] {
                let default = base.run(&workload, &scheme);
                for streams in [
                    StreamConfig::single(),
                    StreamConfig::new(1, StreamPartition::SmPartitioned),
                    StreamConfig::new(1, StreamPartition::Interleaved),
                ] {
                    let streamed = base.clone().with_streams(streams).run(&workload, &scheme);
                    if let Some(diff) = default.stats.first_difference(&streamed.stats) {
                        panic!(
                            "K=1 diverged on {workload}/{scheme}/{}: {diff}",
                            mode.name()
                        );
                    }
                    assert_eq!(
                        streamed,
                        default,
                        "K=1 report diverged on {workload}/{scheme}/{}",
                        mode.name()
                    );
                }
            }
        }
    }
}

#[test]
fn explicit_single_stream_is_bit_exact_on_a_single_device_cluster() {
    let workload = Workload::end_to_end(HeterogeneousMix::paper_mix(MixKind::Mix1, 0.02));
    let base = exp().with_cluster(Cluster::single(GpuConfig::test_small()));
    let default = base.run(&workload, &Scheme::combined());
    let streamed = base
        .clone()
        .with_streams(StreamConfig::single())
        .run(&workload, &Scheme::combined());
    assert_eq!(streamed, default);
}

// ---------------------------------------------------------------------------
// Serving layer
// ---------------------------------------------------------------------------

/// A hand-rolled scalar-FIFO serving simulation for fixed-size batching:
/// the exact pre-stream pipeline, reimplemented independently of the
/// production dispatch loop. One execution horizon, batches of
/// `min(batch, remaining)` closing at their filling arrival, every batch
/// priced at the configured shape.
struct ScalarReference {
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    max_us: f64,
    mean_us: f64,
    batches: u32,
    makespan_us: f64,
    achieved_qps: f64,
}

fn scalar_fifo_reference(
    experiment: &Experiment,
    workload: &Workload,
    scheme: &Scheme,
    traffic: &TrafficModel,
    batch: u32,
    requests: u32,
    seed: u64,
) -> ScalarReference {
    let arrivals = traffic.arrival_times_us(requests, seed);
    let service_us = experiment
        .clone()
        .with_batch_size(batch)
        .run(workload, scheme)
        .latency_us;

    let mut latencies = Vec::with_capacity(arrivals.len());
    let mut stream_free = 0.0f64;
    let mut batches = 0u32;
    let mut first = 0usize;
    while first < arrivals.len() {
        let len = (batch as usize).min(arrivals.len() - first);
        let close_us = arrivals[first + len - 1];
        let start = if stream_free > close_us {
            stream_free
        } else {
            close_us
        };
        let queue_wait = start - close_us;
        for &arrival in &arrivals[first..first + len] {
            latencies.push((close_us - arrival) + queue_wait + service_us);
        }
        stream_free = start + service_us;
        batches += 1;
        first += len;
    }

    let mut sorted = latencies;
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = |p: f64| -> f64 {
        let r = (p / 100.0 * sorted.len() as f64).ceil() as usize;
        sorted[r.clamp(1, sorted.len()) - 1]
    };
    ScalarReference {
        p50_us: rank(50.0),
        p95_us: rank(95.0),
        p99_us: rank(99.0),
        max_us: sorted[sorted.len() - 1],
        mean_us: sorted.iter().sum::<f64>() / sorted.len() as f64,
        batches,
        makespan_us: stream_free,
        achieved_qps: sorted.len() as f64 / stream_free * 1e6,
    }
}

fn assert_matches_scalar_reference(experiment: &Experiment, workload: &Workload, scheme: &Scheme) {
    let traffic = TrafficModel::poisson(30_000.0);
    let (batch, requests, seed) = (64u32, 300u32, 0x54u64);
    let reference = scalar_fifo_reference(
        experiment, workload, scheme, &traffic, batch, requests, seed,
    );
    let report = ServingScenario::new(traffic, BatchingPolicy::fixed_size(batch))
        .with_requests(requests)
        .with_seed(seed)
        .simulate(experiment, workload, scheme);
    assert_eq!(report.batches, reference.batches);
    assert_eq!(report.streams, 1);
    for (name, got, want) in [
        ("p50", report.latency.p50_us, reference.p50_us),
        ("p95", report.latency.p95_us, reference.p95_us),
        ("p99", report.latency.p99_us, reference.p99_us),
        ("max", report.latency.max_us, reference.max_us),
        ("mean", report.latency.mean_us, reference.mean_us),
        ("makespan", report.makespan_us, reference.makespan_us),
        ("achieved_qps", report.achieved_qps, reference.achieved_qps),
    ] {
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "{name} diverged from the scalar-FIFO reference on {workload}: {got} vs {want}"
        );
    }
}

#[test]
fn single_stream_serving_is_bit_exact_with_a_scalar_fifo_reference() {
    for mode in [EngineMode::EventDriven, EngineMode::CycleAccurate] {
        assert_matches_scalar_reference(
            &exp().with_engine_mode(mode),
            &Workload::stage(AccessPattern::MedHot),
            &Scheme::base(),
        );
    }
    // Through the cluster path too: a 1-device cluster serves identically.
    assert_matches_scalar_reference(
        &exp().with_cluster(Cluster::single(GpuConfig::test_small())),
        &Workload::end_to_end(HeterogeneousMix::paper_mix(MixKind::Mix2, 0.02)),
        &Scheme::combined(),
    );
    // And under an explicit (canonicalized) single-stream config.
    assert_matches_scalar_reference(
        &exp().with_streams(StreamConfig::single()),
        &Workload::stage(AccessPattern::HighHot),
        &Scheme::optmt(),
    );
}

#[test]
fn degenerate_single_request_still_collapses_to_experiment_run() {
    // PR 5's anchor, re-proven through the stream dispatch loop: one
    // request, one batch, zero waits — every percentile IS the service
    // latency from a plain `Experiment::run`.
    let experiment = exp().with_streams(StreamConfig::single());
    let workload = Workload::stage(AccessPattern::MedHot);
    let direct = experiment.run(&workload, &Scheme::base());
    let batch = experiment.model().batch_size();
    let report = ServingScenario::new(
        TrafficModel::poisson(100.0),
        BatchingPolicy::fixed_size(batch),
    )
    .with_requests(1)
    .with_seed(7)
    .simulate(&experiment, &workload, &Scheme::base());
    assert_eq!(report.batches, 1);
    assert_eq!(report.mean_batch_wait_us, 0.0);
    assert_eq!(report.mean_queue_wait_us, 0.0);
    assert_eq!(report.latency.p99_us.to_bits(), direct.latency_us.to_bits());
    assert_eq!(report.latency.max_us.to_bits(), direct.latency_us.to_bits());
    assert_eq!(report.stream_utilization.len(), 1);
    assert_eq!(report.stream_utilization[0].batches, 1);
}

#[test]
fn multi_stream_serving_is_deterministic_and_engine_mode_invariant() {
    let streams = StreamConfig::new(2, StreamPartition::Interleaved);
    let workload = Workload::stage(HeterogeneousMix::paper_mix(MixKind::Mix2, 0.02));
    let scenario = ServingScenario::new(
        TrafficModel::bursty(40_000.0, 24),
        BatchingPolicy::fixed_size(64),
    )
    .with_requests(320)
    .with_seed(11);

    let event = scenario.simulate(&exp().with_streams(streams), &workload, &Scheme::optmt());
    let repeat = scenario.simulate(&exp().with_streams(streams), &workload, &Scheme::optmt());
    let reference = scenario.simulate(
        &exp()
            .with_streams(streams)
            .with_engine_mode(EngineMode::CycleAccurate),
        &workload,
        &Scheme::optmt(),
    );
    assert_eq!(event, repeat, "multi-stream serving must be deterministic");
    assert_eq!(
        event, reference,
        "the engine mode must not change multi-stream serving reports"
    );

    // Per-stream accounting adds up and both streams participate under
    // bursty load.
    assert_eq!(event.streams, 2);
    assert_eq!(event.stream_utilization.len(), 2);
    assert_eq!(
        event
            .stream_utilization
            .iter()
            .map(|s| s.batches)
            .sum::<u32>(),
        event.batches
    );
    for stream in &event.stream_utilization {
        assert!(stream.batches > 0, "stream {} starved", stream.stream);
        assert!(stream.busy_us <= event.makespan_us * (1.0 + 1e-12));
    }
}
