//! Campaign-level guarantees: the same grid with the same seed must produce
//! identical `RunReport`s regardless of thread count, reports must survive a
//! JSON round trip bit-for-bit, and parallel execution must beat serial
//! execution on wall-clock time for a real grid (the latter is `#[ignore]`d
//! in normal runs because it executes a Default-scale grid).

use dlrm::WorkloadScale;
use dlrm_datasets::{AccessPattern, HeterogeneousMix, MixKind};
use gpu_sim::GpuConfig;
use perf_envelope::{Campaign, CampaignRun, Experiment, RunReport, Scheme, Workload};

/// A grid touching all three workload kinds and both dataset shapes.
fn mixed_grid(seed: u64) -> Campaign {
    let experiment = Experiment::new(GpuConfig::test_small(), WorkloadScale::Test).with_seed(seed);
    Campaign::new(experiment)
        .workloads([
            Workload::kernel(AccessPattern::MedHot),
            Workload::stage(AccessPattern::Random),
            Workload::stage(HeterogeneousMix::paper_mix(MixKind::Mix2, 0.02)),
            Workload::end_to_end(AccessPattern::HighHot),
        ])
        .schemes([Scheme::base(), Scheme::optmt(), Scheme::combined()])
}

#[test]
fn reports_are_identical_for_any_thread_count() {
    let baseline = mixed_grid(7).threads(1).run();
    for threads in [2, 4, 7] {
        let run = mixed_grid(7).threads(threads).run();
        assert_eq!(
            run, baseline,
            "a campaign with {threads} worker threads diverged from the serial run"
        );
    }
}

#[test]
fn seeds_flow_into_every_cell_and_change_results() {
    let a = mixed_grid(7).threads(4).run();
    let b = mixed_grid(8).threads(4).run();
    assert!(a.reports().iter().all(|r| r.seed == 7));
    assert!(b.reports().iter().all(|r| r.seed == 8));
    assert_ne!(
        a.reports()[0].stats,
        b.reports()[0].stats,
        "seed must influence the traces"
    );
}

#[test]
fn every_report_round_trips_through_json() {
    let run = mixed_grid(7).threads(2).run();
    for report in run.reports() {
        let text = report.to_json();
        let back = RunReport::from_json(&text).expect("report JSON parses back");
        assert_eq!(&back, report, "JSON round trip must be lossless");
    }
    // The whole campaign serializes as an array and reloads.
    let reloaded = CampaignRun::from_json(&run.to_json()).expect("campaign JSON parses back");
    assert_eq!(reloaded, run.reports());
}

#[test]
fn grid_cells_carry_their_coordinates() {
    let run = mixed_grid(7).run();
    assert_eq!(run.len(), 12);
    assert_eq!(run.get(2, 0, 0, 0).workload, "Mix2");
    assert_eq!(run.get(3, 2, 0, 0).scheme, "RPF+L2P+OptMT");
    assert!(run.get(3, 2, 0, 0).end_to_end.is_some());
    assert!(run.get(0, 0, 0, 0).tables.is_none());
}

/// Runs `grid` serially and in parallel, asserting identical results and a
/// parallel wall-clock win. Returns `false` (skipping the timing assertion)
/// on single-core machines.
fn assert_parallel_beats_serial(grid: &dyn Fn() -> Campaign) -> bool {
    assert!(
        grid().len() >= 12,
        "the acceptance grid must have at least 12 cells"
    );
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if threads < 2 {
        eprintln!("skipping wall-clock comparison: only one core available");
        return false;
    }

    // audit:allow(wall_clock): times the host-side worker pool for a speedup
    let start = std::time::Instant::now();
    let serial = grid().threads(1).run();
    let serial_elapsed = start.elapsed();

    // audit:allow(wall_clock): same host-side timing; never a simulated result
    let start = std::time::Instant::now();
    let parallel = grid().threads(threads).run();
    let parallel_elapsed = start.elapsed();

    assert_eq!(
        serial, parallel,
        "parallel execution must not change results"
    );
    assert!(
        parallel_elapsed < serial_elapsed,
        "parallel ({parallel_elapsed:?} on {threads} threads) should beat serial \
         ({serial_elapsed:?}) on a {}-cell grid",
        serial.len()
    );
    true
}

/// Always-run acceptance check for parallel execution at Test scale: a
/// 24-cell grid of embedding-stage workloads is wall-clock faster in
/// parallel than serially, with identical results — so CI exercises the
/// parallel speedup path on every push, not only when `--ignored` runs.
#[test]
fn campaign_parallel_beats_serial_wall_clock_at_test_scale() {
    let grid = || {
        let experiment = Experiment::new(GpuConfig::test_small(), WorkloadScale::Test);
        Campaign::new(experiment)
            .workloads(AccessPattern::EVALUATED.map(Workload::stage))
            .schemes([Scheme::base(), Scheme::optmt(), Scheme::combined()])
            .seeds([1, 2])
    };
    assert_eq!(grid().len(), 24);
    assert_parallel_beats_serial(&grid);
}

/// Acceptance check for parallel execution at Default scale (the original
/// paper-sized grid). Deliberately kept `#[ignore]`d rather than promoted
/// into the default suite, for two reasons:
///
/// * **Cost.** Default scale takes tens of seconds serially, which would
///   dominate an otherwise sub-minute `cargo test` run.
/// * **The `nproc = 1` caveat.** The wall-clock assertion is only
///   meaningful on a multi-core host; [`assert_parallel_beats_serial`]
///   degrades to a correctness-only check (returning `false`) when
///   `available_parallelism` reports a single core, so promoting this test
///   would buy nothing on constrained runners while still paying the
///   Default-scale simulation cost twice.
///
/// It is still exercised on every push: CI runs it in a dedicated
/// release-mode step on the (multi-core) hosted runners via
/// `cargo test --release -q --test campaign_determinism -- --ignored`.
/// Locally, run it the same way. The always-run Test-scale variant above
/// covers the speedup path in ordinary `cargo test` invocations.
#[test]
#[ignore = "Default-scale wall-clock comparison; run explicitly with --ignored"]
fn campaign_parallel_beats_serial_wall_clock() {
    let grid = || {
        let experiment = Experiment::new(GpuConfig::a100(), WorkloadScale::Default);
        Campaign::new(experiment)
            .workloads(AccessPattern::EVALUATED.map(Workload::stage))
            .schemes([Scheme::base(), Scheme::optmt(), Scheme::combined()])
    };
    assert_parallel_beats_serial(&grid);
}
