//! Cross-crate integration tests: the full pipeline from trace generation
//! through the simulated embedding stage to end-to-end latency, exercising
//! the paper's headline claims at test scale through the unified
//! `Experiment::run(&Workload, &Scheme)` entry point.

use dlrm::WorkloadScale;
use dlrm_datasets::{AccessPattern, HeterogeneousMix, MixKind};
use gpu_sim::GpuConfig;
use perf_envelope::{Experiment, Scheme, Workload};

fn exp() -> Experiment {
    Experiment::new(GpuConfig::test_small(), WorkloadScale::Test)
}

#[test]
fn performance_gap_grows_as_hotness_drops() {
    // Paper Figure 1 / Section III: latency increases monotonically from
    // one_item to random for the base kernel.
    let e = exp();
    let mut last = 0.0;
    for pattern in AccessPattern::ALL {
        let r = e.run(&Workload::stage(pattern), &Scheme::base());
        assert!(
            r.latency_us >= last * 0.95,
            "{pattern} should not be meaningfully faster than hotter patterns ({:.1} vs {last:.1})",
            r.latency_us
        );
        last = r.latency_us.max(last);
    }
}

#[test]
fn combined_scheme_narrows_the_one_item_random_gap() {
    // Paper Section VI-A2: the combined scheme substantially lowers the
    // worst-case gap between the fastest and slowest datasets.
    let e = exp();
    let gap = |scheme: &Scheme| {
        let fast = e.run(&Workload::stage(AccessPattern::OneItem), scheme);
        let slow = e.run(&Workload::stage(AccessPattern::Random), scheme);
        slow.latency_us / fast.latency_us
    };
    let base_gap = gap(&Scheme::base());
    let combined_gap = gap(&Scheme::combined());
    assert!(
        combined_gap < base_gap,
        "combined gap {combined_gap:.2}x should be below the base gap {base_gap:.2}x"
    );
}

#[test]
fn every_headline_scheme_beats_base_on_the_random_dataset() {
    // Paper Figure 12: all four schemes improve over off-the-shelf PyTorch.
    let e = exp();
    let workload = Workload::stage(AccessPattern::Random);
    let base = e.run(&workload, &Scheme::base());
    for scheme in Scheme::figure12_schemes() {
        let r = e.run(&workload, &scheme);
        assert!(
            r.speedup_over(&base) > 1.0,
            "{} should beat base on random, got {:.3}x",
            scheme.paper_label(),
            r.speedup_over(&base)
        );
    }
}

#[test]
fn end_to_end_speedup_is_bounded_by_embedding_speedup() {
    // Amdahl: the non-embedding stages are untouched, so end-to-end gains
    // can never exceed embedding-only gains (paper Figures 12 vs 13).
    let e = exp();
    for pattern in [AccessPattern::MedHot, AccessPattern::Random] {
        let workload = Workload::end_to_end(pattern);
        let base = e.run(&workload, &Scheme::base());
        let opt = e.run(&workload, &Scheme::combined());
        let emb_speedup = opt.embedding_speedup_over(&base);
        let e2e_speedup = opt.speedup_over(&base);
        assert!(
            e2e_speedup <= emb_speedup + 1e-9,
            "end-to-end speedup {e2e_speedup:.3} exceeded embedding speedup {emb_speedup:.3}"
        );
    }
}

#[test]
fn optimizations_reduce_the_embedding_share_of_latency() {
    // Paper Figure 14: with the embedding stage running faster, its share of
    // the end-to-end latency drops.
    let e = exp();
    let workload = Workload::end_to_end(AccessPattern::Random);
    let base = e.run(&workload, &Scheme::base());
    let opt = e.run(&workload, &Scheme::combined());
    let base_share = base.batch_latency().unwrap().embedding_share_pct();
    let opt_share = opt.batch_latency().unwrap().embedding_share_pct();
    assert!(
        opt_share < base_share,
        "embedding share should drop ({base_share:.1}% -> {opt_share:.1}%)"
    );
}

#[test]
fn heterogeneous_mixes_behave_like_their_composition() {
    // Paper Figure 17: a mix dominated by cold tables (Mix3) is slower than
    // one dominated by hot tables (Mix1), and optimization still helps.
    let e = exp();
    let mix1 = HeterogeneousMix::paper_mix(MixKind::Mix1, 0.02);
    let mix3 = HeterogeneousMix::paper_mix(MixKind::Mix3, 0.02);
    let base1 = e.run(&Workload::stage(mix1), &Scheme::base());
    let base3 = e.run(&Workload::stage(mix3.clone()), &Scheme::base());
    let per_table = |r: &perf_envelope::RunReport| r.tables.unwrap().per_table_us;
    assert!(
        per_table(&base3) > per_table(&base1),
        "cold-heavy mix should be slower per table ({:.1} vs {:.1} us)",
        per_table(&base3),
        per_table(&base1)
    );
    let opt3 = e.run(&Workload::stage(mix3), &Scheme::combined());
    assert!(opt3.speedup_over(&base3) > 1.0);
}

#[test]
fn h100_preset_runs_the_same_pipeline_faster() {
    // Paper Section VI-B4: the H100 NVL lifts base performance.
    let workload = Workload::stage(AccessPattern::LowHot);
    let a100 = Experiment::new(GpuConfig::a100(), WorkloadScale::Test);
    let h100 = Experiment::new(GpuConfig::h100_nvl(), WorkloadScale::Test);
    let a = a100.run(&workload, &Scheme::base());
    let h = h100.run(&workload, &Scheme::base());
    assert!(
        h.latency_us < a.latency_us,
        "H100 ({:.1} us) should beat A100 ({:.1} us) at the same workload",
        h.latency_us,
        a.latency_us
    );
    assert!(a.device.contains("A100"));
    assert!(h.device.contains("H100"));
}

#[test]
fn kernel_statistics_are_internally_consistent() {
    let r = exp().run(&Workload::kernel(AccessPattern::MedHot), &Scheme::base());
    let stats = &r.stats;
    assert!(stats.counters.load_insts <= stats.counters.insts_issued);
    assert!(stats.l1_hits <= stats.l1_accesses);
    assert!(stats.l2_hits <= stats.l2_accesses);
    assert!(stats.issued_per_scheduler_per_cycle() <= 1.0);
    assert!(stats.kernel_time_us() > 0.0);
    assert!(stats.hbm_read_bw_utilization_pct() <= 100.0);
}
