//! Cross-crate integration tests: the full pipeline from trace generation
//! through the simulated embedding stage to end-to-end latency, exercising
//! the paper's headline claims at test scale.

use dlrm::WorkloadScale;
use dlrm_datasets::{AccessPattern, HeterogeneousMix, MixKind};
use gpu_sim::GpuConfig;
use perf_envelope::{ExperimentContext, Scheme};

fn ctx() -> ExperimentContext {
    ExperimentContext::new(GpuConfig::test_small(), WorkloadScale::Test)
}

#[test]
fn performance_gap_grows_as_hotness_drops() {
    // Paper Figure 1 / Section III: latency increases monotonically from
    // one_item to random for the base kernel.
    let c = ctx();
    let mut last = 0.0;
    for pattern in AccessPattern::ALL {
        let r = c.run_embedding_stage(pattern, &Scheme::base());
        assert!(
            r.latency_us >= last * 0.95,
            "{pattern} should not be meaningfully faster than hotter patterns ({:.1} vs {last:.1})",
            r.latency_us
        );
        last = r.latency_us.max(last);
    }
}

#[test]
fn combined_scheme_narrows_the_one_item_random_gap() {
    // Paper Section VI-A2: the combined scheme substantially lowers the
    // worst-case gap between the fastest and slowest datasets.
    let c = ctx();
    let gap = |scheme: &Scheme| {
        let fast = c.run_embedding_stage(AccessPattern::OneItem, scheme);
        let slow = c.run_embedding_stage(AccessPattern::Random, scheme);
        slow.latency_us / fast.latency_us
    };
    let base_gap = gap(&Scheme::base());
    let combined_gap = gap(&Scheme::combined());
    assert!(
        combined_gap < base_gap,
        "combined gap {combined_gap:.2}x should be below the base gap {base_gap:.2}x"
    );
}

#[test]
fn every_headline_scheme_beats_base_on_the_random_dataset() {
    // Paper Figure 12: all four schemes improve over off-the-shelf PyTorch.
    let c = ctx();
    let base = c.run_embedding_stage(AccessPattern::Random, &Scheme::base());
    for scheme in Scheme::figure12_schemes() {
        let r = c.run_embedding_stage(AccessPattern::Random, &scheme);
        assert!(
            r.speedup_over(&base) > 1.0,
            "{} should beat base on random, got {:.3}x",
            scheme.paper_label(),
            r.speedup_over(&base)
        );
    }
}

#[test]
fn end_to_end_speedup_is_bounded_by_embedding_speedup() {
    // Amdahl: the non-embedding stages are untouched, so end-to-end gains
    // can never exceed embedding-only gains (paper Figures 12 vs 13).
    let c = ctx();
    for pattern in [AccessPattern::MedHot, AccessPattern::Random] {
        let base = c.run_end_to_end(pattern, &Scheme::base());
        let opt = c.run_end_to_end(pattern, &Scheme::combined());
        let emb_speedup = base.embedding.latency_us / opt.embedding.latency_us;
        let e2e_speedup = opt.latency.speedup_over(&base.latency);
        assert!(
            e2e_speedup <= emb_speedup + 1e-9,
            "end-to-end speedup {e2e_speedup:.3} exceeded embedding speedup {emb_speedup:.3}"
        );
    }
}

#[test]
fn optimizations_reduce_the_embedding_share_of_latency() {
    // Paper Figure 14: with the embedding stage running faster, its share of
    // the end-to-end latency drops.
    let c = ctx();
    let base = c.run_end_to_end(AccessPattern::Random, &Scheme::base());
    let opt = c.run_end_to_end(AccessPattern::Random, &Scheme::combined());
    assert!(
        opt.latency.embedding_share_pct() < base.latency.embedding_share_pct(),
        "embedding share should drop ({:.1}% -> {:.1}%)",
        base.latency.embedding_share_pct(),
        opt.latency.embedding_share_pct()
    );
}

#[test]
fn heterogeneous_mixes_behave_like_their_composition() {
    // Paper Figure 17: a mix dominated by cold tables (Mix3) is slower than
    // one dominated by hot tables (Mix1), and optimization still helps.
    let c = ctx();
    let mix1 = HeterogeneousMix::paper_mix(MixKind::Mix1, 0.02);
    let mix3 = HeterogeneousMix::paper_mix(MixKind::Mix3, 0.02);
    let base1 = c.run_embedding_stage_mix(&mix1, &Scheme::base());
    let base3 = c.run_embedding_stage_mix(&mix3, &Scheme::base());
    assert!(
        base3.per_table_us > base1.per_table_us,
        "cold-heavy mix should be slower per table ({:.1} vs {:.1} us)",
        base3.per_table_us,
        base1.per_table_us
    );
    let opt3 = c.run_embedding_stage_mix(&mix3, &Scheme::combined());
    assert!(opt3.speedup_over(&base3) > 1.0);
}

#[test]
fn h100_preset_runs_the_same_pipeline_faster() {
    // Paper Section VI-B4: the H100 NVL lifts base performance.
    let a100 = ExperimentContext::new(GpuConfig::a100(), WorkloadScale::Test);
    let h100 = ExperimentContext::new(GpuConfig::h100_nvl(), WorkloadScale::Test);
    let a = a100.run_embedding_stage(AccessPattern::LowHot, &Scheme::base());
    let h = h100.run_embedding_stage(AccessPattern::LowHot, &Scheme::base());
    assert!(
        h.latency_us < a.latency_us,
        "H100 ({:.1} us) should beat A100 ({:.1} us) at the same workload",
        h.latency_us,
        a.latency_us
    );
}

#[test]
fn kernel_statistics_are_internally_consistent() {
    let c = ctx();
    let stats = c.run_embedding_kernel(AccessPattern::MedHot, &Scheme::base());
    assert!(stats.counters.load_insts <= stats.counters.insts_issued);
    assert!(stats.l1_hits <= stats.l1_accesses);
    assert!(stats.l2_hits <= stats.l2_accesses);
    assert!(stats.issued_per_scheduler_per_cycle() <= 1.0);
    assert!(stats.kernel_time_us() > 0.0);
    assert!(stats.hbm_read_bw_utilization_pct() <= 100.0);
}
