//! Sharding invariants and the single-device equivalence safety net.
//!
//! The topology refactor's contract: a sharded workload on a **single-device
//! cluster** with a trivial plan must reproduce today's unsharded
//! [`RunReport`] **bit-exactly** — same latency, same table breakdown, same
//! NCU counters — for every strategy, dataset shape, scheme and engine
//! mode. On multi-device clusters, plans must be deterministic and cover
//! every table exactly once, the reported critical path must equal the
//! per-device latency maximum, degenerate (empty) shards must be rejected,
//! and per-shard cells must hit the [`CampaignCache`] individually.

use dlrm::WorkloadScale;
use dlrm_datasets::{AccessPattern, HeterogeneousMix, MixKind};
use gpu_sim::{EngineMode, GpuConfig};
use perf_envelope::{
    Campaign, CampaignCache, Cluster, Experiment, InterconnectConfig, RunReport, Scheme,
    ShardingSpec, Workload,
};

fn exp() -> Experiment {
    Experiment::new(GpuConfig::test_small(), WorkloadScale::Test)
}

fn cluster(n: usize) -> Cluster {
    Cluster::homogeneous(GpuConfig::test_small(), n, InterconnectConfig::nvlink3())
}

/// The sharded report minus the topology breakdown, for field-by-field
/// comparison with an unsharded report (which never carries one).
fn strip_devices(mut report: RunReport) -> RunReport {
    report.devices = None;
    report
}

#[test]
fn single_device_cluster_is_bit_exact_with_unsharded() {
    let workloads = [
        Workload::stage(AccessPattern::HighHot),
        Workload::stage(AccessPattern::Random),
        Workload::stage(HeterogeneousMix::paper_mix(MixKind::Mix2, 0.02)),
        Workload::end_to_end(AccessPattern::MedHot),
        Workload::end_to_end(HeterogeneousMix::paper_mix(MixKind::Mix1, 0.02)),
    ];
    for workload in &workloads {
        for scheme in [Scheme::base(), Scheme::combined()] {
            let unsharded = exp().run(workload, &scheme);
            for spec in ShardingSpec::ALL {
                let sharded = exp()
                    .with_cluster(Cluster::single(GpuConfig::test_small()))
                    .run(&workload.clone().with_sharding(spec), &scheme);
                let devices = sharded
                    .devices
                    .clone()
                    .expect("sharded runs report devices");
                assert_eq!(devices.num_devices(), 1);
                assert_eq!(
                    devices.all_to_all_us, 0.0,
                    "a single device transfers nothing"
                );
                assert_eq!(devices.critical_path_us, devices.per_device[0].embedding_us);
                assert_eq!(
                    strip_devices(sharded),
                    unsharded,
                    "1-device {spec} run diverged from the unsharded path on {workload}"
                );
            }
        }
    }
}

#[test]
fn single_device_equivalence_holds_in_the_cycle_accurate_engine_too() {
    let workload = Workload::stage(HeterogeneousMix::paper_mix(MixKind::Mix3, 0.02));
    let unsharded = exp()
        .with_engine_mode(EngineMode::CycleAccurate)
        .run(&workload, &Scheme::optmt());
    let sharded = exp().with_engine_mode(EngineMode::CycleAccurate).run(
        &workload.clone().with_sharding(ShardingSpec::RoundRobin),
        &Scheme::optmt(),
    );
    assert_eq!(strip_devices(sharded), unsharded);
}

#[test]
fn plans_are_deterministic_and_cover_every_table_exactly_once() {
    let mixes = [
        HeterogeneousMix::paper_mix(MixKind::Mix1, 0.1),
        HeterogeneousMix::paper_mix(MixKind::Mix2, 1.0),
        HeterogeneousMix::homogeneous(AccessPattern::MedHot, 16),
    ];
    for mix in &mixes {
        for spec in ShardingSpec::ALL {
            for n in [1usize, 2, 4, 8] {
                let plan = spec.plan(mix, n);
                assert_eq!(plan, spec.plan(mix, n), "{spec} plan must be deterministic");
                assert_eq!(plan.num_devices(), n);
                let mut seen: Vec<u32> = plan.assignments().iter().flatten().copied().collect();
                seen.sort_unstable();
                assert_eq!(
                    seen,
                    (0..mix.total_tables()).collect::<Vec<_>>(),
                    "{spec} over {n} devices must cover every table of {} exactly once",
                    mix.name()
                );
                for d in 0..n {
                    assert!(!plan.device_tables(d).is_empty(), "no shard may be empty");
                }
            }
        }
    }
}

#[test]
fn reported_critical_path_is_the_per_device_latency_max() {
    for n in [2usize, 4] {
        for spec in ShardingSpec::ALL {
            let report = exp().with_cluster(cluster(n)).run(
                &Workload::stage(HeterogeneousMix::paper_mix(MixKind::Mix2, 0.1))
                    .with_sharding(spec),
                &Scheme::base(),
            );
            let devices = report.devices.expect("sharded runs report devices");
            let max = devices
                .per_device
                .iter()
                .map(|d| d.embedding_us)
                .fold(0.0f64, f64::max);
            assert_eq!(
                devices.critical_path_us, max,
                "{spec}/{n}: critical path must be the per-device max"
            );
            assert_eq!(
                report.latency_us,
                devices.critical_path_us + devices.all_to_all_us,
                "{spec}/{n}: stage latency must be critical path + all-to-all"
            );
        }
    }
}

#[test]
#[should_panic(expected = "empty shards")]
fn more_devices_than_tables_is_rejected() {
    // The Test-scale model has 2 tables; 4 devices would leave empty shards.
    let _ = exp().with_cluster(cluster(4)).run(
        &Workload::stage(AccessPattern::MedHot).with_sharding(ShardingSpec::RoundRobin),
        &Scheme::base(),
    );
}

#[test]
#[should_panic(expected = "cannot be sharded")]
fn kernel_workloads_cannot_be_sharded() {
    let _ = Workload::kernel(AccessPattern::MedHot).with_sharding(ShardingSpec::RoundRobin);
}

#[test]
#[should_panic(expected = "at least one device")]
fn empty_clusters_are_rejected() {
    let _ = Cluster::new(vec![], InterconnectConfig::nvlink3());
}

#[test]
fn per_shard_cells_hit_the_cache_individually() {
    let cache = CampaignCache::new();
    // One worker so shard cells execute in order and the hit/miss counts
    // below are exact (racing workers may both execute a cold cell).
    let e = exp()
        .with_cluster(cluster(2))
        .with_cache(cache.clone())
        .with_threads(1);
    let workload = Workload::stage(AccessPattern::HighHot);

    let first = e.run(
        &workload.clone().with_sharding(ShardingSpec::RoundRobin),
        &Scheme::base(),
    );
    // One top-level cell plus ONE shard cell: the two shards have identical
    // compositions on identical devices, so they dedup before execution.
    assert_eq!((cache.misses(), cache.hits()), (2, 0));

    // Re-running the identical cell is served at the top level.
    let again = e.run(
        &workload.clone().with_sharding(ShardingSpec::RoundRobin),
        &Scheme::base(),
    );
    assert_eq!(again, first);
    assert_eq!((cache.misses(), cache.hits()), (2, 1));

    // A different strategy that happens to produce the same plan (on a
    // homogeneous dataset every strategy balances identically) misses at
    // the top level but serves its shard cell from cache.
    let balanced = e.run(
        &workload.clone().with_sharding(ShardingSpec::SizeBalanced),
        &Scheme::base(),
    );
    assert_eq!((cache.misses(), cache.hits()), (3, 2));
    assert_eq!(balanced.latency_us, first.latency_us);
    assert_eq!(balanced.stats, first.stats);
}

#[test]
fn sharded_campaigns_are_thread_count_invariant() {
    let grid = |threads: usize| {
        Campaign::new(exp())
            .on_cluster(cluster(2))
            .workloads(ShardingSpec::ALL.map(|spec| {
                Workload::stage(HeterogeneousMix::paper_mix(MixKind::Mix2, 0.02))
                    .with_sharding(spec)
            }))
            .schemes([Scheme::base(), Scheme::optmt()])
            .threads(threads)
            .run()
    };
    let serial = grid(1);
    let parallel = grid(4);
    assert_eq!(serial, parallel);
    assert_eq!(serial.len(), 6);
}

#[test]
fn sharded_reports_round_trip_through_json() {
    let report = exp().with_cluster(cluster(2)).run(
        &Workload::end_to_end(HeterogeneousMix::paper_mix(MixKind::Mix2, 0.02))
            .with_sharding(ShardingSpec::HotCold),
        &Scheme::combined(),
    );
    let back = RunReport::from_json(&report.to_json()).unwrap();
    assert_eq!(back, report);
    assert_eq!(back.devices.unwrap().num_devices(), 2);
}

#[test]
fn persisted_cache_serves_sharded_cells_across_processes() {
    let cache = CampaignCache::new();
    let e = exp().with_cluster(cluster(2)).with_cache(cache.clone());
    let workload = Workload::stage(HeterogeneousMix::paper_mix(MixKind::Mix2, 0.02))
        .with_sharding(ShardingSpec::RoundRobin);
    let original = e.run(&workload, &Scheme::base());

    let path = std::env::temp_dir().join(format!(
        "perf-envelope-sharding-cache-{}.json",
        std::process::id()
    ));
    cache.save_to(&path).unwrap();
    let reloaded = CampaignCache::load_from(&path).unwrap();
    std::fs::remove_file(&path).ok();

    // A fresh experiment (as a new process would build) over the reloaded
    // cache serves the sharded cell without any re-simulation.
    let e2 = exp().with_cluster(cluster(2)).with_cache(reloaded.clone());
    let served = e2.run(&workload, &Scheme::base());
    assert_eq!(served, original);
    assert_eq!((reloaded.hits(), reloaded.misses()), (1, 0));
}
