//! Side-by-side equivalence of the two simulator engines.
//!
//! The event-driven engine ([`EngineMode::EventDriven`]) must be
//! **observably bit-exact** with the cycle-accurate reference loop
//! ([`EngineMode::CycleAccurate`]): identical elapsed cycles, issue and
//! stall counters, cache counters and DRAM traffic on every kernel variant,
//! access pattern and occupancy shape. This suite runs both engines over a
//! deterministic grid of those axes and fails with the first differing
//! field if they ever diverge.

use dlrm::WorkloadScale;
use dlrm_datasets::{AccessPattern, TraceConfig};
use embedding_kernels::{
    BufferStation, EmbeddingConfig, EmbeddingKernelSpec, EmbeddingWorkload, PinPlan, PrefetchConfig,
};
use gpu_sim::mem::MemorySystem;
use gpu_sim::programs::{PointerChaseKernel, StreamKernel};
use gpu_sim::{
    EngineMode, GpuConfig, KernelLaunch, KernelProgram, KernelStats, Simulator, StreamPartition,
};
use perf_envelope::{Experiment, Scheme, Workload};

/// Panics with the first differing statistics field if `a` and `b` are not
/// bit-identical.
fn assert_equivalent(a: &KernelStats, b: &KernelStats, label: &str) {
    if let Some(diff) = a.first_difference(b) {
        panic!("engines diverged on {label}: {diff}");
    }
    assert_eq!(a, b, "engines diverged on {label} outside compared fields");
}

/// Runs `kernel` under both engines on a cold memory system each.
fn run_both(
    cfg: &GpuConfig,
    launch: &KernelLaunch,
    kernel: &dyn KernelProgram,
) -> (KernelStats, KernelStats) {
    let reference = Simulator::new(cfg.clone()).with_mode(EngineMode::CycleAccurate);
    let event = Simulator::new(cfg.clone()).with_mode(EngineMode::EventDriven);
    (reference.run(launch, kernel), event.run(launch, kernel))
}

#[test]
fn synthetic_kernels_match_across_occupancy_shapes() {
    // Register pressure, grid size and SM count together cover the
    // occupancy limiters: register-bound, grid-bound and multi-wave drain.
    for num_sms in [1usize, 4] {
        let cfg = GpuConfig::test_small().with_num_sms(num_sms);
        for regs in [32u32, 96, 160] {
            for blocks in [3u32, 8, 40] {
                let launch = KernelLaunch::new("synthetic", blocks, 256).with_regs_per_thread(regs);
                for (name, kernel) in [
                    ("stream", &StreamKernel::new(24) as &dyn KernelProgram),
                    ("chase-cold", &PointerChaseKernel::new(16, 1 << 26)),
                    ("chase-hot", &PointerChaseKernel::new(16, 8 * 1024)),
                ] {
                    let label = format!("{name} sms={num_sms} regs={regs} blocks={blocks}");
                    let (a, b) = run_both(&cfg, &launch, kernel);
                    assert_equivalent(&a, &b, &label);
                }
            }
        }
    }
}

/// Every embedding-bag kernel build variant the schemes can produce.
fn kernel_variants() -> Vec<(String, EmbeddingKernelSpec)> {
    let mut variants = vec![
        ("base".to_string(), EmbeddingKernelSpec::base()),
        (
            "maxrreg32".to_string(),
            EmbeddingKernelSpec::base().with_max_registers(32),
        ),
        (
            "maxrreg48".to_string(),
            EmbeddingKernelSpec::base().with_max_registers(48),
        ),
    ];
    for station in BufferStation::ALL {
        let spec = EmbeddingKernelSpec::base()
            .with_max_registers(48)
            .with_prefetch(PrefetchConfig::new(station, 4));
        variants.push((format!("{}4+OptMT", station.abbreviation()), spec));
    }
    variants
}

#[test]
fn embedding_kernel_variants_match_on_every_access_pattern() {
    let cfg = GpuConfig::test_small();
    let embedding = EmbeddingConfig::new(TraceConfig::new(20_000, 64, 10), 64);
    for pattern in [
        AccessPattern::OneItem,
        AccessPattern::HighHot,
        AccessPattern::MedHot,
        AccessPattern::LowHot,
        AccessPattern::Random,
    ] {
        let workload = EmbeddingWorkload::generate(embedding, pattern, 0, 0xE0);
        for (name, spec) in kernel_variants() {
            let label = format!("{name}/{}", pattern.paper_name());
            let (a, b) = run_both(&cfg, &spec.launch(&workload), &spec.kernel(&workload));
            assert!(a.counters.insts_issued > 0, "{label} ran nothing");
            assert_equivalent(&a, &b, &label);
        }
    }
}

#[test]
fn l2_pinned_chained_kernels_match() {
    // Two tables run back-to-back against one memory system (persisting
    // lines and the device clock carry across kernels), under L2 pinning.
    let cfg = GpuConfig::test_small();
    let embedding = EmbeddingConfig::new(TraceConfig::new(20_000, 64, 10), 64);
    let spec = EmbeddingKernelSpec::base().with_max_registers(48);
    let carveout = cfg.l2_max_persisting_bytes();

    let run_chained = |mode: EngineMode| -> Vec<KernelStats> {
        let sim = Simulator::new(cfg.clone()).with_mode(mode);
        let mut mem = MemorySystem::new(&cfg);
        let mut clock = 0;
        let mut all = Vec::new();
        for table in 0..3u32 {
            let workload =
                EmbeddingWorkload::generate(embedding, AccessPattern::MedHot, table, 0xE1);
            let plan = PinPlan::for_workload(&workload, carveout);
            plan.apply(&mut mem, &cfg, clock);
            let stats = sim.run_with_memory(
                &spec.launch(&workload),
                &spec.kernel(&workload),
                &mut mem,
                clock,
            );
            clock += stats.elapsed_cycles;
            all.push(stats);
        }
        all
    };

    let reference = run_chained(EngineMode::CycleAccurate);
    let event = run_chained(EngineMode::EventDriven);
    for (i, (a, b)) in reference.iter().zip(event.iter()).enumerate() {
        assert_equivalent(a, b, &format!("pinned table {i}"));
    }
}

#[test]
fn max_resident_warp_occupancy_matches() {
    // Full occupancy: 256-thread blocks at low register pressure reach the
    // 64-warp-per-SM residency cap, so every sub-partition slot array runs
    // at its sizing bound while multiple waves drain through.
    let cfg = GpuConfig::test_small();
    let blocks = (cfg.num_sms * 8 * 2) as u32; // two full waves
    let launch = KernelLaunch::new("max-occupancy", blocks, 256).with_regs_per_thread(32);
    for (name, kernel) in [
        ("stream", &StreamKernel::new(24) as &dyn KernelProgram),
        ("chase-hot", &PointerChaseKernel::new(16, 8 * 1024)),
    ] {
        let (a, b) = run_both(&cfg, &launch, kernel);
        assert_eq!(
            a.theoretical_warps_per_sm, 64,
            "launch shape must saturate residency"
        );
        assert!((a.theoretical_occupancy_pct - 100.0).abs() < 1e-9);
        assert_equivalent(&a, &b, &format!("max-occupancy {name}"));
    }
}

#[test]
fn degenerate_one_sm_and_one_smsp_configs_match() {
    // Collapse each hardware axis to one: a single SM (all blocks funnel
    // through one dispatcher) and a single sub-partition per SM (the
    // scheduler's round-robin and the engine's flat smsp indexing both
    // degenerate), plus both at once.
    let embedding = EmbeddingConfig::new(TraceConfig::new(20_000, 64, 10), 64);
    let workload = EmbeddingWorkload::generate(embedding, AccessPattern::MedHot, 0, 0xE3);
    let spec = EmbeddingKernelSpec::base().with_max_registers(48);
    for (sms, smsps) in [(1usize, 4usize), (4, 1), (1, 1)] {
        let cfg = GpuConfig::test_small()
            .with_num_sms(sms)
            .with_smsps_per_sm(smsps);
        let label = format!("sms={sms} smsps={smsps}");
        let (a, b) = run_both(&cfg, &spec.launch(&workload), &spec.kernel(&workload));
        assert!(a.counters.insts_issued > 0, "{label} ran nothing");
        assert_equivalent(&a, &b, &label);

        let launch = KernelLaunch::new("synthetic", 8, 256).with_regs_per_thread(96);
        let kernel = PointerChaseKernel::new(16, 1 << 26);
        let (a, b) = run_both(&cfg, &launch, &kernel);
        assert_equivalent(&a, &b, &format!("chase {label}"));
    }
}

#[test]
fn l2_pinned_chained_kernels_match_under_two_interleaved_streams() {
    // The chained-pinning scenario again, but each round launches K=2
    // concurrent streams interleaved over every SM: persisting lines and
    // the device clock carry across rounds while co-resident streams share
    // the pinned L2.
    let cfg = GpuConfig::test_small();
    let embedding = EmbeddingConfig::new(TraceConfig::new(20_000, 64, 10), 64);
    let spec = EmbeddingKernelSpec::base().with_max_registers(48);
    let carveout = cfg.l2_max_persisting_bytes();

    let run_chained = |mode: EngineMode| -> Vec<KernelStats> {
        let sim = Simulator::new(cfg.clone()).with_mode(mode);
        let mut mem = MemorySystem::new(&cfg);
        let mut clock = 0;
        let mut all = Vec::new();
        for round in 0..2u32 {
            let wa = EmbeddingWorkload::generate(embedding, AccessPattern::MedHot, round, 0xE4);
            let wb =
                EmbeddingWorkload::generate(embedding, AccessPattern::HighHot, round + 2, 0xE4);
            PinPlan::for_workload(&wa, carveout).apply(&mut mem, &cfg, clock);
            let stats = sim.run_concurrent(
                &[
                    (&spec.launch(&wa), &spec.kernel(&wa) as &dyn KernelProgram),
                    (&spec.launch(&wb), &spec.kernel(&wb)),
                ],
                StreamPartition::Interleaved,
                &mut mem,
                clock,
            );
            clock += stats.iter().map(|s| s.elapsed_cycles).max().unwrap();
            all.extend(stats);
        }
        all
    };

    let reference = run_chained(EngineMode::CycleAccurate);
    let event = run_chained(EngineMode::EventDriven);
    assert_eq!(reference.len(), event.len());
    for (i, (a, b)) in reference.iter().zip(event.iter()).enumerate() {
        assert_equivalent(a, b, &format!("pinned K=2 stream {i}"));
    }
}

#[test]
fn sharded_selection_is_thread_count_invariant() {
    // The sharded SM phase must produce byte-identical statistics at any
    // worker count; 1 exercises the fused serial path, 2 and 8 the sharded
    // path with fewer and more workers than sub-partition batches.
    let embedding = EmbeddingConfig::new(TraceConfig::new(20_000, 64, 10), 64);
    let workload = EmbeddingWorkload::generate(embedding, AccessPattern::Random, 0, 0xE5);
    let spec = EmbeddingKernelSpec::base().with_max_registers(48);
    let cfg = GpuConfig::test_small();
    let launch = spec.launch(&workload);
    let kernel = spec.kernel(&workload);

    let reference = Simulator::new(cfg.clone())
        .with_mode(EngineMode::CycleAccurate)
        .run(&launch, &kernel);
    for workers in [1usize, 2, 8] {
        let event = Simulator::new(cfg.clone())
            .with_mode(EngineMode::EventDriven)
            .with_sm_workers(workers)
            .run(&launch, &kernel);
        assert_equivalent(&reference, &event, &format!("workers={workers}"));
    }
}

#[test]
fn experiment_reports_match_for_every_workload_kind() {
    // Full-stack check through the perf-envelope runner: stage runs chain
    // kernels and merge statistics, end-to-end runs add the analytic
    // pipeline; both must be unaffected by the engine mode.
    let base = Experiment::new(GpuConfig::test_small(), WorkloadScale::Test).with_seed(0xE2);
    let reference = base.clone().with_engine_mode(EngineMode::CycleAccurate);
    assert_eq!(base.engine_mode(), EngineMode::EventDriven);
    for workload in [
        Workload::kernel(AccessPattern::Random),
        Workload::stage(AccessPattern::MedHot),
        Workload::end_to_end(AccessPattern::HighHot),
    ] {
        for scheme in [Scheme::base(), Scheme::optmt(), Scheme::combined()] {
            let a = reference.run(&workload, &scheme);
            let b = base.run(&workload, &scheme);
            if let Some(diff) = a.stats.first_difference(&b.stats) {
                panic!("engines diverged on {workload}/{scheme}: {diff}");
            }
            assert_eq!(a, b, "reports diverged on {workload}/{scheme}");
        }
    }
}
