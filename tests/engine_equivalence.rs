//! Side-by-side equivalence of the two simulator engines.
//!
//! The event-driven engine ([`EngineMode::EventDriven`]) must be
//! **observably bit-exact** with the cycle-accurate reference loop
//! ([`EngineMode::CycleAccurate`]): identical elapsed cycles, issue and
//! stall counters, cache counters and DRAM traffic on every kernel variant,
//! access pattern and occupancy shape. This suite runs both engines over a
//! deterministic grid of those axes and fails with the first differing
//! field if they ever diverge.

use dlrm::WorkloadScale;
use dlrm_datasets::{AccessPattern, TraceConfig};
use embedding_kernels::{
    BufferStation, EmbeddingConfig, EmbeddingKernelSpec, EmbeddingWorkload, PinPlan, PrefetchConfig,
};
use gpu_sim::mem::MemorySystem;
use gpu_sim::programs::{PointerChaseKernel, StreamKernel};
use gpu_sim::{EngineMode, GpuConfig, KernelLaunch, KernelProgram, KernelStats, Simulator};
use perf_envelope::{Experiment, Scheme, Workload};

/// Panics with the first differing statistics field if `a` and `b` are not
/// bit-identical.
fn assert_equivalent(a: &KernelStats, b: &KernelStats, label: &str) {
    if let Some(diff) = a.first_difference(b) {
        panic!("engines diverged on {label}: {diff}");
    }
    assert_eq!(a, b, "engines diverged on {label} outside compared fields");
}

/// Runs `kernel` under both engines on a cold memory system each.
fn run_both(
    cfg: &GpuConfig,
    launch: &KernelLaunch,
    kernel: &dyn KernelProgram,
) -> (KernelStats, KernelStats) {
    let reference = Simulator::new(cfg.clone()).with_mode(EngineMode::CycleAccurate);
    let event = Simulator::new(cfg.clone()).with_mode(EngineMode::EventDriven);
    (reference.run(launch, kernel), event.run(launch, kernel))
}

#[test]
fn synthetic_kernels_match_across_occupancy_shapes() {
    // Register pressure, grid size and SM count together cover the
    // occupancy limiters: register-bound, grid-bound and multi-wave drain.
    for num_sms in [1usize, 4] {
        let cfg = GpuConfig::test_small().with_num_sms(num_sms);
        for regs in [32u32, 96, 160] {
            for blocks in [3u32, 8, 40] {
                let launch = KernelLaunch::new("synthetic", blocks, 256).with_regs_per_thread(regs);
                for (name, kernel) in [
                    ("stream", &StreamKernel::new(24) as &dyn KernelProgram),
                    ("chase-cold", &PointerChaseKernel::new(16, 1 << 26)),
                    ("chase-hot", &PointerChaseKernel::new(16, 8 * 1024)),
                ] {
                    let label = format!("{name} sms={num_sms} regs={regs} blocks={blocks}");
                    let (a, b) = run_both(&cfg, &launch, kernel);
                    assert_equivalent(&a, &b, &label);
                }
            }
        }
    }
}

/// Every embedding-bag kernel build variant the schemes can produce.
fn kernel_variants() -> Vec<(String, EmbeddingKernelSpec)> {
    let mut variants = vec![
        ("base".to_string(), EmbeddingKernelSpec::base()),
        (
            "maxrreg32".to_string(),
            EmbeddingKernelSpec::base().with_max_registers(32),
        ),
        (
            "maxrreg48".to_string(),
            EmbeddingKernelSpec::base().with_max_registers(48),
        ),
    ];
    for station in BufferStation::ALL {
        let spec = EmbeddingKernelSpec::base()
            .with_max_registers(48)
            .with_prefetch(PrefetchConfig::new(station, 4));
        variants.push((format!("{}4+OptMT", station.abbreviation()), spec));
    }
    variants
}

#[test]
fn embedding_kernel_variants_match_on_every_access_pattern() {
    let cfg = GpuConfig::test_small();
    let embedding = EmbeddingConfig::new(TraceConfig::new(20_000, 64, 10), 64);
    for pattern in [
        AccessPattern::OneItem,
        AccessPattern::HighHot,
        AccessPattern::MedHot,
        AccessPattern::LowHot,
        AccessPattern::Random,
    ] {
        let workload = EmbeddingWorkload::generate(embedding, pattern, 0, 0xE0);
        for (name, spec) in kernel_variants() {
            let label = format!("{name}/{}", pattern.paper_name());
            let (a, b) = run_both(&cfg, &spec.launch(&workload), &spec.kernel(&workload));
            assert!(a.counters.insts_issued > 0, "{label} ran nothing");
            assert_equivalent(&a, &b, &label);
        }
    }
}

#[test]
fn l2_pinned_chained_kernels_match() {
    // Two tables run back-to-back against one memory system (persisting
    // lines and the device clock carry across kernels), under L2 pinning.
    let cfg = GpuConfig::test_small();
    let embedding = EmbeddingConfig::new(TraceConfig::new(20_000, 64, 10), 64);
    let spec = EmbeddingKernelSpec::base().with_max_registers(48);
    let carveout = cfg.l2_max_persisting_bytes();

    let run_chained = |mode: EngineMode| -> Vec<KernelStats> {
        let sim = Simulator::new(cfg.clone()).with_mode(mode);
        let mut mem = MemorySystem::new(&cfg);
        let mut clock = 0;
        let mut all = Vec::new();
        for table in 0..3u32 {
            let workload =
                EmbeddingWorkload::generate(embedding, AccessPattern::MedHot, table, 0xE1);
            let plan = PinPlan::for_workload(&workload, carveout);
            plan.apply(&mut mem, &cfg, clock);
            let stats = sim.run_with_memory(
                &spec.launch(&workload),
                &spec.kernel(&workload),
                &mut mem,
                clock,
            );
            clock += stats.elapsed_cycles;
            all.push(stats);
        }
        all
    };

    let reference = run_chained(EngineMode::CycleAccurate);
    let event = run_chained(EngineMode::EventDriven);
    for (i, (a, b)) in reference.iter().zip(event.iter()).enumerate() {
        assert_equivalent(a, b, &format!("pinned table {i}"));
    }
}

#[test]
fn experiment_reports_match_for_every_workload_kind() {
    // Full-stack check through the perf-envelope runner: stage runs chain
    // kernels and merge statistics, end-to-end runs add the analytic
    // pipeline; both must be unaffected by the engine mode.
    let base = Experiment::new(GpuConfig::test_small(), WorkloadScale::Test).with_seed(0xE2);
    let reference = base.clone().with_engine_mode(EngineMode::CycleAccurate);
    assert_eq!(base.engine_mode(), EngineMode::EventDriven);
    for workload in [
        Workload::kernel(AccessPattern::Random),
        Workload::stage(AccessPattern::MedHot),
        Workload::end_to_end(AccessPattern::HighHot),
    ] {
        for scheme in [Scheme::base(), Scheme::optmt(), Scheme::combined()] {
            let a = reference.run(&workload, &scheme);
            let b = base.run(&workload, &scheme);
            if let Some(diff) = a.stats.first_difference(&b.stats) {
                panic!("engines diverged on {workload}/{scheme}: {diff}");
            }
            assert_eq!(a, b, "reports diverged on {workload}/{scheme}");
        }
    }
}
