//! Serving-layer invariants and the degenerate-case equivalence safety net.
//!
//! The serving simulator's contract, mirroring the engine- and
//! sharding-equivalence anchors of PR 3/PR 4: a **single-request** arrival
//! trace under a fixed-size policy at the model's configured batch size
//! forms one batch with zero batching and zero queueing delay, so the
//! request's service latency — and therefore every percentile of the
//! [`ServingReport`] — must be **bit-exact** with
//! `Experiment::run(&Workload, &Scheme).latency_us`, on both engine modes,
//! unsharded and on a 1-device cluster. Beyond the anchor: reports must be
//! deterministic and thread-count-invariant, and obey closed-form bounds
//! (zero load ⇒ zero queueing delay; offered load far above capacity ⇒
//! violation rate → 1; percentiles monotone).

use dlrm::WorkloadScale;
use dlrm_datasets::{AccessPattern, HeterogeneousMix, MixKind};
use gpu_sim::{EngineMode, GpuConfig};
use perf_envelope::{
    max_sustainable_qps, select_scheme, BatchingPolicy, CampaignCache, Cluster, Experiment,
    InterconnectConfig, Scheme, ServingReport, ServingScenario, ShardingSpec, TrafficModel,
    Workload,
};

fn exp() -> Experiment {
    Experiment::new(GpuConfig::test_small(), WorkloadScale::Test)
}

fn cluster(n: usize) -> Cluster {
    Cluster::homogeneous(GpuConfig::test_small(), n, InterconnectConfig::nvlink3())
}

/// A single-request scenario whose one batch is priced at the model's
/// configured batch size: the degenerate case that must collapse to a plain
/// `Experiment::run`.
fn degenerate_scenario(batch: u32) -> ServingScenario {
    ServingScenario::new(
        TrafficModel::poisson(100.0),
        BatchingPolicy::fixed_size(batch),
    )
    .with_requests(1)
    .with_seed(7)
}

/// Asserts the degenerate scenario's serving latencies are bit-exact with
/// the direct experiment latency.
fn assert_degenerate_matches(experiment: &Experiment, workload: &Workload, scheme: &Scheme) {
    let direct = experiment.run(workload, scheme);
    let batch = experiment.model().batch_size();
    let serving = degenerate_scenario(batch).simulate(experiment, workload, scheme);
    assert_eq!(serving.requests, 1);
    assert_eq!(serving.batches, 1);
    assert_eq!(
        serving.mean_batch_wait_us, 0.0,
        "a lone request never waits for its batch"
    );
    assert_eq!(
        serving.mean_queue_wait_us, 0.0,
        "an idle stream serves immediately"
    );
    for (name, value) in [
        ("p50", serving.latency.p50_us),
        ("p95", serving.latency.p95_us),
        ("p99", serving.latency.p99_us),
        ("max", serving.latency.max_us),
        ("mean", serving.latency.mean_us),
    ] {
        assert_eq!(
            value.to_bits(),
            direct.latency_us.to_bits(),
            "{name} of the degenerate serving run must be bit-exact with \
             Experiment::run ({value} vs {}) on {workload}",
            direct.latency_us
        );
    }
    assert_eq!(serving.shapes.len(), 1);
    assert_eq!(serving.shapes[0].shape, batch);
    assert_eq!(
        serving.shapes[0].latency_us.to_bits(),
        direct.latency_us.to_bits()
    );
}

#[test]
fn degenerate_run_is_bit_exact_with_experiment_run_on_both_engine_modes() {
    let workloads = [
        Workload::stage(AccessPattern::MedHot),
        Workload::stage(HeterogeneousMix::paper_mix(MixKind::Mix2, 0.02)),
        Workload::end_to_end(AccessPattern::Random),
    ];
    for mode in [EngineMode::EventDriven, EngineMode::CycleAccurate] {
        for workload in &workloads {
            for scheme in [Scheme::base(), Scheme::combined()] {
                assert_degenerate_matches(&exp().with_engine_mode(mode), workload, &scheme);
            }
        }
    }
}

#[test]
fn degenerate_run_is_bit_exact_on_a_single_device_cluster() {
    let single = exp().with_cluster(Cluster::single(GpuConfig::test_small()));
    let workload = Workload::end_to_end(HeterogeneousMix::paper_mix(MixKind::Mix1, 0.02));
    assert_degenerate_matches(&single, &workload, &Scheme::combined());

    // And through the sharded path: a 1-device cluster's trivial plan is
    // bit-exact with the unsharded run (PR 4's anchor), so the serving
    // layer on top of it must reproduce the *unsharded* latency too.
    let sharded = workload.clone().with_sharding(ShardingSpec::RoundRobin);
    let direct_unsharded = exp().run(&workload, &Scheme::combined());
    let serving = degenerate_scenario(single.model().batch_size()).simulate(
        &single,
        &sharded,
        &Scheme::combined(),
    );
    assert_eq!(
        serving.latency.p99_us.to_bits(),
        direct_unsharded.latency_us.to_bits(),
        "serving a sharded workload on one device must match the unsharded run"
    );
    assert_eq!(serving.utilization.len(), 1);
}

#[test]
fn reports_are_deterministic_and_thread_count_invariant() {
    let scenario = ServingScenario::new(
        TrafficModel::bursty(20_000.0, 32),
        BatchingPolicy::adaptive(8, 128),
    )
    .with_requests(400)
    .with_seed(11);
    let workload = Workload::stage(HeterogeneousMix::paper_mix(MixKind::Mix2, 0.02))
        .with_sharding(ShardingSpec::SizeBalanced);
    let scheme = Scheme::optmt();

    let serial = scenario.simulate(
        &exp().with_cluster(cluster(2)).with_threads(1),
        &workload,
        &scheme,
    );
    let parallel = scenario.simulate(
        &exp().with_cluster(cluster(2)).with_threads(4),
        &workload,
        &scheme,
    );
    let repeat = scenario.simulate(
        &exp().with_cluster(cluster(2)).with_threads(1),
        &workload,
        &scheme,
    );
    assert_eq!(
        serial, parallel,
        "the worker-thread count must not change serving percentiles"
    );
    assert_eq!(serial, repeat, "serving simulations must be deterministic");
    assert_eq!(serial.utilization.len(), 2);
}

#[test]
fn zero_load_has_zero_queueing_delay() {
    // Price one single-sample batch, then offer requests spaced ten service
    // times apart: every batch departs before the next request arrives.
    let e = exp();
    let workload = Workload::stage(AccessPattern::HighHot);
    let service_us = e
        .clone()
        .with_batch_size(1)
        .run(&workload, &Scheme::base())
        .latency_us;
    let qps = 1e6 / (service_us * 10.0);
    let scenario =
        ServingScenario::new(TrafficModel::uniform(qps), BatchingPolicy::adaptive(1, 64))
            .with_requests(32)
            .with_sla_us(service_us * 2.0);
    let report = scenario.simulate(&e, &workload, &Scheme::base());
    assert_eq!(report.batches, 32, "every request is served alone");
    assert_eq!(report.mean_queue_wait_us, 0.0, "no batch ever queues");
    assert_eq!(
        report.mean_batch_wait_us, 0.0,
        "no request waits for a batch"
    );
    assert_eq!(report.sla_violation_rate, 0.0);
    assert_eq!(
        report.latency.max_us.to_bits(),
        service_us.to_bits(),
        "zero-load latency is pure service time"
    );
}

#[test]
fn overload_drives_the_violation_rate_to_one() {
    // Offer ~50x the saturation throughput: the queue grows without bound
    // and almost every request blows through the SLA.
    let e = exp();
    let workload = Workload::stage(AccessPattern::HighHot);
    let service_us = e
        .clone()
        .with_batch_size(64)
        .run(&workload, &Scheme::base())
        .latency_us;
    let capacity_qps = 64.0 / service_us * 1e6;
    let scenario = ServingScenario::new(
        TrafficModel::poisson(capacity_qps * 50.0),
        BatchingPolicy::fixed_size(64),
    )
    .with_requests(2_000)
    .with_sla_us(service_us * 1.5);
    let report = scenario.simulate(&e, &workload, &Scheme::base());
    assert!(
        report.sla_violation_rate > 0.9,
        "50x overload must violate almost every request (got {:.3})",
        report.sla_violation_rate
    );
    assert!(
        report.achieved_qps < report.offered_qps / 10.0,
        "a saturated server cannot keep up with 50x overload"
    );
    // The single execution stream is essentially always busy.
    assert!(report.utilization[0].utilization > 0.99);
}

#[test]
fn percentiles_are_monotone_for_every_policy_and_traffic_shape() {
    let e = exp();
    let workload = Workload::stage(AccessPattern::MedHot);
    let policies = [
        BatchingPolicy::fixed_size(64),
        BatchingPolicy::timeout(64, 500.0),
        BatchingPolicy::adaptive(4, 64),
    ];
    let traffics = [
        TrafficModel::uniform(20_000.0),
        TrafficModel::poisson(20_000.0),
        TrafficModel::bursty(20_000.0, 16),
        TrafficModel::diurnal(40_000.0, 2_000.0, 1.0),
    ];
    for policy in policies {
        for traffic in traffics {
            let report = ServingScenario::new(traffic, policy)
                .with_requests(300)
                .simulate(&e, &workload, &Scheme::base());
            let l = &report.latency;
            assert!(
                l.p50_us <= l.p95_us && l.p95_us <= l.p99_us && l.p99_us <= l.max_us,
                "percentiles must be monotone for {policy} under {traffic}: {l:?}"
            );
            // The mean is a float sum, so allow an ULP of slack when every
            // latency is identical.
            assert!(l.mean_us <= l.max_us * (1.0 + 1e-12) && l.mean_us >= 0.0);
            assert!(report.mean_batch_wait_us >= 0.0 && report.mean_queue_wait_us >= 0.0);
            assert_eq!(
                report.shapes.iter().map(|s| s.batches).sum::<u32>(),
                report.batches
            );
            for u in &report.utilization {
                assert!(u.utilization >= 0.0 && u.utilization <= 1.0 + 1e-12);
            }
        }
    }
}

#[test]
fn distinct_shapes_simulate_once_through_the_cache() {
    let cache = CampaignCache::new();
    let e = exp().with_cache(cache.clone()).with_threads(1);
    let workload = Workload::stage(AccessPattern::MedHot);
    let scenario = ServingScenario::new(
        TrafficModel::bursty(50_000.0, 24),
        BatchingPolicy::adaptive(1, 64),
    )
    .with_requests(240);
    let first = scenario.simulate(&e, &workload, &Scheme::base());
    let shapes = first.shapes.len();
    assert!(
        first.batches > first.shapes.len() as u32,
        "shapes must repeat"
    );
    assert_eq!(
        cache.misses() as usize,
        shapes,
        "every distinct shape simulates exactly once"
    );
    // A re-simulation prices every shape from the cache.
    let second = scenario.simulate(&e, &workload, &Scheme::base());
    assert_eq!(first, second);
    assert_eq!(cache.misses() as usize, shapes);
    assert_eq!(cache.hits() as usize, shapes);
}

#[test]
fn serving_reports_round_trip_through_json() {
    let report = ServingScenario::new(
        TrafficModel::poisson(30_000.0),
        BatchingPolicy::timeout(64, 800.0),
    )
    .with_requests(200)
    .simulate(
        &exp().with_cluster(cluster(2)),
        &Workload::end_to_end(HeterogeneousMix::paper_mix(MixKind::Mix2, 0.02))
            .with_sharding(ShardingSpec::RoundRobin),
        &Scheme::combined(),
    );
    let text = report.to_json();
    let back = ServingReport::from_json(&text).expect("serving JSON parses back");
    assert_eq!(back, report, "JSON round trip must be lossless");
    assert_eq!(back.to_json(), text, "rendering must be canonical");
    assert_eq!(back.utilization.len(), 2);
}

#[test]
fn capacity_search_brackets_the_sla_boundary() {
    let e = exp().with_cache(CampaignCache::new());
    let workload = Workload::stage(AccessPattern::MedHot);
    // Size the SLA off the measured full-batch service time: 3x service
    // tolerates steady-state batching delay but not a growing backlog, so
    // the boundary sits near the saturation throughput and an 8-batch
    // trace is enough to expose it.
    let service_us = e
        .clone()
        .with_batch_size(256)
        .run(&workload, &Scheme::base())
        .latency_us;
    let scenario = ServingScenario::new(
        TrafficModel::uniform(1_000.0),
        BatchingPolicy::fixed_size(256),
    )
    .with_requests(2048)
    .with_sla_us(service_us * 3.0);
    let capacity = max_sustainable_qps(&e, &workload, &Scheme::base(), &scenario);
    assert!(capacity.max_qps > 0.0, "a 3x-service SLA is feasible");
    assert!(capacity.probes > 2);
    assert!(capacity.report.meets_sla());
    // The boundary is real: the found capacity is of the same order as the
    // saturation throughput (256-deep batches at back-to-back service).
    let saturation_qps = 256.0 / service_us * 1e6;
    assert!(
        capacity.max_qps > saturation_qps * 0.5 && capacity.max_qps < saturation_qps * 8.0,
        "capacity {:.0} qps should be near saturation {saturation_qps:.0} qps",
        capacity.max_qps
    );
    // Determinism: the search lands on the identical rate again.
    let again = max_sustainable_qps(&e, &workload, &Scheme::base(), &scenario);
    assert_eq!(capacity.max_qps.to_bits(), again.max_qps.to_bits());
    assert_eq!(capacity.report, again.report);
    // Well above the found capacity the SLA must fail.
    let above = scenario
        .clone()
        .with_traffic(scenario.traffic().at_qps(capacity.max_qps * 4.0))
        .simulate(&e, &workload, &Scheme::base());
    assert!(
        !above.meets_sla(),
        "4x the found capacity should violate the SLA (p99 {} vs {})",
        above.latency.p99_us,
        above.sla_us
    );
}

#[test]
fn scheme_selection_prefers_the_cheapest_qualifying_scheme() {
    let e = exp().with_cache(CampaignCache::new());
    let workload = Workload::stage(AccessPattern::Random);
    let schemes = [Scheme::base(), Scheme::optmt(), Scheme::combined()];
    let base_service_us = e
        .clone()
        .with_batch_size(256)
        .run(&workload, &Scheme::base())
        .latency_us;
    let scenario = |qps: f64| {
        ServingScenario::new(TrafficModel::uniform(qps), BatchingPolicy::fixed_size(256))
            .with_requests(2048)
            .with_sla_us(base_service_us * 3.0)
    };

    // At the base scheme's saturation throughput the queue stays bounded
    // (steady-state latency ~ batching delay + service < 3x service), so
    // the cheapest scheme qualifies and selection stops at it.
    let base_saturation_qps = 256.0 / base_service_us * 1e6;
    let easy = select_scheme(&e, &workload, &schemes, &scenario(base_saturation_qps))
        .expect("base saturation load is servable by base");
    assert_eq!(easy.index, 0);
    assert_eq!(easy.report.scheme, "base");

    // Past the base capacity, selection escalates to a faster scheme:
    // OptMT speeds the random pattern up, so its capacity is strictly
    // higher and it still qualifies where base no longer does.
    let base_cap = max_sustainable_qps(&e, &workload, &Scheme::base(), &scenario(1_000.0));
    let opt_cap = max_sustainable_qps(&e, &workload, &Scheme::optmt(), &scenario(1_000.0));
    assert!(
        opt_cap.max_qps > base_cap.max_qps * 1.02,
        "OptMT must buy measurable capacity on the random pattern \
         ({:.0} vs {:.0} qps)",
        opt_cap.max_qps,
        base_cap.max_qps
    );
    let escalated = select_scheme(&e, &workload, &schemes, &scenario(opt_cap.max_qps))
        .expect("OptMT's own capacity must be servable by some scheme");
    assert!(
        escalated.index >= 1,
        "past the base capacity the selection must escalate beyond base \
         (base cap {:.0} qps, probed {:.0} qps)",
        base_cap.max_qps,
        opt_cap.max_qps
    );
    assert!(escalated.report.meets_sla());
}
