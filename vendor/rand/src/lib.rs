//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no network access to crates.io, so the real
//! rand crate cannot be fetched. This crate mirrors the API surface the
//! trace generators rely on — `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen` / `Rng::gen_range` — backed by the SplitMix64 generator.
//! Sequences are deterministic per seed (which is all the experiment
//! pipeline requires) but do NOT match the real `StdRng` stream.

#![warn(missing_docs)]

use std::ops::Range;

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be drawn uniformly from an `RngCore`.
pub trait FromRandom {
    /// Draws one value.
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRandom for f64 {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandom for f32 {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl FromRandom for u64 {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRandom for u32 {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRandom for bool {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Draws one value from `range`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample from an empty range");
                let span = (range.end - range.start) as u64;
                // Unbiased rejection sampling (Lemire's method).
                let zone = u64::MAX - u64::MAX.wrapping_rem(span);
                loop {
                    let v = rng.next_u64();
                    if v < zone || zone == 0 {
                        return range.start + (v % span) as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_uint!(u64, u32, usize);

/// High-level sampling methods, implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Draws one value of an inferred type, uniformly.
    fn gen<T: FromRandom>(&mut self) -> T {
        T::from_random(self)
    }

    /// Draws one value uniformly from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    ///
    /// Note: per-seed deterministic, but the stream differs from the real
    /// `rand::rngs::StdRng` (ChaCha12).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<u64> = (0..32).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.gen::<u64>()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(va, (0..32).map(|_| c.gen::<u64>()).collect::<Vec<_>>());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ranges_are_respected_and_cover() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(0u64..10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
