//! Offline stand-in for the subset of the `criterion` benchmarking API this
//! workspace uses.
//!
//! The build environment has no network access to crates.io, so the real
//! criterion crate cannot be fetched. This crate mirrors the API surface the
//! benches under `crates/bench/benches/` rely on — `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`, `black_box` and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! wall-clock measurement loop: a short warm-up, then `sample_size` timed
//! samples whose mean and minimum per-iteration times are printed. Swapping
//! this path dependency for the real crates.io criterion requires no source
//! changes in the benches.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().label, 10, f);
    }
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through to the closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A compound id: function name plus parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Drives the timing loop of one benchmark.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly and records the elapsed wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // Warm-up pass; also calibrates how many iterations fit in a sample.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(20);
    let iters_per_sample =
        (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    for _ in 0..sample_size {
        let mut sample = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut sample);
        let per = sample.elapsed / iters_per_sample as u32;
        total += per;
        best = best.min(per);
    }
    let mean = total / sample_size as u32;
    println!(
        "{label:<48} mean {:>12} min {:>12} ({} samples x {} iters)",
        format_duration(mean),
        format_duration(best),
        sample_size,
        iters_per_sample
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} us", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Collects benchmark functions into one group runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Expands to `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_compose_labels() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
        assert_eq!(BenchmarkId::from("s").label, "s");
    }

    #[test]
    fn groups_run_their_benchmarks() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        let mut group = c.benchmark_group("g");
        group.sample_size(2).bench_function("count", |b| {
            calls += 1;
            b.iter(|| 1 + 1);
        });
        group.finish();
        // warm-up + 2 samples
        assert_eq!(calls, 3);
    }
}
