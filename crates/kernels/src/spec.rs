//! Kernel build specification: which optimizations are compiled into the
//! embedding-bag kernel and what that does to its resource usage.
//!
//! This is the software knob the paper turns: `-maxrregcount` for OptMT
//! (Section III-C) and source-level prefetching into one of four buffer
//! stations (Section IV-B). The register model follows the paper's
//! observations:
//!
//! * the off-the-shelf kernel needs 74 registers/thread,
//! * prefetching into registers (RPF) grows that footprint with the prefetch
//!   distance (which is why RPF without `-maxrregcount` collapses to 16
//!   resident warps at distances >= 5, Section VI-B2),
//! * the shared-memory variant (SMPF) keeps fewer values in registers (nvcc
//!   compiles it to 32 warps/SM),
//! * capping registers below what the kernel actually needs causes spills to
//!   local memory, at a rate that grows with the deficit (Figure 6).

use gpu_sim::{GpuConfig, KernelLaunch};

use crate::kernel::EmbeddingBagKernel;
use crate::workload::{EmbeddingWorkload, THREADS_PER_BLOCK};

/// Registers per thread the compiler allocates for the unmodified kernel.
pub const BASE_NATURAL_REGS: u32 = 74;
/// Registers that must stay live per thread before spilling begins.
pub const BASE_LIVE_REGS: u32 = 46;
/// `-maxrregcount` value the paper's OptMT uses on the A100 (40 resident
/// warps per SM).
pub const OPTMT_MAXRREG_A100: u32 = 48;
/// Lowest register allocation the compiler will produce regardless of
/// `-maxrregcount`.
pub const MIN_ALLOCATABLE_REGS: u32 = 24;

/// Where prefetched embedding rows are buffered (paper Figure 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BufferStation {
    /// RPF: registers — fastest access, but grows register pressure.
    Register,
    /// SMPF: shared memory — 29-cycle access, no register growth.
    SharedMem,
    /// LMPF: local memory — backed by L1/L2, per-thread addressing.
    LocalMem,
    /// L1DPF: `prefetch.global.L1` — the demand load is still issued later.
    L1Cache,
}

impl BufferStation {
    /// All stations in the order the paper presents them.
    pub const ALL: [BufferStation; 4] = [
        BufferStation::Register,
        BufferStation::SharedMem,
        BufferStation::LocalMem,
        BufferStation::L1Cache,
    ];

    /// The abbreviation used throughout the paper.
    pub fn abbreviation(&self) -> &'static str {
        match self {
            BufferStation::Register => "RPF",
            BufferStation::SharedMem => "SMPF",
            BufferStation::LocalMem => "LMPF",
            BufferStation::L1Cache => "L1DPF",
        }
    }

    /// The prefetch distance the paper found optimal for this station when
    /// running *without* OptMT (Section VI-B2: {4, 10, 10, 5}).
    pub fn optimal_distance_without_optmt(&self) -> u32 {
        match self {
            BufferStation::Register => 4,
            BufferStation::SharedMem => 10,
            BufferStation::LocalMem => 10,
            BufferStation::L1Cache => 5,
        }
    }

    /// The prefetch distance the paper found optimal for this station when
    /// combined with OptMT (Section VI-B1: all schemes best at distance 2).
    pub fn optimal_distance_with_optmt(&self) -> u32 {
        2
    }
}

/// A prefetching configuration: buffer station plus prefetch distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PrefetchConfig {
    /// Where prefetched data is staged.
    pub station: BufferStation,
    /// How many lookups ahead the prefetch runs.
    pub distance: u32,
}

impl PrefetchConfig {
    /// Creates a prefetch configuration.
    ///
    /// # Panics
    /// Panics if the distance is zero or larger than 16 (the model's buffer
    /// register file).
    pub fn new(station: BufferStation, distance: u32) -> Self {
        assert!(
            (1..=16).contains(&distance),
            "prefetch distance must be between 1 and 16 lookups"
        );
        PrefetchConfig { station, distance }
    }
}

/// The build-time specification of one embedding-bag kernel variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EmbeddingKernelSpec {
    prefetch: Option<PrefetchConfig>,
    max_registers: Option<u32>,
}

impl EmbeddingKernelSpec {
    /// The off-the-shelf PyTorch kernel (74 registers, no prefetching).
    pub fn base() -> Self {
        EmbeddingKernelSpec {
            prefetch: None,
            max_registers: None,
        }
    }

    /// The paper's OptMT build on an A100: `-maxrregcount 48`, which yields
    /// 40 resident warps per SM.
    pub fn optmt() -> Self {
        Self::base().with_max_registers(OPTMT_MAXRREG_A100)
    }

    /// Adds a `-maxrregcount` cap.
    ///
    /// # Panics
    /// Panics if the cap is below [`MIN_ALLOCATABLE_REGS`] or above 255.
    pub fn with_max_registers(mut self, regs: u32) -> Self {
        assert!(
            (MIN_ALLOCATABLE_REGS..=255).contains(&regs),
            "maxrregcount must be between {MIN_ALLOCATABLE_REGS} and 255"
        );
        self.max_registers = Some(regs);
        self
    }

    /// Removes the register cap (back to the compiler's natural allocation).
    pub fn without_register_cap(mut self) -> Self {
        self.max_registers = None;
        self
    }

    /// Adds software prefetching.
    pub fn with_prefetch(mut self, prefetch: PrefetchConfig) -> Self {
        self.prefetch = Some(prefetch);
        self
    }

    /// The prefetch configuration, if any.
    pub fn prefetch(&self) -> Option<PrefetchConfig> {
        self.prefetch
    }

    /// The `-maxrregcount` cap, if any.
    pub fn max_registers(&self) -> Option<u32> {
        self.max_registers
    }

    /// Registers per thread the compiler would naturally allocate for this
    /// source variant (before any `-maxrregcount`).
    pub fn natural_regs(&self) -> u32 {
        match self.prefetch {
            None => BASE_NATURAL_REGS,
            Some(p) => match p.station {
                // Each in-flight prefetch needs an index and a value register.
                BufferStation::Register => BASE_NATURAL_REGS + 2 * p.distance,
                BufferStation::SharedMem => 58,
                BufferStation::LocalMem => 66,
                BufferStation::L1Cache => BASE_NATURAL_REGS + 2,
            },
        }
    }

    /// Registers per thread that stay live across the gather-reduce loop;
    /// allocating fewer than this forces spills.
    pub fn live_regs(&self) -> u32 {
        match self.prefetch {
            None => BASE_LIVE_REGS,
            Some(p) => match p.station {
                BufferStation::Register => BASE_LIVE_REGS + 2 * p.distance,
                BufferStation::SharedMem => 42,
                BufferStation::LocalMem => 44,
                BufferStation::L1Cache => BASE_LIVE_REGS,
            },
        }
    }

    /// Registers per thread actually allocated after applying the cap.
    pub fn allocated_regs(&self) -> u32 {
        let natural = self.natural_regs();
        match self.max_registers {
            None => natural,
            Some(cap) => natural.min(cap).max(MIN_ALLOCATABLE_REGS),
        }
    }

    /// Register-spill intensity: extra local-memory load/store pairs per
    /// gather-reduce iteration caused by allocating fewer registers than the
    /// loop keeps live (paper Figure 6's secondary axis).
    pub fn spills_per_iteration(&self) -> u32 {
        let allocated = self.allocated_regs();
        let live = self.live_regs();
        if allocated >= live {
            0
        } else {
            (live - allocated).div_ceil(8)
        }
    }

    /// Shared memory per block required by this variant (only SMPF uses any:
    /// one fp32 slot per thread per in-flight prefetch).
    pub fn shared_mem_per_block(&self) -> u64 {
        match self.prefetch {
            Some(p) if p.station == BufferStation::SharedMem => {
                THREADS_PER_BLOCK as u64 * p.distance as u64 * 4
            }
            _ => 0,
        }
    }

    /// The kernel launch configuration for this variant over `workload`.
    pub fn launch(&self, workload: &EmbeddingWorkload) -> KernelLaunch {
        KernelLaunch::new(
            self.name(),
            workload.config.grid_blocks(),
            THREADS_PER_BLOCK,
        )
        .with_regs_per_thread(self.allocated_regs())
        .with_shared_mem_per_block(self.shared_mem_per_block())
    }

    /// Builds the kernel program for this variant over `workload`.
    pub fn kernel(&self, workload: &EmbeddingWorkload) -> EmbeddingBagKernel {
        EmbeddingBagKernel::new(workload.clone(), *self)
    }

    /// The resident warps per SM this variant achieves on `cfg`.
    pub fn resident_warps(&self, cfg: &GpuConfig, workload: &EmbeddingWorkload) -> u32 {
        gpu_sim::Occupancy::compute(cfg, &self.launch(workload)).warps_per_sm
    }

    /// A short human-readable name, e.g. `"RPF(d=2)+maxrreg48"`.
    pub fn name(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        match self.prefetch {
            None => parts.push("embedding_bag".to_string()),
            Some(p) => parts.push(format!("{}(d={})", p.station.abbreviation(), p.distance)),
        }
        if let Some(cap) = self.max_registers {
            parts.push(format!("maxrreg{cap}"));
        }
        parts.join("+")
    }
}

impl Default for EmbeddingKernelSpec {
    fn default() -> Self {
        Self::base()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::EmbeddingConfig;
    use dlrm_datasets::{AccessPattern, TraceConfig};

    fn workload() -> EmbeddingWorkload {
        // The batch must be large enough that the grid (batch * 128 / 256
        // blocks) fills all 108 SMs, otherwise occupancy is grid-limited
        // rather than register-limited.
        let cfg = EmbeddingConfig::new(TraceConfig::new(10_000, 2048, 8), 128);
        EmbeddingWorkload::generate(cfg, AccessPattern::MedHot, 0, 1)
    }

    #[test]
    fn base_spec_matches_paper_register_count() {
        let spec = EmbeddingKernelSpec::base();
        assert_eq!(spec.allocated_regs(), 74);
        assert_eq!(spec.spills_per_iteration(), 0);
        assert_eq!(spec.shared_mem_per_block(), 0);
        let a100 = GpuConfig::a100();
        assert_eq!(spec.resident_warps(&a100, &workload()), 24);
    }

    #[test]
    fn optmt_reaches_40_warps_without_spilling() {
        let spec = EmbeddingKernelSpec::optmt();
        assert_eq!(spec.allocated_regs(), 48);
        assert_eq!(spec.spills_per_iteration(), 0);
        assert_eq!(spec.resident_warps(&GpuConfig::a100(), &workload()), 40);
    }

    #[test]
    fn aggressive_register_caps_cause_spills() {
        // 64 resident warps needs 32 registers/thread: the paper shows this
        // spills and underperforms OptMT.
        let spec = EmbeddingKernelSpec::base().with_max_registers(32);
        assert_eq!(spec.resident_warps(&GpuConfig::a100(), &workload()), 64);
        assert!(spec.spills_per_iteration() >= 1);
        let optmt = EmbeddingKernelSpec::optmt();
        assert!(spec.spills_per_iteration() > optmt.spills_per_iteration());
    }

    #[test]
    fn rpf_register_growth_limits_occupancy_without_optmt() {
        // Paper Section VI-B2: RPF at distance >= 5 drops to 16 warps/SM.
        let d5 = EmbeddingKernelSpec::base()
            .with_prefetch(PrefetchConfig::new(BufferStation::Register, 5));
        assert_eq!(d5.resident_warps(&GpuConfig::a100(), &workload()), 16);
        let d2 = EmbeddingKernelSpec::base()
            .with_prefetch(PrefetchConfig::new(BufferStation::Register, 2));
        assert!(d2.resident_warps(&GpuConfig::a100(), &workload()) >= 24);
    }

    #[test]
    fn smpf_compiles_to_32_warps_and_uses_shared_memory() {
        // Paper Section VI-B2: nvcc compiles SMPF with 32 warps per SM.
        let spec = EmbeddingKernelSpec::base()
            .with_prefetch(PrefetchConfig::new(BufferStation::SharedMem, 10));
        assert_eq!(spec.resident_warps(&GpuConfig::a100(), &workload()), 32);
        assert_eq!(spec.shared_mem_per_block(), 256 * 10 * 4);
    }

    #[test]
    fn rpf_with_optmt_spills_more_as_distance_grows() {
        let d2 = EmbeddingKernelSpec::optmt()
            .with_prefetch(PrefetchConfig::new(BufferStation::Register, 2));
        let d10 = EmbeddingKernelSpec::optmt()
            .with_prefetch(PrefetchConfig::new(BufferStation::Register, 10));
        assert!(d10.spills_per_iteration() > d2.spills_per_iteration());
    }

    #[test]
    fn names_are_descriptive() {
        let spec = EmbeddingKernelSpec::optmt()
            .with_prefetch(PrefetchConfig::new(BufferStation::Register, 2));
        assert_eq!(spec.name(), "RPF(d=2)+maxrreg48");
        assert_eq!(EmbeddingKernelSpec::base().name(), "embedding_bag");
    }

    #[test]
    fn launch_reflects_spec_resources() {
        let spec = EmbeddingKernelSpec::base()
            .with_prefetch(PrefetchConfig::new(BufferStation::SharedMem, 4));
        let launch = spec.launch(&workload());
        assert_eq!(launch.grid_blocks, workload().config.grid_blocks());
        assert_eq!(launch.threads_per_block, 256);
        assert_eq!(launch.shared_mem_per_block, 256 * 4 * 4);
        assert_eq!(launch.regs_per_thread, spec.allocated_regs());
    }

    #[test]
    fn optimal_distances_match_paper() {
        assert_eq!(BufferStation::Register.optimal_distance_without_optmt(), 4);
        assert_eq!(
            BufferStation::SharedMem.optimal_distance_without_optmt(),
            10
        );
        assert_eq!(BufferStation::LocalMem.optimal_distance_without_optmt(), 10);
        assert_eq!(BufferStation::L1Cache.optimal_distance_without_optmt(), 5);
        for s in BufferStation::ALL {
            assert_eq!(s.optimal_distance_with_optmt(), 2);
        }
    }

    #[test]
    fn without_register_cap_restores_natural_allocation() {
        let spec = EmbeddingKernelSpec::optmt().without_register_cap();
        assert_eq!(spec.allocated_regs(), BASE_NATURAL_REGS);
    }

    #[test]
    #[should_panic(expected = "prefetch distance")]
    fn zero_distance_rejected() {
        let _ = PrefetchConfig::new(BufferStation::Register, 0);
    }

    #[test]
    #[should_panic(expected = "maxrregcount")]
    fn too_small_register_cap_rejected() {
        let _ = EmbeddingKernelSpec::base().with_max_registers(8);
    }
}
