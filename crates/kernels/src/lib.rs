//! # embedding-kernels — the paper's embedding-bag kernel variants
//!
//! This crate expresses the PyTorch embedding-bag CUDA kernel
//! (`EmbeddingBag_updateOutputKernel_sum_mean`) and every optimized variant
//! the paper proposes as [`gpu_sim`] warp programs:
//!
//! * **Base**: the off-the-shelf kernel — 74 registers/thread, 24 resident
//!   warps per SM, a gather-reduce loop with a load-use dependence per lookup
//!   (paper Algorithm 2, Table IV).
//! * **OptMT**: the same kernel compiled with `-maxrregcount` so that more
//!   warps are resident, at the cost of register spills to local memory
//!   (paper Section III-C, Figure 6, Table V).
//! * **Software prefetching**: RPF (registers), SMPF (shared memory), LMPF
//!   (local memory) and L1DPF (`prefetch.global.L1`), each with a
//!   configurable prefetch distance (paper Section IV-B, Figures 8, 9, 15,
//!   16).
//! * **L2 pinning (L2P)**: a separate pin kernel that prefetches the hottest
//!   rows into the L2 persisting carve-out with `evict_last` before the
//!   embedding kernel runs (paper Section IV-C, Figures 10, 11).
//!
//! It also contains a functional (numerical) reference implementation of the
//! embedding-bag forward pass used by the `dlrm` crate and by property tests.
//!
//! ## Example
//!
//! ```
//! use dlrm_datasets::{AccessPattern, TraceConfig};
//! use embedding_kernels::{EmbeddingConfig, EmbeddingKernelSpec, EmbeddingWorkload};
//! use gpu_sim::{GpuConfig, Simulator};
//!
//! let cfg = EmbeddingConfig::new(TraceConfig::new(10_000, 32, 8), 64);
//! let workload = EmbeddingWorkload::generate(cfg, AccessPattern::HighHot, 0, 1);
//! let spec = EmbeddingKernelSpec::base();
//! let sim = Simulator::new(GpuConfig::test_small());
//! let stats = sim.run(&spec.launch(&workload), &spec.kernel(&workload));
//! assert!(stats.counters.load_insts > 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod kernel;
pub mod l2pin;
pub mod layout;
pub mod reference;
pub mod spec;
pub mod workload;

pub use kernel::EmbeddingBagKernel;
pub use l2pin::{L2PinKernel, PinPlan};
pub use layout::TableLayout;
pub use reference::{embedding_bag_forward, embedding_bag_forward_simt, SyntheticTable};
pub use spec::{BufferStation, EmbeddingKernelSpec, PrefetchConfig};
pub use workload::{EmbeddingConfig, EmbeddingWorkload};
