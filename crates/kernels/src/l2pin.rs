//! L2 pinning (L2P): pre-loading the hottest embedding rows into the L2
//! persisting carve-out before the embedding-bag kernel runs (paper
//! Section IV-C, Figure 10).
//!
//! The paper's flow is:
//!
//! 1. offline-profile the top ~60K hot indices per table (30 MB carve-out /
//!    512 B rows),
//! 2. load those indices to the GPU once,
//! 3. before each table's embedding-bag launch, run a small CUDA kernel that
//!    executes `prefetch.global.L2::evict_last` over the hot rows,
//! 4. launch the embedding-bag kernel.
//!
//! This module provides the pin *plan* (which lines to pin) and the pin
//! *kernel* (a warp program issuing the evict-last prefetches), plus a
//! shortcut that applies the plan directly to the memory system for callers
//! that follow the paper in hiding the pin kernel's cost behind host-side
//! preprocessing.

use std::sync::Arc;

use gpu_sim::mem::MemorySystem;
use gpu_sim::{
    GpuConfig, Instruction, KernelLaunch, KernelProgram, LineSet, PrefetchTarget, WarpInfo,
    WarpProgram,
};

use crate::workload::EmbeddingWorkload;

/// Cache lines each warp of the pin kernel prefetches per instruction batch.
const LINES_PER_WARP: usize = 64;

/// A plan describing which cache lines of a table should be pinned in L2.
#[derive(Debug, Clone)]
pub struct PinPlan {
    lines: Arc<Vec<u64>>,
    pinned_rows: usize,
    carveout_bytes: u64,
}

impl PinPlan {
    /// Builds the pin plan for one table: the hottest rows that fit into
    /// `carveout_bytes` of L2 (the paper uses the full 30 MB set-aside, which
    /// holds 60K rows of 512 B).
    pub fn for_workload(workload: &EmbeddingWorkload, carveout_bytes: u64) -> Self {
        let row_bytes = workload.config.row_bytes();
        let max_rows = (carveout_bytes / row_bytes) as usize;
        let rows = workload.hot_rows(max_rows);
        let chunks = workload.layout.chunks_per_row();
        let mut lines = Vec::with_capacity(rows.len() * chunks as usize);
        for &row in &rows {
            for chunk in 0..chunks {
                lines.push(workload.layout.row_chunk_line(row, chunk));
            }
        }
        PinPlan {
            pinned_rows: rows.len(),
            lines: Arc::new(lines),
            carveout_bytes,
        }
    }

    /// Number of rows the plan pins.
    pub fn pinned_rows(&self) -> usize {
        self.pinned_rows
    }

    /// Number of cache lines the plan pins.
    pub fn pinned_lines(&self) -> usize {
        self.lines.len()
    }

    /// Total bytes pinned.
    pub fn pinned_bytes(&self) -> u64 {
        self.lines.len() as u64 * 128
    }

    /// The carve-out size this plan was built for.
    pub fn carveout_bytes(&self) -> u64 {
        self.carveout_bytes
    }

    /// Configures the L2 carve-out and installs every planned line directly
    /// into the memory system (the paper's step 3 with its cost hidden behind
    /// CPU-side preprocessing, so no DRAM bandwidth or simulated time is
    /// charged — use [`PinPlan::kernel`] to account for the pin kernel
    /// explicitly).
    ///
    /// # Panics
    /// Panics if the carve-out exceeds the device limit.
    pub fn apply(&self, mem: &mut MemorySystem, cfg: &GpuConfig, now: u64) {
        mem.set_l2_persisting_carveout(self.carveout_bytes.min(cfg.l2_max_persisting_bytes()), cfg);
        for &line in self.lines.iter() {
            mem.warm_l2_persistent(line, now);
        }
    }

    /// Builds the explicit pin kernel and its launch configuration, for
    /// callers that want to account for the pin kernel's execution time.
    pub fn kernel(&self) -> (KernelLaunch, L2PinKernel) {
        let total_warp_batches = self.lines.len().div_ceil(LINES_PER_WARP).max(1);
        // 8 warps per block, one warp per batch of lines.
        let blocks = (total_warp_batches as u32).div_ceil(8).max(1);
        let launch = KernelLaunch::new("l2_pin", blocks, 256).with_regs_per_thread(32);
        (
            launch,
            L2PinKernel {
                lines: Arc::clone(&self.lines),
            },
        )
    }
}

/// The kernel that issues `prefetch.global.L2::evict_last` over the planned
/// lines (paper Figure 10, step 3).
#[derive(Debug, Clone)]
pub struct L2PinKernel {
    lines: Arc<Vec<u64>>,
}

impl KernelProgram for L2PinKernel {
    fn warp_program(&self, info: WarpInfo) -> Box<dyn WarpProgram> {
        let start = info.global_warp_id as usize * LINES_PER_WARP;
        let end = (start + LINES_PER_WARP).min(self.lines.len());
        Box::new(PinWarp {
            lines: Arc::clone(&self.lines),
            pos: start.min(end),
            end,
        })
    }

    fn name(&self) -> &str {
        "l2_pin"
    }
}

struct PinWarp {
    lines: Arc<Vec<u64>>,
    pos: usize,
    end: usize,
}

impl WarpProgram for PinWarp {
    fn next_inst(&mut self) -> Option<Instruction> {
        if self.pos >= self.end {
            return None;
        }
        let mut set = LineSet::new();
        while self.pos < self.end && set.len() < 4 {
            set.push(self.lines[self.pos]);
            self.pos += 1;
        }
        Some(Instruction::Prefetch {
            target: PrefetchTarget::L2EvictLast,
            lines: set,
            addr_dep: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::EmbeddingKernelSpec;
    use crate::workload::EmbeddingConfig;
    use dlrm_datasets::{AccessPattern, TraceConfig};
    use gpu_sim::Simulator;

    fn workload(pattern: AccessPattern) -> EmbeddingWorkload {
        let cfg = EmbeddingConfig::new(TraceConfig::new(20_000, 32, 16), 128);
        EmbeddingWorkload::generate(cfg, pattern, 0, 1)
    }

    #[test]
    fn paper_scale_plan_pins_60k_rows() {
        let w = EmbeddingWorkload::generate(
            EmbeddingConfig::paper_scale(),
            AccessPattern::HighHot,
            0,
            1,
        );
        let plan = PinPlan::for_workload(&w, 30 * 1024 * 1024);
        assert_eq!(plan.pinned_rows(), 61_440);
        assert_eq!(plan.pinned_lines(), 61_440 * 4);
        assert!(plan.pinned_bytes() <= 30 * 1024 * 1024);
    }

    #[test]
    fn plan_respects_small_carveouts() {
        let w = workload(AccessPattern::HighHot);
        let plan = PinPlan::for_workload(&w, 64 * 1024);
        assert_eq!(plan.pinned_rows(), 128);
        assert_eq!(plan.pinned_bytes(), 128 * 512);
    }

    #[test]
    fn apply_installs_persistent_lines() {
        let cfg = GpuConfig::test_small();
        let w = workload(AccessPattern::HighHot);
        let plan = PinPlan::for_workload(&w, 32 * 1024);
        let mut mem = MemorySystem::new(&cfg);
        plan.apply(&mut mem, &cfg, 0);
        assert!(mem.l2().persistent_lines() > 0);
        assert!(mem.l2().persistent_lines() <= cfg.l2_max_persisting_bytes() / 128);
    }

    #[test]
    fn pin_kernel_prefetches_every_line() {
        let w = workload(AccessPattern::HighHot);
        let plan = PinPlan::for_workload(&w, 64 * 1024);
        let (launch, kernel) = plan.kernel();
        let cfg = GpuConfig::test_small();
        let sim = Simulator::new(cfg.clone());
        let mut mem = MemorySystem::new(&cfg);
        mem.set_l2_persisting_carveout(cfg.l2_max_persisting_bytes(), &cfg);
        let stats = sim.run_with_memory(&launch, &kernel, &mut mem, 0);
        assert_eq!(
            stats.counters.prefetch_insts as usize,
            plan.pinned_lines().div_ceil(4)
        );
        assert!(mem.l2().persistent_lines() > 0);
    }

    #[test]
    fn pinning_speeds_up_hot_traces() {
        let cfg = GpuConfig::test_small();
        let sim = Simulator::new(cfg.clone());
        let w = workload(AccessPattern::HighHot);
        let spec = EmbeddingKernelSpec::base();

        // Unpinned run.
        let baseline = sim.run(&spec.launch(&w), &spec.kernel(&w));

        // Pinned run: apply the plan, then execute the same kernel.
        let mut mem = MemorySystem::new(&cfg);
        let plan = PinPlan::for_workload(&w, cfg.l2_max_persisting_bytes());
        plan.apply(&mut mem, &cfg, 0);
        let pinned = sim.run_with_memory(&spec.launch(&w), &spec.kernel(&w), &mut mem, 0);

        assert!(
            pinned.elapsed_cycles < baseline.elapsed_cycles,
            "pinning should reduce latency ({} vs {})",
            pinned.elapsed_cycles,
            baseline.elapsed_cycles
        );
        assert!(pinned.dram_bytes_read < baseline.dram_bytes_read);
    }

    #[test]
    fn random_traces_gain_little_from_pinning() {
        let cfg = GpuConfig::test_small();
        let sim = Simulator::new(cfg.clone());
        let spec = EmbeddingKernelSpec::base();

        let speedup = |pattern: AccessPattern| {
            let w = workload(pattern);
            let base = sim.run(&spec.launch(&w), &spec.kernel(&w));
            let mut mem = MemorySystem::new(&cfg);
            let plan = PinPlan::for_workload(&w, cfg.l2_max_persisting_bytes());
            plan.apply(&mut mem, &cfg, 0);
            let pinned = sim.run_with_memory(&spec.launch(&w), &spec.kernel(&w), &mut mem, 0);
            base.elapsed_cycles as f64 / pinned.elapsed_cycles as f64
        };

        let hot = speedup(AccessPattern::HighHot);
        let random = speedup(AccessPattern::Random);
        assert!(
            hot > random,
            "L2P should help hot traces more than random ones (hot {hot:.3} vs random {random:.3})"
        );
    }
}
