//! Device-memory layout of one embedding table and its kernel inputs and
//! outputs.
//!
//! Addresses are synthetic but stable: each table gets disjoint, aligned
//! regions for its weight matrix, its `indices` array, and its output matrix,
//! so that sequentially executed tables never alias in the caches — matching
//! the paper's setting where the full 60 GB model is resident in HBM and each
//! table is processed by its own kernel launch.

/// Cache-line size used for address calculations (128 B on NVIDIA GPUs).
pub const LINE_BYTES: u64 = 128;

/// Base virtual address of embedding-table weights.
const WEIGHTS_BASE: u64 = 0x0001_0000_0000;
/// Base virtual address of the per-table `indices` arrays.
const INDICES_BASE: u64 = 0x4000_0000_0000;
/// Base virtual address of the per-table output matrices.
const OUTPUT_BASE: u64 = 0x6000_0000_0000;
/// Base virtual address of per-warp local-memory (spill / LMPF buffer) space.
const LOCAL_BASE: u64 = 0x7000_0000_0000;
/// Bytes of local-memory address space reserved per warp.
const LOCAL_BYTES_PER_WARP: u64 = 64 * 1024;

/// The address map of one embedding table within the simulated device memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableLayout {
    /// Index of the table within the model (tables are laid out back to
    /// back, each in its own aligned region).
    pub table_index: u32,
    /// Number of rows in the table.
    pub num_rows: u64,
    /// Bytes per row (`embedding_dim * 4` for fp32).
    pub row_bytes: u64,
    /// Total lookups in the batch (sizes the indices array).
    pub total_lookups: u64,
    /// Output matrix bytes (`batch_size * embedding_dim * 4`).
    pub output_bytes: u64,
}

impl TableLayout {
    /// Creates the layout for one table.
    pub fn new(
        table_index: u32,
        num_rows: u64,
        row_bytes: u64,
        total_lookups: u64,
        output_bytes: u64,
    ) -> Self {
        assert!(
            num_rows > 0 && row_bytes > 0,
            "table must have rows and a row width"
        );
        TableLayout {
            table_index,
            num_rows,
            row_bytes,
            total_lookups,
            output_bytes,
        }
    }

    /// Size of the weight region of one table, aligned up to 1 MiB so table
    /// base addresses never share cache sets systematically.
    fn weights_stride(&self) -> u64 {
        align_up(self.num_rows * self.row_bytes, 1 << 20)
    }

    /// Base address of this table's weight matrix.
    pub fn weights_base(&self) -> u64 {
        WEIGHTS_BASE + self.table_index as u64 * self.weights_stride()
    }

    /// Byte address of element `col` of row `row`.
    ///
    /// # Panics
    /// Panics if the row is out of range.
    pub fn row_element_addr(&self, row: u64, byte_offset: u64) -> u64 {
        assert!(
            row < self.num_rows,
            "row {row} out of range ({} rows)",
            self.num_rows
        );
        self.weights_base() + row * self.row_bytes + byte_offset
    }

    /// The 128-byte line holding bytes `[byte_offset, byte_offset + 128)` of
    /// `row` — the granule one warp's coalesced access covers.
    pub fn row_chunk_line(&self, row: u64, chunk: u32) -> u64 {
        let addr = self.row_element_addr(row, chunk as u64 * LINE_BYTES);
        addr / LINE_BYTES * LINE_BYTES
    }

    /// Number of 128-byte chunks per row (= warps needed per sample).
    pub fn chunks_per_row(&self) -> u32 {
        (self.row_bytes / LINE_BYTES).max(1) as u32
    }

    /// Base address of this table's `indices` array (one `u32` per lookup).
    pub fn indices_base(&self) -> u64 {
        INDICES_BASE + self.table_index as u64 * align_up(self.total_lookups * 4, 1 << 20)
    }

    /// The cache line holding `indices[lookup]`.
    pub fn index_line(&self, lookup: u64) -> u64 {
        let addr = self.indices_base() + lookup * 4;
        addr / LINE_BYTES * LINE_BYTES
    }

    /// Base address of this table's output matrix.
    pub fn output_base(&self) -> u64 {
        OUTPUT_BASE + self.table_index as u64 * align_up(self.output_bytes.max(1), 1 << 20)
    }

    /// The cache line of the 128-byte output chunk written by one warp.
    pub fn output_chunk_line(&self, bag: u64, chunk: u32, embedding_dim: u32) -> u64 {
        let addr = self.output_base() + bag * embedding_dim as u64 * 4 + chunk as u64 * LINE_BYTES;
        addr / LINE_BYTES * LINE_BYTES
    }

    /// Base of the local-memory window of a warp (spills, LMPF buffers).
    pub fn local_base(global_warp_id: u64) -> u64 {
        LOCAL_BASE + global_warp_id * LOCAL_BYTES_PER_WARP
    }

    /// A line within a warp's local-memory window.
    pub fn local_line(global_warp_id: u64, slot: u64) -> u64 {
        let addr = Self::local_base(global_warp_id) + (slot * LINE_BYTES) % LOCAL_BYTES_PER_WARP;
        addr / LINE_BYTES * LINE_BYTES
    }

    /// Total weight bytes of this table.
    pub fn weight_bytes(&self) -> u64 {
        self.num_rows * self.row_bytes
    }
}

fn align_up(v: u64, align: u64) -> u64 {
    v.div_ceil(align) * align
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(table: u32) -> TableLayout {
        TableLayout::new(table, 10_000, 512, 32 * 64, 32 * 512)
    }

    #[test]
    fn different_tables_do_not_overlap() {
        let a = layout(0);
        let b = layout(1);
        let a_end = a.weights_base() + a.weight_bytes();
        assert!(b.weights_base() >= a_end);
        assert_ne!(a.indices_base(), b.indices_base());
        assert_ne!(a.output_base(), b.output_base());
    }

    #[test]
    fn regions_do_not_alias_each_other() {
        let l = layout(0);
        let w_end = l.weights_base() + l.weight_bytes();
        assert!(w_end < l.indices_base());
        assert!(l.indices_base() + l.total_lookups * 4 < l.output_base());
        assert!(l.output_base() + l.output_bytes < TableLayout::local_base(0));
    }

    #[test]
    fn row_chunk_lines_are_line_aligned_and_distinct() {
        let l = layout(0);
        let c0 = l.row_chunk_line(5, 0);
        let c1 = l.row_chunk_line(5, 1);
        assert_eq!(c0 % LINE_BYTES, 0);
        assert_eq!(c1 - c0, LINE_BYTES);
        assert_eq!(l.chunks_per_row(), 4);
    }

    #[test]
    fn adjacent_indices_share_a_line() {
        let l = layout(0);
        assert_eq!(l.index_line(0), l.index_line(31));
        assert_ne!(l.index_line(0), l.index_line(32));
    }

    #[test]
    fn output_chunks_follow_row_major_layout() {
        let l = layout(0);
        let ed = 128;
        let bag0_chunk0 = l.output_chunk_line(0, 0, ed);
        let bag0_chunk1 = l.output_chunk_line(0, 1, ed);
        let bag1_chunk0 = l.output_chunk_line(1, 0, ed);
        assert_eq!(bag0_chunk1 - bag0_chunk0, LINE_BYTES);
        assert_eq!(bag1_chunk0 - bag0_chunk0, ed as u64 * 4);
    }

    #[test]
    fn local_windows_are_private_per_warp() {
        let w0 = TableLayout::local_line(0, 0);
        let w1 = TableLayout::local_line(1, 0);
        assert!(w1 - w0 >= LOCAL_BYTES_PER_WARP);
        // Slots wrap inside the window instead of spilling into a neighbour.
        let many = TableLayout::local_line(0, 10_000);
        assert!(many < TableLayout::local_base(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_row_panics() {
        let l = layout(0);
        let _ = l.row_element_addr(10_000, 0);
    }
}
