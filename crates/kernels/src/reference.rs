//! Functional (numerical) reference implementations of the embedding-bag
//! forward pass.
//!
//! The simulator in `gpu-sim` models timing only; this module provides the
//! actual arithmetic so that the `dlrm` crate can run a real forward pass and
//! so that property tests can check that the SIMT-style work partitioning
//! used by the kernels (one thread per output element) computes exactly the
//! same result as the straightforward per-bag loop of Algorithm 2.

use dlrm_datasets::EmbeddingTrace;

/// A deterministic, procedurally generated embedding table. Generating
/// values on the fly avoids materialising the paper's 60 GB model while
/// still giving every `(row, column)` pair a unique, reproducible value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticTable {
    /// Number of rows.
    pub num_rows: u64,
    /// Elements per row.
    pub embedding_dim: u32,
    /// Seed folded into every value.
    pub seed: u64,
}

impl SyntheticTable {
    /// Creates a synthetic table.
    pub fn new(num_rows: u64, embedding_dim: u32, seed: u64) -> Self {
        assert!(num_rows > 0 && embedding_dim > 0, "table must be non-empty");
        SyntheticTable {
            num_rows,
            embedding_dim,
            seed,
        }
    }

    /// The value stored at `(row, col)`.
    ///
    /// # Panics
    /// Panics if the coordinates are out of range.
    pub fn value(&self, row: u64, col: u32) -> f32 {
        assert!(row < self.num_rows, "row {row} out of range");
        assert!(col < self.embedding_dim, "column {col} out of range");
        let mut x = row
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(col as u64)
            .wrapping_add(self.seed.wrapping_mul(0xD6E8_FEB8_6659_FD93));
        x ^= x >> 32;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 29;
        // Map to a small, well-conditioned range so fp32 sums stay exact
        // enough for bit-equality between summation orders over one bag.
        ((x % 2048) as f32 - 1024.0) / 1024.0
    }

    /// Materialises one full row (mainly useful for tests).
    pub fn row(&self, row: u64) -> Vec<f32> {
        (0..self.embedding_dim)
            .map(|c| self.value(row, c))
            .collect()
    }
}

/// The straightforward embedding-bag forward pass (sum pooling), looping over
/// bags exactly as the paper's Algorithm 2 does. Returns a
/// `batch_size * embedding_dim` row-major output matrix.
///
/// # Panics
/// Panics if the trace's row indices exceed the table size.
pub fn embedding_bag_forward(table: &SyntheticTable, trace: &EmbeddingTrace) -> Vec<f32> {
    let ed = table.embedding_dim as usize;
    let mut out = vec![0.0f32; trace.num_bags() * ed];
    for bag in 0..trace.num_bags() {
        for &row in trace.bag(bag) {
            assert!(
                (row as u64) < table.num_rows,
                "trace references row {row} beyond the table"
            );
            for col in 0..ed {
                out[bag * ed + col] += table.value(row as u64, col as u32);
            }
        }
    }
    out
}

/// The same computation partitioned the way the CUDA kernel partitions it:
/// one "thread" per `(bag, column)` output element, each reducing its own
/// column across the bag's lookups (paper Figure 4). Must produce bit-equal
/// results to [`embedding_bag_forward`] because each output element is summed
/// in the same order.
pub fn embedding_bag_forward_simt(table: &SyntheticTable, trace: &EmbeddingTrace) -> Vec<f32> {
    let ed = table.embedding_dim as usize;
    let batch = trace.num_bags();
    let mut out = vec![0.0f32; batch * ed];
    // Iterate "threads" in launch order: block by block, warp by warp.
    for thread in 0..batch * ed {
        let bag = thread / ed;
        let col = (thread % ed) as u32;
        let mut acc = 0.0f32;
        for &row in trace.bag(bag) {
            acc += table.value(row as u64, col);
        }
        out[bag * ed + col as usize] = acc;
    }
    out
}

/// Mean-pooled variant of the forward pass (the PyTorch operator supports
/// `sum` and `mean` modes; DLRM uses `sum`, but the operator is provided for
/// completeness).
pub fn embedding_bag_forward_mean(table: &SyntheticTable, trace: &EmbeddingTrace) -> Vec<f32> {
    let ed = table.embedding_dim as usize;
    let mut out = embedding_bag_forward(table, trace);
    for bag in 0..trace.num_bags() {
        let n = trace.bag(bag).len().max(1) as f32;
        for col in 0..ed {
            out[bag * ed + col] /= n;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrm_datasets::{AccessPattern, TraceConfig};

    fn trace(pattern: AccessPattern) -> EmbeddingTrace {
        TraceConfig::new(1_000, 16, 8).generate(pattern, 5)
    }

    #[test]
    fn synthetic_values_are_deterministic_and_bounded() {
        let t = SyntheticTable::new(100, 32, 7);
        for row in 0..100 {
            for col in 0..32 {
                let v = t.value(row, col);
                assert_eq!(v, t.value(row, col));
                assert!((-1.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn different_rows_have_different_contents() {
        let t = SyntheticTable::new(100, 64, 0);
        assert_ne!(t.row(1), t.row(2));
        let s1: f32 = t.row(1).iter().sum();
        let s2: f32 = t.row(2).iter().sum();
        assert_ne!(s1, s2);
    }

    #[test]
    fn forward_output_has_expected_shape() {
        let t = SyntheticTable::new(1_000, 64, 1);
        let tr = trace(AccessPattern::MedHot);
        let out = embedding_bag_forward(&t, &tr);
        assert_eq!(out.len(), 16 * 64);
    }

    #[test]
    fn simt_partitioning_matches_reference_exactly() {
        let t = SyntheticTable::new(1_000, 64, 3);
        for pattern in AccessPattern::ALL {
            let tr = trace(pattern);
            let a = embedding_bag_forward(&t, &tr);
            let b = embedding_bag_forward_simt(&t, &tr);
            assert_eq!(a, b, "partitioned sum must be bit-identical for {pattern}");
        }
    }

    #[test]
    fn one_item_bags_are_multiples_of_the_row() {
        let t = SyntheticTable::new(1_000, 32, 11);
        let tr = TraceConfig::new(1_000, 4, 8).generate(AccessPattern::OneItem, 2);
        let row = tr.indices[0] as u64;
        let out = embedding_bag_forward(&t, &tr);
        for col in 0..32u32 {
            let expected = t.value(row, col) * 8.0;
            assert!((out[col as usize] - expected).abs() < 1e-4);
        }
    }

    #[test]
    fn mean_pooling_divides_by_bag_size() {
        let t = SyntheticTable::new(1_000, 32, 11);
        let tr = trace(AccessPattern::HighHot);
        let sum = embedding_bag_forward(&t, &tr);
        let mean = embedding_bag_forward_mean(&t, &tr);
        for i in 0..sum.len() {
            assert!((mean[i] * 8.0 - sum[i]).abs() < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_value_panics() {
        let t = SyntheticTable::new(10, 8, 0);
        let _ = t.value(10, 0);
    }
}
