//! The embedding workload: one table's trace plus the geometry needed to map
//! it onto CUDA threads the way the PyTorch kernel does (paper Figure 4).

use std::sync::Arc;

use dlrm_datasets::{AccessPattern, EmbeddingTrace, TraceConfig};

use crate::layout::TableLayout;

/// Threads per block used by the off-the-shelf PyTorch embedding-bag kernel
/// (block shape (32, 8, 1) in the paper's Section III-A).
pub const THREADS_PER_BLOCK: u32 = 256;

/// Geometry of one embedding table and the batch executed against it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmbeddingConfig {
    /// Trace shape: rows, batch size, pooling factor.
    pub trace: TraceConfig,
    /// Embedding dimension (fp32 elements per row). Must be a multiple of 32
    /// and divide into 256-thread blocks evenly.
    pub embedding_dim: u32,
}

impl EmbeddingConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    /// Panics if the embedding dimension is not a multiple of the warp size
    /// or does not evenly tile a 256-thread block.
    pub fn new(trace: TraceConfig, embedding_dim: u32) -> Self {
        assert!(
            embedding_dim >= 32 && embedding_dim.is_multiple_of(32),
            "embedding dimension must be a positive multiple of the 32-thread warp"
        );
        assert!(
            THREADS_PER_BLOCK.is_multiple_of(embedding_dim)
                || embedding_dim.is_multiple_of(THREADS_PER_BLOCK),
            "embedding dimension must tile the 256-thread block"
        );
        EmbeddingConfig {
            trace,
            embedding_dim,
        }
    }

    /// The paper's full-scale configuration: 500K rows x 128 elements,
    /// batch 2048, pooling factor 150 (Section V).
    pub fn paper_scale() -> Self {
        EmbeddingConfig::new(TraceConfig::paper_scale(), 128)
    }

    /// Bytes per embedding row (fp32).
    pub fn row_bytes(&self) -> u64 {
        self.embedding_dim as u64 * 4
    }

    /// Warps needed per sample (one warp covers 32 elements).
    pub fn warps_per_bag(&self) -> u32 {
        self.embedding_dim / 32
    }

    /// Thread blocks in the embedding-bag grid (`batch * dim / 256`).
    pub fn grid_blocks(&self) -> u32 {
        (self.trace.batch_size as u64 * self.embedding_dim as u64)
            .div_ceil(THREADS_PER_BLOCK as u64) as u32
    }

    /// Bags processed per thread block.
    pub fn bags_per_block(&self) -> u32 {
        (THREADS_PER_BLOCK / self.embedding_dim).max(1)
    }

    /// Data processed per table in bytes: `batch * pooling * row_bytes`
    /// (the paper's Section III-A arithmetic).
    pub fn data_processed_bytes(&self) -> u64 {
        self.trace.total_lookups() * self.row_bytes()
    }

    /// Total weight bytes of one table.
    pub fn table_bytes(&self) -> u64 {
        self.trace.num_rows * self.row_bytes()
    }
}

/// One embedding table's workload: its configuration, generated trace, and
/// device-memory layout. Cheap to clone (the trace is shared).
#[derive(Debug, Clone)]
pub struct EmbeddingWorkload {
    /// The geometry of the table and batch.
    pub config: EmbeddingConfig,
    /// The generated lookup trace.
    pub trace: Arc<EmbeddingTrace>,
    /// The device-memory layout of this table.
    pub layout: TableLayout,
}

impl EmbeddingWorkload {
    /// Generates the trace for `pattern` and wraps it with layout information
    /// for table `table_index`, seeding the generator with `seed`.
    pub fn generate(
        config: EmbeddingConfig,
        pattern: AccessPattern,
        table_index: u32,
        seed: u64,
    ) -> Self {
        let trace = Arc::new(
            config
                .trace
                .generate(pattern, seed.wrapping_add(table_index as u64)),
        );
        Self::from_trace(config, trace, table_index)
    }

    /// Wraps an existing trace (useful for tests that need a hand-built one).
    ///
    /// # Panics
    /// Panics if the trace shape does not match the configuration.
    pub fn from_trace(
        config: EmbeddingConfig,
        trace: Arc<EmbeddingTrace>,
        table_index: u32,
    ) -> Self {
        assert_eq!(
            trace.config, config.trace,
            "trace shape must match the embedding configuration"
        );
        let layout = TableLayout::new(
            table_index,
            config.trace.num_rows,
            config.row_bytes(),
            config.trace.total_lookups(),
            config.trace.batch_size as u64 * config.row_bytes(),
        );
        EmbeddingWorkload {
            config,
            trace,
            layout,
        }
    }

    /// The access pattern of the underlying trace.
    pub fn pattern(&self) -> AccessPattern {
        self.trace.pattern
    }

    /// Work assignment of one warp: which bag it reduces and which 128-byte
    /// chunk of the row it covers. Returns `None` if the warp falls outside
    /// the batch (can only happen for padded grids).
    pub fn warp_assignment(&self, block_id: u32, warp_in_block: u32) -> Option<WarpAssignment> {
        let bags_per_block = self.config.bags_per_block();
        let warps_per_bag = self.config.warps_per_bag();
        let bag_in_block = warp_in_block / warps_per_bag;
        let chunk = warp_in_block % warps_per_bag;
        let bag = block_id as u64 * bags_per_block as u64 + bag_in_block as u64;
        if bag >= self.config.trace.batch_size as u64 {
            return None;
        }
        Some(WarpAssignment {
            bag,
            chunk,
            pooling_factor: self.config.trace.pooling_factor,
        })
    }

    /// The row index of lookup `i` of `bag`.
    pub fn lookup_row(&self, bag: u64, i: u32) -> u64 {
        let offset = self.trace.offsets[bag as usize] as u64 + i as u64;
        self.trace.indices[offset as usize] as u64
    }

    /// The flat lookup position of `(bag, i)` within the indices array.
    pub fn lookup_position(&self, bag: u64, i: u32) -> u64 {
        self.trace.offsets[bag as usize] as u64 + i as u64
    }

    /// The hottest-row candidates an offline profiling pass would pin for
    /// this table (paper Figure 10, step 1).
    pub fn hot_rows(&self, count: usize) -> Vec<u64> {
        self.config.trace.hot_row_candidates(
            self.pattern(),
            count,
            // The generation seed is already folded into the trace; the
            // candidates only depend on the pattern's popularity ranking.
            self.layout.table_index as u64,
        )
    }
}

/// The work of one warp: reduce `pooling_factor` rows into one 32-element
/// chunk of one bag's output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarpAssignment {
    /// The bag (sample) this warp works on.
    pub bag: u64,
    /// Which 128-byte chunk of the row / output this warp covers.
    pub chunk: u32,
    /// Lookups to reduce.
    pub pooling_factor: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> EmbeddingConfig {
        EmbeddingConfig::new(TraceConfig::new(5_000, 64, 16), 128)
    }

    #[test]
    fn paper_scale_geometry_matches_section_iii() {
        let c = EmbeddingConfig::paper_scale();
        assert_eq!(c.grid_blocks(), 1024);
        assert_eq!(c.warps_per_bag(), 4);
        assert_eq!(c.bags_per_block(), 2);
        assert_eq!(c.row_bytes(), 512);
        // 2048 * 150 * 128 * 4B = 150 MB of data processed per table.
        assert_eq!(c.data_processed_bytes(), 2048 * 150 * 512);
    }

    #[test]
    fn warp_assignment_covers_all_bags_and_chunks() {
        let w = EmbeddingWorkload::generate(config(), AccessPattern::MedHot, 0, 1);
        // audit:allow(unordered_collection): len-only coverage check
        let mut seen = std::collections::HashSet::new();
        for block in 0..config().grid_blocks() {
            for warp in 0..(THREADS_PER_BLOCK / 32) {
                if let Some(a) = w.warp_assignment(block, warp) {
                    seen.insert((a.bag, a.chunk));
                }
            }
        }
        assert_eq!(
            seen.len() as u64,
            64 * 4,
            "every (bag, chunk) pair appears exactly once"
        );
    }

    #[test]
    fn small_embedding_dim_packs_multiple_bags_per_block() {
        let c = EmbeddingConfig::new(TraceConfig::new(1_000, 16, 4), 64);
        assert_eq!(c.bags_per_block(), 4);
        assert_eq!(c.warps_per_bag(), 2);
        assert_eq!(c.grid_blocks(), 4);
    }

    #[test]
    fn lookup_row_matches_trace() {
        let w = EmbeddingWorkload::generate(config(), AccessPattern::HighHot, 0, 7);
        let bag = 3u64;
        let i = 5u32;
        let expected = w.trace.bag(bag as usize)[i as usize] as u64;
        assert_eq!(w.lookup_row(bag, i), expected);
        assert_eq!(w.lookup_position(bag, i), bag * 16 + 5);
    }

    #[test]
    fn hot_rows_are_within_table() {
        let w = EmbeddingWorkload::generate(config(), AccessPattern::HighHot, 2, 3);
        let hot = w.hot_rows(100);
        assert_eq!(hot.len(), 100);
        assert!(hot.iter().all(|&r| r < 5_000));
    }

    #[test]
    fn out_of_batch_warp_gets_no_assignment() {
        // Batch of 3 bags with ED=128 needs 1.5 blocks -> grid of 2 blocks,
        // so the last block's second bag is out of range.
        let c = EmbeddingConfig::new(TraceConfig::new(1_000, 3, 4), 128);
        let w = EmbeddingWorkload::generate(c, AccessPattern::Random, 0, 1);
        assert!(w.warp_assignment(1, 0).is_some());
        assert!(w.warp_assignment(1, 4).is_none());
    }

    #[test]
    #[should_panic(expected = "multiple of the 32-thread warp")]
    fn bad_embedding_dim_rejected() {
        let _ = EmbeddingConfig::new(TraceConfig::new(100, 4, 2), 48);
    }

    #[test]
    #[should_panic(expected = "trace shape")]
    fn mismatched_trace_rejected() {
        let cfg_a = EmbeddingConfig::new(TraceConfig::new(100, 4, 2), 64);
        let cfg_b = EmbeddingConfig::new(TraceConfig::new(100, 8, 2), 64);
        let trace = Arc::new(cfg_a.trace.generate(AccessPattern::Random, 1));
        let _ = EmbeddingWorkload::from_trace(cfg_b, trace, 0);
    }
}
