//! The embedding-bag kernel as a [`gpu_sim`] warp program.
//!
//! Work partitioning follows the paper's Figure 4: the grid contains
//! `batch_size * embedding_dim / 256` blocks of 256 threads, each thread owns
//! one output element, and a warp therefore covers one 128-byte chunk of one
//! bag's output. Every warp executes the gather-reduce loop of Algorithm 2:
//!
//! ```text
//! for idx in offsets[bag] .. offsets[bag+1]:
//!     row   = indices[idx];          // index load
//!     value = weights[row][chunk];   // gather load  (depends on `row`)
//!     acc  += value;                 // reduce       (depends on `value`)
//! output[bag][chunk] = acc;
//! ```
//!
//! The prefetching variants restructure this loop exactly as the paper's
//! Figure 8 does: a batch of `distance` (index, gather) pairs is issued ahead
//! of time into the chosen buffer station, and the reduce phase consumes from
//! the buffer.

use std::collections::VecDeque;
use std::sync::Arc;

use dlrm_datasets::EmbeddingTrace;
use gpu_sim::isa::SrcSet;
use gpu_sim::{
    Instruction, KernelProgram, LineSet, MemSpace, PrefetchTarget, WarpInfo, WarpProgram,
};

use crate::layout::TableLayout;
use crate::spec::{BufferStation, EmbeddingKernelSpec};
use crate::workload::{EmbeddingConfig, EmbeddingWorkload, WarpAssignment};

// Register assignments within the modelled warp context.
const R_ACC: u8 = 10;
const R_IDX: u8 = 1;
const R_ADDR: u8 = 2;
const R_VAL: u8 = 3;
const R_LOOP: u8 = 4;
const R_SPILL: u8 = 5;
const R_BUF_BASE: u8 = 20; // prefetched row values
const R_IDXBUF_BASE: u8 = 60; // prefetched indices
const R_ADDRBUF_BASE: u8 = 100; // computed row addresses
const R_TMP_BASE: u8 = 140; // staging registers for SMPF/LMPF stores

/// The embedding-bag kernel program (all variants).
#[derive(Debug, Clone)]
pub struct EmbeddingBagKernel {
    workload: EmbeddingWorkload,
    spec: EmbeddingKernelSpec,
    name: String,
    /// Upper bound on the instructions one [`EmbeddingWarp::refill`] call
    /// enqueues, so every warp's instruction buffer is allocated once at
    /// spawn instead of growing through reallocation on the launch path
    /// (thousands of warps spawn per kernel).
    queue_capacity: usize,
}

impl EmbeddingBagKernel {
    /// Creates the kernel for a workload and build specification.
    pub fn new(workload: EmbeddingWorkload, spec: EmbeddingKernelSpec) -> Self {
        let name = spec.name();
        // Worst-case instructions per lookup (overhead ALUs, index load,
        // address ALU, gather, reduce, buffer-station moves, spill traffic),
        // times the lookups one refill covers (the prefetch distance, or 1).
        let per_lookup = 8 + 2 * spec.spills_per_iteration() as usize;
        let lookups_per_refill = spec.prefetch().map_or(1, |p| p.distance.max(1) as usize);
        EmbeddingBagKernel {
            workload,
            spec,
            name,
            queue_capacity: per_lookup * lookups_per_refill,
        }
    }

    /// The build specification of this kernel.
    pub fn spec(&self) -> &EmbeddingKernelSpec {
        &self.spec
    }

    /// The workload this kernel executes.
    pub fn workload(&self) -> &EmbeddingWorkload {
        &self.workload
    }
}

impl KernelProgram for EmbeddingBagKernel {
    fn warp_program(&self, info: WarpInfo) -> Box<dyn WarpProgram> {
        match self
            .workload
            .warp_assignment(info.block_id, info.warp_in_block)
        {
            None => Box::new(EmptyWarp),
            Some(assignment) => Box::new(EmbeddingWarp {
                trace: Arc::clone(&self.workload.trace),
                layout: self.workload.layout,
                config: self.workload.config,
                assignment,
                spec: self.spec,
                global_warp_id: info.global_warp_id,
                next_lookup: 0,
                emitted_prologue: false,
                emitted_epilogue: false,
                queue: VecDeque::with_capacity(self.queue_capacity),
            }),
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A warp with no work (its bag falls outside the batch).
struct EmptyWarp;

impl WarpProgram for EmptyWarp {
    fn next_inst(&mut self) -> Option<Instruction> {
        None
    }
}

/// One warp's gather-reduce execution.
struct EmbeddingWarp {
    trace: Arc<EmbeddingTrace>,
    layout: TableLayout,
    config: EmbeddingConfig,
    assignment: WarpAssignment,
    spec: EmbeddingKernelSpec,
    global_warp_id: u64,
    next_lookup: u32,
    emitted_prologue: bool,
    emitted_epilogue: bool,
    queue: VecDeque<Instruction>,
}

impl EmbeddingWarp {
    fn lookup_row(&self, i: u32) -> u64 {
        let offset = self.trace.offsets[self.assignment.bag as usize] as u64 + i as u64;
        self.trace.indices[offset as usize] as u64
    }

    fn lookup_position(&self, i: u32) -> u64 {
        self.trace.offsets[self.assignment.bag as usize] as u64 + i as u64
    }

    fn index_line(&self, i: u32) -> u64 {
        self.layout.index_line(self.lookup_position(i))
    }

    fn row_line(&self, i: u32) -> u64 {
        self.layout
            .row_chunk_line(self.lookup_row(i), self.assignment.chunk)
    }

    fn push_overhead(&mut self) {
        self.queue.push_back(Instruction::Alu {
            dst: R_LOOP,
            srcs: SrcSet::none(),
            latency: 0,
        });
    }

    fn push_spill_traffic(&mut self, iteration: u32) {
        for s in 0..self.spec.spills_per_iteration() {
            let slot = iteration as u64 * 4 + s as u64;
            let line = TableLayout::local_line(self.global_warp_id, slot);
            self.queue.push_back(Instruction::Store {
                space: MemSpace::Local,
                lines: LineSet::single(line),
                src: R_LOOP,
                bytes: 128,
            });
            self.queue.push_back(Instruction::Load {
                space: MemSpace::Local,
                lines: LineSet::single(line),
                dst: R_SPILL,
                bytes: 128,
                addr_dep: None,
            });
        }
    }

    fn push_index_load(&mut self, i: u32, dst: u8) {
        self.queue.push_back(Instruction::Load {
            space: MemSpace::Global,
            lines: LineSet::single(self.index_line(i)),
            dst,
            bytes: 4,
            addr_dep: None,
        });
    }

    fn push_gather(&mut self, i: u32, dst: u8, addr_reg: u8) {
        self.queue.push_back(Instruction::Load {
            space: MemSpace::Global,
            lines: LineSet::single(self.row_line(i)),
            dst,
            bytes: 128,
            addr_dep: Some(addr_reg),
        });
    }

    /// Prologue: load `offsets[bag]` and `offsets[bag+1]` and set up loop
    /// bounds (paper Algorithm 2's first two statements).
    fn build_prologue(&mut self) {
        self.queue.push_back(Instruction::Load {
            space: MemSpace::Global,
            lines: LineSet::single(self.index_line(0) & !0xFFF),
            dst: R_LOOP,
            bytes: 8,
            addr_dep: None,
        });
        self.queue.push_back(Instruction::Alu {
            dst: R_LOOP,
            srcs: SrcSet::one(R_LOOP),
            latency: 0,
        });
        self.queue.push_back(Instruction::Alu {
            dst: R_ACC,
            srcs: SrcSet::none(),
            latency: 0,
        });
    }

    /// The unmodified gather-reduce iteration (base and OptMT builds).
    fn build_plain_iteration(&mut self, i: u32) {
        self.push_overhead();
        self.push_overhead();
        self.push_index_load(i, R_IDX);
        self.queue.push_back(Instruction::Alu {
            dst: R_ADDR,
            srcs: SrcSet::one(R_IDX),
            latency: 0,
        });
        self.push_gather(i, R_VAL, R_ADDR);
        self.queue.push_back(Instruction::Alu {
            dst: R_ACC,
            srcs: SrcSet::two(R_VAL, R_ACC),
            latency: 0,
        });
        self.push_spill_traffic(i);
    }

    /// One prefetched superstep covering lookups `[start, end)`.
    fn build_prefetch_superstep(&mut self, start: u32, end: u32, station: BufferStation) {
        let n = end - start;
        // Phase 1: issue all index loads and gathers ahead of use so the
        // scoreboard can overlap their latencies.
        for k in 0..n {
            let i = start + k;
            let idx_reg = R_IDXBUF_BASE + (k as u8 % 16);
            let addr_reg = R_ADDRBUF_BASE + (k as u8 % 16);
            self.push_overhead();
            self.push_index_load(i, idx_reg);
            self.queue.push_back(Instruction::Alu {
                dst: addr_reg,
                srcs: SrcSet::one(idx_reg),
                latency: 0,
            });
            match station {
                BufferStation::Register => {
                    self.push_gather(i, R_BUF_BASE + (k as u8 % 16), addr_reg);
                }
                BufferStation::SharedMem | BufferStation::LocalMem => {
                    self.push_gather(i, R_TMP_BASE + (k as u8 % 16), addr_reg);
                }
                BufferStation::L1Cache => {
                    self.queue.push_back(Instruction::Prefetch {
                        target: PrefetchTarget::L1,
                        lines: LineSet::single(self.row_line(i)),
                        addr_dep: Some(addr_reg),
                    });
                }
            }
        }
        // Phase 2 (SMPF/LMPF only): drain the staging registers into the
        // buffer station.
        if matches!(station, BufferStation::SharedMem | BufferStation::LocalMem) {
            for k in 0..n {
                let (space, line) = match station {
                    BufferStation::SharedMem => (MemSpace::Shared, 0),
                    _ => (
                        MemSpace::Local,
                        TableLayout::local_line(self.global_warp_id, k as u64),
                    ),
                };
                self.queue.push_back(Instruction::Store {
                    space,
                    lines: LineSet::single(line),
                    src: R_TMP_BASE + (k as u8 % 16),
                    bytes: 128,
                });
            }
        }
        // Phase 3: consume.
        for k in 0..n {
            let i = start + k;
            let value_reg = match station {
                BufferStation::Register => R_BUF_BASE + (k as u8 % 16),
                BufferStation::SharedMem | BufferStation::LocalMem | BufferStation::L1Cache => {
                    R_VAL
                }
            };
            match station {
                BufferStation::Register => {}
                BufferStation::SharedMem => {
                    self.queue.push_back(Instruction::Load {
                        space: MemSpace::Shared,
                        lines: LineSet::single(0),
                        dst: R_VAL,
                        bytes: 128,
                        addr_dep: None,
                    });
                }
                BufferStation::LocalMem => {
                    self.queue.push_back(Instruction::Load {
                        space: MemSpace::Local,
                        lines: LineSet::single(TableLayout::local_line(
                            self.global_warp_id,
                            k as u64,
                        )),
                        dst: R_VAL,
                        bytes: 128,
                        addr_dep: None,
                    });
                }
                BufferStation::L1Cache => {
                    // The demand load still executes; it should now hit in L1.
                    self.push_gather(i, R_VAL, R_ADDRBUF_BASE + (k as u8 % 16));
                }
            }
            self.queue.push_back(Instruction::Alu {
                dst: R_ACC,
                srcs: SrcSet::two(value_reg, R_ACC),
                latency: 0,
            });
            self.push_overhead();
            self.push_spill_traffic(i);
        }
    }

    fn build_epilogue(&mut self) {
        let line = self.layout.output_chunk_line(
            self.assignment.bag,
            self.assignment.chunk,
            self.config.embedding_dim,
        );
        self.queue.push_back(Instruction::Store {
            space: MemSpace::Global,
            lines: LineSet::single(line),
            src: R_ACC,
            bytes: 128,
        });
    }

    fn refill(&mut self) {
        if !self.emitted_prologue {
            self.emitted_prologue = true;
            self.build_prologue();
            return;
        }
        let pooling = self.assignment.pooling_factor;
        if self.next_lookup >= pooling {
            if !self.emitted_epilogue {
                self.emitted_epilogue = true;
                self.build_epilogue();
            }
            return;
        }
        match self.spec.prefetch() {
            None => {
                let i = self.next_lookup;
                self.next_lookup += 1;
                self.build_plain_iteration(i);
            }
            Some(p) => {
                let start = self.next_lookup;
                let end = (start + p.distance).min(pooling);
                self.next_lookup = end;
                self.build_prefetch_superstep(start, end, p.station);
            }
        }
    }
}

impl WarpProgram for EmbeddingWarp {
    fn next_inst(&mut self) -> Option<Instruction> {
        loop {
            if let Some(inst) = self.queue.pop_front() {
                return Some(inst);
            }
            if self.emitted_epilogue {
                return None;
            }
            self.refill();
            if self.queue.is_empty() && self.emitted_epilogue {
                return None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PrefetchConfig;
    use dlrm_datasets::{AccessPattern, TraceConfig};
    use gpu_sim::{GpuConfig, Simulator};

    fn small_workload(pattern: AccessPattern) -> EmbeddingWorkload {
        let cfg = EmbeddingConfig::new(TraceConfig::new(20_000, 32, 16), 128);
        EmbeddingWorkload::generate(cfg, pattern, 0, 1)
    }

    fn drain(kernel: &EmbeddingBagKernel, block: u32, warp: u32) -> Vec<Instruction> {
        let info = WarpInfo {
            block_id: block,
            warp_in_block: warp,
            warps_per_block: 8,
            threads_per_block: 256,
            global_warp_id: (block * 8 + warp) as u64,
            sm_id: 0,
        };
        let mut prog = kernel.warp_program(info);
        let mut v = Vec::new();
        while let Some(i) = prog.next_inst() {
            v.push(i);
            assert!(v.len() < 100_000, "warp program failed to terminate");
        }
        v
    }

    fn count_loads(insts: &[Instruction], space: MemSpace) -> usize {
        insts
            .iter()
            .filter(|i| matches!(i, Instruction::Load { space: s, .. } if *s == space))
            .count()
    }

    #[test]
    fn base_kernel_emits_two_global_loads_per_lookup() {
        let w = small_workload(AccessPattern::MedHot);
        let kernel = EmbeddingKernelSpec::base().kernel(&w);
        let insts = drain(&kernel, 0, 0);
        // Prologue has one extra load; each of the 16 lookups does an index
        // load and a gather.
        assert_eq!(count_loads(&insts, MemSpace::Global), 1 + 2 * 16);
        // Exactly one output store.
        let stores = insts
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    Instruction::Store {
                        space: MemSpace::Global,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(stores, 1);
    }

    #[test]
    fn gather_loads_depend_on_index_loads() {
        let w = small_workload(AccessPattern::Random);
        let kernel = EmbeddingKernelSpec::base().kernel(&w);
        let insts = drain(&kernel, 0, 0);
        let gathers: Vec<&Instruction> = insts
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    Instruction::Load {
                        bytes: 128,
                        space: MemSpace::Global,
                        ..
                    }
                )
            })
            .collect();
        assert!(!gathers.is_empty());
        assert!(gathers.iter().all(|i| matches!(
            i,
            Instruction::Load {
                addr_dep: Some(_),
                ..
            }
        )));
    }

    #[test]
    fn warps_of_same_bag_touch_different_row_chunks() {
        let w = small_workload(AccessPattern::OneItem);
        let kernel = EmbeddingKernelSpec::base().kernel(&w);
        let chunk0 = drain(&kernel, 0, 0);
        let chunk1 = drain(&kernel, 0, 1);
        let first_gather = |insts: &[Instruction]| {
            insts
                .iter()
                .find_map(|i| match i {
                    Instruction::Load {
                        bytes: 128,
                        lines,
                        space: MemSpace::Global,
                        ..
                    } => Some(lines.iter().next().unwrap()),
                    _ => None,
                })
                .unwrap()
        };
        assert_eq!(first_gather(&chunk1) - first_gather(&chunk0), 128);
    }

    #[test]
    fn spilling_build_adds_local_memory_traffic() {
        let w = small_workload(AccessPattern::MedHot);
        let spec = EmbeddingKernelSpec::base().with_max_registers(32);
        assert!(spec.spills_per_iteration() > 0);
        let insts = drain(&spec.kernel(&w), 0, 0);
        assert!(count_loads(&insts, MemSpace::Local) > 0);
        let base_insts = drain(&EmbeddingKernelSpec::base().kernel(&w), 0, 0);
        assert_eq!(count_loads(&base_insts, MemSpace::Local), 0);
        assert!(insts.len() > base_insts.len());
    }

    #[test]
    fn rpf_emits_same_gathers_but_batched() {
        let w = small_workload(AccessPattern::LowHot);
        let rpf = EmbeddingKernelSpec::base()
            .with_prefetch(PrefetchConfig::new(BufferStation::Register, 4));
        let insts = drain(&rpf.kernel(&w), 0, 0);
        // Same number of gather loads as the base kernel: prefetching is
        // 100% accurate and has 100% coverage (paper Section IV-B).
        assert_eq!(count_loads(&insts, MemSpace::Global), 1 + 2 * 16);
    }

    #[test]
    fn smpf_buffers_through_shared_memory() {
        let w = small_workload(AccessPattern::LowHot);
        let smpf = EmbeddingKernelSpec::base()
            .with_prefetch(PrefetchConfig::new(BufferStation::SharedMem, 4));
        let insts = drain(&smpf.kernel(&w), 0, 0);
        let shared_stores = insts
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    Instruction::Store {
                        space: MemSpace::Shared,
                        ..
                    }
                )
            })
            .count();
        let shared_loads = count_loads(&insts, MemSpace::Shared);
        assert_eq!(shared_stores, 16);
        assert_eq!(shared_loads, 16);
    }

    #[test]
    fn lmpf_buffers_through_local_memory() {
        let w = small_workload(AccessPattern::LowHot);
        let lmpf = EmbeddingKernelSpec::base()
            .with_prefetch(PrefetchConfig::new(BufferStation::LocalMem, 4));
        let insts = drain(&lmpf.kernel(&w), 0, 0);
        assert_eq!(count_loads(&insts, MemSpace::Local), 16);
    }

    #[test]
    fn l1dpf_issues_prefetches_plus_demand_loads() {
        let w = small_workload(AccessPattern::LowHot);
        let spec = EmbeddingKernelSpec::base()
            .with_prefetch(PrefetchConfig::new(BufferStation::L1Cache, 4));
        let insts = drain(&spec.kernel(&w), 0, 0);
        let prefetches = insts
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    Instruction::Prefetch {
                        target: PrefetchTarget::L1,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(prefetches, 16);
        // Demand gathers are still issued, so global loads match the base.
        assert_eq!(count_loads(&insts, MemSpace::Global), 1 + 2 * 16);
    }

    #[test]
    fn prefetch_variants_have_instruction_overhead() {
        let w = small_workload(AccessPattern::MedHot);
        let base_len = drain(&EmbeddingKernelSpec::base().kernel(&w), 0, 0).len();
        for station in BufferStation::ALL {
            let spec = EmbeddingKernelSpec::base().with_prefetch(PrefetchConfig::new(station, 4));
            let len = drain(&spec.kernel(&w), 0, 0).len();
            assert!(
                len >= base_len,
                "{} should not reduce instruction count ({} vs {})",
                station.abbreviation(),
                len,
                base_len
            );
        }
    }

    #[test]
    fn partial_final_superstep_covers_all_lookups() {
        // Pooling factor 10 with distance 4 leaves a final superstep of 2.
        let cfg = EmbeddingConfig::new(TraceConfig::new(5_000, 8, 10), 128);
        let w = EmbeddingWorkload::generate(cfg, AccessPattern::MedHot, 0, 3);
        let spec = EmbeddingKernelSpec::base()
            .with_prefetch(PrefetchConfig::new(BufferStation::Register, 4));
        let insts = drain(&spec.kernel(&w), 0, 0);
        assert_eq!(count_loads(&insts, MemSpace::Global), 1 + 2 * 10);
    }

    #[test]
    fn one_item_kernel_runs_fast_in_simulation() {
        let sim = Simulator::new(GpuConfig::test_small());
        let fast = small_workload(AccessPattern::OneItem);
        let slow = small_workload(AccessPattern::Random);
        let spec = EmbeddingKernelSpec::base();
        let t_fast = sim.run(&spec.launch(&fast), &spec.kernel(&fast));
        let t_slow = sim.run(&spec.launch(&slow), &spec.kernel(&slow));
        assert!(
            t_slow.elapsed_cycles > t_fast.elapsed_cycles,
            "random ({}) must be slower than one_item ({})",
            t_slow.elapsed_cycles,
            t_fast.elapsed_cycles
        );
        assert!(t_slow.long_scoreboard_per_inst() > t_fast.long_scoreboard_per_inst());
    }
}
