//! Criterion benchmark of the end-to-end DLRM pipeline: the embedding stage
//! under the base and combined schemes, the functional forward pass, and the
//! non-embedding timing model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlrm::{DlrmConfig, DlrmForward, NonEmbeddingTimingModel, WorkloadScale};
use dlrm_datasets::AccessPattern;
use gpu_sim::GpuConfig;
use perf_envelope::{Experiment, Scheme, Workload};

fn embedding_stage(c: &mut Criterion) {
    let experiment = Experiment::new(GpuConfig::test_small(), WorkloadScale::Test);
    let workload = Workload::end_to_end(AccessPattern::HighHot);
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    for (name, scheme) in [("base", Scheme::base()), ("combined", Scheme::combined())] {
        group.bench_with_input(
            BenchmarkId::new("embedding_stage", name),
            &scheme,
            |b, scheme| {
                b.iter(|| experiment.run(&workload, scheme));
            },
        );
    }
    group.finish();
}

fn functional_forward(c: &mut Criterion) {
    let config = DlrmConfig::at_scale(WorkloadScale::Test);
    let model = DlrmForward::new(config.clone(), 7);
    let traces: Vec<_> = (0..config.num_tables)
        .map(|t| {
            config
                .embedding
                .trace
                .generate(AccessPattern::MedHot, t as u64)
        })
        .collect();
    let dense: Vec<f32> = (0..config.batch_size() as usize * config.bottom_mlp[0] as usize)
        .map(|i| (i % 13) as f32 / 13.0)
        .collect();
    let mut group = c.benchmark_group("functional_forward");
    group.sample_size(10);
    group.bench_function("dlrm_forward_pass", |b| {
        b.iter(|| model.forward(&dense, &traces))
    });
    group.bench_function("non_embedding_timing_model", |b| {
        let timing = NonEmbeddingTimingModel::new(&GpuConfig::a100());
        let paper = DlrmConfig::paper_model();
        b.iter(|| timing.non_embedding_time_us(&paper));
    });
    group.finish();
}

criterion_group!(benches, embedding_stage, functional_forward);
criterion_main!(benches);
