//! Criterion benchmark of the synthetic trace generators and the hotness
//! metrics (unique-access % and coverage curve).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlrm_datasets::{AccessPattern, TraceConfig};

fn generation(c: &mut Criterion) {
    let cfg = TraceConfig::new(250_000, 512, 48);
    let mut group = c.benchmark_group("trace_generation");
    group.sample_size(10);
    for pattern in AccessPattern::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(pattern.paper_name().replace(' ', "_")),
            &pattern,
            |b, &pattern| {
                b.iter(|| cfg.generate(pattern, 42));
            },
        );
    }
    group.finish();
}

fn metrics(c: &mut Criterion) {
    let cfg = TraceConfig::new(250_000, 512, 48);
    let trace = cfg.generate(AccessPattern::MedHot, 42);
    let mut group = c.benchmark_group("trace_metrics");
    group.sample_size(10);
    group.bench_function("unique_access_pct", |b| {
        b.iter(|| trace.unique_access_pct())
    });
    group.bench_function("coverage_curve", |b| {
        b.iter(|| trace.coverage_curve().series())
    });
    group.bench_function("row_popularity", |b| {
        b.iter(|| trace.row_popularity().len())
    });
    group.finish();
}

criterion_group!(benches, generation, metrics);
criterion_main!(benches);
