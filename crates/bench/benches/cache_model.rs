//! Criterion benchmark of the memory-hierarchy model: cache lookups, the L2
//! persisting carve-out, and the synthetic stream / pointer-chase kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::mem::{Cache, MemorySystem};
use gpu_sim::programs::{PointerChaseKernel, StreamKernel};
use gpu_sim::{GpuConfig, KernelLaunch, LineSet, MemSpace, PrefetchTarget, Simulator};

fn cache_operations(c: &mut Criterion) {
    let cfg = GpuConfig::a100();
    let mut group = c.benchmark_group("cache_model");
    group.sample_size(20);
    group.bench_function("l2_access_hit_miss_mix", |b| {
        let mut cache = Cache::new(cfg.l2.clone());
        let mut i = 0u64;
        b.iter(|| {
            let line = (i % 100_000) * 128;
            if !cache.access(line, i) {
                cache.fill(line, false, i);
            }
            i += 1;
        });
    });
    group.bench_function("memory_system_global_load", |b| {
        let mut mem = MemorySystem::new(&cfg);
        let mut i = 0u64;
        b.iter(|| {
            let lines = LineSet::single((i % 500_000) * 128);
            mem.load(0, MemSpace::Global, &lines, 128, i);
            i += 1;
        });
    });
    group.bench_function("l2_evict_last_prefetch", |b| {
        let mut mem = MemorySystem::new(&cfg);
        mem.set_l2_persisting_carveout(cfg.l2_max_persisting_bytes(), &cfg);
        let mut i = 0u64;
        b.iter(|| {
            let lines = LineSet::single((i % 200_000) * 128);
            mem.prefetch(0, PrefetchTarget::L2EvictLast, &lines, i);
            i += 1;
        });
    });
    group.finish();
}

fn synthetic_kernels(c: &mut Criterion) {
    let sim = Simulator::new(GpuConfig::test_small());
    let launch = KernelLaunch::new("bench", 16, 256).with_regs_per_thread(32);
    let mut group = c.benchmark_group("synthetic_kernels");
    group.sample_size(10);
    group.bench_function("stream", |b| {
        let kernel = StreamKernel::new(64);
        b.iter(|| sim.run(&launch, &kernel));
    });
    group.bench_function("pointer_chase", |b| {
        let kernel = PointerChaseKernel::new(64, 1 << 26);
        b.iter(|| sim.run(&launch, &kernel));
    });
    group.finish();
}

criterion_group!(benches, cache_operations, synthetic_kernels);
criterion_main!(benches);
