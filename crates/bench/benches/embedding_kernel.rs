//! Criterion benchmark of the embedding-bag kernel variants on the simulated
//! GPU: base, OptMT, every prefetching scheme, and the combined scheme.
//!
//! These measure the cost of *simulating* one table-level kernel under each
//! scheme; the simulated (modelled) latency itself is what the `figures`
//! harness reports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlrm::{DlrmConfig, WorkloadScale};
use dlrm_datasets::AccessPattern;
use gpu_sim::GpuConfig;
use perf_envelope::{Experiment, Scheme, Workload};

fn kernel_schemes(c: &mut Criterion) {
    let experiment = Experiment::new(GpuConfig::test_small(), WorkloadScale::Test)
        .with_model(DlrmConfig::at_scale(WorkloadScale::Test));
    let workload = Workload::kernel(AccessPattern::MedHot);
    let mut group = c.benchmark_group("embedding_kernel_schemes");
    group.sample_size(10);
    let schemes = [
        ("base", Scheme::base()),
        ("optmt", Scheme::optmt()),
        ("rpf_optmt", Scheme::rpf_optmt()),
        ("l2p_optmt", Scheme::l2p_optmt()),
        ("combined", Scheme::combined()),
    ];
    for (name, scheme) in schemes {
        group.bench_with_input(BenchmarkId::from_parameter(name), &scheme, |b, scheme| {
            b.iter(|| experiment.run(&workload, scheme));
        });
    }
    group.finish();
}

fn kernel_datasets(c: &mut Criterion) {
    let experiment = Experiment::new(GpuConfig::test_small(), WorkloadScale::Test);
    let mut group = c.benchmark_group("embedding_kernel_datasets");
    group.sample_size(10);
    for pattern in AccessPattern::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(pattern.paper_name().replace(' ', "_")),
            &pattern,
            |b, &pattern| {
                b.iter(|| experiment.run(&Workload::kernel(pattern), &Scheme::base()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, kernel_schemes, kernel_datasets);
criterion_main!(benches);
