//! Criterion benchmark of the `Campaign` executor: the same ≥12-cell grid
//! run serially (one worker), in parallel (all cores), and with the result
//! cache attached (steady-state re-runs are served from cache).
//!
//! The `wall_clock` binary (`cargo run --release -p bench --bin
//! wall_clock`) measures this same grid against the cycle-accurate
//! reference engine and emits machine-readable `BENCH_engine.json`.

use bench::options::campaign_bench_grid;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlrm::WorkloadScale;
use gpu_sim::GpuConfig;
use perf_envelope::{Campaign, CampaignCache, Experiment};

fn grid() -> Campaign {
    campaign_bench_grid(Experiment::new(
        GpuConfig::test_small(),
        WorkloadScale::Test,
    ))
}

fn campaign_scaling(c: &mut Criterion) {
    let cells = grid().len();
    assert!(cells >= 12, "the grid must exercise at least 12 cells");
    let mut group = c.benchmark_group("campaign_scaling");
    group.sample_size(10);
    for threads in [1usize, 0] {
        let name = if threads == 1 {
            "serial_1_thread"
        } else {
            "parallel_all_cores"
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &threads,
            |b, &threads| {
                let campaign = grid().threads(threads);
                b.iter(|| campaign.run());
            },
        );
    }
    // Steady state with the campaign cache: every iteration after the first
    // is served entirely from cache, the regime of re-run sweeps.
    let cached = campaign_bench_grid(
        Experiment::new(GpuConfig::test_small(), WorkloadScale::Test)
            .with_cache(CampaignCache::new()),
    )
    .threads(1);
    group.bench_with_input(
        BenchmarkId::from_parameter("serial_cached"),
        &(),
        |b, ()| b.iter(|| cached.run()),
    );
    group.finish();
}

criterion_group!(benches, campaign_scaling);
criterion_main!(benches);
