//! Criterion benchmark of the `Campaign` executor: the same ≥12-cell grid
//! run serially (one worker) and in parallel (all cores), demonstrating the
//! wall-clock win of parallel grid execution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlrm::WorkloadScale;
use dlrm_datasets::AccessPattern;
use gpu_sim::GpuConfig;
use perf_envelope::{Campaign, Experiment, Scheme, Workload};

fn grid() -> Campaign {
    let experiment = Experiment::new(GpuConfig::test_small(), WorkloadScale::Test);
    Campaign::new(experiment)
        .workloads(AccessPattern::EVALUATED.map(Workload::stage))
        .schemes([Scheme::base(), Scheme::optmt(), Scheme::combined()])
}

fn campaign_scaling(c: &mut Criterion) {
    let cells = grid().len();
    assert!(cells >= 12, "the grid must exercise at least 12 cells");
    let mut group = c.benchmark_group("campaign_scaling");
    group.sample_size(10);
    for threads in [1usize, 0] {
        let name = if threads == 1 {
            "serial_1_thread"
        } else {
            "parallel_all_cores"
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &threads,
            |b, &threads| {
                let campaign = grid().threads(threads);
                b.iter(|| campaign.run());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, campaign_scaling);
criterion_main!(benches);
