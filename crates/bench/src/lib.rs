//! # bench — the experiment harness that regenerates every paper table and
//! figure
//!
//! Two binaries drive the harness:
//!
//! * `cargo run -p bench --release --bin figures -- --figure 12` regenerates
//!   one of the paper's figures (1, 5, 6, 9, 11, 12, 13, 14, 15, 16, 17, 18,
//!   19) as a plain-text/CSV series,
//! * `cargo run -p bench --release --bin tables -- --table 4` regenerates one
//!   of the paper's tables (1, 3, 4, 5, 8, 9).
//!
//! Both accept `--scale test|default|paper` (default: `default`) and
//! `--device a100|h100` where applicable. Criterion benches under `benches/`
//! measure the simulator, the kernels and the end-to-end pipeline themselves.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod figures;
pub mod options;
pub mod report;
pub mod tables;

pub use options::HarnessOptions;
