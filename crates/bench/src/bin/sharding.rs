//! Multi-GPU sharding scaling sweep.
//!
//! Runs a heterogeneous-mix workload across clusters of 1/2/4/8 devices for
//! every built-in sharding strategy, in both embedding-stage and end-to-end
//! form, and emits machine-readable `BENCH_sharding.json` (override the
//! path with the first CLI argument). Beyond the scaling numbers the binary
//! *asserts* the refactor's contracts: results are deterministic, identical
//! for any worker-thread count, and a 1-device sharded run is bit-exact
//! with the unsharded path.
//!
//! ```text
//! cargo run --release -p bench --bin sharding [-- OUT.json]
//! ```

use std::time::Instant;

use dlrm::WorkloadScale;
use dlrm_datasets::{HeterogeneousMix, MixKind};
use gpu_sim::GpuConfig;
use perf_envelope::json::Json;
use perf_envelope::{
    Campaign, CampaignCache, Cluster, Experiment, InterconnectConfig, RunReport, Scheme,
    ShardingSpec, Workload,
};

const DEVICE_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn experiment(devices: usize) -> Experiment {
    Experiment::new(GpuConfig::test_small(), WorkloadScale::Test).with_cluster(
        Cluster::homogeneous(
            GpuConfig::test_small(),
            devices,
            InterconnectConfig::nvlink3(),
        ),
    )
}

fn mix() -> HeterogeneousMix {
    // ~24 tables across all four hotness classes: enough to shard across 8
    // devices while staying fast at test scale.
    HeterogeneousMix::paper_mix(MixKind::Mix2, 0.1)
}

fn strip_devices(mut report: RunReport) -> RunReport {
    report.devices = None;
    report
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sharding.json".to_string());
    let scheme = Scheme::combined();
    let stage = Workload::stage(mix());
    let end_to_end = Workload::end_to_end(mix());

    let mut doc = Json::object();
    doc.set(
        "schema",
        Json::Str("perf-envelope/bench-sharding/v1".to_string()),
    );
    doc.set("device", Json::Str(GpuConfig::test_small().name));
    doc.set("scale", Json::Str("test".to_string()));
    doc.set("workload", Json::Str(mix().name().to_string()));
    doc.set("tables", Json::UInt(mix().total_tables() as u64));
    doc.set(
        "interconnect",
        Json::Str(InterconnectConfig::nvlink3().name),
    );
    doc.set("scheme", Json::Str(scheme.paper_label()));

    let unsharded_stage = experiment(1).run(&stage, &scheme);
    let unsharded_e2e = experiment(1).run(&end_to_end, &scheme);
    let mut single_device_matches = true;
    let mut deterministic = true;
    let mut thread_invariant = true;

    let mut strategies = Json::object();
    for spec in ShardingSpec::ALL {
        let mut series = Vec::new();
        for devices in DEVICE_COUNTS {
            let sharded_stage = stage.clone().with_sharding(spec);
            let sharded_e2e = end_to_end.clone().with_sharding(spec);

            let start = Instant::now();
            let report = experiment(devices).run(&sharded_stage, &scheme);
            let wall_s = start.elapsed().as_secs_f64();
            let e2e_report = experiment(devices).run(&sharded_e2e, &scheme);

            // Determinism: an independent re-run is bit-identical.
            deterministic &= experiment(devices).run(&sharded_stage, &scheme) == report;
            // Thread-count invariance: the per-shard fan-out inherits the
            // experiment's campaign thread count; 1 worker must match many.
            let serial = Campaign::new(experiment(devices).with_threads(1))
                .workload(sharded_stage.clone())
                .scheme(scheme)
                .run();
            let parallel = Campaign::new(experiment(devices).with_threads(4))
                .workload(sharded_stage.clone())
                .scheme(scheme)
                .run();
            thread_invariant &= serial == parallel && serial.reports()[0] == report;

            if devices == 1 {
                single_device_matches &= strip_devices(report.clone()) == unsharded_stage
                    && strip_devices(e2e_report.clone()) == unsharded_e2e;
            }

            let cluster = report.devices.clone().expect("sharded runs report devices");
            let mut point = Json::object();
            point.set("devices", Json::UInt(devices as u64));
            point.set("stage_latency_us", Json::Num(report.latency_us));
            point.set("critical_path_us", Json::Num(cluster.critical_path_us));
            point.set("all_to_all_us", Json::Num(cluster.all_to_all_us));
            point.set("end_to_end_latency_us", Json::Num(e2e_report.latency_us));
            point.set(
                "stage_speedup_vs_1dev",
                Json::Num(unsharded_stage.latency_us / report.latency_us),
            );
            point.set(
                "end_to_end_speedup_vs_1dev",
                Json::Num(unsharded_e2e.latency_us / e2e_report.latency_us),
            );
            point.set(
                "per_device_tables",
                Json::Arr(
                    cluster
                        .per_device
                        .iter()
                        .map(|d| Json::UInt(d.tables as u64))
                        .collect(),
                ),
            );
            point.set(
                "per_device_embedding_us",
                Json::Arr(
                    cluster
                        .per_device
                        .iter()
                        .map(|d| Json::Num(d.embedding_us))
                        .collect(),
                ),
            );
            point.set("wall_clock_s", Json::Num(wall_s));
            series.push(point);
        }
        strategies.set(spec.name(), Json::Arr(series));
    }
    doc.set("strategies", strategies);

    // Cache behaviour: per-shard cells are cached individually (and
    // equal-composition shards dedup to one cell), so an overlapping re-run
    // executes nothing. One worker keeps the hit/miss counts exact.
    let cache = CampaignCache::new();
    let cached = experiment(4).with_cache(cache.clone()).with_threads(1);
    let w = stage.clone().with_sharding(ShardingSpec::RoundRobin);
    let cold = cached.run(&w, &scheme);
    let warm_start = Instant::now();
    let warm = cached.run(&w, &scheme);
    let warm_s = warm_start.elapsed().as_secs_f64();
    assert_eq!(cold, warm);
    let mut cache_doc = Json::object();
    cache_doc.set("cold_misses", Json::UInt(cache.misses()));
    cache_doc.set("warm_hits", Json::UInt(cache.hits()));
    cache_doc.set("warm_s", Json::Num(warm_s));
    doc.set("cache", cache_doc);

    doc.set(
        "single_device_matches_unsharded",
        Json::Bool(single_device_matches),
    );
    doc.set("deterministic", Json::Bool(deterministic));
    doc.set("thread_count_invariant", Json::Bool(thread_invariant));

    let rendered = doc.render();
    std::fs::write(&out_path, &rendered).expect("failed to write the benchmark report");
    println!("{rendered}");
    println!();
    println!(
        "sharding sweep over {:?} devices x {} strategies on {}; wrote {out_path}",
        DEVICE_COUNTS,
        ShardingSpec::ALL.len(),
        mix().name()
    );
    assert!(
        single_device_matches,
        "1-device sharded runs must be bit-exact with the unsharded path"
    );
    assert!(deterministic, "sharded runs must be deterministic");
    assert!(
        thread_invariant,
        "worker-thread count must not change results"
    );
}
