//! Fleet-scale serving study: replica sets, routing, autoscaling and the
//! cost/SLA frontier.
//!
//! Exercises the PR 10 fleet layer end to end on the Mix2 deployment:
//! a routing comparison at fixed fleet cost (round-robin vs
//! least-outstanding vs latency-aware on a heterogeneous wide/narrow
//! fleet); an autoscale-vs-static comparison over a diurnal day tracking
//! device-hours against SLA attainment; and a cost/SLA Pareto frontier
//! over static fleet sizes. Emitted as machine-readable `BENCH_fleet.json`
//! (override the path with the first CLI argument). Beyond the numbers
//! the binary *asserts* the layer's headline contracts: every fleet run is
//! deterministic and conserves requests, load-aware routing shifts traffic
//! off the slow replica, reactive autoscaling serves the whole diurnal day
//! for fewer device-hours than static provisioning, and identical replicas
//! price each distinct batch shape once through the shared campaign cache.
//!
//! ```text
//! cargo run --release -p bench --bin fleet [-- OUT.json]
//! ```

use dlrm::WorkloadScale;
use dlrm_datasets::{HeterogeneousMix, MixKind};
use gpu_sim::GpuConfig;
use perf_envelope::json::Json;
use perf_envelope::{
    max_sustainable_qps, pareto_frontier, AutoscalePolicy, BatchingPolicy, CampaignCache, Cluster,
    Experiment, Fleet, FleetReport, InterconnectConfig, ReplicaGroup, RoutingPolicy, Scheme,
    ServingScenario, ShardingSpec, TrafficModel, Workload,
};

/// Requests per batch (fixed-size batching throughout).
const BATCH: u32 = 64;

/// The latency SLA, in units of the measured one-batch service time on the
/// narrow replica: tight enough that the capacity search binds (so replica
/// capacity, autoscale utilization and SLA attainment are all meaningful at
/// test scale), loose enough that an unloaded replica always meets it.
const SLA_SERVICE_UNITS: f64 = 4.0;

fn report_to_json(report: &FleetReport) -> Json {
    let mut doc = Json::object();
    doc.set("served_requests", Json::UInt(report.served_requests as u64));
    doc.set("shed_requests", Json::UInt(report.shed_requests as u64));
    doc.set("failed_requests", Json::UInt(report.failed_requests as u64));
    doc.set("availability", Json::Num(report.availability));
    doc.set("achieved_qps", Json::Num(report.achieved_qps));
    doc.set("goodput_qps", Json::Num(report.goodput_qps));
    doc.set("sla_attainment", Json::Num(report.sla_attainment));
    doc.set("p50_us", Json::Num(report.latency.p50_us));
    doc.set("p99_us", Json::Num(report.latency.p99_us));
    doc.set("max_us", Json::Num(report.latency.max_us));
    doc.set("makespan_us", Json::Num(report.makespan_us));
    doc.set("device_hours", Json::Num(report.cost.device_hours));
    doc.set(
        "replicas_routed",
        Json::Arr(
            report
                .replicas
                .iter()
                .map(|r| Json::UInt(r.routed_requests as u64))
                .collect(),
        ),
    );
    doc
}

/// Runs `fleet` twice, asserts byte-identical reports and the request
/// conservation ledger, and returns the report.
fn simulate_checked(fleet: &Fleet, workload: &Workload, scheme: &Scheme) -> FleetReport {
    let report = fleet.simulate(workload, scheme);
    let again = fleet.simulate(workload, scheme);
    assert_eq!(
        report.to_json(),
        again.to_json(),
        "fleet simulation must be deterministic"
    );
    assert_eq!(
        report.served_requests + report.shed_requests + report.failed_requests,
        fleet.requests(),
        "every request must be served, shed or failed"
    );
    let routed: u32 = report.replicas.iter().map(|r| r.routed_requests).sum();
    assert_eq!(
        routed,
        fleet.requests(),
        "every request must be routed to exactly one replica"
    );
    report
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_fleet.json".to_string());
    let cache = CampaignCache::new();
    let narrow =
        Experiment::new(GpuConfig::test_small(), WorkloadScale::Test).with_cache(cache.clone());
    let wide = narrow.clone().with_cluster(Cluster::homogeneous(
        GpuConfig::test_small(),
        2,
        InterconnectConfig::nvlink3(),
    ));
    let workload = Workload::stage(HeterogeneousMix::paper_mix(MixKind::Mix2, 0.02))
        .with_sharding(ShardingSpec::RoundRobin);
    let scheme = Scheme::combined();

    // The nominal one-batch service latency on the narrow replica sets the
    // SLA; the capacity search against that SLA sets the load unit every
    // fleet below is expressed in.
    let service_us = narrow
        .clone()
        .with_batch_size(BATCH)
        .run(&workload, &scheme)
        .latency_us;
    let sla_us = SLA_SERVICE_UNITS * service_us;
    let scenario = || {
        ServingScenario::new(
            TrafficModel::poisson(20_000.0),
            BatchingPolicy::fixed_size(BATCH),
        )
        .with_sla_us(sla_us)
    };
    let capacity = max_sustainable_qps(&narrow, &workload, &scheme, &scenario()).max_qps;
    assert!(
        capacity > 0.0 && capacity.is_finite(),
        "the deployment must sustain some bounded load"
    );
    // The SLA must bind: a replica cannot serve unboundedly faster than
    // back-to-back batches.
    assert!(
        capacity <= 8.0 * BATCH as f64 / service_us * 1e6,
        "the capacity search must be SLA-bounded ({capacity} qps)"
    );

    let mut doc = Json::object();
    doc.set(
        "schema",
        Json::Str("perf-envelope/bench-fleet/v1".to_string()),
    );
    doc.set("device", Json::Str(GpuConfig::test_small().name));
    doc.set("scale", Json::Str("test".to_string()));
    doc.set(
        "workload",
        Json::Str(
            HeterogeneousMix::paper_mix(MixKind::Mix2, 0.02)
                .name()
                .to_string(),
        ),
    );
    doc.set("service_us", Json::Num(service_us));
    doc.set("sla_us", Json::Num(sla_us));
    doc.set("batch", Json::UInt(BATCH as u64));
    doc.set("single_replica_capacity_qps", Json::Num(capacity));

    // ---- routing comparison at fixed fleet cost ----
    // A heterogeneous fleet: two wide (two-device, sharded) replicas and
    // one narrow (one-device) replica, offered more load than the narrow
    // replica alone sustains. Round-robin is load-blind and hands the
    // narrow replica a full third; the load-aware policies see its longer
    // estimated service time and shift traffic onto the wide replicas.
    let requests = 1_024u32;
    let routing_fleet = |routing: RoutingPolicy| {
        Fleet::new(TrafficModel::poisson(2.0 * capacity), requests, 0xF1)
            .with_routing(routing)
            .with_group(ReplicaGroup::new(wide.clone(), scenario()).with_replicas(2))
            .with_group(ReplicaGroup::new(narrow.clone(), scenario()))
    };
    let policies = [
        RoutingPolicy::round_robin(),
        RoutingPolicy::least_outstanding(),
        RoutingPolicy::latency_aware(0.3),
    ];
    let mut routing_points = Vec::new();
    let mut narrow_share = Vec::new();
    for routing in policies {
        let report = simulate_checked(&routing_fleet(routing), &workload, &scheme);
        // Replica 2 is the narrow one (pool order is group order).
        narrow_share.push(report.replicas[2].routed_requests);
        let mut point = Json::object();
        point.set("routing", Json::Str(routing.label()));
        point.set("report", report_to_json(&report));
        routing_points.push(point);
    }
    doc.set("routing_comparison", Json::Arr(routing_points));

    // ---- autoscale vs static over a diurnal day ----
    // A pool of three identical narrow replicas under a diurnal day whose
    // peak overloads one replica and whose trough idles the fleet; sized
    // so the day spans ~2 cycles of ~10 decision intervals each. Static
    // provisioning keeps all three lit all day; reactive autoscaling
    // follows the curve.
    let day_requests = 2_048u32;
    let mean_qps = (1.5 * capacity + 0.05 * capacity) / 2.0;
    let period_s = day_requests as f64 / mean_qps / 2.0;
    let diurnal = TrafficModel::diurnal(1.5 * capacity, 0.05 * capacity, period_s);
    let day_fleet = || {
        Fleet::new(diurnal, day_requests, 0xF2)
            .with_group(ReplicaGroup::new(narrow.clone(), scenario()).with_replicas(3))
            .with_interval_us(period_s * 1e6 / 10.0)
    };
    let static_report = simulate_checked(&day_fleet(), &workload, &scheme);
    let autoscaled_report = simulate_checked(
        &day_fleet().with_autoscale(AutoscalePolicy::reactive(0.8, 0.3, 0, 1, 3)),
        &workload,
        &scheme,
    );
    let mut day_doc = Json::object();
    day_doc.set("peak_qps", Json::Num(1.5 * capacity));
    day_doc.set("trough_qps", Json::Num(0.05 * capacity));
    day_doc.set("period_s", Json::Num(period_s));
    day_doc.set("static", report_to_json(&static_report));
    day_doc.set("autoscaled", report_to_json(&autoscaled_report));
    day_doc.set(
        "autoscale_events",
        Json::UInt(autoscaled_report.autoscale_events.len() as u64),
    );
    day_doc.set(
        "device_hours_saved",
        Json::Num(static_report.cost.device_hours - autoscaled_report.cost.device_hours),
    );
    doc.set("autoscale_vs_static", day_doc);

    // ---- cost/SLA Pareto frontier over static fleet sizes ----
    // The same diurnal day on static fleets of 1..=4 narrow replicas:
    // each size is a (device-hours, SLA-attainment) point, and the
    // frontier is what a capacity planner would pick from.
    let mut pareto_points = Vec::new();
    let mut coords = Vec::new();
    for replicas in 1u32..=4 {
        let fleet = Fleet::new(diurnal, day_requests, 0xF3)
            .with_group(ReplicaGroup::new(narrow.clone(), scenario()).with_replicas(replicas));
        let report = simulate_checked(&fleet, &workload, &scheme);
        coords.push((report.cost.device_hours, report.sla_attainment));
        let mut point = Json::object();
        point.set("replicas", Json::UInt(replicas as u64));
        point.set("report", report_to_json(&report));
        pareto_points.push(point);
    }
    let frontier = pareto_frontier(&coords);
    let mut pareto_doc = Json::object();
    pareto_doc.set("points", Json::Arr(pareto_points));
    pareto_doc.set(
        "frontier",
        Json::Arr(frontier.iter().map(|&i| Json::UInt(i as u64)).collect()),
    );
    doc.set("cost_sla_pareto", pareto_doc);

    let mut cache_doc = Json::object();
    cache_doc.set("distinct_cells_simulated", Json::UInt(cache.misses()));
    cache_doc.set("served_from_cache", Json::UInt(cache.hits()));
    doc.set("cache", cache_doc);

    let rendered = doc.render();
    std::fs::write(&out_path, &rendered).expect("failed to write the benchmark report");
    println!("{rendered}");
    println!();
    println!(
        "fleet study on {} (capacity {:.0} qps/replica): narrow-replica share \
         {}/{}/{} of {requests} under round-robin/least-outstanding/latency-aware; \
         diurnal day {:.4} device-hours static vs {:.4} autoscaled \
         ({} scale events); Pareto frontier over static sizes: {:?}; wrote {out_path}",
        HeterogeneousMix::paper_mix(MixKind::Mix2, 0.02).name(),
        capacity,
        narrow_share[0],
        narrow_share[1],
        narrow_share[2],
        static_report.cost.device_hours,
        autoscaled_report.cost.device_hours,
        autoscaled_report.autoscale_events.len(),
        frontier,
    );

    // ---- headline contracts ----
    assert!(
        narrow_share[1] < narrow_share[0] && narrow_share[2] < narrow_share[0],
        "load-aware routing must shift traffic off the slow replica \
         (round-robin gave it {}, least-outstanding {}, latency-aware {})",
        narrow_share[0],
        narrow_share[1],
        narrow_share[2]
    );
    assert!(
        autoscaled_report.cost.device_hours < static_report.cost.device_hours,
        "following the diurnal curve must cost fewer device-hours than \
         static provisioning ({} vs {})",
        autoscaled_report.cost.device_hours,
        static_report.cost.device_hours
    );
    assert_eq!(
        autoscaled_report.served_requests, day_requests,
        "the drain contract: autoscaling must not lose in-flight work"
    );
    assert!(
        autoscaled_report
            .autoscale_events
            .iter()
            .any(|e| e.action == "scale_out")
            && autoscaled_report
                .autoscale_events
                .iter()
                .any(|e| e.action == "scale_in"),
        "the diurnal day must force both scale directions"
    );
    assert!(
        static_report.autoscale_events.is_empty(),
        "static provisioning records no scale events"
    );
    assert_eq!(
        frontier[0], 0,
        "the cheapest static fleet is never dominated"
    );
    assert!(
        coords[3].1 >= coords[0].1,
        "four replicas must attain at least the single replica's SLA rate"
    );
    assert!(
        cache.hits() > 0,
        "identical replicas must share priced shapes through the campaign cache"
    );
}
