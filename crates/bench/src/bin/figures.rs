//! `figures` — regenerates the paper's figures on the simulated substrate.
//!
//! ```text
//! cargo run -p bench --release --bin figures -- --figure 12 --scale default
//! cargo run -p bench --release --bin figures -- --all --scale test
//! ```

use bench::figures::{render_figure, ALL_FIGURES};
use bench::HarnessOptions;

fn main() {
    let opts = match HarnessOptions::parse(std::env::args().skip(1), "--figure") {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let targets: Vec<u32> = match opts.which {
        Some(n) => vec![n],
        None => ALL_FIGURES.to_vec(),
    };
    for n in targets {
        match render_figure(n, &opts) {
            Some(text) => println!("{text}"),
            None => {
                eprintln!("figure {n} is not part of the evaluation (available: {ALL_FIGURES:?})");
                std::process::exit(2);
            }
        }
    }
}
