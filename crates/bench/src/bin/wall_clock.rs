//! Engine wall-clock benchmark.
//!
//! Measures the `benches/campaign.rs` grid and an A100 Default-scale kernel
//! cell under both engine modes, plus the campaign-cache steady state, and
//! emits machine-readable `BENCH_engine.json` (override the path with the
//! first CLI argument) with total wall-clock and cells/sec per
//! configuration.
//!
//! The cycle-accurate reference mode preserves the pre-PR poll-every-cycle
//! loop, so `reference_*` numbers stand in for the pre-PR engine; the
//! headline `campaign_bench_speedup` compares what the criterion bench
//! actually measures — repeated `Campaign::run` iterations — between the
//! reference engine without caching and the event-driven engine with the
//! result cache attached.
//!
//! Reports follow the `perf-envelope/bench-engine/v2` schema: cold-cell
//! throughput (`cells_per_sec`, `simulated_cycles_per_sec`), the frozen v1
//! baseline side by side with the fresh measurement, and the measured
//! speedup against that baseline. Before overwriting the output file, the
//! committed report (v1 or v2 — see `bench::report`) is read back as the
//! comparison point, and the run asserts the cold cell stays >= 3x faster
//! than the frozen baseline.

use std::time::Instant;

use bench::options::campaign_bench_grid;
use bench::report::{cold_cell_baseline, ColdCellBaseline, SCHEMA_V2};
use dlrm::WorkloadScale;
use dlrm_datasets::AccessPattern;
use gpu_sim::{EngineMode, GpuConfig, Simulator};
use perf_envelope::json::Json;
use perf_envelope::{Campaign, CampaignCache, Experiment, Scheme};

/// How many times the criterion bench iterates the grid per sample.
const BENCH_ITERATIONS: usize = 10;

/// The `benches/campaign.rs` grid (shared definition), serialized to one
/// worker so the numbers isolate engine and cache effects.
fn grid(experiment: Experiment) -> Campaign {
    campaign_bench_grid(experiment).threads(1)
}

fn test_experiment(mode: EngineMode) -> Experiment {
    Experiment::new(GpuConfig::test_small(), WorkloadScale::Test).with_engine_mode(mode)
}

fn time_s(f: impl FnOnce()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64()
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_engine.json".to_string());
    // Read the committed report (if any) *before* overwriting it: its frozen
    // cold-cell numbers are the comparison point for this run.
    let baseline: Option<ColdCellBaseline> = std::fs::read_to_string(&out_path)
        .ok()
        .and_then(|text| Json::parse(&text).ok())
        .and_then(|doc| cold_cell_baseline(&doc));
    let mut doc = Json::object();
    doc.set("schema", Json::Str(SCHEMA_V2.to_string()));

    // ---- campaign bench grid, single engine pass per mode ----
    let cells = grid(test_experiment(EngineMode::EventDriven)).len() as u64;
    let reference_cold = time_s(|| {
        grid(test_experiment(EngineMode::CycleAccurate)).run();
    });
    let event_cold = time_s(|| {
        grid(test_experiment(EngineMode::EventDriven)).run();
    });

    // ---- the criterion-bench workload: repeated grid iterations ----
    let reference_total = time_s(|| {
        for _ in 0..BENCH_ITERATIONS {
            grid(test_experiment(EngineMode::CycleAccurate)).run();
        }
    });
    let cache = CampaignCache::new();
    let cached_experiment = test_experiment(EngineMode::EventDriven).with_cache(cache.clone());
    let mut iteration_runs = Vec::new();
    let event_cached_total = time_s(|| {
        for _ in 0..BENCH_ITERATIONS {
            iteration_runs.push(grid(cached_experiment.clone()).run());
        }
    });
    let warm_iteration = time_s(|| {
        grid(cached_experiment.clone()).run();
    });
    assert!(
        iteration_runs.windows(2).all(|w| w[0] == w[1]),
        "cached grid iterations must be bit-identical"
    );
    let campaign_bench_speedup = reference_total / event_cached_total;

    // ---- determinism: thread count must not change results ----
    let serial = grid(test_experiment(EngineMode::EventDriven)).run();
    let parallel = grid(test_experiment(EngineMode::EventDriven))
        .threads(4)
        .run();
    let thread_invariant = serial == parallel;
    let modes_agree = serial == grid(test_experiment(EngineMode::CycleAccurate)).run();

    let bench_experiment = test_experiment(EngineMode::EventDriven);
    let mut grid_doc = Json::object();
    grid_doc
        .set("cells", Json::UInt(cells))
        .set("device", Json::Str(bench_experiment.gpu().name.clone()))
        .set(
            "scale",
            Json::Str(bench_experiment.scale().name().to_string()),
        )
        .set("reference_cold_s", Json::Num(reference_cold))
        .set("event_cold_s", Json::Num(event_cold))
        .set("event_warm_cached_s", Json::Num(warm_iteration))
        .set(
            "cells_per_sec_reference",
            Json::Num(cells as f64 / reference_cold),
        )
        .set(
            "cells_per_sec_event_cold",
            Json::Num(cells as f64 / event_cold),
        )
        .set(
            "cells_per_sec_event_warm",
            Json::Num(cells as f64 / warm_iteration),
        )
        .set("bench_iterations", Json::UInt(BENCH_ITERATIONS as u64))
        .set("reference_total_s", Json::Num(reference_total))
        .set("event_cached_total_s", Json::Num(event_cached_total))
        .set("campaign_bench_speedup", Json::Num(campaign_bench_speedup))
        .set("cache_hits", Json::UInt(cache.hits()))
        .set("cache_misses", Json::UInt(cache.misses()))
        .set("thread_count_invariant", Json::Bool(thread_invariant))
        .set("engine_modes_agree", Json::Bool(modes_agree));
    doc.set("campaign_grid", grid_doc);

    // ---- one Default-scale A100 kernel cell, the unit of the DSE sweeps ----
    // Best of CELL_RUNS cold runs per mode: a fresh `Simulator` each time,
    // so every run pays the full launch-bound sizing path, while the
    // minimum filters out host scheduling noise.
    const CELL_RUNS: usize = 3;
    let a100 = Experiment::new(GpuConfig::a100(), WorkloadScale::Default);
    let workload = embedding_kernels::EmbeddingWorkload::generate(
        a100.model().embedding,
        AccessPattern::MedHot,
        0,
        a100.seed(),
    );
    let spec = Scheme::base().kernel_spec(a100.gpu());
    let mut cell_doc = Json::object();
    let mut cell_times = [f64::INFINITY; 2];
    let mut cycles = 0;
    for (i, mode) in [EngineMode::CycleAccurate, EngineMode::EventDriven]
        .into_iter()
        .enumerate()
    {
        for _ in 0..CELL_RUNS {
            let sim = Simulator::new(a100.gpu().clone()).with_mode(mode);
            let start = Instant::now();
            let stats = sim.run(&spec.launch(&workload), &spec.kernel(&workload));
            cell_times[i] = cell_times[i].min(start.elapsed().as_secs_f64());
            cycles = stats.elapsed_cycles;
        }
    }
    let [reference_s, event_s] = cell_times;
    let cold_cell_speedup = baseline.map(|b| b.event_s / event_s);
    cell_doc
        .set("device", Json::Str(a100.gpu().name.clone()))
        .set("scale", Json::Str(a100.scale().name().to_string()))
        .set("simulated_cycles", Json::UInt(cycles))
        .set("reference_s", Json::Num(reference_s))
        .set("event_s", Json::Num(event_s))
        .set("engine_speedup", Json::Num(reference_s / event_s))
        .set("cells_per_sec", Json::Num(1.0 / event_s))
        .set(
            "simulated_cycles_per_sec",
            Json::Num(cycles as f64 / event_s),
        );
    // Old and new side by side: the committed baseline rides along in the
    // emitted report, so future runs keep comparing against the same frozen
    // numbers instead of each PR's freshly committed measurement.
    if let Some(b) = baseline {
        cell_doc
            .set("baseline_event_s", Json::Num(b.event_s))
            .set("baseline_engine_speedup", Json::Num(b.engine_speedup))
            .set(
                "cold_cell_speedup_vs_baseline",
                Json::Num(cold_cell_speedup.unwrap()),
            );
    }
    doc.set("a100_default_kernel_cell", cell_doc);

    let rendered = doc.render();
    std::fs::write(&out_path, &rendered).expect("failed to write the benchmark report");
    println!("{rendered}");
    println!();
    println!(
        "campaign bench grid ({cells} cells x {BENCH_ITERATIONS} iterations): \
         reference {reference_total:.3}s -> event+cache {event_cached_total:.3}s \
         ({campaign_bench_speedup:.1}x); wrote {out_path}"
    );
    if let Some(speedup) = cold_cell_speedup {
        println!(
            "cold A100 Default cell: baseline {:.3}s -> event {event_s:.3}s \
             ({speedup:.2}x vs committed baseline)",
            baseline.unwrap().event_s
        );
    }
    assert!(thread_invariant, "thread counts must not change results");
    assert!(modes_agree, "engine modes must agree on the grid");
    if let Some(speedup) = cold_cell_speedup {
        assert!(
            speedup >= 3.0,
            "cold A100 Default cell must be >=3x faster than the committed \
             baseline ({:.3}s): measured {event_s:.3}s = {speedup:.2}x",
            baseline.unwrap().event_s
        );
    }
}
