//! `tables` — regenerates the paper's tables on the simulated substrate.
//!
//! ```text
//! cargo run -p bench --release --bin tables -- --table 4 --scale default
//! cargo run -p bench --release --bin tables -- --all
//! ```

use bench::tables::{render_table_n, ALL_TABLES};
use bench::HarnessOptions;

fn main() {
    let opts = match HarnessOptions::parse(std::env::args().skip(1), "--table") {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let targets: Vec<u32> = match opts.which {
        Some(n) => vec![n],
        None => ALL_TABLES.to_vec(),
    };
    for n in targets {
        match render_table_n(n, &opts) {
            Some(text) => println!("{text}"),
            None => {
                eprintln!("table {n} is not part of the evaluation (available: {ALL_TABLES:?})");
                std::process::exit(2);
            }
        }
    }
}
