//! Resilient-serving study: faults, retries, hedging and graceful
//! degradation.
//!
//! Exercises the PR 8 resilience layer end to end on the heavy Mix2
//! deployment: a crash sweep (0/1/2 device crashes, no-retry vs fixed
//! retry) tracking availability, goodput and tail latency; a straggler
//! window comparing no hedging against `hedged(1.5)` on two concurrent
//! streams; and a 50x overload comparing open admission against SLA-aware
//! shedding. Emitted as machine-readable `BENCH_resilience.json` (override
//! the path with the first CLI argument). Beyond the numbers the binary
//! *asserts* the layer's headline contracts: a fixed retry policy wins a
//! crashed batch back to full availability, hedging improves p99 under a
//! straggler, and SLA-aware shedding bounds the served tail at the SLA by
//! trading availability below 1.
//!
//! ```text
//! cargo run --release -p bench --bin resilience [-- OUT.json]
//! ```

use dlrm::WorkloadScale;
use dlrm_datasets::{HeterogeneousMix, MixKind};
use gpu_sim::{GpuConfig, StreamPartition};
use perf_envelope::json::Json;
use perf_envelope::{
    AdmissionPolicy, BatchingPolicy, CampaignCache, Experiment, FaultEvent, FaultPlan, RetryPolicy,
    Scheme, ServingReport, ServingScenario, StreamConfig, TrafficModel, Workload,
};

/// The p99 latency SLA every scenario is evaluated against.
const SLA_US: f64 = 25_000.0;

/// Requests per batch (fixed-size batching throughout).
const BATCH: u32 = 256;

/// Batches per scenario: long enough that mid-run faults hit steady state.
const BATCHES: u32 = 8;

fn mix() -> HeterogeneousMix {
    HeterogeneousMix::paper_mix(MixKind::Mix2, 1.0)
}

/// Near-simultaneous arrivals: `BATCHES` back-to-back batches, so fault
/// windows expressed in service units land in known batch windows.
fn burst_scenario() -> ServingScenario {
    ServingScenario::new(
        TrafficModel::uniform(100_000_000.0),
        BatchingPolicy::fixed_size(BATCH),
    )
    .with_requests(BATCH * BATCHES)
    .with_sla_us(SLA_US)
}

fn report_to_json(report: &ServingReport) -> Json {
    let mut doc = Json::object();
    doc.set("availability", Json::Num(report.availability));
    doc.set("served_requests", Json::UInt(report.served_requests as u64));
    doc.set("shed_requests", Json::UInt(report.shed_requests as u64));
    doc.set("failed_requests", Json::UInt(report.failed_requests as u64));
    doc.set("retries", Json::UInt(report.retries as u64));
    doc.set("hedges", Json::UInt(report.hedges as u64));
    doc.set("p50_us", Json::Num(report.latency.p50_us));
    doc.set("p99_us", Json::Num(report.latency.p99_us));
    doc.set("max_us", Json::Num(report.latency.max_us));
    doc.set("achieved_qps", Json::Num(report.achieved_qps));
    doc.set("goodput_qps", Json::Num(report.goodput_qps));
    doc.set("violation_rate", Json::Num(report.sla_violation_rate));
    doc.set("makespan_us", Json::Num(report.makespan_us));
    doc
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_resilience.json".to_string());
    let cache = CampaignCache::new();
    let e = Experiment::new(GpuConfig::test_small(), WorkloadScale::Test).with_cache(cache.clone());
    let workload = Workload::end_to_end(mix());
    let scheme = Scheme::combined();

    // The nominal one-batch service latency: the time unit every fault
    // window below is expressed in.
    let s = e
        .clone()
        .with_batch_size(BATCH)
        .run(&workload, &scheme)
        .latency_us;

    let mut doc = Json::object();
    doc.set(
        "schema",
        Json::Str("perf-envelope/bench-resilience/v1".to_string()),
    );
    doc.set("device", Json::Str(GpuConfig::test_small().name));
    doc.set("scale", Json::Str("test".to_string()));
    doc.set("workload", Json::Str(mix().name().to_string()));
    doc.set("sla_us", Json::Num(SLA_US));
    doc.set("batch", Json::UInt(BATCH as u64));
    doc.set("requests", Json::UInt((BATCH * BATCHES) as u64));
    doc.set("service_us", Json::Num(s));

    // ---- crash sweep: availability & goodput vs crash count, by retry policy ----
    // Crash windows strictly interior to known batch windows: the first
    // kills batch 3 ([2s, 3s)), the second batch 6 after recovery shifts
    // the schedule ([6s, 7s)).
    let crash_plans = [
        ("0", FaultPlan::empty()),
        (
            "1",
            FaultPlan::new(vec![FaultEvent::crash(0, 2.5 * s, 4.0 * s)]),
        ),
        (
            "2",
            FaultPlan::new(vec![
                FaultEvent::crash(0, 2.5 * s, 4.0 * s),
                FaultEvent::crash(0, 6.5 * s, 8.0 * s),
            ]),
        ),
    ];
    let retry_policies = [
        ("none", RetryPolicy::none()),
        ("fixed(3, 100us)", RetryPolicy::fixed(3, 100.0)),
    ];
    let mut crash_points = Vec::new();
    let mut one_crash_no_retry_availability = 1.0;
    let mut retried_always_full = true;
    for (crashes, plan) in &crash_plans {
        for (retry_label, retry) in &retry_policies {
            let report = burst_scenario()
                .with_faults(plan.clone())
                .with_retry(*retry)
                .simulate(&e, &workload, &scheme);
            assert_eq!(
                report.served_requests + report.shed_requests + report.failed_requests,
                report.requests,
                "every request must be served, shed or failed"
            );
            if *crashes == "1" && retry.is_none() {
                one_crash_no_retry_availability = report.availability;
            }
            if !retry.is_none() {
                retried_always_full &= report.availability == 1.0 && report.failed_requests == 0;
            }
            let mut point = Json::object();
            point.set("crashes", Json::Str((*crashes).to_string()));
            point.set("retry", Json::Str((*retry_label).to_string()));
            point.set("report", report_to_json(&report));
            crash_points.push(point);
        }
    }
    doc.set("crash_sweep", Json::Arr(crash_points));

    // ---- straggler window: no hedging vs hedged(1.5) on two streams ----
    // Arrivals spaced two service times apart, so batches run independently
    // and the straggled batch's requests *are* the tail (an eighth of the
    // pool — well past the 99th percentile). The 4x straggler covers the
    // first batch's dispatch but is over before the hedge fires: the
    // duplicate runs at nominal speed on the second stream and wins,
    // pulling p99 in.
    let k2 = StreamConfig::new(2, StreamPartition::Interleaved);
    let spaced = ServingScenario::new(
        TrafficModel::uniform(BATCH as f64 / (2.0 * s) * 1e6),
        BatchingPolicy::fixed_size(BATCH),
    )
    .with_requests(BATCH * BATCHES)
    .with_sla_us(SLA_US);
    let straggled = FaultPlan::new(vec![FaultEvent::straggler(0, 0.0, 2.5 * s, 4.0)]);
    let straggler_none = spaced.clone().with_faults(straggled.clone()).simulate(
        &e.clone().with_streams(k2),
        &workload,
        &scheme,
    );
    let straggler_hedged = spaced
        .with_faults(straggled)
        .with_retry(RetryPolicy::hedged(1.5))
        .simulate(&e.clone().with_streams(k2), &workload, &scheme);
    let mut straggler_doc = Json::object();
    straggler_doc.set("streams", Json::UInt(2));
    straggler_doc.set("factor", Json::Num(4.0));
    straggler_doc.set("window_us", Json::Num(2.5 * s));
    straggler_doc.set("no_hedging", report_to_json(&straggler_none));
    straggler_doc.set("hedged_1_5x", report_to_json(&straggler_hedged));
    straggler_doc.set(
        "p99_improvement",
        Json::Num(straggler_none.latency.p99_us / straggler_hedged.latency.p99_us),
    );
    doc.set("straggler_hedging", straggler_doc);

    // ---- 50x overload: open admission vs SLA-aware shedding ----
    // Offered load 50x the one-batch service rate: the open queue piles up
    // far past the SLA; SLA-aware shedding trades availability for a
    // served tail bounded at the budget.
    let capacity_qps = BATCH as f64 / s * 1e6;
    let overload = ServingScenario::new(
        TrafficModel::uniform(50.0 * capacity_qps),
        BatchingPolicy::fixed_size(BATCH),
    )
    .with_requests(BATCH * 2 * BATCHES)
    .with_sla_us(SLA_US);
    let overload_none = overload.simulate(&e, &workload, &scheme);
    let overload_shed = overload
        .clone()
        .with_admission(AdmissionPolicy::sla_aware(1.0))
        .simulate(&e, &workload, &scheme);
    let mut overload_doc = Json::object();
    overload_doc.set("offered_qps", Json::Num(50.0 * capacity_qps));
    overload_doc.set("open_admission", report_to_json(&overload_none));
    overload_doc.set("sla_aware_shedding", report_to_json(&overload_shed));
    doc.set("overload_shedding", overload_doc);

    let mut cache_doc = Json::object();
    cache_doc.set("distinct_cells_simulated", Json::UInt(cache.misses()));
    cache_doc.set("served_from_cache", Json::UInt(cache.hits()));
    doc.set("cache", cache_doc);

    let rendered = doc.render();
    std::fs::write(&out_path, &rendered).expect("failed to write the benchmark report");
    println!("{rendered}");
    println!();
    println!(
        "resilience study on {} ({} requests, service {:.0} us): \
         1 crash drops availability to {:.3} without retries, fixed retry holds 1.000; \
         straggler p99 {:.0} -> {:.0} us with hedging; \
         50x overload p99 {:.0} us open vs {:.0} us max shed at availability {:.3}; wrote {out_path}",
        mix().name(),
        BATCH * BATCHES,
        s,
        one_crash_no_retry_availability,
        straggler_none.latency.p99_us,
        straggler_hedged.latency.p99_us,
        overload_none.latency.p99_us,
        overload_shed.latency.max_us,
        overload_shed.availability,
    );

    assert!(
        one_crash_no_retry_availability < 1.0,
        "a crash without retries must lose the in-flight batch"
    );
    assert_eq!(
        one_crash_no_retry_availability,
        (BATCH * (BATCHES - 1)) as f64 / (BATCH * BATCHES) as f64,
        "exactly one batch of {BATCH} is in flight at the crash"
    );
    assert!(
        retried_always_full,
        "fixed retry must win every crashed batch back to availability 1.0"
    );
    assert!(
        straggler_hedged.hedges >= 1,
        "the straggler must trigger a hedge"
    );
    assert!(
        straggler_hedged.latency.p99_us < straggler_none.latency.p99_us,
        "hedging must improve p99 under a straggler ({} vs {})",
        straggler_hedged.latency.p99_us,
        straggler_none.latency.p99_us
    );
    assert!(
        overload_none.latency.p99_us > SLA_US,
        "50x overload must bust the SLA without admission control"
    );
    assert!(
        overload_shed.latency.max_us <= SLA_US,
        "SLA-aware shedding must bound every served request at the SLA \
         ({} vs {SLA_US})",
        overload_shed.latency.max_us
    );
    assert!(
        overload_shed.availability < 1.0,
        "bounding the tail under 50x overload must shed work"
    );
    assert!(
        overload_shed.shed_requests > 0 && overload_shed.failed_requests == 0,
        "degradation under overload is shedding, not failure"
    );
}
