//! SLA-aware serving sweep.
//!
//! Evaluates the serving layer end to end: QPS-vs-p99 latency curves for
//! every batching policy × scheme combination on a heavy heterogeneous-mix
//! deployment, plus a capacity search (max sustainable QPS under a 25 ms
//! p99 SLA) for one unsharded and one 2-device sharded deployment, plus a
//! capacity-vs-K curve over concurrent kernel streams (K ∈ {1, 2, 4},
//! interleaved issue), emitted as machine-readable `BENCH_serving.json`
//! (override the path with the first CLI argument). Beyond the numbers the
//! binary *asserts* the layer's contracts: serving reports are
//! deterministic, identical for any worker-thread count, the degenerate
//! single-request scenario is bit-exact with the plain `Experiment::run`
//! latency, and a second stream buys capacity without exceeding the 2x
//! ideal.
//!
//! ```text
//! cargo run --release -p bench --bin serving [-- OUT.json]
//! ```

use dlrm::WorkloadScale;
use dlrm_datasets::{HeterogeneousMix, MixKind};
use gpu_sim::{GpuConfig, StreamPartition};
use perf_envelope::json::Json;
use perf_envelope::{
    max_sustainable_qps, stream_capacity_sweep, BatchingPolicy, CampaignCache, Cluster, Experiment,
    InterconnectConfig, Scheme, ServingScenario, ShardingSpec, StreamConfig, TrafficModel,
    Workload,
};

/// The p99 latency SLA every deployment is evaluated against.
const SLA_US: f64 = 25_000.0;

/// Offered-load fractions of the measured capacity the curves sweep.
const LOAD_FRACTIONS: [f64; 6] = [0.25, 0.5, 0.75, 0.9, 1.0, 1.2];

fn mix() -> HeterogeneousMix {
    // The full-scale Mix2 composition (240 tables across all four hotness
    // classes): per-batch service lands in the milliseconds at test scale,
    // so a 25 ms SLA leaves meaningful queueing headroom.
    HeterogeneousMix::paper_mix(MixKind::Mix2, 1.0)
}

fn unsharded_experiment(cache: &std::sync::Arc<CampaignCache>) -> Experiment {
    Experiment::new(GpuConfig::test_small(), WorkloadScale::Test).with_cache(cache.clone())
}

fn sharded_experiment(cache: &std::sync::Arc<CampaignCache>) -> Experiment {
    unsharded_experiment(cache).with_cluster(Cluster::homogeneous(
        GpuConfig::test_small(),
        2,
        InterconnectConfig::nvlink3(),
    ))
}

/// Enough 256-deep batches that a saturated backlog overshoots the SLA by
/// 3x, so the capacity boundary is inside the simulated horizon.
fn requests_for(service_us: f64) -> u32 {
    let batches = (SLA_US * 3.0 / service_us).ceil() as u32 + 2;
    batches * 256
}

fn scenario(policy: BatchingPolicy, requests: u32) -> ServingScenario {
    ServingScenario::new(TrafficModel::poisson(1_000.0), policy)
        .with_requests(requests)
        .with_sla_us(SLA_US)
}

fn capacity_to_json(
    capacity: &perf_envelope::CapacityResult,
    service_us: f64,
    requests: u32,
) -> Json {
    let mut doc = Json::object();
    doc.set("max_sustainable_qps", Json::Num(capacity.max_qps));
    doc.set("probes", Json::UInt(capacity.probes as u64));
    doc.set("full_batch_service_us", Json::Num(service_us));
    doc.set("requests", Json::UInt(requests as u64));
    doc.set(
        "p99_us_at_capacity",
        Json::Num(capacity.report.latency.p99_us),
    );
    doc.set(
        "violation_rate_at_capacity",
        Json::Num(capacity.report.sla_violation_rate),
    );
    doc.set(
        "utilization_at_capacity",
        Json::Arr(
            capacity
                .report
                .utilization
                .iter()
                .map(|u| Json::Num(u.utilization))
                .collect(),
        ),
    );
    doc
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serving.json".to_string());
    let cache = CampaignCache::new();
    let stage = Workload::end_to_end(mix());
    let sharded = Workload::end_to_end(mix()).with_sharding(ShardingSpec::RoundRobin);
    let policies = [
        BatchingPolicy::fixed_size(256),
        BatchingPolicy::timeout(256, 2_000.0),
        BatchingPolicy::adaptive(16, 256),
    ];
    let schemes = [Scheme::base(), Scheme::combined()];

    let mut doc = Json::object();
    doc.set(
        "schema",
        Json::Str("perf-envelope/bench-serving/v1".to_string()),
    );
    doc.set("device", Json::Str(GpuConfig::test_small().name));
    doc.set("scale", Json::Str("test".to_string()));
    doc.set("workload", Json::Str(mix().name().to_string()));
    doc.set("tables", Json::UInt(mix().total_tables() as u64));
    doc.set("sla_us", Json::Num(SLA_US));
    doc.set("traffic", Json::Str("poisson".to_string()));

    let mut deterministic = true;
    let mut thread_invariant = true;

    // ---- QPS-vs-p99 curves: policy x scheme on the unsharded deployment ----
    let mut curves = Json::object();
    for policy in policies {
        let mut per_scheme = Json::object();
        for scheme in schemes {
            let e = unsharded_experiment(&cache);
            let service_us = e
                .clone()
                .with_batch_size(policy.shape(policy.max_batch()))
                .run(&stage, &scheme)
                .latency_us;
            let requests = requests_for(service_us);
            let base_scenario = scenario(policy, requests);
            let capacity = max_sustainable_qps(&e, &stage, &scheme, &base_scenario);

            let mut points = Vec::new();
            for fraction in LOAD_FRACTIONS {
                let qps = capacity.max_qps.max(1.0) * fraction;
                let probe = base_scenario
                    .clone()
                    .with_traffic(base_scenario.traffic().at_qps(qps));
                let report = probe.simulate(&e, &stage, &scheme);
                deterministic &= probe.simulate(&e, &stage, &scheme) == report;
                let mut point = Json::object();
                point.set("load_fraction", Json::Num(fraction));
                point.set("offered_qps", Json::Num(report.offered_qps));
                point.set("achieved_qps", Json::Num(report.achieved_qps));
                point.set("p50_us", Json::Num(report.latency.p50_us));
                point.set("p95_us", Json::Num(report.latency.p95_us));
                point.set("p99_us", Json::Num(report.latency.p99_us));
                point.set("max_us", Json::Num(report.latency.max_us));
                point.set("violation_rate", Json::Num(report.sla_violation_rate));
                point.set("batches", Json::UInt(report.batches as u64));
                point.set("distinct_shapes", Json::UInt(report.shapes.len() as u64));
                points.push(point);
            }
            let mut entry = Json::object();
            entry.set(
                "capacity",
                capacity_to_json(&capacity, service_us, requests),
            );
            entry.set("points", Json::Arr(points));
            per_scheme.set(&scheme.paper_label(), entry);
        }
        curves.set(&policy.label(), per_scheme);
    }
    doc.set("curves", curves);

    // ---- capacity search: unsharded vs sharded deployment ----
    let scheme = Scheme::combined();
    let policy = BatchingPolicy::fixed_size(256);
    let mut capacity_doc = Json::object();

    let e1 = unsharded_experiment(&cache);
    let service1 = e1
        .clone()
        .with_batch_size(256)
        .run(&stage, &scheme)
        .latency_us;
    let requests1 = requests_for(service1);
    let cap1 = max_sustainable_qps(&e1, &stage, &scheme, &scenario(policy, requests1));
    capacity_doc.set("unsharded", capacity_to_json(&cap1, service1, requests1));

    let e2 = sharded_experiment(&cache);
    let service2 = e2
        .clone()
        .with_batch_size(256)
        .run(&sharded, &scheme)
        .latency_us;
    let requests2 = requests_for(service2);
    let cap2 = max_sustainable_qps(&e2, &sharded, &scheme, &scenario(policy, requests2));
    capacity_doc.set("sharded_2dev", capacity_to_json(&cap2, service2, requests2));
    capacity_doc.set(
        "sharding_capacity_gain",
        Json::Num(cap2.max_qps / cap1.max_qps),
    );
    doc.set("capacity", capacity_doc);

    // ---- capacity-vs-K curve: concurrent streams on the unsharded deployment ----
    // Interleaved issue-slot sharing is the headline: co-resident batches
    // fill each other's stall cycles, so K batches finish in less than K
    // service times and the queue drains faster than one stream ever could.
    let stream_candidates: Vec<StreamConfig> = [1u32, 2, 4]
        .iter()
        .map(|&k| StreamConfig::new(k, StreamPartition::Interleaved))
        .collect();
    let stream_sweep = stream_capacity_sweep(
        &e1,
        &stage,
        &scheme,
        &scenario(policy, requests1),
        &stream_candidates,
    );
    let mut stream_doc = Json::object();
    stream_doc.set(
        "partition",
        Json::Str(StreamPartition::Interleaved.name().to_string()),
    );
    stream_doc.set(
        "points",
        Json::Arr(
            stream_sweep
                .iter()
                .map(|point| {
                    let mut obj = Json::object();
                    obj.set("streams", Json::UInt(point.streams.streams() as u64));
                    obj.set("config", Json::Str(point.streams.name()));
                    obj.set("max_sustainable_qps", Json::Num(point.capacity.max_qps));
                    obj.set("probes", Json::UInt(point.capacity.probes as u64));
                    obj.set(
                        "p99_us_at_capacity",
                        Json::Num(point.capacity.report.latency.p99_us),
                    );
                    obj.set(
                        "stream_utilization_at_capacity",
                        Json::Arr(
                            point
                                .capacity
                                .report
                                .stream_utilization
                                .iter()
                                .map(|s| Json::Num(s.utilization))
                                .collect(),
                        ),
                    );
                    obj
                })
                .collect(),
        ),
    );
    let (k1_qps, k2_qps) = (
        stream_sweep[0].capacity.max_qps,
        stream_sweep[1].capacity.max_qps,
    );
    stream_doc.set("k2_capacity_gain", Json::Num(k2_qps / k1_qps));
    doc.set("stream_scaling", stream_doc);

    // Multi-stream serving must be as deterministic and thread-invariant
    // as the single-stream path.
    let k2 = StreamConfig::new(2, StreamPartition::Interleaved);
    let stream_probe = scenario(policy, requests1.min(2048));
    let stream_report = stream_probe.simulate(
        &e1.clone().with_streams(k2).with_threads(1),
        &stage,
        &scheme,
    );
    deterministic &= stream_probe.simulate(
        &e1.clone().with_streams(k2).with_threads(1),
        &stage,
        &scheme,
    ) == stream_report;
    thread_invariant &= stream_probe.simulate(
        &e1.clone().with_streams(k2).with_threads(4),
        &stage,
        &scheme,
    ) == stream_report;

    // Thread-count invariance: the sharded per-shard fan-out must not leak
    // into serving percentiles.
    let probe = scenario(policy, requests2.min(2048));
    let serial = probe.simulate(&e2.clone().with_threads(1), &sharded, &scheme);
    let parallel = probe.simulate(&e2.clone().with_threads(4), &sharded, &scheme);
    thread_invariant &= serial == parallel;

    // Degenerate equivalence: one request, fixed-size batching at the
    // model's configured batch size == the plain Experiment::run latency.
    let batch = e1.model().batch_size();
    let degenerate = ServingScenario::new(
        TrafficModel::poisson(100.0),
        BatchingPolicy::fixed_size(batch),
    )
    .with_requests(1)
    .simulate(&e1, &stage, &scheme);
    let direct = e1.run(&stage, &scheme);
    let degenerate_matches = degenerate.latency.p99_us.to_bits() == direct.latency_us.to_bits();

    doc.set("deterministic", Json::Bool(deterministic));
    doc.set("thread_count_invariant", Json::Bool(thread_invariant));
    doc.set(
        "degenerate_matches_experiment",
        Json::Bool(degenerate_matches),
    );
    let mut cache_doc = Json::object();
    cache_doc.set("distinct_cells_simulated", Json::UInt(cache.misses()));
    cache_doc.set("served_from_cache", Json::UInt(cache.hits()));
    doc.set("cache", cache_doc);

    let rendered = doc.render();
    std::fs::write(&out_path, &rendered).expect("failed to write the benchmark report");
    println!("{rendered}");
    println!();
    println!(
        "serving sweep: {} policies x {} schemes on {} ({} tables); \
         capacity {:.0} qps unsharded vs {:.0} qps on 2 devices ({:.2}x); \
         streams K=1/2/4: {:.0}/{:.0}/{:.0} qps (K=2 gain {:.2}x); wrote {out_path}",
        policies.len(),
        schemes.len(),
        mix().name(),
        mix().total_tables(),
        cap1.max_qps,
        cap2.max_qps,
        cap2.max_qps / cap1.max_qps,
        k1_qps,
        k2_qps,
        stream_sweep[2].capacity.max_qps,
        k2_qps / k1_qps
    );
    assert!(deterministic, "serving simulations must be deterministic");
    assert!(
        thread_invariant,
        "worker-thread count must not change serving reports"
    );
    assert!(
        degenerate_matches,
        "the degenerate serving run must be bit-exact with Experiment::run"
    );
    assert!(
        cap1.max_qps > 0.0 && cap2.max_qps > 0.0,
        "both deployments must sustain a positive load under the 25 ms SLA"
    );
    assert!(
        k2_qps > k1_qps,
        "a second concurrent stream must buy capacity under the 25 ms SLA \
         ({k2_qps:.0} vs {k1_qps:.0} qps)"
    );
    assert!(
        k2_qps <= 2.0 * k1_qps,
        "two streams cannot more than double the capacity \
         ({k2_qps:.0} vs {k1_qps:.0} qps)"
    );
}
