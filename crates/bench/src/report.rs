//! Schema-aware parsing of the emitted `BENCH_engine.json` engine reports.
//!
//! The wall-clock benchmark compares each run against the *committed*
//! report, so it must read whichever schema revision is checked in:
//!
//! * `perf-envelope/bench-engine/v1` — the original report; the measured
//!   cold-cell numbers themselves serve as the baseline.
//! * `perf-envelope/bench-engine/v2` — adds throughput fields and carries
//!   the frozen v1 baseline forward in explicit `baseline_*` fields, so the
//!   comparison point does not drift as new reports are committed.

use perf_envelope::json::Json;

/// Schema tag of the original engine report.
pub const SCHEMA_V1: &str = "perf-envelope/bench-engine/v1";
/// Schema tag of the current engine report (throughput + frozen baseline).
pub const SCHEMA_V2: &str = "perf-envelope/bench-engine/v2";

/// The frozen cold-cell comparison point carried by a committed report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColdCellBaseline {
    /// Event-driven wall-clock seconds for the cold A100 Default cell.
    pub event_s: f64,
    /// Reference-over-event speedup recorded alongside it.
    pub engine_speedup: f64,
}

/// Extracts the cold-cell baseline from a committed engine report of either
/// schema revision. Returns `None` for unknown schemas or missing fields
/// (the caller treats that as "no baseline to compare against").
pub fn cold_cell_baseline(doc: &Json) -> Option<ColdCellBaseline> {
    let schema = doc.get("schema")?.as_str()?;
    let cell = doc.get("a100_default_kernel_cell")?;
    let field = |v1: &str, v2: &str| -> Option<f64> {
        cell.get(if schema == SCHEMA_V1 { v1 } else { v2 })?
            .as_f64()
    };
    match schema {
        SCHEMA_V1 | SCHEMA_V2 => Some(ColdCellBaseline {
            event_s: field("event_s", "baseline_event_s")?,
            engine_speedup: field("engine_speedup", "baseline_engine_speedup")?,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The shape of the committed v1 report (abbreviated to the fields the
    /// baseline reader touches, plus a few it must ignore).
    const V1: &str = r#"{"a100_default_kernel_cell":{"device":"A100-SXM4-80GB",
        "engine_speedup":1.752927158735326,"event_s":0.327819171,
        "reference_s":0.574643128,"scale":"default","simulated_cycles":59224},
        "campaign_grid":{"cells":12},
        "schema":"perf-envelope/bench-engine/v1"}"#;

    const V2: &str = r#"{"a100_default_kernel_cell":{"device":"A100-SXM4-80GB",
        "baseline_event_s":0.327819171,"baseline_engine_speedup":1.752927158735326,
        "event_s":0.21,"reference_s":0.33,"engine_speedup":1.57,
        "cells_per_sec":4.76,"simulated_cycles_per_sec":281000.0,
        "cold_cell_speedup_vs_baseline":1.56,"simulated_cycles":59224},
        "campaign_grid":{"cells":12},
        "schema":"perf-envelope/bench-engine/v2"}"#;

    #[test]
    fn v1_report_still_parses_as_its_own_baseline() {
        let doc = Json::parse(V1).expect("v1 report must parse");
        let b = cold_cell_baseline(&doc).expect("v1 baseline");
        assert!((b.event_s - 0.327819171).abs() < 1e-12);
        assert!((b.engine_speedup - 1.752927158735326).abs() < 1e-12);
    }

    #[test]
    fn v2_report_carries_the_frozen_baseline_forward() {
        let doc = Json::parse(V2).expect("v2 report must parse");
        let b = cold_cell_baseline(&doc).expect("v2 baseline");
        // The frozen v1 numbers, not the freshly measured ones.
        assert!((b.event_s - 0.327819171).abs() < 1e-12);
        assert!((b.engine_speedup - 1.752927158735326).abs() < 1e-12);
    }

    #[test]
    fn unknown_schema_yields_no_baseline() {
        let doc = Json::parse(r#"{"schema":"perf-envelope/bench-engine/v99"}"#).unwrap();
        assert!(cold_cell_baseline(&doc).is_none());
    }
}
