//! Command-line options shared by the `figures` and `tables` binaries.

use std::sync::Arc;

use dlrm::WorkloadScale;
use gpu_sim::GpuConfig;
use perf_envelope::{Campaign, CampaignCache, Experiment};

/// Parsed harness options.
#[derive(Debug, Clone)]
pub struct HarnessOptions {
    /// Which figure or table to regenerate; `None` means all of them.
    pub which: Option<u32>,
    /// Workload scale.
    pub scale: WorkloadScale,
    /// Device preset name (`a100` or `h100`).
    pub device: String,
    /// Seed for trace generation.
    pub seed: u64,
    /// Worker threads for campaign grids; `0` = available parallelism.
    pub jobs: usize,
    /// Result cache shared by every experiment this harness invocation
    /// builds, so figures and tables whose grids overlap (the base-scheme
    /// columns especially) run each distinct cell once.
    pub cache: Arc<CampaignCache>,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            which: None,
            scale: WorkloadScale::Default,
            device: "a100".to_string(),
            seed: 0x5EED,
            jobs: 0,
            cache: CampaignCache::new(),
        }
    }
}

impl HarnessOptions {
    /// Parses options from an argument iterator. `selector_flag` is
    /// `"--figure"` or `"--table"`.
    ///
    /// # Errors
    /// Returns a human-readable message for unknown flags or bad values.
    pub fn parse<I: IntoIterator<Item = String>>(
        args: I,
        selector_flag: &str,
    ) -> Result<Self, String> {
        let mut opts = HarnessOptions::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            let mut take_value = |name: &str| {
                iter.next()
                    .ok_or_else(|| format!("{name} requires a value"))
            };
            match arg.as_str() {
                a if a == selector_flag => {
                    let v = take_value(selector_flag)?;
                    let n = v
                        .parse::<u32>()
                        .map_err(|_| format!("invalid number '{v}'"))?;
                    opts.which = Some(n);
                }
                "--all" => opts.which = None,
                "--scale" => {
                    let v = take_value("--scale")?;
                    opts.scale = WorkloadScale::from_name(&v)
                        .ok_or_else(|| format!("unknown scale '{v}' (use test|default|paper)"))?;
                }
                "--device" => {
                    let v = take_value("--device")?.to_ascii_lowercase();
                    if v != "a100" && v != "h100" {
                        return Err(format!("unknown device '{v}' (use a100|h100)"));
                    }
                    opts.device = v;
                }
                "--seed" => {
                    let v = take_value("--seed")?;
                    opts.seed = v.parse().map_err(|_| format!("invalid seed '{v}'"))?;
                }
                "--jobs" | "-j" => {
                    let v = take_value("--jobs")?;
                    opts.jobs = v.parse().map_err(|_| format!("invalid job count '{v}'"))?;
                }
                "--help" | "-h" => {
                    return Err(format!(
                        "usage: [{selector_flag} N] [--all] [--scale test|default|paper] [--device a100|h100] [--seed N] [--jobs N]"
                    ));
                }
                other => return Err(format!("unknown argument '{other}'")),
            }
        }
        Ok(opts)
    }

    /// The GPU configuration selected by `--device`.
    pub fn gpu(&self) -> GpuConfig {
        if self.device == "h100" {
            GpuConfig::h100_nvl()
        } else {
            GpuConfig::a100()
        }
    }

    /// Builds an experiment for these options (always on the full device
    /// preset; the scale only affects the workload).
    pub fn experiment(&self) -> Experiment {
        Experiment::new(self.gpu(), self.scale)
            .with_seed(self.seed)
            .with_threads(self.jobs)
            .with_cache(self.cache.clone())
    }

    /// Starts a campaign over [`HarnessOptions::experiment`]; campaigns
    /// (including the DSE sweeps, which build their own) inherit the
    /// `--jobs` thread count from the experiment.
    pub fn campaign(&self) -> Campaign {
        Campaign::new(self.experiment())
    }

    /// A one-line description printed at the top of every result.
    pub fn banner(&self) -> String {
        format!(
            "# device={} scale={} seed={:#x}",
            self.gpu().name,
            self.scale.name(),
            self.seed
        )
    }
}

/// The grid measured by both the `campaign` criterion bench and the
/// `wall_clock` binary (which emits `BENCH_engine.json`): every evaluated
/// access pattern as an embedding-stage workload × the base, OptMT and
/// combined schemes. One definition so the two benchmarks cannot drift
/// apart.
pub fn campaign_bench_grid(experiment: Experiment) -> Campaign {
    use dlrm_datasets::AccessPattern;
    use perf_envelope::{Scheme, Workload};
    Campaign::new(experiment)
        .workloads(AccessPattern::EVALUATED.map(Workload::stage))
        .schemes([Scheme::base(), Scheme::optmt(), Scheme::combined()])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<HarnessOptions, String> {
        HarnessOptions::parse(args.iter().map(|s| s.to_string()), "--figure")
    }

    #[test]
    fn defaults_are_sensible() {
        let opts = parse(&[]).unwrap();
        assert_eq!(opts.which, None);
        assert_eq!(opts.scale, WorkloadScale::Default);
        assert_eq!(opts.device, "a100");
        assert_eq!(opts.jobs, 0);
    }

    #[test]
    fn parses_all_flags() {
        let opts = parse(&[
            "--figure", "12", "--scale", "test", "--device", "h100", "--seed", "7", "--jobs", "3",
        ])
        .unwrap();
        assert_eq!(opts.which, Some(12));
        assert_eq!(opts.scale, WorkloadScale::Test);
        assert_eq!(opts.device, "h100");
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.jobs, 3);
        assert!(opts.gpu().name.contains("H100"));
    }

    #[test]
    fn rejects_unknown_arguments_and_values() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--scale", "huge"]).is_err());
        assert!(parse(&["--device", "tpu"]).is_err());
        assert!(parse(&["--figure"]).is_err());
        assert!(parse(&["--figure", "twelve"]).is_err());
        assert!(parse(&["--jobs", "many"]).is_err());
    }

    #[test]
    fn banner_mentions_device_and_scale() {
        let opts = parse(&["--scale", "test"]).unwrap();
        assert!(opts.banner().contains("A100"));
        assert!(opts.banner().contains("test"));
    }

    #[test]
    fn experiment_reflects_the_options() {
        let opts = parse(&["--scale", "test", "--seed", "9"]).unwrap();
        let experiment = opts.experiment();
        assert_eq!(experiment.seed(), 9);
        assert_eq!(experiment.scale(), WorkloadScale::Test);
    }

    #[test]
    fn jobs_flag_reaches_campaigns_and_sweeps() {
        // The DSE sweeps build their own campaigns from the experiment, so
        // the --jobs thread count must ride on the experiment itself.
        let opts = parse(&["--jobs", "2"]).unwrap();
        assert_eq!(opts.experiment().threads(), 2);
    }
}
