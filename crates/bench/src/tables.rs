//! Regeneration of the paper's tables.
//!
//! * Table I — memory-hierarchy access latencies (device configuration),
//! * Table III — unique access % per dataset,
//! * Tables IV / V / VIII / IX — NCU-style microarchitectural
//!   characterisation of the base, OptMT, RPF+OptMT and RPF+L2P+OptMT
//!   kernels across the datasets.
//!
//! The NCU tables run their dataset columns as one [`Campaign`] grid, so
//! the kernels simulate in parallel (`--jobs` controls the worker count).
//!
//! [`Campaign`]: perf_envelope::Campaign

use dlrm_datasets::AccessPattern;
use perf_envelope::{RunReport, Scheme, Workload};

use crate::options::HarnessOptions;

/// The table numbers this harness can regenerate.
pub const ALL_TABLES: [u32; 6] = [1, 3, 4, 5, 8, 9];

/// Renders table `n`, or `None` if it is not one of the paper's tables.
pub fn render_table_n(n: u32, opts: &HarnessOptions) -> Option<String> {
    let body = match n {
        1 => table1(opts),
        3 => table3(opts),
        4 => ncu_table(
            opts,
            "Table IV: base PyTorch",
            &Scheme::base(),
            &AccessPattern::ALL,
        ),
        5 => ncu_table(
            opts,
            "Table V: OptMT",
            &Scheme::optmt(),
            &AccessPattern::ALL,
        ),
        8 => ncu_table(
            opts,
            "Table VIII: RPF+OptMT",
            &Scheme::rpf_optmt(),
            &AccessPattern::EVALUATED,
        ),
        9 => ncu_table(
            opts,
            "Table IX: RPF+L2P+OptMT",
            &Scheme::combined(),
            &AccessPattern::EVALUATED,
        ),
        _ => return None,
    };
    Some(format!("{}\n{}", opts.banner(), body))
}

/// Table I: access latencies of the memory hierarchy.
pub fn table1(opts: &HarnessOptions) -> String {
    let gpu = opts.gpu();
    let mut out = format!("## Table I: access latencies on {} (cycles)\n", gpu.name);
    out.push_str(&format!("{:<16}{}\n", "Register", gpu.register_latency));
    out.push_str(&format!(
        "{:<16}{}\n",
        "Shared Memory", gpu.shared_mem_latency
    ));
    out.push_str(&format!("{:<16}{}\n", "L1D cache", gpu.l1.hit_latency));
    out.push_str(&format!("{:<16}{}\n", "L2 cache", gpu.l2.hit_latency));
    out.push_str(&format!("{:<16}{}\n", "Global Memory", gpu.dram.latency));
    out
}

/// Table III: unique access % in each dataset, measured on generated traces
/// and compared with the paper's reported values.
pub fn table3(opts: &HarnessOptions) -> String {
    let trace_cfg = opts.experiment().model().embedding.trace;
    let mut out = String::from("## Table III: unique access % per dataset\n");
    out.push_str(&format!(
        "{:<12}{:>14}{:>14}\n",
        "dataset", "measured_%", "paper_%"
    ));
    for pattern in AccessPattern::ALL {
        let trace = trace_cfg.generate(pattern, opts.seed);
        out.push_str(&format!(
            "{:<12}{:>14.4}{:>14.4}\n",
            pattern.paper_name(),
            trace.unique_access_pct(),
            pattern.paper_unique_access_pct()
        ));
    }
    out
}

/// Renders one NCU-style characterisation table: metrics as rows, datasets as
/// columns (the layout of the paper's Tables IV, V, VIII and IX).
fn ncu_table(
    opts: &HarnessOptions,
    title: &str,
    scheme: &Scheme,
    patterns: &[AccessPattern],
) -> String {
    let run = opts
        .campaign()
        .workloads(patterns.iter().copied().map(Workload::kernel))
        .scheme(*scheme)
        .run();
    let runs: Vec<(AccessPattern, &RunReport)> = patterns
        .iter()
        .enumerate()
        .map(|(w, &p)| (p, run.get(w, 0, 0, 0)))
        .collect();

    let metric_names: Vec<String> = runs[0]
        .1
        .stats
        .ncu_rows()
        .into_iter()
        .map(|(name, _)| name)
        .collect();
    let mut out = format!("## {title} (per embedding-bag kernel, one table)\n");
    let metric_width = metric_names.iter().map(|m| m.len()).max().unwrap_or(10) + 2;
    out.push_str(&format!("{:<metric_width$}", "NCU metric / dataset"));
    for (p, _) in &runs {
        out.push_str(&format!("{:>12}", p.paper_name()));
    }
    out.push('\n');
    for (i, metric) in metric_names.iter().enumerate() {
        out.push_str(&format!("{metric:<metric_width$}"));
        for (_, report) in &runs {
            let value = &report.stats.ncu_rows()[i].1;
            out.push_str(&format!("{value:>12}"));
        }
        out.push('\n');
    }
    // Occupancy footer (the paper quotes it in the caption).
    out.push_str(&format!(
        "(occupancy: {} warps/SM, {} registers/thread)\n",
        runs[0].1.stats.theoretical_warps_per_sm, runs[0].1.stats.allocated_regs_per_thread
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrm::WorkloadScale;

    fn test_opts() -> HarnessOptions {
        HarnessOptions {
            scale: WorkloadScale::Test,
            ..Default::default()
        }
    }

    #[test]
    fn table1_lists_the_five_levels() {
        let text = table1(&test_opts());
        for level in [
            "Register",
            "Shared Memory",
            "L1D cache",
            "L2 cache",
            "Global Memory",
        ] {
            assert!(text.contains(level));
        }
        assert!(text.contains("466"));
    }

    #[test]
    fn table3_reports_measured_and_paper_values() {
        let text = table3(&test_opts());
        assert!(text.contains("one item"));
        assert!(text.contains("63.2100") || text.contains("63.21"));
        assert!(text.lines().count() >= 7);
    }

    #[test]
    fn unknown_table_numbers_return_none() {
        assert!(render_table_n(2, &test_opts()).is_none());
        assert!(render_table_n(7, &test_opts()).is_none());
    }

    #[test]
    fn ncu_table_has_metrics_as_rows_and_datasets_as_columns() {
        let text = render_table_n(4, &test_opts()).unwrap();
        assert!(text.contains("Kernel time (us)"));
        assert!(text.contains("long scoreboard stall"));
        assert!(text.contains("one item"));
        assert!(text.contains("random"));
        assert!(text.contains("warps/SM"));
    }
}
