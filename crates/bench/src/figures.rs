//! Regeneration of every figure in the paper's evaluation.
//!
//! Each function returns a plain-text block (headers plus aligned columns /
//! CSV-like series) mirroring the series plotted in the corresponding figure.
//! Absolute values come from the simulated substrate, so the interesting
//! comparison with the paper is the *shape*: ordering of schemes, relative
//! speedups and where they peak. `EXPERIMENTS.md` records that comparison.
//!
//! Every figure whose data is a grid (schemes × datasets) is expressed as a
//! [`Campaign`], so its cells execute in parallel (`--jobs` controls the
//! worker count).

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use dlrm::WorkloadScale;
use dlrm_datasets::{AccessPattern, HeterogeneousMix, MixKind};
use embedding_kernels::BufferStation;
use gpu_sim::GpuConfig;
use perf_envelope::{
    buffer_station_comparison, pooling_factor_sweep, prefetch_distance_sweep, register_sweep,
    Campaign, CampaignRun, Experiment, Scheme, Workload, PAPER_WARP_SWEEP,
};

use crate::options::HarnessOptions;

/// The figure numbers this harness can regenerate.
pub const ALL_FIGURES: [u32; 13] = [1, 5, 6, 9, 11, 12, 13, 14, 15, 16, 17, 18, 19];

/// Renders figure `n`, or `None` if the paper has no such figure in its
/// evaluation.
pub fn render_figure(n: u32, opts: &HarnessOptions) -> Option<String> {
    let body = match n {
        1 => figure1(opts),
        5 => figure5(opts),
        6 => figure6(opts),
        9 => figure9(opts),
        11 => figure11(opts),
        12 => figure12(opts),
        13 => figure13(opts),
        14 => figure14(opts),
        15 => figure15(opts),
        16 => figure16(opts),
        17 => figure17(opts),
        18 => figure18(opts),
        19 => figure19(opts),
        _ => return None,
    };
    Some(format!("{}\n{}", opts.banner(), body))
}

fn fmt_row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Simple aligned-column rendering used by every figure.
fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = format!("## {title}\n");
    out.push_str(&fmt_row(
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &widths,
    ));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Figure 1: batch latency of base vs OptMT across the memory-access-pattern
/// spectrum, split into embedding and non-embedding time.
pub fn figure1(opts: &HarnessOptions) -> String {
    let schemes = [Scheme::base(), Scheme::optmt()];
    let run = opts
        .campaign()
        .workloads(AccessPattern::ALL.map(Workload::end_to_end))
        .schemes(schemes)
        .run();
    let mut rows = Vec::new();
    for (w, pattern) in AccessPattern::ALL.into_iter().enumerate() {
        for (s, scheme) in schemes.into_iter().enumerate() {
            let report = run.get(w, s, 0, 0);
            let latency = report.batch_latency().expect("end-to-end run");
            rows.push(vec![
                pattern.paper_name().to_string(),
                scheme.paper_label(),
                format!("{:.2}", latency.total_ms()),
                format!("{:.2}", latency.embedding_ms()),
                format!("{:.2}", latency.non_embedding_us / 1e3),
                format!("{:.1}", latency.embedding_share_pct()),
            ]);
        }
    }
    render_table(
        "Figure 1: inference batch latency across memory access patterns",
        &[
            "dataset",
            "scheme",
            "total_ms",
            "emb_ms",
            "non_emb_ms",
            "emb_share_%",
        ],
        &rows,
    )
}

/// Figure 5: coverage study — % of total accesses covered by the hottest X%
/// of unique accesses.
pub fn figure5(opts: &HarnessOptions) -> String {
    let trace_cfg = opts.experiment().model().embedding.trace;
    let mut rows = Vec::new();
    for pattern in AccessPattern::ALL {
        let trace = trace_cfg.generate(pattern, opts.seed);
        let curve = trace.coverage_curve();
        for (unique_pct, coverage) in curve.series() {
            rows.push(vec![
                pattern.paper_name().to_string(),
                format!("{unique_pct:.0}"),
                format!("{coverage:.1}"),
            ]);
        }
    }
    render_table(
        "Figure 5: coverage of total accesses vs % unique accesses",
        &["dataset", "unique_%", "covered_%"],
        &rows,
    )
}

fn register_sweep_figure(title: &str, gpu: GpuConfig, opts: &HarnessOptions) -> String {
    let experiment = Experiment::new(gpu, opts.scale)
        .with_seed(opts.seed)
        .with_threads(opts.jobs);
    let points = register_sweep(&experiment, &AccessPattern::EVALUATED, &PAPER_WARP_SWEEP);
    let mut rows = Vec::new();
    for p in &points {
        let mut row = vec![p.target_warps.to_string(), p.regs_per_thread.to_string()];
        for &(_, s) in &p.speedups {
            row.push(format!("{s:.2}"));
        }
        row.push(format!("{:.2}", p.local_loads_millions));
        rows.push(row);
    }
    render_table(
        title,
        &[
            "warps/SM",
            "regs",
            "high hot",
            "med hot",
            "low hot",
            "random",
            "local_loads_M",
        ],
        &rows,
    )
}

/// Figure 6: speedup over base PyTorch when varying the theoretical active
/// warps per SM on the A100, plus the register-spilling penalty.
pub fn figure6(opts: &HarnessOptions) -> String {
    register_sweep_figure(
        "Figure 6: WLP sweep on A100 (speedup over base, local-memory loads)",
        GpuConfig::a100(),
        opts,
    )
}

/// Figure 9: performance impact of the prefetch distance for SMPF.
pub fn figure9(opts: &HarnessOptions) -> String {
    let distances = [1u32, 3, 5, 6, 7, 9, 10, 11, 13, 15];
    let points = prefetch_distance_sweep(
        &opts.experiment(),
        BufferStation::SharedMem,
        &distances,
        &AccessPattern::EVALUATED,
        false,
    );
    let mut rows = Vec::new();
    for p in &points {
        let mut row = vec![p.distance.to_string()];
        for &(_, s) in &p.speedups {
            row.push(format!("{s:.2}"));
        }
        rows.push(row);
    }
    render_table(
        "Figure 9: SMPF prefetch-distance sweep (speedup over base)",
        &["distance", "high hot", "med hot", "low hot", "random"],
        &rows,
    )
}

/// Figure 11: L2 pinning speedup over base as the pooling factor varies.
pub fn figure11(opts: &HarnessOptions) -> String {
    let pooling: Vec<u32> = match opts.scale {
        WorkloadScale::Test => vec![2, 4, 6, 8],
        WorkloadScale::Default => vec![8, 16, 24, 32, 48],
        WorkloadScale::Paper => vec![10, 30, 50, 70, 90, 110, 130, 150],
    };
    let patterns = [AccessPattern::HighHot, AccessPattern::MedHot];
    let points = pooling_factor_sweep(&opts.experiment(), &pooling, &patterns);
    let mut rows = Vec::new();
    for p in &points {
        let mut row = vec![p.pooling_factor.to_string()];
        for &(_, s) in &p.speedups {
            row.push(format!("{s:.3}"));
        }
        rows.push(row);
    }
    render_table(
        "Figure 11: L2P speedup over base vs pooling factor",
        &["pooling", "high hot", "med hot"],
        &rows,
    )
}

/// The headline grid shared by Figures 12, 13 and 14: every evaluated
/// dataset end-to-end under base (scheme index 0) and the four presented
/// schemes (indices 1..=4). It is the most expensive grid in the harness,
/// so `--all` memoizes the run per option set instead of simulating the
/// identical grid three times.
fn headline_campaign(opts: &HarnessOptions) -> CampaignRun {
    static CACHE: OnceLock<Mutex<HashMap<String, CampaignRun>>> = OnceLock::new();
    let key = format!("{}|jobs={}", opts.banner(), opts.jobs);
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(run) = cache.lock().expect("headline cache poisoned").get(&key) {
        return run.clone();
    }
    let schemes: Vec<Scheme> = std::iter::once(Scheme::base())
        .chain(Scheme::figure12_schemes())
        .collect();
    let run = opts
        .campaign()
        .workloads(AccessPattern::EVALUATED.map(Workload::end_to_end))
        .schemes(schemes)
        .run();
    cache
        .lock()
        .expect("headline cache poisoned")
        .insert(key, run.clone());
    run
}

/// Figure 12: embedding-only speedup of OptMT, RPF+OptMT, L2P+OptMT and
/// RPF+L2P+OptMT over base PyTorch.
pub fn figure12(opts: &HarnessOptions) -> String {
    let run = headline_campaign(opts);
    let mut rows = Vec::new();
    for (w, pattern) in AccessPattern::EVALUATED.into_iter().enumerate() {
        let base = run.get(w, 0, 0, 0);
        let mut row = vec![pattern.paper_name().to_string()];
        for s in 1..=Scheme::figure12_schemes().len() {
            row.push(format!(
                "{:.2}",
                run.get(w, s, 0, 0).embedding_speedup_over(base)
            ));
        }
        rows.push(row);
    }
    render_table(
        "Figure 12: embedding-only speedup over base PyTorch",
        &[
            "dataset",
            "OptMT",
            "RPF+OptMT",
            "L2P+OptMT",
            "RPF+L2P+OptMT",
        ],
        &rows,
    )
}

/// Figure 13: end-to-end speedup of the same schemes over base PyTorch.
pub fn figure13(opts: &HarnessOptions) -> String {
    let run = headline_campaign(opts);
    let mut rows = Vec::new();
    for (w, pattern) in AccessPattern::EVALUATED.into_iter().enumerate() {
        let base = run.get(w, 0, 0, 0);
        let mut row = vec![pattern.paper_name().to_string()];
        for s in 1..=Scheme::figure12_schemes().len() {
            row.push(format!("{:.2}", run.get(w, s, 0, 0).speedup_over(base)));
        }
        rows.push(row);
    }
    render_table(
        "Figure 13: end-to-end speedup over base PyTorch",
        &[
            "dataset",
            "OptMT",
            "RPF+OptMT",
            "L2P+OptMT",
            "RPF+L2P+OptMT",
        ],
        &rows,
    )
}

/// Figure 14: embedding-stage contribution to end-to-end latency.
pub fn figure14(opts: &HarnessOptions) -> String {
    let run = headline_campaign(opts);
    let mut rows = Vec::new();
    for (w, pattern) in AccessPattern::EVALUATED.into_iter().enumerate() {
        let mut row = vec![pattern.paper_name().to_string()];
        for s in 0..=Scheme::figure12_schemes().len() {
            let share = run
                .get(w, s, 0, 0)
                .batch_latency()
                .expect("end-to-end run")
                .embedding_share_pct();
            row.push(format!("{share:.1}"));
        }
        rows.push(row);
    }
    render_table(
        "Figure 14: embedding-stage share of end-to-end latency (%)",
        &[
            "dataset",
            "base",
            "OptMT",
            "RPF+OptMT",
            "L2P+OptMT",
            "RPF+L2P+OptMT",
        ],
        &rows,
    )
}

fn station_comparison_figure(title: &str, opts: &HarnessOptions, with_optmt: bool) -> String {
    let rows_data =
        buffer_station_comparison(&opts.experiment(), &AccessPattern::EVALUATED, with_optmt);
    let mut rows = Vec::new();
    for point in &rows_data {
        let mut row = vec![format!(
            "{}(d={})",
            point.station.abbreviation(),
            point.distance
        )];
        for &(_, s) in &point.speedups {
            row.push(format!("{s:.2}"));
        }
        rows.push(row);
    }
    render_table(
        title,
        &["scheme", "high hot", "med hot", "low hot", "random"],
        &rows,
    )
}

/// Figure 15: all prefetching schemes combined with OptMT, speedup over base.
pub fn figure15(opts: &HarnessOptions) -> String {
    station_comparison_figure(
        "Figure 15: prefetching schemes with OptMT (speedup over base)",
        opts,
        true,
    )
}

/// Figure 16: (a) prefetching schemes without OptMT at their optimal
/// distances; (b) SMPF, L2P and SMPF+L2P, all without OptMT.
pub fn figure16(opts: &HarnessOptions) -> String {
    let mut out = station_comparison_figure(
        "Figure 16a: prefetching schemes without OptMT (speedup over base)",
        opts,
        false,
    );
    let smpf = Scheme::prefetch_only(
        BufferStation::SharedMem,
        BufferStation::SharedMem.optimal_distance_without_optmt(),
    );
    let schemes = [smpf, Scheme::l2p_only(), smpf.with_l2_pinning(None)];
    let run = opts
        .campaign()
        .workloads(AccessPattern::EVALUATED.map(Workload::stage))
        .schemes(std::iter::once(Scheme::base()).chain(schemes))
        .run();
    let mut rows = Vec::new();
    for (w, pattern) in AccessPattern::EVALUATED.into_iter().enumerate() {
        let base = run.get(w, 0, 0, 0);
        let mut row = vec![pattern.paper_name().to_string()];
        for s in 1..=schemes.len() {
            row.push(format!("{:.2}", run.get(w, s, 0, 0).speedup_over(base)));
        }
        rows.push(row);
    }
    out.push('\n');
    out.push_str(&render_table(
        "Figure 16b: embedding-only speedup without OptMT",
        &["dataset", "SMPF", "L2P", "SMPF+L2P"],
        &rows,
    ));
    out
}

/// Figure 17: embedding-only speedups for heterogeneous table mixes.
pub fn figure17(opts: &HarnessOptions) -> String {
    let mixes: Vec<HeterogeneousMix> = MixKind::ALL
        .into_iter()
        .map(|kind| HeterogeneousMix::paper_mix(kind, 1.0))
        .collect();
    let run = opts
        .campaign()
        .workloads(mixes.iter().cloned().map(Workload::stage))
        .schemes(std::iter::once(Scheme::base()).chain(Scheme::figure12_schemes()))
        .run();
    let mut rows = Vec::new();
    for (w, kind) in MixKind::ALL.into_iter().enumerate() {
        let base = run.get(w, 0, 0, 0);
        let mut row = vec![kind.paper_name().to_string()];
        for s in 1..=Scheme::figure12_schemes().len() {
            row.push(format!("{:.2}", run.get(w, s, 0, 0).speedup_over(base)));
        }
        rows.push(row);
    }
    render_table(
        "Figure 17: embedding-only speedup on heterogeneous table mixes",
        &["mix", "OptMT", "RPF+OptMT", "L2P+OptMT", "RPF+L2P+OptMT"],
        &rows,
    )
}

/// Figure 18: the WLP sweep repeated on the H100 NVL.
pub fn figure18(opts: &HarnessOptions) -> String {
    register_sweep_figure(
        "Figure 18: WLP sweep on H100 NVL (speedup over base, local-memory loads)",
        GpuConfig::h100_nvl(),
        opts,
    )
}

/// Figure 19: embedding-only speedup of OptMT and the integrated scheme on
/// the H100 NVL vs the A100.
pub fn figure19(opts: &HarnessOptions) -> String {
    let schemes = [Scheme::optmt(), Scheme::combined()];
    let mut rows = Vec::new();
    for gpu in [GpuConfig::h100_nvl(), GpuConfig::a100()] {
        let experiment = Experiment::new(gpu.clone(), opts.scale)
            .with_seed(opts.seed)
            .with_threads(opts.jobs);
        let run = Campaign::new(experiment)
            .workloads(AccessPattern::EVALUATED.map(Workload::stage))
            .schemes(std::iter::once(Scheme::base()).chain(schemes))
            .run();
        for (s, scheme) in schemes.into_iter().enumerate() {
            let mut row = vec![gpu.name.clone(), scheme.paper_label()];
            for w in 0..AccessPattern::EVALUATED.len() {
                row.push(format!(
                    "{:.2}",
                    run.get(w, s + 1, 0, 0).speedup_over(run.get(w, 0, 0, 0))
                ));
            }
            rows.push(row);
        }
    }
    render_table(
        "Figure 19: embedding-only speedup vs base, H100 NVL and A100",
        &[
            "device", "scheme", "high hot", "med hot", "low hot", "random",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_opts() -> HarnessOptions {
        HarnessOptions {
            scale: WorkloadScale::Test,
            ..Default::default()
        }
    }

    #[test]
    fn every_listed_figure_renders() {
        // Only the cheapest figures run in unit tests; the rest are covered
        // by integration tests and the harness itself.
        let text = render_figure(5, &test_opts()).unwrap();
        assert!(text.contains("Figure"));
        assert!(text.lines().count() > 3);
    }

    #[test]
    fn unknown_figures_return_none() {
        assert!(render_figure(2, &test_opts()).is_none());
        assert!(render_figure(99, &test_opts()).is_none());
    }

    #[test]
    fn figure5_contains_every_dataset() {
        let text = figure5(&test_opts());
        for p in AccessPattern::ALL {
            assert!(text.contains(p.paper_name()), "missing {p}");
        }
    }

    #[test]
    fn figure1_reports_both_schemes_per_dataset() {
        let text = figure1(&test_opts());
        assert!(text.contains("base"));
        assert!(text.contains("OptMT"));
        assert!(text.contains("one item"));
        assert!(text.contains("random"));
    }

    #[test]
    fn table_renderer_aligns_columns() {
        let text = render_table(
            "t",
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[1].len(), lines[2].len());
    }
}
