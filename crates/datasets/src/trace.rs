//! Embedding lookup traces: the (offsets, indices) pair consumed by the
//! embedding-bag operator (paper Algorithm 2).

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::coverage::CoverageCurve;
use crate::pattern::AccessPattern;
use crate::zipf::ZipfSampler;

/// Shape of the trace for one embedding table: how many rows the table has
/// and how much work one inference batch performs against it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Number of rows in the embedding table.
    pub num_rows: u64,
    /// Samples per batch (the paper uses 2048).
    pub batch_size: u32,
    /// Lookups per sample, a.k.a. the pooling factor (the paper uses 150).
    pub pooling_factor: u32,
}

impl TraceConfig {
    /// Creates a trace configuration.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn new(num_rows: u64, batch_size: u32, pooling_factor: u32) -> Self {
        assert!(num_rows > 0, "a table must have at least one row");
        assert!(batch_size > 0, "the batch must contain at least one sample");
        assert!(
            pooling_factor > 0,
            "each sample must perform at least one lookup"
        );
        TraceConfig {
            num_rows,
            batch_size,
            pooling_factor,
        }
    }

    /// The paper's full-scale configuration: 500K rows, batch size 2048,
    /// pooling factor 150 (Section V).
    pub fn paper_scale() -> Self {
        TraceConfig::new(500_000, 2048, 150)
    }

    /// Total number of lookups in the trace.
    pub fn total_lookups(&self) -> u64 {
        self.batch_size as u64 * self.pooling_factor as u64
    }

    /// Generates a trace for `pattern` using `seed` for reproducibility.
    pub fn generate(&self, pattern: AccessPattern, seed: u64) -> EmbeddingTrace {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE_5EED);
        let total = self.total_lookups() as usize;
        let mut indices = Vec::with_capacity(total);
        match pattern {
            AccessPattern::OneItem => {
                // All lookups point at the same (arbitrary but fixed) row.
                let row = (seed % self.num_rows.max(1)) as u32;
                indices.resize(total, row.min((self.num_rows - 1) as u32));
            }
            AccessPattern::Random => {
                for _ in 0..total {
                    indices.push(rng.gen_range(0..self.num_rows) as u32);
                }
            }
            AccessPattern::HighHot | AccessPattern::MedHot | AccessPattern::LowHot => {
                let sampler = ZipfSampler::new(
                    self.num_rows,
                    pattern
                        .zipf_exponent()
                        .expect("hot patterns have a Zipf exponent"),
                );
                for _ in 0..total {
                    indices.push(sampler.sample(&mut rng) as u32);
                }
            }
        }
        let mut offsets = Vec::with_capacity(self.batch_size as usize + 1);
        for bag in 0..=self.batch_size {
            offsets.push(bag * self.pooling_factor);
        }
        EmbeddingTrace {
            config: *self,
            pattern,
            indices,
            offsets,
        }
    }

    /// Generates the list of hot-row candidates an offline profiling pass
    /// would identify for this pattern (used by L2 pinning; paper Figure 10,
    /// step 1). Returns at most `count` rows, hottest first.
    pub fn hot_row_candidates(&self, pattern: AccessPattern, count: usize, seed: u64) -> Vec<u64> {
        match pattern {
            AccessPattern::OneItem => vec![(seed % self.num_rows.max(1)).min(self.num_rows - 1)],
            AccessPattern::Random => {
                // No reuse structure to exploit; profiling would return the
                // most recently seen rows, which we approximate as the first
                // `count` rows of the table.
                (0..count.min(self.num_rows as usize) as u64).collect()
            }
            AccessPattern::HighHot | AccessPattern::MedHot | AccessPattern::LowHot => {
                let sampler = ZipfSampler::new(
                    self.num_rows,
                    pattern
                        .zipf_exponent()
                        .expect("hot patterns have a Zipf exponent"),
                );
                sampler.hottest_rows(count)
            }
        }
    }
}

/// A concrete lookup trace for one embedding table and one batch: the
/// `offsets`/`indices` arrays handed to the embedding-bag CUDA kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmbeddingTrace {
    /// The configuration the trace was generated from.
    pub config: TraceConfig,
    /// The access pattern used to generate the trace.
    pub pattern: AccessPattern,
    /// Row index of every lookup, `batch_size * pooling_factor` entries.
    pub indices: Vec<u32>,
    /// Per-bag start offsets into `indices`, `batch_size + 1` entries.
    pub offsets: Vec<u32>,
}

impl EmbeddingTrace {
    /// Total number of lookups in the trace.
    pub fn total_lookups(&self) -> u64 {
        self.indices.len() as u64
    }

    /// The lookups belonging to one bag (sample).
    ///
    /// # Panics
    /// Panics if `bag` is out of range.
    pub fn bag(&self, bag: usize) -> &[u32] {
        let start = self.offsets[bag] as usize;
        let end = self.offsets[bag + 1] as usize;
        &self.indices[start..end]
    }

    /// Number of bags (samples) in the trace.
    pub fn num_bags(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of distinct rows touched by the trace.
    pub fn unique_rows(&self) -> u64 {
        // audit:allow(unordered_collection): cardinality only, never iterated
        let set: HashSet<u32> = self.indices.iter().copied().collect();
        set.len() as u64
    }

    /// Unique accesses as a percentage of total accesses — the paper's
    /// Table III metric ("the proportion of distinct accesses compared to
    /// the total number of accesses").
    pub fn unique_access_pct(&self) -> f64 {
        100.0 * self.unique_rows() as f64 / self.total_lookups() as f64
    }

    /// Working-set size in bytes given the embedding row width.
    pub fn working_set_bytes(&self, row_bytes: u64) -> u64 {
        self.unique_rows() * row_bytes
    }

    /// Builds the coverage curve of the trace (paper Figure 5).
    pub fn coverage_curve(&self) -> CoverageCurve {
        CoverageCurve::from_indices(&self.indices)
    }

    /// Per-row access counts, sorted hottest first, as `(row, count)`.
    pub fn row_popularity(&self) -> Vec<(u32, u64)> {
        // audit:allow(unordered_collection): drained via sort_by with an
        // explicit row-id tie-break below, so order is canonical
        let mut counts: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        for &idx in &self.indices {
            *counts.entry(idx).or_insert(0) += 1;
        }
        let mut v: Vec<(u32, u64)> = counts.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// The `count` hottest rows actually observed in this trace (an "oracle"
    /// profiling result, used to validate the offline candidates).
    pub fn hottest_observed_rows(&self, count: usize) -> Vec<u32> {
        self.row_popularity()
            .into_iter()
            .take(count)
            .map(|(row, _)| row)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TraceConfig {
        TraceConfig::new(100_000, 256, 40)
    }

    #[test]
    fn trace_has_expected_shape() {
        let t = cfg().generate(AccessPattern::MedHot, 1);
        assert_eq!(t.total_lookups(), 256 * 40);
        assert_eq!(t.num_bags(), 256);
        assert_eq!(t.offsets.len(), 257);
        assert_eq!(t.bag(0).len(), 40);
        assert_eq!(t.bag(255).len(), 40);
    }

    #[test]
    fn indices_are_in_range_for_all_patterns() {
        for p in AccessPattern::ALL {
            let t = cfg().generate(p, 3);
            assert!(
                t.indices.iter().all(|&i| (i as u64) < cfg().num_rows),
                "pattern {p} produced out-of-range indices"
            );
        }
    }

    #[test]
    fn one_item_touches_a_single_row() {
        let t = cfg().generate(AccessPattern::OneItem, 9);
        assert_eq!(t.unique_rows(), 1);
        assert!(t.unique_access_pct() < 0.1);
    }

    #[test]
    fn unique_access_pct_orders_by_hotness() {
        let cfg = TraceConfig::new(200_000, 512, 64);
        let mut prev = -1.0;
        for p in AccessPattern::ALL {
            let t = cfg.generate(p, 11);
            let u = t.unique_access_pct();
            assert!(
                u >= prev,
                "unique access % should not decrease as hotness drops: {p} gave {u} after {prev}"
            );
            prev = u;
        }
    }

    #[test]
    fn random_unique_fraction_matches_sampling_theory() {
        // Uniform sampling of N draws over R rows yields an expected unique
        // fraction of R(1 - (1 - 1/R)^N) / N.
        let cfg = TraceConfig::new(100_000, 512, 64);
        let t = cfg.generate(AccessPattern::Random, 5);
        let n = cfg.total_lookups() as f64;
        let r = cfg.num_rows as f64;
        let expected = r * (1.0 - (1.0 - 1.0 / r).powf(n)) / n * 100.0;
        let measured = t.unique_access_pct();
        assert!(
            (measured - expected).abs() < 3.0,
            "measured {measured:.2}% vs expected {expected:.2}%"
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = cfg().generate(AccessPattern::HighHot, 42);
        let b = cfg().generate(AccessPattern::HighHot, 42);
        let c = cfg().generate(AccessPattern::HighHot, 43);
        assert_eq!(a, b);
        assert_ne!(a.indices, c.indices);
    }

    #[test]
    fn working_set_scales_with_row_bytes() {
        let t = cfg().generate(AccessPattern::LowHot, 2);
        assert_eq!(t.working_set_bytes(512), t.unique_rows() * 512);
    }

    #[test]
    fn hot_candidates_cover_most_hot_trace_accesses() {
        let cfg = TraceConfig::new(100_000, 512, 64);
        let t = cfg.generate(AccessPattern::HighHot, 7);
        // audit:allow(unordered_collection): membership checks only
        let candidates: HashSet<u64> = cfg
            .hot_row_candidates(AccessPattern::HighHot, 4096, 7)
            .into_iter()
            .collect();
        let covered = t
            .indices
            .iter()
            .filter(|&&i| candidates.contains(&(i as u64)))
            .count() as f64;
        let fraction = covered / t.total_lookups() as f64;
        assert!(
            fraction > 0.5,
            "offline hot candidates should cover most accesses, got {fraction:.2}"
        );
    }

    #[test]
    fn row_popularity_is_sorted_and_complete() {
        let t = cfg().generate(AccessPattern::MedHot, 13);
        let pop = t.row_popularity();
        let total: u64 = pop.iter().map(|(_, c)| c).sum();
        assert_eq!(total, t.total_lookups());
        for w in pop.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert_eq!(pop.len() as u64, t.unique_rows());
    }

    #[test]
    fn hottest_observed_rows_truncates() {
        let t = cfg().generate(AccessPattern::HighHot, 17);
        assert_eq!(t.hottest_observed_rows(10).len(), 10);
    }

    #[test]
    fn paper_scale_matches_section_v() {
        let c = TraceConfig::paper_scale();
        assert_eq!(c.num_rows, 500_000);
        assert_eq!(c.batch_size, 2048);
        assert_eq!(c.pooling_factor, 150);
        assert_eq!(c.total_lookups(), 307_200);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_batch_rejected() {
        let _ = TraceConfig::new(10, 0, 1);
    }
}
