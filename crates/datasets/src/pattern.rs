//! The five memory access patterns studied in the paper.

use std::fmt;

/// A memory access pattern ("hotness" class) for embedding lookups,
/// following the paper's Section III-B categorisation of Meta's homogenised
/// production traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AccessPattern {
    /// Every lookup targets the same single row: the fastest possible case
    /// (~100% cache hits), used by the paper as the performance upper bound.
    OneItem,
    /// Highly skewed power-law accesses: a few percent of rows service the
    /// vast majority of lookups (paper: 4.05% unique accesses).
    HighHot,
    /// Moderately skewed accesses (paper: 20.5% unique accesses).
    MedHot,
    /// Mildly skewed accesses (paper: 46.21% unique accesses).
    LowHot,
    /// Uniformly random accesses over the whole table: the slowest case
    /// (paper: 63.21% unique accesses).
    Random,
}

impl AccessPattern {
    /// All patterns in the paper's fastest-to-slowest order.
    pub const ALL: [AccessPattern; 5] = [
        AccessPattern::OneItem,
        AccessPattern::HighHot,
        AccessPattern::MedHot,
        AccessPattern::LowHot,
        AccessPattern::Random,
    ];

    /// The four patterns used in the paper's speedup figures (Figures 12-16),
    /// which omit the degenerate `one_item` case.
    pub const EVALUATED: [AccessPattern; 4] = [
        AccessPattern::HighHot,
        AccessPattern::MedHot,
        AccessPattern::LowHot,
        AccessPattern::Random,
    ];

    /// The dataset name as it appears in the paper's tables and figures.
    pub fn paper_name(&self) -> &'static str {
        match self {
            AccessPattern::OneItem => "one item",
            AccessPattern::HighHot => "high hot",
            AccessPattern::MedHot => "med hot",
            AccessPattern::LowHot => "low hot",
            AccessPattern::Random => "random",
        }
    }

    /// The unique-access percentage the paper reports for this dataset in
    /// Table III (at the paper's trace scale). Used for documentation and
    /// for shape comparisons in EXPERIMENTS.md, not for generation.
    pub fn paper_unique_access_pct(&self) -> f64 {
        match self {
            AccessPattern::OneItem => 0.0002,
            AccessPattern::HighHot => 4.05,
            AccessPattern::MedHot => 20.50,
            AccessPattern::LowHot => 46.21,
            AccessPattern::Random => 63.21,
        }
    }

    /// The Zipf exponent used by the synthetic generator for this pattern.
    /// Larger exponents concentrate accesses on fewer rows. `OneItem` and
    /// `Random` do not use a Zipf distribution.
    pub fn zipf_exponent(&self) -> Option<f64> {
        match self {
            AccessPattern::OneItem | AccessPattern::Random => None,
            AccessPattern::HighHot => Some(1.05),
            AccessPattern::MedHot => Some(0.70),
            AccessPattern::LowHot => Some(0.35),
        }
    }

    /// Relative hotness rank: 0 is hottest (`OneItem`), 4 is coldest
    /// (`Random`). The paper's figures are ordered by this rank.
    pub fn hotness_rank(&self) -> usize {
        match self {
            AccessPattern::OneItem => 0,
            AccessPattern::HighHot => 1,
            AccessPattern::MedHot => 2,
            AccessPattern::LowHot => 3,
            AccessPattern::Random => 4,
        }
    }

    /// Parses a pattern from a CLI-style name (`one_item`, `high_hot`,
    /// `med_hot`, `low_hot`, `random`). Returns `None` for unknown names.
    pub fn from_cli_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().replace('-', "_").as_str() {
            "one_item" | "oneitem" | "one item" => Some(AccessPattern::OneItem),
            "high_hot" | "high hot" | "high" => Some(AccessPattern::HighHot),
            "med_hot" | "med hot" | "med" | "medium" => Some(AccessPattern::MedHot),
            "low_hot" | "low hot" | "low" => Some(AccessPattern::LowHot),
            "random" | "rand" => Some(AccessPattern::Random),
            _ => None,
        }
    }
}

impl fmt::Display for AccessPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_every_pattern_in_hotness_order() {
        assert_eq!(AccessPattern::ALL.len(), 5);
        for (i, p) in AccessPattern::ALL.iter().enumerate() {
            assert_eq!(p.hotness_rank(), i);
        }
    }

    #[test]
    fn evaluated_excludes_one_item() {
        assert!(!AccessPattern::EVALUATED.contains(&AccessPattern::OneItem));
        assert_eq!(AccessPattern::EVALUATED.len(), 4);
    }

    #[test]
    fn paper_unique_percentages_are_monotonic_in_hotness() {
        let mut prev = -1.0;
        for p in AccessPattern::ALL {
            let u = p.paper_unique_access_pct();
            assert!(
                u > prev,
                "{p} should have more unique accesses than hotter patterns"
            );
            prev = u;
        }
    }

    #[test]
    fn zipf_exponents_decrease_as_hotness_drops() {
        let high = AccessPattern::HighHot.zipf_exponent().unwrap();
        let med = AccessPattern::MedHot.zipf_exponent().unwrap();
        let low = AccessPattern::LowHot.zipf_exponent().unwrap();
        assert!(high > med && med > low);
        assert!(AccessPattern::OneItem.zipf_exponent().is_none());
        assert!(AccessPattern::Random.zipf_exponent().is_none());
    }

    #[test]
    fn cli_names_round_trip() {
        for p in AccessPattern::ALL {
            let cli = p.paper_name().replace(' ', "_");
            assert_eq!(AccessPattern::from_cli_name(&cli), Some(p));
        }
        assert_eq!(AccessPattern::from_cli_name("bogus"), None);
    }

    #[test]
    fn display_matches_paper_name() {
        assert_eq!(format!("{}", AccessPattern::MedHot), "med hot");
    }
}
