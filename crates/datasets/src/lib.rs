//! # dlrm-datasets — embedding access-trace generators and hotness metrics
//!
//! The paper evaluates five memory access patterns derived from Meta's
//! production embedding-lookup traces (Section III-B, Table III, Figure 5):
//! `one_item`, `high_hot`, `med_hot`, `low_hot` and `random`. The production
//! traces themselves are not available here, so this crate generates
//! synthetic traces whose *statistics* — the unique-access percentage and the
//! coverage curve — reproduce the paper's characterisation:
//!
//! * `one_item`: every lookup hits the same row (the paper's best case,
//!   ~100% cache hits),
//! * `high_hot` / `med_hot` / `low_hot`: power-law (Zipf-like) distributions
//!   of decreasing skew, so the working set grows as hotness drops,
//! * `random`: uniform over the whole table (the paper's worst case).
//!
//! ## Example
//!
//! ```
//! use dlrm_datasets::{AccessPattern, TraceConfig};
//!
//! let cfg = TraceConfig::new(500_000, 128, 32);
//! let trace = cfg.generate(AccessPattern::HighHot, 42);
//! assert_eq!(trace.total_lookups(), 128 * 32);
//! let unique = trace.unique_access_pct();
//! assert!(unique < 50.0, "a hot trace reuses rows heavily");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod coverage;
pub mod mix;
pub mod pattern;
pub mod trace;
pub mod zipf;

pub use coverage::{pattern_coverage_skew, CoverageCurve};
pub use mix::{HeterogeneousMix, MixKind};
pub use pattern::AccessPattern;
pub use trace::{EmbeddingTrace, TraceConfig};
pub use zipf::ZipfSampler;
