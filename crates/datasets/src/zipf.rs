//! A Zipf (power-law) sampler over table rows.
//!
//! Embedding accesses in DLRMs follow a power-law distribution where a small
//! portion of rows services most lookups (paper Section III-B, citing
//! Gupta et al. and the ISCA'23 CPU study). This sampler draws row *ranks*
//! from a Zipf distribution with configurable exponent and then maps ranks to
//! row ids through a pseudo-random permutation, so that the hot rows are
//! scattered across the table instead of clustered at low addresses (which
//! would otherwise give them artificial spatial locality).

use rand::Rng;

/// A sampler producing row indices with a Zipf(`exponent`) popularity
/// distribution over `num_rows` rows.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    num_rows: u64,
    exponent: f64,
    /// Cumulative distribution over ranks, normalised to 1.0.
    cdf: Vec<f64>,
    /// Multiplicative constant of the rank->row permutation.
    perm_mult: u64,
}

impl ZipfSampler {
    /// Builds a sampler for `num_rows` rows with the given exponent.
    ///
    /// # Panics
    /// Panics if `num_rows` is zero or `exponent` is negative or not finite.
    pub fn new(num_rows: u64, exponent: f64) -> Self {
        assert!(num_rows > 0, "a table must have at least one row");
        assert!(
            exponent.is_finite() && exponent >= 0.0,
            "the Zipf exponent must be finite and non-negative"
        );
        let n = num_rows as usize;
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for rank in 1..=n as u64 {
            total += 1.0 / (rank as f64).powf(exponent);
            cdf.push(total);
        }
        for v in cdf.iter_mut() {
            *v /= total;
        }
        ZipfSampler {
            num_rows,
            exponent,
            cdf,
            perm_mult: largest_coprime_multiplier(num_rows),
        }
    }

    /// Number of rows this sampler draws from.
    pub fn num_rows(&self) -> u64 {
        self.num_rows
    }

    /// The configured exponent.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Draws one row index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let rank = match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i,
        }
        .min(self.cdf.len() - 1) as u64;
        self.rank_to_row(rank)
    }

    /// Maps a popularity rank (0 = most popular) to a row id via a fixed
    /// pseudo-random permutation of the table.
    pub fn rank_to_row(&self, rank: u64) -> u64 {
        (rank.wrapping_mul(self.perm_mult).wrapping_add(0x9E37_79B9)) % self.num_rows
    }

    /// Returns the `count` most popular row ids (in popularity order), i.e.
    /// the candidates the paper's L2-pinning scheme identifies by offline
    /// profiling (Figure 10, step 1).
    pub fn hottest_rows(&self, count: usize) -> Vec<u64> {
        (0..count.min(self.num_rows as usize) as u64)
            .map(|r| self.rank_to_row(r))
            .collect()
    }

    /// The analytical probability of drawing popularity rank `rank`
    /// (0-based).
    pub fn rank_probability(&self, rank: u64) -> f64 {
        if rank >= self.num_rows {
            return 0.0;
        }
        let prev = if rank == 0 {
            0.0
        } else {
            self.cdf[rank as usize - 1]
        };
        self.cdf[rank as usize] - prev
    }
}

/// Picks an odd multiplier that is coprime with `n` so that
/// `rank * mult + c (mod n)` permutes `[0, n)` when `n` is not a multiple of
/// the multiplier's factors. For arbitrary `n` we search downward from a
/// golden-ratio-like constant until `gcd(mult, n) == 1`.
fn largest_coprime_multiplier(n: u64) -> u64 {
    let mut m = 0x9E37_79B9_7F4A_7C15u64 % n.max(2);
    if m < 2 {
        m = 1;
    }
    while gcd(m, n) != 1 {
        m -= 1;
    }
    m.max(1)
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn samples_stay_in_range() {
        let s = ZipfSampler::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(s.sample(&mut rng) < 1000);
        }
    }

    #[test]
    fn higher_exponent_concentrates_mass() {
        let mut rng = StdRng::seed_from_u64(7);
        let unique_count = |exp: f64, rng: &mut StdRng| {
            let s = ZipfSampler::new(100_000, exp);
            // audit:allow(unordered_collection): cardinality only
            let draws: HashSet<u64> = (0..20_000).map(|_| s.sample(rng)).collect();
            draws.len()
        };
        let hot = unique_count(1.1, &mut rng);
        let warm = unique_count(0.6, &mut rng);
        let cold = unique_count(0.1, &mut rng);
        assert!(hot < warm, "hot={hot} warm={warm}");
        assert!(warm < cold, "warm={warm} cold={cold}");
    }

    #[test]
    fn rank_to_row_is_a_permutation() {
        let s = ZipfSampler::new(10_007, 1.0);
        // audit:allow(unordered_collection): cardinality only
        let rows: HashSet<u64> = (0..10_007).map(|r| s.rank_to_row(r)).collect();
        assert_eq!(rows.len(), 10_007);
    }

    #[test]
    fn hottest_rows_match_rank_mapping_and_are_distinct() {
        let s = ZipfSampler::new(50_000, 1.0);
        let hot = s.hottest_rows(1000);
        assert_eq!(hot.len(), 1000);
        assert_eq!(hot[0], s.rank_to_row(0));
        // audit:allow(unordered_collection): cardinality only
        let set: HashSet<u64> = hot.iter().copied().collect();
        assert_eq!(set.len(), 1000);
    }

    #[test]
    fn hottest_rows_caps_at_table_size() {
        let s = ZipfSampler::new(10, 1.0);
        assert_eq!(s.hottest_rows(100).len(), 10);
    }

    #[test]
    fn rank_probabilities_sum_to_one_and_decrease() {
        let s = ZipfSampler::new(1000, 0.8);
        let total: f64 = (0..1000).map(|r| s.rank_probability(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(s.rank_probability(0) > s.rank_probability(10));
        assert_eq!(s.rank_probability(5000), 0.0);
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let s = ZipfSampler::new(100, 0.0);
        let p0 = s.rank_probability(0);
        let p99 = s.rank_probability(99);
        assert!((p0 - p99).abs() < 1e-12);
        assert!((p0 - 0.01).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn empty_table_rejected() {
        let _ = ZipfSampler::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn negative_exponent_rejected() {
        let _ = ZipfSampler::new(10, -1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let s = ZipfSampler::new(10_000, 0.9);
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        let va: Vec<u64> = (0..100).map(|_| s.sample(&mut a)).collect();
        let vb: Vec<u64> = (0..100).map(|_| s.sample(&mut b)).collect();
        assert_eq!(va, vb);
    }
}
