//! The coverage study of Figure 5: what fraction of total accesses is
//! covered by the hottest X% of unique rows.

use std::collections::HashMap;

use crate::pattern::AccessPattern;
use crate::trace::TraceConfig;

/// Deterministic hotness score of an access pattern in `[0, 1]`: the
/// [`CoverageCurve::skew`] of a small synthetic probe trace generated with a
/// fixed seed. Hot (strongly Zipf-skewed) patterns score high, uniformly
/// random ones score near zero, so the score orders patterns the way the
/// paper's Figure 5 coverage curves do. Sharding strategies use it to split
/// hot tables from cold ones without simulating anything.
pub fn pattern_coverage_skew(pattern: AccessPattern) -> f64 {
    // Small enough to be negligible next to any simulation, large enough
    // that the skew estimate separates the paper's hotness classes.
    let probe = TraceConfig::new(4096, 64, 8);
    probe.generate(pattern, 0xC0FF_EE00).coverage_curve().skew()
}

/// A coverage curve: for each fraction of unique accesses (hottest first),
/// the fraction of total accesses they account for.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageCurve {
    /// Access counts per unique row, sorted descending.
    sorted_counts: Vec<u64>,
    /// Total number of accesses.
    total_accesses: u64,
}

impl CoverageCurve {
    /// Builds the curve from a raw index trace.
    pub fn from_indices(indices: &[u32]) -> Self {
        // audit:allow(unordered_collection): counts are collected then sorted
        // descending before any consumer sees them
        let mut counts: HashMap<u32, u64> = HashMap::new();
        for &i in indices {
            *counts.entry(i).or_insert(0) += 1;
        }
        let mut sorted_counts: Vec<u64> = counts.into_values().collect();
        sorted_counts.sort_unstable_by(|a, b| b.cmp(a));
        CoverageCurve {
            total_accesses: indices.len() as u64,
            sorted_counts,
        }
    }

    /// Number of unique rows in the trace.
    pub fn unique_rows(&self) -> u64 {
        self.sorted_counts.len() as u64
    }

    /// Total number of accesses in the trace.
    pub fn total_accesses(&self) -> u64 {
        self.total_accesses
    }

    /// Percentage of total accesses covered by the hottest `unique_pct`% of
    /// unique rows (the paper's Figure 5 y-axis for a given x).
    ///
    /// # Panics
    /// Panics if `unique_pct` is outside `[0, 100]`.
    pub fn coverage_at(&self, unique_pct: f64) -> f64 {
        assert!(
            (0.0..=100.0).contains(&unique_pct),
            "percentage must be within [0, 100]"
        );
        if self.total_accesses == 0 {
            return 0.0;
        }
        let take = ((unique_pct / 100.0) * self.sorted_counts.len() as f64).round() as usize;
        let covered: u64 = self
            .sorted_counts
            .iter()
            .take(take.max(usize::from(unique_pct > 0.0)))
            .sum();
        let covered = if take == 0 && unique_pct == 0.0 {
            0
        } else {
            covered
        };
        100.0 * covered as f64 / self.total_accesses as f64
    }

    /// Samples the curve at the paper's x-axis points (10%, 20%, ..., 100%),
    /// returning `(unique_pct, coverage_pct)` pairs — one series of Figure 5.
    pub fn series(&self) -> Vec<(f64, f64)> {
        (1..=10)
            .map(|i| (i as f64 * 10.0, self.coverage_at(i as f64 * 10.0)))
            .collect()
    }

    /// The Gini-like skew of the access distribution in `[0, 1]`: 0 means
    /// perfectly uniform, values near 1 mean a single row dominates. Useful
    /// as a scalar summary when comparing generated traces to the paper's.
    pub fn skew(&self) -> f64 {
        if self.total_accesses == 0 || self.sorted_counts.is_empty() {
            return 0.0;
        }
        // Area under the coverage curve (trapezoid over unique fraction),
        // rescaled so uniform -> 0 and single-row -> ~1.
        let n = self.sorted_counts.len() as f64;
        let mut cumulative = 0.0;
        let mut area = 0.0;
        for &c in &self.sorted_counts {
            cumulative += c as f64 / self.total_accesses as f64;
            area += cumulative * (1.0 / n);
        }
        // `area` is ~0.5 for a uniform distribution and approaches 1.0 when a
        // single row dominates; rescale to [0, 1].
        ((area - 0.5) * 2.0).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_trace_has_linear_coverage() {
        let indices: Vec<u32> = (0..1000u32).collect();
        let c = CoverageCurve::from_indices(&indices);
        assert_eq!(c.unique_rows(), 1000);
        assert!((c.coverage_at(10.0) - 10.0).abs() < 1.0);
        assert!((c.coverage_at(50.0) - 50.0).abs() < 1.0);
        assert!((c.coverage_at(100.0) - 100.0).abs() < 1e-9);
        assert!(c.skew() < 0.05);
    }

    #[test]
    fn single_row_trace_has_full_coverage_immediately() {
        let indices = vec![7u32; 500];
        let c = CoverageCurve::from_indices(&indices);
        assert_eq!(c.unique_rows(), 1);
        assert!((c.coverage_at(10.0) - 100.0).abs() < 1e-9);
        assert!(c.skew() > 0.9);
    }

    #[test]
    fn skewed_trace_covers_most_accesses_with_few_rows() {
        // One row gets 900 accesses, 100 rows get one access each.
        let mut indices = vec![0u32; 900];
        indices.extend(1..=100u32);
        let c = CoverageCurve::from_indices(&indices);
        let cov10 = c.coverage_at(10.0);
        assert!(
            cov10 > 85.0,
            "10% of uniques should cover most accesses, got {cov10}"
        );
        assert!(c.coverage_at(100.0) > 99.9);
    }

    #[test]
    fn series_has_ten_monotonic_points() {
        let mut indices = vec![0u32; 50];
        indices.extend(0..200u32);
        let c = CoverageCurve::from_indices(&indices);
        let s = c.series();
        assert_eq!(s.len(), 10);
        for w in s.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-9, "coverage must be non-decreasing");
        }
        assert!((s[9].0 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let c = CoverageCurve::from_indices(&[]);
        assert_eq!(c.unique_rows(), 0);
        assert_eq!(c.total_accesses(), 0);
        assert_eq!(c.coverage_at(50.0), 0.0);
        assert_eq!(c.skew(), 0.0);
    }

    #[test]
    #[should_panic(expected = "within [0, 100]")]
    fn out_of_range_percentage_panics() {
        let c = CoverageCurve::from_indices(&[1, 2, 3]);
        let _ = c.coverage_at(120.0);
    }

    #[test]
    fn pattern_skew_orders_by_hotness_and_is_deterministic() {
        let scores: Vec<f64> = AccessPattern::ALL
            .iter()
            .map(|&p| pattern_coverage_skew(p))
            .collect();
        for w in scores.windows(2) {
            assert!(
                w[0] >= w[1],
                "skew must not increase as hotness drops: {scores:?}"
            );
        }
        assert!(scores[0] > 0.9, "one_item is maximally skewed");
        assert!(
            pattern_coverage_skew(AccessPattern::HighHot)
                > pattern_coverage_skew(AccessPattern::Random) + 0.2,
            "hot and cold classes must be separable"
        );
        assert_eq!(
            pattern_coverage_skew(AccessPattern::MedHot),
            pattern_coverage_skew(AccessPattern::MedHot)
        );
    }
}
