//! Heterogeneous table mixes (paper Table VII and Figure 17).
//!
//! In production, the tables of one model differ in hotness. The paper
//! evaluates three synthetic mixtures of its four evaluated patterns; this
//! module reproduces them and lets callers build custom mixes.

use crate::pattern::AccessPattern;

/// The three mixtures evaluated in the paper's Table VII.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MixKind {
    /// 100 high-hot, 75 med-hot, 50 low-hot, 25 random tables.
    Mix1,
    /// 62 high-hot, 63 med-hot, 63 low-hot, 62 random tables.
    Mix2,
    /// 25 high-hot, 50 med-hot, 75 low-hot, 100 random tables.
    Mix3,
}

impl MixKind {
    /// All paper mixes in order.
    pub const ALL: [MixKind; 3] = [MixKind::Mix1, MixKind::Mix2, MixKind::Mix3];

    /// The mix name as used in Figure 17.
    pub fn paper_name(&self) -> &'static str {
        match self {
            MixKind::Mix1 => "Mix1",
            MixKind::Mix2 => "Mix2",
            MixKind::Mix3 => "Mix3",
        }
    }
}

/// A heterogeneous embedding stage: a list of `(pattern, table_count)` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeterogeneousMix {
    name: String,
    composition: Vec<(AccessPattern, u32)>,
}

impl HeterogeneousMix {
    /// Builds a custom mix.
    ///
    /// # Panics
    /// Panics if the composition is empty or contains zero-count entries.
    pub fn new(name: impl Into<String>, composition: Vec<(AccessPattern, u32)>) -> Self {
        assert!(
            !composition.is_empty(),
            "a mix must contain at least one table group"
        );
        assert!(
            composition.iter().all(|&(_, n)| n > 0),
            "every table group in a mix must contain at least one table"
        );
        HeterogeneousMix {
            name: name.into(),
            composition,
        }
    }

    /// One of the paper's Table VII mixes, scaled by `scale` (the paper uses
    /// 250 tables total; `scale = 1.0` reproduces that, smaller values shrink
    /// every group proportionally while keeping at least one table each).
    pub fn paper_mix(kind: MixKind, scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let counts: [(AccessPattern, u32); 4] = match kind {
            MixKind::Mix1 => [
                (AccessPattern::HighHot, 100),
                (AccessPattern::MedHot, 75),
                (AccessPattern::LowHot, 50),
                (AccessPattern::Random, 25),
            ],
            MixKind::Mix2 => [
                (AccessPattern::HighHot, 62),
                (AccessPattern::MedHot, 63),
                (AccessPattern::LowHot, 63),
                (AccessPattern::Random, 62),
            ],
            MixKind::Mix3 => [
                (AccessPattern::HighHot, 25),
                (AccessPattern::MedHot, 50),
                (AccessPattern::LowHot, 75),
                (AccessPattern::Random, 100),
            ],
        };
        let composition = counts
            .iter()
            .map(|&(p, n)| (p, ((n as f64 * scale).round() as u32).max(1)))
            .collect();
        HeterogeneousMix::new(kind.paper_name(), composition)
    }

    /// A homogeneous "mix" of `tables` tables that all share one pattern
    /// (the paper's default evaluation setting).
    pub fn homogeneous(pattern: AccessPattern, tables: u32) -> Self {
        HeterogeneousMix::new(format!("{pattern} x{tables}"), vec![(pattern, tables)])
    }

    /// The mix name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The `(pattern, count)` composition.
    pub fn composition(&self) -> &[(AccessPattern, u32)] {
        &self.composition
    }

    /// Total number of tables in the mix.
    pub fn total_tables(&self) -> u32 {
        self.composition.iter().map(|&(_, n)| n).sum()
    }

    /// Iterates over every table in the mix, yielding its pattern. Table
    /// order interleaves groups the way a round-robin sharder would, which
    /// avoids artificially front-loading all hot tables.
    pub fn tables(&self) -> Vec<AccessPattern> {
        let mut remaining: Vec<(AccessPattern, u32)> = self.composition.clone();
        let mut out = Vec::with_capacity(self.total_tables() as usize);
        while remaining.iter().any(|&(_, n)| n > 0) {
            for entry in remaining.iter_mut() {
                if entry.1 > 0 {
                    out.push(entry.0);
                    entry.1 -= 1;
                }
            }
        }
        out
    }

    /// Fraction of tables with the given pattern.
    pub fn fraction_of(&self, pattern: AccessPattern) -> f64 {
        let n: u32 = self
            .composition
            .iter()
            .filter(|&&(p, _)| p == pattern)
            .map(|&(_, n)| n)
            .sum();
        n as f64 / self.total_tables() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mixes_total_250_tables() {
        for kind in MixKind::ALL {
            let mix = HeterogeneousMix::paper_mix(kind, 1.0);
            assert_eq!(mix.total_tables(), 250, "{kind:?}");
        }
    }

    #[test]
    fn mix1_is_hot_heavy_and_mix3_is_cold_heavy() {
        let mix1 = HeterogeneousMix::paper_mix(MixKind::Mix1, 1.0);
        let mix3 = HeterogeneousMix::paper_mix(MixKind::Mix3, 1.0);
        assert!(
            mix1.fraction_of(AccessPattern::HighHot) > mix3.fraction_of(AccessPattern::HighHot)
        );
        assert!(mix1.fraction_of(AccessPattern::Random) < mix3.fraction_of(AccessPattern::Random));
    }

    #[test]
    fn scaling_preserves_every_group() {
        let mix = HeterogeneousMix::paper_mix(MixKind::Mix3, 0.04);
        assert_eq!(mix.composition().len(), 4);
        assert!(mix.composition().iter().all(|&(_, n)| n >= 1));
        assert!(mix.total_tables() <= 12);
    }

    #[test]
    fn tables_interleave_patterns() {
        let mix = HeterogeneousMix::new(
            "test",
            vec![(AccessPattern::HighHot, 2), (AccessPattern::Random, 2)],
        );
        let tables = mix.tables();
        assert_eq!(
            tables,
            vec![
                AccessPattern::HighHot,
                AccessPattern::Random,
                AccessPattern::HighHot,
                AccessPattern::Random
            ]
        );
    }

    #[test]
    fn tables_len_matches_total() {
        for kind in MixKind::ALL {
            let mix = HeterogeneousMix::paper_mix(kind, 0.1);
            assert_eq!(mix.tables().len() as u32, mix.total_tables());
        }
    }

    #[test]
    fn homogeneous_mix_has_one_pattern() {
        let mix = HeterogeneousMix::homogeneous(AccessPattern::MedHot, 8);
        assert_eq!(mix.total_tables(), 8);
        assert!((mix.fraction_of(AccessPattern::MedHot) - 1.0).abs() < 1e-12);
        assert_eq!(mix.fraction_of(AccessPattern::Random), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one table group")]
    fn empty_mix_rejected() {
        let _ = HeterogeneousMix::new("empty", vec![]);
    }

    #[test]
    #[should_panic(expected = "at least one table")]
    fn zero_count_group_rejected() {
        let _ = HeterogeneousMix::new("zero", vec![(AccessPattern::Random, 0)]);
    }
}
