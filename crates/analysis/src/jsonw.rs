//! Minimal JSON emission — just enough to render `AUDIT.json` without any
//! external dependency (mirroring the no-deps policy of
//! `perf_envelope::json` on the parsing side).

/// Renders `s` as a JSON string literal (quotes included).
pub fn str_lit(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a JSON array of pre-rendered values, one per line, indented.
pub fn array(items: &[String], indent: usize) -> String {
    if items.is_empty() {
        return "[]".to_string();
    }
    let pad = " ".repeat(indent + 2);
    let close = " ".repeat(indent);
    let body = items
        .iter()
        .map(|item| format!("{pad}{item}"))
        .collect::<Vec<_>>()
        .join(",\n");
    format!("[\n{body}\n{close}]")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(str_lit("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(str_lit("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn arrays_render_multiline() {
        assert_eq!(array(&[], 0), "[]");
        let a = array(&["1".to_string(), "2".to_string()], 2);
        assert_eq!(a, "[\n    1,\n    2\n  ]");
    }
}
