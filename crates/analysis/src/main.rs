//! `cargo run -p analysis` — audit the workspace, write `AUDIT.json` at the
//! workspace root, print a human summary, exit nonzero on findings.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    // CARGO_MANIFEST_DIR is crates/analysis; the workspace root is two up.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/analysis sits two levels below the workspace root")
        .to_path_buf();

    let audit = analysis::audit_workspace(&root);

    let out = root.join("AUDIT.json");
    if let Err(e) = std::fs::write(&out, audit.to_json()) {
        eprintln!("audit: cannot write {}: {e}", out.display());
        return ExitCode::from(2);
    }

    println!(
        "audit: {} files scanned, {} suppression(s), {} struct(s) fingerprint-checked -> {}",
        audit.files_scanned,
        audit.suppressed.len(),
        audit.coverage.len(),
        out.display()
    );
    if audit.findings.is_empty() {
        println!("audit: clean");
        ExitCode::SUCCESS
    } else {
        for f in &audit.findings {
            eprintln!("audit: {}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        }
        eprintln!("audit: {} finding(s)", audit.findings.len());
        ExitCode::FAILURE
    }
}
