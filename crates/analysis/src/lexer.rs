//! Light-weight Rust source masking and `audit:allow` directive extraction.
//!
//! The auditor is a *token-level* scanner, not a parser: rules match
//! identifiers and short token sequences in source text. For that to be
//! sound the text must first be stripped of the places where a matching
//! token is *not* code — comments, string literals and char literals. The
//! masking below replaces those regions with spaces **in place**, so byte
//! offsets and line numbers of the surviving code are unchanged.
//!
//! Handled syntax: `//` line comments, nested `/* */` block comments,
//! `"..."` strings with escapes, raw strings (`r"..."`, `r#"..."#`, any
//! hash depth), byte/raw-byte strings, char literals (including escaped
//! ones) and lifetimes (`'a` is *not* a char literal). This covers the
//! subset of Rust the workspace actually uses; exotic forms degrade to
//! over-masking at worst, which only makes the scanner more conservative.

/// One `// audit:allow(rule): reason` suppression directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowDirective {
    /// The rule the directive suppresses.
    pub rule: String,
    /// The justification after the colon (trimmed; may be empty, which the
    /// caller reports as a malformed directive).
    pub reason: String,
    /// 1-based source line the directive appears on.
    pub line: usize,
}

/// What to erase when masking a source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaskMode {
    /// Erase comments only (string literals survive — used when rule logic
    /// needs literal values, e.g. fingerprint key extraction).
    Comments,
    /// Erase comments and string/char literal contents (used by token
    /// rules, so `"HashMap"` in a message never trips a rule).
    CommentsAndStrings,
}

/// Returns `source` with comments (and optionally literal contents)
/// replaced by spaces. Newlines inside erased regions are preserved so the
/// result has identical line structure.
pub fn mask(source: &str, mode: MaskMode) -> String {
    let bytes = source.as_bytes();
    let mut out: Vec<u8> = bytes.to_vec();
    let erase_strings = mode == MaskMode::CommentsAndStrings;
    let mut i = 0usize;

    // Blanks `out[from..to]`, preserving newlines.
    let blank = |out: &mut [u8], from: usize, to: usize| {
        for b in &mut out[from..to] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    };

    while i < bytes.len() {
        match bytes[i] {
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                blank(&mut out, start, i);
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                blank(&mut out, start, i);
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                let start = i;
                i = skip_raw_string(bytes, i);
                if erase_strings {
                    blank(&mut out, start, i);
                }
            }
            b'b' if i + 1 < bytes.len() && bytes[i + 1] == b'"' => {
                let start = i;
                i = skip_quoted(bytes, i + 1);
                if erase_strings {
                    blank(&mut out, start, i);
                }
            }
            b'"' => {
                let start = i;
                i = skip_quoted(bytes, i);
                if erase_strings {
                    blank(&mut out, start, i);
                }
            }
            b'\'' => {
                // Distinguish a char literal from a lifetime: a lifetime is
                // `'ident` NOT followed by a closing quote.
                if let Some(end) = char_literal_end(bytes, i) {
                    if erase_strings {
                        blank(&mut out, i, end);
                    }
                    i = end;
                } else {
                    i += 1; // lifetime: skip just the quote
                }
            }
            _ => i += 1,
        }
    }
    String::from_utf8(out).expect("masking preserves UTF-8 (erased bytes are ASCII)")
}

/// Whether position `i` starts a raw (possibly byte) string: `r"`, `r#`,
/// `br"`, `br#`.
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    let j = if bytes[i] == b'b' { i + 1 } else { i };
    if j >= bytes.len() || bytes[j] != b'r' {
        return false;
    }
    let mut k = j + 1;
    while k < bytes.len() && bytes[k] == b'#' {
        k += 1;
    }
    k < bytes.len() && bytes[k] == b'"'
}

/// Skips a raw string starting at `i`; returns the index just past it.
fn skip_raw_string(bytes: &[u8], i: usize) -> usize {
    let mut j = if bytes[i] == b'b' { i + 1 } else { i };
    j += 1; // past 'r'
    let mut hashes = 0usize;
    while j < bytes.len() && bytes[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    j += 1; // past the opening quote
    while j < bytes.len() {
        if bytes[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < bytes.len() && bytes[k] == b'#' && seen < hashes {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return k;
            }
        }
        j += 1;
    }
    bytes.len()
}

/// Skips a `"..."` literal starting at the opening quote index; returns the
/// index just past the closing quote.
fn skip_quoted(bytes: &[u8], start: usize) -> usize {
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    bytes.len()
}

/// If a char literal starts at `i` (an apostrophe), returns the index just
/// past its closing quote; `None` for lifetimes.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    let mut j = i + 1;
    if j >= bytes.len() {
        return None;
    }
    if bytes[j] == b'\\' {
        // Escaped char: skip the escape, then scan to the closing quote
        // (covers '\n', '\'', '\u{1F600}').
        j += 2;
        while j < bytes.len() && bytes[j] != b'\'' {
            j += 1;
        }
        return (j < bytes.len()).then_some(j + 1);
    }
    // Unescaped: a char literal is exactly one character then a quote. A
    // lifetime ('a, 'static) has an identifier char NOT followed by a quote.
    let ch_len = utf8_len(bytes[j]);
    let close = j + ch_len;
    if close < bytes.len() && bytes[close] == b'\'' {
        Some(close + 1)
    } else {
        None
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

/// Extracts every `audit:allow(rule): reason` directive from the raw
/// source. Directives must live in a `//` line comment; the reason is
/// whatever follows the first colon after the closing parenthesis.
pub fn allow_directives(source: &str) -> Vec<AllowDirective> {
    let mut out = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let Some(comment_at) = raw.find("//") else {
            continue;
        };
        let comment = &raw[comment_at..];
        let Some(marker) = comment.find("audit:allow(") else {
            continue;
        };
        let rest = &comment[marker + "audit:allow(".len()..];
        let Some(close) = rest.find(')') else {
            out.push(AllowDirective {
                rule: String::new(),
                reason: String::new(),
                line: idx + 1,
            });
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let after = &rest[close + 1..];
        let reason = after
            .strip_prefix(':')
            .map(|r| r.trim().to_string())
            .unwrap_or_default();
        out.push(AllowDirective {
            rule,
            reason,
            line: idx + 1,
        });
    }
    out
}

/// Whether `haystack` contains `needle` as a standalone identifier (no
/// identifier character on either side).
pub fn contains_identifier(haystack: &str, needle: &str) -> bool {
    let mut from = 0usize;
    while let Some(pos) = haystack[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0
            || !haystack[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let end = at + needle.len();
        let after_ok = end >= haystack.len()
            || !haystack[end..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        from = at + needle.len();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let src = "let a = 1; // HashMap here\nlet b = \"HashMap\"; /* SystemTime */ let c = 2;";
        let masked = mask(src, MaskMode::CommentsAndStrings);
        assert!(!masked.contains("HashMap"));
        assert!(!masked.contains("SystemTime"));
        assert!(masked.contains("let a = 1;"));
        assert!(masked.contains("let c = 2;"));
        assert_eq!(masked.lines().count(), src.lines().count());
    }

    #[test]
    fn comment_only_mode_keeps_strings() {
        let src = "doc.set(\"num_sms\", x); // trailing";
        let masked = mask(src, MaskMode::Comments);
        assert!(masked.contains("\"num_sms\""));
        assert!(!masked.contains("trailing"));
    }

    #[test]
    fn nested_block_comments_and_raw_strings() {
        let src = "/* a /* b */ HashMap */ let r = r#\"HashSet\"#;";
        let masked = mask(src, MaskMode::CommentsAndStrings);
        assert!(!masked.contains("HashMap"));
        assert!(!masked.contains("HashSet"));
        assert!(masked.contains("let r ="));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let masked = mask(src, MaskMode::CommentsAndStrings);
        assert!(masked.contains("&'a str"));
        assert!(!masked.contains("'x'"));
    }

    #[test]
    fn directives_parse_rule_and_reason() {
        let src = "let m = HashMap::new(); // audit:allow(unordered_collection): keyed lookups only\n// audit:allow(wall_clock):\n";
        let ds = allow_directives(src);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds[0].rule, "unordered_collection");
        assert_eq!(ds[0].reason, "keyed lookups only");
        assert_eq!(ds[0].line, 1);
        assert_eq!(ds[1].rule, "wall_clock");
        assert_eq!(ds[1].reason, "");
    }

    #[test]
    fn identifier_matching_respects_boundaries() {
        assert!(contains_identifier("let m: HashMap<u32, u32>;", "HashMap"));
        assert!(!contains_identifier("let m: MyHashMapLike;", "HashMap"));
        assert!(!contains_identifier("let hashmap = 1;", "HashMap"));
    }
}
