//! Workspace determinism & cache-soundness auditor.
//!
//! `cargo run -p analysis` scans the workspace sources, writes a
//! machine-readable `AUDIT.json` at the workspace root, and exits nonzero
//! if any unsuppressed finding remains. It is a *token-level* scanner in
//! the spirit of `perf_envelope::json` — no crates.io dependencies, no
//! full parser — which is sound here because every rule matches syntax
//! that survives [`lexer::mask`]ing (comments and literals blanked, line
//! structure preserved).
//!
//! # Rules
//!
//! | rule | what it flags | where |
//! |------|---------------|-------|
//! | `unordered_collection` | `HashMap`/`HashSet` use sites — iteration order is randomized per process, so any iteration feeding a result breaks run-to-run determinism | result-producing crates: `gpu-sim`, `core` (perf-envelope), `kernels`, `datasets` |
//! | `wall_clock` | `Instant`/`SystemTime` — host timing must never reach a simulated result | everywhere except `crates/bench` (the one crate allowed to time things) |
//! | `thread_accumulation` | shared-state accumulation shapes (`Mutex<Vec`, `RwLock<Vec`, `fetch_add(`, `fetch_sub(`, locked `push`) whose value or order depends on thread interleaving | result-producing crates (same set as `unordered_collection`) |
//! | `fingerprint_coverage` | a field of a result-affecting config struct (see [`rules::AUDITED_STRUCTS`]) that is neither emitted as a key in `crates/core/src/fingerprint.rs` nor declared in the manifest | config structs vs. the fingerprint module |
//! | `malformed_allow` | an `audit:allow` directive naming an unknown rule or missing its justification | anywhere directives appear |
//!
//! `use` statements are exempt from the token rules: the hazard lives at
//! use sites, which are always flagged independently.
//!
//! # Suppressions: `audit:allow`
//!
//! A finding is suppressed by an inline directive in a `//` comment:
//!
//! ```text
//! let mut pending: HashMap<u64, u64> = HashMap::new(); // audit:allow(unordered_collection): keyed lookups only, never iterated
//! ```
//!
//! The directive applies to its own line and the next code-bearing line
//! below it (blank and comment-only lines are skipped, so a standalone
//! comment may run to several lines before the declaration it annotates).
//! The justification after the colon is mandatory — an empty reason is
//! reported as `malformed_allow`, as is an unknown rule name. Suppressed
//! findings are still recorded in `AUDIT.json` under `"suppressed"`, so
//! the allow-list is reviewable in one place.
//!
//! # The fingerprint manifest
//!
//! `crates/analysis/fingerprint_manifest.txt` declares how struct fields
//! that do not match an emitted key verbatim are covered. Two entry
//! forms (one per line, `#` comments allowed):
//!
//! ```text
//! GpuConfig.max_concurrent_streams => exempt: validation cap only; actual stream count is fingerprinted via the streams key
//! Workload.target => keys: kind pattern dataset
//! ```
//!
//! `keys:` entries are verified against the keys actually emitted by
//! `fingerprint.rs`; stale entries (field renamed away, field now
//! fingerprinted directly, key no longer emitted) are findings. Every
//! field of every audited struct is enumerated in the `"coverage"`
//! section of `AUDIT.json` with its resolution
//! (`fingerprinted` / `via_keys` / `exempt`).
//!
//! # Adding a rule
//!
//! 1. Define a [`rules::TokenRule`] const in `rules.rs` (pick
//!    [`rules::MatchKind::Identifier`] for type/function names,
//!    [`rules::MatchKind::Substring`] for multi-token shapes) and add it
//!    to [`rules::ALL_TOKEN_RULES`] so `audit:allow(<name>)` validates.
//! 2. Decide its scope in [`audit_workspace`] (append to the rule set for
//!    the paths it applies to).
//! 3. Add a seeded-violation fixture under `tests/fixtures/` and a case
//!    in `tests/analyzer.rs` proving the rule fires and suppresses.
//! 4. Document it in the table above.
//!
//! Non-token rules (like `fingerprint_coverage`) are plain functions in
//! `rules.rs` invoked from [`audit_workspace`]; follow the same fixture
//! discipline.

pub mod jsonw;
pub mod lexer;
pub mod rules;

use std::fs;
use std::path::{Path, PathBuf};

use rules::{
    coverage_from_sources, scan_tokens, FieldStatus, StructCoverage, AUDITED_STRUCTS,
    THREAD_ACCUMULATION, UNORDERED_COLLECTION, WALL_CLOCK,
};

/// One unsuppressed rule violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule name (see the crate docs table).
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Why this is a problem.
    pub message: String,
}

/// A violation covered by a valid `audit:allow` directive.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rule that would have fired.
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the (suppressed) violation.
    pub line: usize,
    /// The justification from the directive.
    pub reason: String,
}

/// Full audit outcome: findings, the reviewable allow-list, and the
/// fingerprint-coverage enumeration.
#[derive(Debug)]
pub struct Audit {
    /// Unsuppressed violations; nonempty ⇒ the binary exits nonzero.
    pub findings: Vec<Finding>,
    /// Violations silenced by `audit:allow`, with their justifications.
    pub suppressed: Vec<Suppression>,
    /// Per-struct field coverage from the fingerprint rule.
    pub coverage: Vec<StructCoverage>,
    /// Number of `.rs` files scanned by the token rules.
    pub files_scanned: usize,
}

/// Crates whose outputs are (or feed) simulation results: the scope of the
/// `unordered_collection` and `thread_accumulation` rules.
const RESULT_CRATE_DIRS: &[&str] = &[
    "crates/gpu-sim/src",
    "crates/core/src",
    "crates/kernels/src",
    "crates/datasets/src",
];

/// Path prefixes never scanned: vendored deps, build output, the bench
/// harness (exempt from `wall_clock` by design) and this crate itself
/// (its sources and fixtures spell out every needle).
const SKIP_DIRS: &[&str] = &[
    "vendor",
    "target",
    "crates/bench",
    "crates/analysis",
    ".git",
];

/// Workspace-relative path of the fingerprint module.
pub const FINGERPRINT_FILE: &str = "crates/core/src/fingerprint.rs";

/// Workspace-relative path of the coverage manifest.
pub const MANIFEST_FILE: &str = "crates/analysis/fingerprint_manifest.txt";

/// Recursively collects `.rs` files under `dir`, sorted, as
/// workspace-relative paths. Sorted traversal keeps the audit output (and
/// therefore `AUDIT.json` diffs) deterministic.
fn rust_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        let rel = path.strip_prefix(root).unwrap_or(&path);
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if SKIP_DIRS
            .iter()
            .any(|s| rel_str == *s || rel_str.starts_with(&format!("{s}/")))
        {
            continue;
        }
        if path.is_dir() {
            rust_files(root, &path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Audits the workspace rooted at `root`: token rules over every in-scope
/// `.rs` file plus the fingerprint-coverage cross-check.
pub fn audit_workspace(root: &Path) -> Audit {
    let mut findings = Vec::new();
    let mut suppressed = Vec::new();

    let mut files = Vec::new();
    rust_files(root, root, &mut files);
    let files_scanned = files.len();

    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let in_result_crate = RESULT_CRATE_DIRS
            .iter()
            .any(|d| rel.starts_with(&format!("{d}/")) || rel == *d);
        let mut rule_set = vec![&WALL_CLOCK];
        if in_result_crate {
            rule_set.push(&UNORDERED_COLLECTION);
            rule_set.push(&THREAD_ACCUMULATION);
        }
        let Ok(source) = fs::read_to_string(path) else {
            continue;
        };
        let result = scan_tokens(&rel, &source, &rule_set);
        findings.extend(result.findings);
        suppressed.extend(result.suppressed);
    }

    // Fingerprint coverage: load each audited struct's file, the
    // fingerprint module and the manifest.
    let mut struct_sources: Vec<(&str, &str, String)> = Vec::new();
    for spec in AUDITED_STRUCTS {
        match fs::read_to_string(root.join(spec.file)) {
            Ok(src) => struct_sources.push((spec.name, spec.file, src)),
            Err(_) => findings.push(Finding {
                rule: rules::FINGERPRINT_COVERAGE.to_string(),
                file: spec.file.to_string(),
                line: 1,
                snippet: String::new(),
                message: format!(
                    "cannot read {} (audited struct '{}'); update AUDITED_STRUCTS if the file moved",
                    spec.file, spec.name
                ),
            }),
        }
    }
    let fingerprint_source = fs::read_to_string(root.join(FINGERPRINT_FILE)).unwrap_or_default();
    let manifest_source = fs::read_to_string(root.join(MANIFEST_FILE)).unwrap_or_default();
    let borrowed: Vec<(&str, &str, &str)> = struct_sources
        .iter()
        .map(|(n, f, s)| (*n, *f, s.as_str()))
        .collect();
    let (cov_findings, coverage) = coverage_from_sources(
        &borrowed,
        &fingerprint_source,
        FINGERPRINT_FILE,
        &manifest_source,
        MANIFEST_FILE,
    );
    findings.extend(cov_findings);

    findings.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    suppressed.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));

    Audit {
        findings,
        suppressed,
        coverage,
        files_scanned,
    }
}

impl Audit {
    /// Renders the audit as pretty-printed JSON (the `AUDIT.json` format).
    pub fn to_json(&self) -> String {
        use jsonw::{array, str_lit};
        let findings: Vec<String> = self
            .findings
            .iter()
            .map(|f| {
                format!(
                    "{{\"rule\": {}, \"file\": {}, \"line\": {}, \"snippet\": {}, \"message\": {}}}",
                    str_lit(&f.rule),
                    str_lit(&f.file),
                    f.line,
                    str_lit(&f.snippet),
                    str_lit(&f.message)
                )
            })
            .collect();
        let suppressed: Vec<String> = self
            .suppressed
            .iter()
            .map(|s| {
                format!(
                    "{{\"rule\": {}, \"file\": {}, \"line\": {}, \"reason\": {}}}",
                    str_lit(&s.rule),
                    str_lit(&s.file),
                    s.line,
                    str_lit(&s.reason)
                )
            })
            .collect();
        let coverage: Vec<String> = self
            .coverage
            .iter()
            .map(|sc| {
                let fields: Vec<String> = sc
                    .fields
                    .iter()
                    .map(|f| {
                        let (status, detail) = match &f.status {
                            Some(FieldStatus::Fingerprinted) => {
                                ("fingerprinted".to_string(), String::new())
                            }
                            Some(FieldStatus::ViaKeys(ks)) => {
                                ("via_keys".to_string(), ks.join(" "))
                            }
                            Some(FieldStatus::Exempt(reason)) => {
                                ("exempt".to_string(), reason.clone())
                            }
                            None => ("UNCOVERED".to_string(), String::new()),
                        };
                        format!(
                            "{{\"field\": {}, \"line\": {}, \"status\": {}, \"detail\": {}}}",
                            str_lit(&f.name),
                            f.line,
                            str_lit(&status),
                            str_lit(&detail)
                        )
                    })
                    .collect();
                format!(
                    "{{\"struct\": {}, \"file\": {}, \"fields\": {}}}",
                    str_lit(&sc.name),
                    str_lit(&sc.file),
                    array(&fields, 4)
                )
            })
            .collect();
        format!(
            "{{\n  \"schema\": \"perf-envelope/audit/v1\",\n  \"files_scanned\": {},\n  \"findings\": {},\n  \"suppressed\": {},\n  \"coverage\": {}\n}}\n",
            self.files_scanned,
            array(&findings, 2),
            array(&suppressed, 2),
            array(&coverage, 2)
        )
    }
}
