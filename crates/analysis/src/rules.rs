//! The audit rules: token-level determinism hazards and the
//! fingerprint-coverage cross-check.
//!
//! See the crate docs ([`crate`]) for what each rule enforces, the
//! `audit:allow` suppression syntax, and how to add a rule.

use crate::lexer::{allow_directives, contains_identifier, mask, MaskMode};
use crate::{Finding, Suppression};

/// How a token rule matches a masked source line.
#[derive(Debug, Clone, Copy)]
pub enum MatchKind {
    /// Match any of the needles as standalone identifiers.
    Identifier(&'static [&'static str]),
    /// Match any of the needles as raw substrings (for multi-token shapes
    /// like `Mutex<Vec`).
    Substring(&'static [&'static str]),
}

/// One line-oriented hazard rule.
#[derive(Debug, Clone, Copy)]
pub struct TokenRule {
    /// Stable rule name — what `audit:allow(<name>)` refers to.
    pub name: &'static str,
    /// What the rule looks for.
    pub kind: MatchKind,
    /// Human-readable description attached to findings.
    pub message: &'static str,
}

/// Iteration order of `HashMap`/`HashSet` is randomized per process; any
/// use in a result-producing crate must be shown (and declared) order-safe
/// or converted to a `BTreeMap`/`BTreeSet`/sorted vector.
pub const UNORDERED_COLLECTION: TokenRule = TokenRule {
    name: "unordered_collection",
    kind: MatchKind::Identifier(&["HashMap", "HashSet"]),
    message: "HashMap/HashSet in a result-producing crate: iteration order is \
              nondeterministic; use a BTree collection, sort before use, or \
              justify with audit:allow",
};

/// Wall-clock reads make results depend on the host machine; only the
/// benchmark harness (crates/bench) may time things.
pub const WALL_CLOCK: TokenRule = TokenRule {
    name: "wall_clock",
    kind: MatchKind::Identifier(&["Instant", "SystemTime"]),
    message: "wall-clock time outside crates/bench: simulated results must \
              not depend on host timing",
};

/// Shared-state accumulation whose value (or order) depends on thread
/// interleaving: results must be written to per-index slots or reduced
/// order-insensitively.
pub const THREAD_ACCUMULATION: TokenRule = TokenRule {
    name: "thread_accumulation",
    kind: MatchKind::Substring(&[
        "Mutex<Vec",
        "RwLock<Vec",
        "fetch_add(",
        "fetch_sub(",
        "lock().unwrap().push(",
    ]),
    message: "thread-order-dependent accumulation: push-order or read-modify-write \
              on shared state varies with scheduling; collect into per-job \
              slots or justify with audit:allow",
};

/// Name of the synthetic rule reported for malformed `audit:allow`
/// directives (unknown rule name or missing reason).
pub const MALFORMED_ALLOW: &str = "malformed_allow";

/// Name of the fingerprint-coverage rule.
pub const FINGERPRINT_COVERAGE: &str = "fingerprint_coverage";

/// Every token rule, for directive validation.
pub const ALL_TOKEN_RULES: &[&TokenRule] =
    &[&UNORDERED_COLLECTION, &WALL_CLOCK, &THREAD_ACCUMULATION];

/// Outcome of scanning one file with a set of token rules.
#[derive(Debug, Default)]
pub struct ScanResult {
    /// Unsuppressed violations (including malformed allow directives).
    pub findings: Vec<Finding>,
    /// Violations covered by a valid `audit:allow`.
    pub suppressed: Vec<Suppression>,
}

/// Scans `source` (labelled `file`) with the given rules.
///
/// A finding is suppressed by a well-formed `audit:allow(rule): reason`
/// directive on the same line (trailing comment) or in a standalone
/// comment directly above it — "directly above" skips blank and
/// comment-only lines, so a directive may open a multi-line comment.
/// Directives naming an unknown rule or lacking a reason are themselves
/// findings.
pub fn scan_tokens(file: &str, source: &str, rules: &[&TokenRule]) -> ScanResult {
    let mut result = ScanResult::default();

    // Collect suppressions first: (rule, line) -> reason.
    let mut allows: Vec<(String, usize, String)> = Vec::new();
    for d in allow_directives(source) {
        let known = ALL_TOKEN_RULES.iter().any(|r| r.name == d.rule)
            || d.rule == FINGERPRINT_COVERAGE
            || d.rule == MALFORMED_ALLOW;
        if !known || d.reason.is_empty() {
            result.findings.push(Finding {
                rule: MALFORMED_ALLOW.to_string(),
                file: file.to_string(),
                line: d.line,
                snippet: source
                    .lines()
                    .nth(d.line - 1)
                    .unwrap_or("")
                    .trim()
                    .to_string(),
                message: if known {
                    "audit:allow directive lacks a justification after the colon".to_string()
                } else {
                    format!("audit:allow names unknown rule '{}'", d.rule)
                },
            });
        } else {
            allows.push((d.rule, d.line, d.reason));
        }
    }

    let masked = mask(source, MaskMode::CommentsAndStrings);
    let masked_lines: Vec<&str> = masked.lines().collect();

    // Resolve each directive to the lines it covers: its own line plus the
    // next line carrying any code (skipping blank and comment-only lines,
    // which mask to whitespace).
    let covers = |allow_line: usize, line: usize| -> bool {
        if line == allow_line {
            return true;
        }
        if line <= allow_line {
            return false;
        }
        masked_lines[allow_line..line - 1]
            .iter()
            .all(|l| l.trim().is_empty())
    };

    for (idx, (masked_line, raw_line)) in masked.lines().zip(source.lines()).enumerate() {
        let line = idx + 1;
        let trimmed = masked_line.trim_start();
        // Imports are not where the hazard lives: every *use site* of the
        // imported type is flagged, so flagging `use` lines too would only
        // force a second, redundant allow per file.
        if trimmed.starts_with("use ") || trimmed.starts_with("pub use ") {
            continue;
        }
        for rule in rules {
            let hit = match rule.kind {
                MatchKind::Identifier(needles) => needles
                    .iter()
                    .any(|needle| contains_identifier(masked_line, needle)),
                MatchKind::Substring(needles) => {
                    needles.iter().any(|needle| masked_line.contains(needle))
                }
            };
            if !hit {
                continue;
            }
            let allow = allows
                .iter()
                .find(|(r, l, _)| r == rule.name && covers(*l, line));
            match allow {
                Some((_, _, reason)) => result.suppressed.push(Suppression {
                    rule: rule.name.to_string(),
                    file: file.to_string(),
                    line,
                    reason: reason.clone(),
                }),
                None => result.findings.push(Finding {
                    rule: rule.name.to_string(),
                    file: file.to_string(),
                    line,
                    snippet: raw_line.trim().to_string(),
                    message: rule.message.to_string(),
                }),
            }
        }
    }
    result
}

// ---------------------------------------------------------------------------
// Fingerprint coverage
// ---------------------------------------------------------------------------

/// How one config-struct field is covered by the cache fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldStatus {
    /// The field name appears verbatim as a key emitted in fingerprint.rs.
    Fingerprinted,
    /// The manifest maps the field onto other emitted keys (all verified to
    /// exist).
    ViaKeys(Vec<String>),
    /// The manifest declares the field non-result-affecting, with a reason.
    Exempt(String),
}

/// Coverage of one field.
#[derive(Debug, Clone)]
pub struct FieldCoverage {
    /// Field name as declared in the struct.
    pub name: String,
    /// 1-based line of the field declaration.
    pub line: usize,
    /// Resolution, if the field is covered (uncovered fields are findings).
    pub status: Option<FieldStatus>,
}

/// Coverage of one audited struct.
#[derive(Debug, Clone)]
pub struct StructCoverage {
    /// Struct name.
    pub name: String,
    /// File the struct was parsed from (workspace-relative).
    pub file: String,
    /// Every field of the struct, in declaration order.
    pub fields: Vec<FieldCoverage>,
}

/// One audited struct: its name and the workspace-relative file that
/// defines it.
#[derive(Debug, Clone, Copy)]
pub struct StructSpec {
    /// Rust struct name.
    pub name: &'static str,
    /// Defining file, relative to the workspace root.
    pub file: &'static str,
}

/// Every result-affecting configuration struct the fingerprint must cover.
/// Adding a knob to any of these without fingerprinting it (or declaring it
/// exempt in the manifest) fails the audit.
pub const AUDITED_STRUCTS: &[StructSpec] = &[
    StructSpec {
        name: "GpuConfig",
        file: "crates/gpu-sim/src/config.rs",
    },
    StructSpec {
        name: "CacheConfig",
        file: "crates/gpu-sim/src/config.rs",
    },
    StructSpec {
        name: "DramConfig",
        file: "crates/gpu-sim/src/config.rs",
    },
    StructSpec {
        name: "EngineTuning",
        file: "crates/gpu-sim/src/engine.rs",
    },
    StructSpec {
        name: "DlrmConfig",
        file: "crates/dlrm/src/model.rs",
    },
    StructSpec {
        name: "EmbeddingConfig",
        file: "crates/kernels/src/workload.rs",
    },
    StructSpec {
        name: "TraceConfig",
        file: "crates/datasets/src/trace.rs",
    },
    StructSpec {
        name: "Cluster",
        file: "crates/core/src/topology.rs",
    },
    StructSpec {
        name: "InterconnectConfig",
        file: "crates/core/src/topology.rs",
    },
    StructSpec {
        name: "StreamConfig",
        file: "crates/core/src/topology.rs",
    },
    StructSpec {
        name: "Workload",
        file: "crates/core/src/workload.rs",
    },
    StructSpec {
        name: "Scheme",
        file: "crates/core/src/scheme.rs",
    },
    StructSpec {
        name: "L2Pinning",
        file: "crates/core/src/scheme.rs",
    },
    StructSpec {
        name: "PrefetchConfig",
        file: "crates/kernels/src/spec.rs",
    },
    StructSpec {
        name: "FaultPlan",
        file: "crates/core/src/serving/faults.rs",
    },
    StructSpec {
        name: "FaultEvent",
        file: "crates/core/src/serving/faults.rs",
    },
    StructSpec {
        name: "RetryPolicy",
        file: "crates/core/src/serving/retry.rs",
    },
    StructSpec {
        name: "AdmissionPolicy",
        file: "crates/core/src/serving/retry.rs",
    },
    StructSpec {
        name: "RoutingPolicy",
        file: "crates/core/src/fleet.rs",
    },
    StructSpec {
        name: "AutoscalePolicy",
        file: "crates/core/src/fleet.rs",
    },
    StructSpec {
        name: "FleetSpec",
        file: "crates/core/src/fleet.rs",
    },
    StructSpec {
        name: "ReplicaGroup",
        file: "crates/core/src/fleet.rs",
    },
];

/// Parses the field names of `struct_name` out of `source` (masked of
/// comments and strings first). Returns `(line, field_name)` pairs in
/// declaration order, or `None` if the struct is not found.
pub fn struct_fields(source: &str, struct_name: &str) -> Option<Vec<(usize, String)>> {
    let masked = mask(source, MaskMode::CommentsAndStrings);
    // Locate `struct <name>` as whole tokens followed by `{`.
    let mut search_from = 0usize;
    let body_start = loop {
        let rel = masked[search_from..].find("struct ")?;
        let at = search_from + rel;
        let before_ok = at == 0
            || !masked[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = masked[at + "struct ".len()..].trim_start();
        if before_ok && after.starts_with(struct_name) {
            let past = &after[struct_name.len()..];
            let past_trim = past.trim_start();
            if past_trim.starts_with('{') {
                let brace_off = masked[at..].find('{').expect("checked above");
                break at + brace_off + 1;
            }
        }
        search_from = at + "struct ".len();
    };

    // Walk the struct body at brace depth 1, collecting `name:` patterns at
    // the start of a (trimmed) line.
    let mut fields = Vec::new();
    let mut depth = 1usize;
    let mut line = masked[..body_start].matches('\n').count() + 1;
    let mut at_line_start = true;
    let mut i = body_start;
    let bytes = masked.as_bytes();
    while i < bytes.len() && depth > 0 {
        let c = bytes[i] as char;
        match c {
            '{' => depth += 1,
            '}' => depth -= 1,
            '\n' => {
                line += 1;
                at_line_start = true;
                i += 1;
                continue;
            }
            _ => {}
        }
        if at_line_start && depth == 1 && !c.is_whitespace() {
            at_line_start = false;
            let rest: &str = &masked[i..];
            let rest_line = rest.lines().next().unwrap_or("");
            let decl = rest_line
                .trim_start()
                .strip_prefix("pub ")
                .unwrap_or(rest_line.trim_start());
            if let Some(colon) = decl.find(':') {
                let name = decl[..colon].trim();
                let is_field = !name.is_empty()
                    && !decl[colon..].starts_with("::")
                    && name.chars().all(|ch| ch.is_alphanumeric() || ch == '_')
                    && name
                        .chars()
                        .next()
                        .is_some_and(|ch| ch.is_lowercase() || ch == '_');
                if is_field {
                    fields.push((line, name.to_string()));
                }
            }
        }
        i += 1;
    }
    Some(fields)
}

/// Extracts every key string emitted through `.set("key", ...)` calls in
/// the fingerprint module (comments masked; string literals kept).
pub fn fingerprint_keys(source: &str) -> Vec<String> {
    let masked = mask(source, MaskMode::Comments);
    let mut keys = Vec::new();
    let mut from = 0usize;
    while let Some(rel) = masked[from..].find(".set(") {
        let at = from + rel + ".set(".len();
        let rest = masked[at..].trim_start();
        if let Some(stripped) = rest.strip_prefix('"') {
            if let Some(end) = stripped.find('"') {
                keys.push(stripped[..end].to_string());
            }
        }
        from = at;
    }
    keys.sort();
    keys.dedup();
    keys
}

/// One parsed manifest entry.
#[derive(Debug, Clone)]
enum ManifestEntry {
    Keys(Vec<String>),
    Exempt(String),
}

/// Runs the fingerprint-coverage rule over in-memory sources. `structs` is
/// `(spec name, file label, file source)`; files may repeat. Returns the
/// findings plus the full per-struct coverage enumeration.
pub fn coverage_from_sources(
    structs: &[(&str, &str, &str)],
    fingerprint_source: &str,
    fingerprint_file: &str,
    manifest_source: &str,
    manifest_file: &str,
) -> (Vec<Finding>, Vec<StructCoverage>) {
    let mut findings = Vec::new();
    let mut coverage = Vec::new();
    let keys = fingerprint_keys(fingerprint_source);
    if keys.is_empty() {
        findings.push(Finding {
            rule: FINGERPRINT_COVERAGE.to_string(),
            file: fingerprint_file.to_string(),
            line: 1,
            snippet: String::new(),
            message: "no fingerprint keys found: the key extractor no longer \
                      matches the fingerprint encoding"
                .to_string(),
        });
    }

    // Parse the manifest: `Struct.field => keys: a b c` or
    // `Struct.field => exempt: reason`.
    let mut manifest: Vec<(String, String, ManifestEntry, usize)> = Vec::new();
    for (idx, raw) in manifest_source.lines().enumerate() {
        let line = idx + 1;
        let text = raw.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        let mut bad = |message: String| {
            findings.push(Finding {
                rule: FINGERPRINT_COVERAGE.to_string(),
                file: manifest_file.to_string(),
                line,
                snippet: text.to_string(),
                message,
            });
        };
        let Some((target, rhs)) = text.split_once("=>") else {
            bad("manifest line is not of the form 'Struct.field => ...'".to_string());
            continue;
        };
        let Some((sname, fname)) = target.trim().split_once('.') else {
            bad("manifest target must be 'Struct.field'".to_string());
            continue;
        };
        let rhs = rhs.trim();
        let entry = if let Some(k) = rhs.strip_prefix("keys:") {
            let ks: Vec<String> = k.split_whitespace().map(str::to_string).collect();
            if ks.is_empty() {
                bad("'keys:' entry lists no keys".to_string());
                continue;
            }
            ManifestEntry::Keys(ks)
        } else if let Some(r) = rhs.strip_prefix("exempt:") {
            let reason = r.trim();
            if reason.is_empty() {
                bad("'exempt:' entry needs a justification".to_string());
                continue;
            }
            ManifestEntry::Exempt(reason.to_string())
        } else {
            bad("manifest entry must be 'keys: ...' or 'exempt: ...'".to_string());
            continue;
        };
        manifest.push((
            sname.trim().to_string(),
            fname.trim().to_string(),
            entry,
            line,
        ));
    }

    let mut used_manifest = vec![false; manifest.len()];
    for &(name, file, source) in structs {
        let Some(fields) = struct_fields(source, name) else {
            findings.push(Finding {
                rule: FINGERPRINT_COVERAGE.to_string(),
                file: file.to_string(),
                line: 1,
                snippet: String::new(),
                message: format!(
                    "audited struct '{name}' not found in {file}; update the \
                     AUDITED_STRUCTS table if it moved or was renamed"
                ),
            });
            continue;
        };
        let mut fcov = Vec::new();
        for (line, field) in fields {
            let manifest_idx = manifest
                .iter()
                .position(|(s, f, _, _)| s == name && f == &field);
            let direct = keys.iter().any(|k| k == &field);
            let status = match manifest_idx {
                Some(mi) => {
                    used_manifest[mi] = true;
                    let (_, _, entry, mline) = &manifest[mi];
                    if direct {
                        findings.push(Finding {
                            rule: FINGERPRINT_COVERAGE.to_string(),
                            file: manifest_file.to_string(),
                            line: *mline,
                            snippet: format!("{name}.{field}"),
                            message: format!(
                                "stale manifest entry: '{field}' is already \
                                 emitted as a fingerprint key"
                            ),
                        });
                    }
                    match entry {
                        ManifestEntry::Keys(ks) => {
                            for k in ks {
                                if !keys.iter().any(|have| have == k) {
                                    findings.push(Finding {
                                        rule: FINGERPRINT_COVERAGE.to_string(),
                                        file: manifest_file.to_string(),
                                        line: *mline,
                                        snippet: format!("{name}.{field}"),
                                        message: format!(
                                            "manifest maps '{field}' to key \
                                             '{k}', which fingerprint.rs does \
                                             not emit"
                                        ),
                                    });
                                }
                            }
                            Some(FieldStatus::ViaKeys(ks.clone()))
                        }
                        ManifestEntry::Exempt(reason) => Some(FieldStatus::Exempt(reason.clone())),
                    }
                }
                None if direct => Some(FieldStatus::Fingerprinted),
                None => {
                    findings.push(Finding {
                        rule: FINGERPRINT_COVERAGE.to_string(),
                        file: file.to_string(),
                        line,
                        snippet: field.clone(),
                        message: format!(
                            "field '{field}' of result-affecting struct \
                             '{name}' is neither emitted as a fingerprint key \
                             nor declared in the manifest: a new knob that \
                             changes results would silently alias cache cells"
                        ),
                    });
                    None
                }
            };
            fcov.push(FieldCoverage {
                name: field,
                line,
                status,
            });
        }
        coverage.push(StructCoverage {
            name: name.to_string(),
            file: file.to_string(),
            fields: fcov,
        });
    }

    for (used, (sname, fname, _, mline)) in used_manifest.iter().zip(&manifest) {
        if !used {
            findings.push(Finding {
                rule: FINGERPRINT_COVERAGE.to_string(),
                file: manifest_file.to_string(),
                line: *mline,
                snippet: format!("{sname}.{fname}"),
                message: format!(
                    "manifest entry '{sname}.{fname}' matches no field of any \
                     audited struct (stale after a rename?)"
                ),
            });
        }
    }

    (findings, coverage)
}
