//! Malformed-directive fixture: a reason-less directive and an
//! unknown-rule directive must each produce a `malformed_allow` finding
//! AND fail to suppress the violation on their line. Not compiled — read
//! as text by tests/analyzer.rs.

pub fn broken_directives() {
    let m: std::collections::HashMap<u32, u32> = Default::default(); // audit:allow(unordered_collection):
    let s: std::collections::HashSet<u32> = Default::default(); // audit:allow(no_such_rule): justification
    let _ = (m, s);
}
