//! Sharded-commit fixture: the engine's sharded-SM selection pattern, in
//! both the shape the `thread_accumulation` rule must flag and the
//! commit-point shape it must accept. Not compiled — read as text by
//! tests/analyzer.rs.
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The hazardous shape: shard workers fold their picks into shared state
/// as they go, so counter values and pick order depend on thread
/// interleaving. Every line below must fire.
pub fn sharded_select_accumulating(shards: &[Shard], stats: &SharedStats) {
    std::thread::scope(|s| {
        for shard in shards {
            s.spawn(|| {
                for pick in shard.select_all() {
                    stats.insts_issued.fetch_add(1, Ordering::Relaxed);
                    stats.picks.lock().unwrap().push(pick);
                }
            });
        }
    });
}

pub struct SharedStats {
    pub insts_issued: AtomicU64,
    pub picks: Mutex<Vec<u32>>,
}

/// The commit-point shape the engine actually uses: workers write
/// selections into disjoint spans of a pre-sized pick buffer (per-index
/// slots, no shared mutable state), and a single serial pass afterwards
/// applies every side effect in ascending shard order. Nothing here may
/// fire — the scan over this function must be clean.
pub fn sharded_select_commit_point(shards: &[Shard], picks: &mut [u32], stats: &mut Stats) {
    std::thread::scope(|s| {
        for (shard, span) in shards.iter().zip(picks.chunks_mut(1)) {
            s.spawn(move || span[0] = shard.select());
        }
    });
    // Serial commit: deterministic order, plain &mut accumulation.
    for &pick in picks.iter() {
        stats.insts_issued += u64::from(pick != u32::MAX);
    }
}
