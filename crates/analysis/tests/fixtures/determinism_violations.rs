//! Seeded-violation fixture: every token rule must fire on this file.
//! Not compiled — read as text by tests/analyzer.rs.
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

pub fn unordered() {
    let mut m = HashMap::new();
    m.insert(1u32, 2u32);
    let s: std::collections::HashSet<u32> = Default::default();
    let _ = (m, s);
    let in_string = "HashMap and HashSet and Instant in a string literal";
    /* HashMap inside a block comment */
    // SystemTime inside a line comment
    let _ = in_string;
}

pub fn clocks() {
    let t = std::time::Instant::now();
    let u = std::time::SystemTime::now();
    let _ = (t, u);
}

pub struct Accumulator {
    pub values: Mutex<Vec<u32>>,
    pub counter: AtomicU64,
}

pub fn accumulate(a: &Accumulator) {
    a.counter.fetch_add(1, Ordering::Relaxed);
    a.counter.fetch_sub(1, Ordering::Relaxed);
}
