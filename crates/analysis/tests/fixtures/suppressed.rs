//! Suppression fixture: every violation here carries a valid
//! `audit:allow`, so a scan must report zero findings and three
//! suppressions. Not compiled — read as text by tests/analyzer.rs.

pub fn all_allowed() {
    // audit:allow(unordered_collection): keyed lookups only, never iterated
    let m: std::collections::HashMap<u32, u32> = Default::default();
    let t = std::time::Instant::now(); // audit:allow(wall_clock): harness-side timing
    // audit:allow(thread_accumulation): monotonic counter, order-insensitive
    // (the directive also covers multi-line comments like this one)
    COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let _ = (m, t);
}

static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
