//! Self-tests for the workspace auditor: every rule fires on a seeded
//! fixture, suppressions and malformed directives behave as documented,
//! the fingerprint-coverage rule catches a deliberately unfingerprinted
//! field, and the real workspace audits clean.

use analysis::rules::{
    coverage_from_sources, fingerprint_keys, scan_tokens, struct_fields, FieldStatus,
    ALL_TOKEN_RULES, THREAD_ACCUMULATION, UNORDERED_COLLECTION, WALL_CLOCK,
};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

fn rules_of(findings: &[analysis::Finding], rule: &str) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn every_token_rule_fires_on_the_seeded_fixture() {
    let src = fixture("determinism_violations.rs");
    let result = scan_tokens("fixture.rs", &src, ALL_TOKEN_RULES);
    // HashMap::new + HashSet decl (the `use` line is skipped by design).
    assert_eq!(rules_of(&result.findings, "unordered_collection"), 2);
    // Instant::now + SystemTime::now.
    assert_eq!(rules_of(&result.findings, "wall_clock"), 2);
    // Mutex<Vec field + fetch_add + fetch_sub.
    assert_eq!(rules_of(&result.findings, "thread_accumulation"), 3);
    assert!(result.suppressed.is_empty());
    // Needles inside strings and comments must NOT fire: total is exactly
    // the seeded count.
    assert_eq!(result.findings.len(), 7, "{:#?}", result.findings);
}

#[test]
fn valid_allows_suppress_and_are_recorded() {
    let src = fixture("suppressed.rs");
    let result = scan_tokens("fixture.rs", &src, ALL_TOKEN_RULES);
    assert!(
        result.findings.is_empty(),
        "fully-allowed fixture still produced {:#?}",
        result.findings
    );
    assert_eq!(result.suppressed.len(), 3);
    let rules: Vec<&str> = result.suppressed.iter().map(|s| s.rule.as_str()).collect();
    assert!(rules.contains(&"unordered_collection"));
    assert!(rules.contains(&"wall_clock"));
    assert!(rules.contains(&"thread_accumulation"));
    assert!(result.suppressed.iter().all(|s| !s.reason.is_empty()));
}

#[test]
fn malformed_directives_are_findings_and_do_not_suppress() {
    let src = fixture("malformed_allows.rs");
    let result = scan_tokens("fixture.rs", &src, ALL_TOKEN_RULES);
    // One reason-less directive, one unknown-rule directive.
    assert_eq!(rules_of(&result.findings, "malformed_allow"), 2);
    // Neither directive suppressed the violation on its own line.
    assert_eq!(rules_of(&result.findings, "unordered_collection"), 2);
    assert!(result.suppressed.is_empty());
}

#[test]
fn use_lines_are_exempt_from_token_rules() {
    let src = "use std::collections::HashMap;\npub use std::time::Instant;\n";
    let result = scan_tokens("f.rs", src, ALL_TOKEN_RULES);
    assert!(result.findings.is_empty(), "{:#?}", result.findings);
}

#[test]
fn trailing_allow_covers_its_own_line_only_matching_rule() {
    let src =
        "let t = std::time::Instant::now(); // audit:allow(unordered_collection): wrong rule\n";
    let result = scan_tokens("f.rs", src, &[&WALL_CLOCK, &UNORDERED_COLLECTION]);
    // The directive names a different rule, so the wall_clock finding stays.
    assert_eq!(rules_of(&result.findings, "wall_clock"), 1);
}

/// The sharded-SM selection pattern from the engine: the accumulating
/// variant (workers folding picks into shared atomics/locked vecs) must
/// fire `thread_accumulation`, while the commit-point variant (disjoint
/// per-shard slots, serial commit) must scan clean.
#[test]
fn sharded_commit_fixture_separates_hazard_from_commit_point() {
    let src = fixture("sharded_commit.rs");
    let result = scan_tokens("sharded_commit.rs", &src, &[&THREAD_ACCUMULATION]);
    // fetch_add + lock().unwrap().push( + the Mutex<Vec field.
    assert_eq!(
        rules_of(&result.findings, "thread_accumulation"),
        3,
        "{:#?}",
        result.findings
    );
    // Every finding sits in the accumulating half of the fixture; the
    // commit-point half (below the serial-commit comment) is clean.
    let commit_point_start = src
        .lines()
        .position(|l| l.contains("fn sharded_select_commit_point"))
        .unwrap()
        + 1;
    assert!(
        result.findings.iter().all(|f| f.line < commit_point_start),
        "commit-point pattern was flagged: {:#?}",
        result.findings
    );
    assert!(result.suppressed.is_empty());
}

#[test]
fn accumulation_rule_matches_substring_shapes() {
    let src = "struct S { v: Mutex<Vec<u8>> }\nfn f(c: &AtomicU64) { c.fetch_add(1, O); }\n";
    let result = scan_tokens("f.rs", src, &[&THREAD_ACCUMULATION]);
    assert_eq!(result.findings.len(), 2);
}

// ---------------------------------------------------------------------------
// Fingerprint coverage
// ---------------------------------------------------------------------------

const FAKE_FINGERPRINT: &str = r#"
pub fn cell_key() {
    doc.set("num_sms", x);
    doc.set("clock_ghz", y);
    doc.set("seed", z);
    // doc.set("commented_out", w); must not count
}
"#;

/// Regression test for the acceptance criterion: a config struct that
/// grows a result-affecting field without a fingerprint key (and without a
/// manifest entry) MUST fail the audit.
#[test]
fn unfingerprinted_field_is_caught() {
    let struct_src =
        "pub struct FakeConfig {\n    pub num_sms: usize,\n    pub secret_knob: u32,\n}\n";
    let (findings, coverage) = coverage_from_sources(
        &[("FakeConfig", "fake.rs", struct_src)],
        FAKE_FINGERPRINT,
        "fp.rs",
        "",
        "manifest.txt",
    );
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].rule, "fingerprint_coverage");
    assert!(findings[0].message.contains("secret_knob"));
    assert_eq!(findings[0].file, "fake.rs");
    assert_eq!(findings[0].line, 3);
    // The enumeration still lists every field, covered or not.
    assert_eq!(coverage.len(), 1);
    let fields: Vec<&str> = coverage[0].fields.iter().map(|f| f.name.as_str()).collect();
    assert_eq!(fields, ["num_sms", "secret_knob"]);
    assert_eq!(
        coverage[0].fields[0].status,
        Some(FieldStatus::Fingerprinted)
    );
    assert_eq!(coverage[0].fields[1].status, None);
}

#[test]
fn manifest_keys_and_exempt_entries_cover_fields() {
    let struct_src = "pub struct FakeConfig {\n    pub device: Gpu,\n    pub scratch: u32,\n}\n";
    let manifest = "FakeConfig.device => keys: num_sms clock_ghz\n\
                    FakeConfig.scratch => exempt: debug-only scratch space\n";
    let (findings, coverage) = coverage_from_sources(
        &[("FakeConfig", "fake.rs", struct_src)],
        FAKE_FINGERPRINT,
        "fp.rs",
        manifest,
        "manifest.txt",
    );
    assert!(findings.is_empty(), "{findings:#?}");
    assert_eq!(
        coverage[0].fields[0].status,
        Some(FieldStatus::ViaKeys(vec![
            "num_sms".to_string(),
            "clock_ghz".to_string()
        ]))
    );
    assert_eq!(
        coverage[0].fields[1].status,
        Some(FieldStatus::Exempt("debug-only scratch space".to_string()))
    );
}

#[test]
fn stale_and_invalid_manifest_entries_are_findings() {
    let struct_src = "pub struct FakeConfig {\n    pub num_sms: usize,\n}\n";
    let manifest = "FakeConfig.num_sms => exempt: already a key, so this is stale\n\
                    FakeConfig.gone => keys: num_sms\n\
                    FakeConfig.num_sms keys num_sms\n\
                    Other.field => keys: no_such_key\n";
    let (findings, _) = coverage_from_sources(
        &[("FakeConfig", "fake.rs", struct_src)],
        FAKE_FINGERPRINT,
        "fp.rs",
        manifest,
        "manifest.txt",
    );
    // Stale (field already fingerprinted), unmatched entry x2 (gone +
    // Other.field never match a field), bad syntax. The bogus key in the
    // unmatched Other.field entry is not separately validated — unmatched
    // is already a finding.
    assert_eq!(
        rules_of(&findings, "fingerprint_coverage"),
        4,
        "{findings:#?}"
    );
    assert!(findings.iter().all(|f| f.file == "manifest.txt"));
}

#[test]
fn commented_out_set_calls_do_not_count_as_keys() {
    let keys = fingerprint_keys(FAKE_FINGERPRINT);
    assert_eq!(keys, ["clock_ghz", "num_sms", "seed"]);
}

#[test]
fn struct_field_parser_handles_nested_braces_and_noise() {
    let src = r#"
/// Docs mentioning struct Fake { not_a_field: u8 } in prose.
pub struct Other {
    pub other_field: u32,
}
pub struct Fake {
    /// doc comment
    pub alpha: Vec<(u32, u64)>,
    beta: std::collections::BTreeMap<String, Inner>,
    pub gamma: Option<Box<dyn Fn(u32) -> u32>>,
}
"#;
    let fields = struct_fields(src, "Fake").expect("Fake must parse");
    let names: Vec<&str> = fields.iter().map(|(_, n)| n.as_str()).collect();
    assert_eq!(names, ["alpha", "beta", "gamma"]);
    assert!(struct_fields(src, "Missing").is_none());
    // Substring names must not cross-match.
    let other = struct_fields(src, "Other").expect("Other must parse");
    assert_eq!(other.len(), 1);
}

// ---------------------------------------------------------------------------
// The real workspace
// ---------------------------------------------------------------------------

fn workspace_root() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/analysis sits two levels below the workspace root")
        .to_path_buf()
}

/// The tree must audit clean — this is the same check CI gates on.
#[test]
fn workspace_audits_clean() {
    let audit = analysis::audit_workspace(&workspace_root());
    assert!(
        audit.findings.is_empty(),
        "workspace has unsuppressed audit findings:\n{:#?}",
        audit.findings
    );
    assert!(audit.files_scanned > 40, "suspiciously few files scanned");
    // Every suppression must carry a justification.
    assert!(audit.suppressed.iter().all(|s| !s.reason.is_empty()));
}

/// The coverage enumeration must list every audited struct with all of its
/// fields resolved — the audit is only meaningful if the field parser
/// actually sees the real structs.
#[test]
fn workspace_coverage_enumerates_all_audited_structs() {
    let audit = analysis::audit_workspace(&workspace_root());
    let names: Vec<&str> = audit.coverage.iter().map(|c| c.name.as_str()).collect();
    for expected in [
        "GpuConfig",
        "CacheConfig",
        "DlrmConfig",
        "Cluster",
        "InterconnectConfig",
        "StreamConfig",
        "Workload",
        "Scheme",
    ] {
        assert!(names.contains(&expected), "missing {expected} in {names:?}");
    }
    for sc in &audit.coverage {
        assert!(!sc.fields.is_empty(), "struct {} parsed no fields", sc.name);
        for f in &sc.fields {
            assert!(
                f.status.is_some(),
                "{}.{} is uncovered but the audit reported no finding",
                sc.name,
                f.name
            );
        }
    }
    // Spot-check the one exempt field and one via-keys mapping.
    let gpu = audit
        .coverage
        .iter()
        .find(|c| c.name == "GpuConfig")
        .unwrap();
    let cap = gpu
        .fields
        .iter()
        .find(|f| f.name == "max_concurrent_streams")
        .expect("GpuConfig.max_concurrent_streams must be enumerated");
    assert!(matches!(cap.status, Some(FieldStatus::Exempt(_))));
    let workload = audit
        .coverage
        .iter()
        .find(|c| c.name == "Workload")
        .unwrap();
    let target = workload.fields.iter().find(|f| f.name == "target").unwrap();
    assert!(matches!(target.status, Some(FieldStatus::ViaKeys(_))));
}

/// AUDIT.json must be well-formed enough for CI consumers: a quick
/// structural sanity check without a JSON parser dependency.
#[test]
fn audit_json_renders_expected_sections() {
    let audit = analysis::audit_workspace(&workspace_root());
    let json = audit.to_json();
    assert!(json.contains("\"schema\": \"perf-envelope/audit/v1\""));
    assert!(json.contains("\"findings\": []"));
    assert!(json.contains("\"suppressed\": ["));
    assert!(json.contains("\"coverage\": ["));
    assert!(json.contains("\"struct\": \"GpuConfig\""));
    assert!(json.contains("\"status\": \"exempt\""));
    assert!(json.contains("\"status\": \"via_keys\""));
}
