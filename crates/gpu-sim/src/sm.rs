//! Streaming-multiprocessor structures: SM sub-partitions (SMSPs) with
//! greedy-then-oldest warp schedulers, and per-SM block bookkeeping.

use std::collections::HashMap;

use crate::warp::WarpContext;

/// One SM sub-partition: a warp scheduler with its queue of resident warps.
#[derive(Debug, Default)]
pub struct SmspState {
    /// Indices into the simulator's warp arena, in residency (age) order.
    slots: Vec<usize>,
    /// Warp most recently issued from (greedy-then-oldest policy).
    last_issued: Option<usize>,
}

impl SmspState {
    /// Creates an empty sub-partition.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of currently resident (possibly retired but not yet pruned)
    /// warps.
    pub fn resident(&self) -> usize {
        self.slots.len()
    }

    /// Adds a newly spawned warp to this scheduler's queue.
    pub fn add_warp(&mut self, warp_id: usize) {
        self.slots.push(warp_id);
    }

    /// Removes retired warps from the queue.
    pub fn prune_exited(&mut self, warps: &[WarpContext]) {
        self.slots.retain(|&w| !warps[w].is_exited());
    }

    /// Selects a warp to issue at cycle `now` using a greedy-then-oldest
    /// policy: keep issuing from the same warp while it stays ready,
    /// otherwise fall back to the oldest ready warp.
    pub fn select_ready(&mut self, warps: &[WarpContext], now: u64) -> Option<usize> {
        if let Some(last) = self.last_issued {
            if self.slots.contains(&last) && warps[last].is_ready(now) {
                return Some(last);
            }
        }
        let pick = self.slots.iter().copied().find(|&w| warps[w].is_ready(now));
        if pick.is_some() {
            self.last_issued = pick;
        }
        pick
    }

    /// Earliest cycle at which any resident, non-retired warp becomes ready.
    pub fn min_ready_at(&self, warps: &[WarpContext]) -> Option<u64> {
        self.slots
            .iter()
            .filter(|&&w| !warps[w].is_exited())
            .map(|&w| warps[w].ready_at())
            .min()
    }

    /// Whether this sub-partition still has non-retired warps.
    pub fn has_active(&self, warps: &[WarpContext]) -> bool {
        self.slots.iter().any(|&w| !warps[w].is_exited())
    }
}

/// One streaming multiprocessor: its sub-partitions plus block bookkeeping
/// used by the engine to decide when new thread blocks can be dispatched.
#[derive(Debug)]
pub struct SmState {
    /// The SM's sub-partitions (warp schedulers).
    pub smsps: Vec<SmspState>,
    /// Currently resident thread blocks.
    pub resident_blocks: u32,
    /// Remaining (non-retired) warps per resident block.
    block_remaining: HashMap<u32, u32>,
    next_smsp: usize,
}

impl SmState {
    /// Creates an SM with `num_smsps` sub-partitions.
    pub fn new(num_smsps: usize) -> Self {
        SmState {
            smsps: (0..num_smsps).map(|_| SmspState::new()).collect(),
            resident_blocks: 0,
            block_remaining: HashMap::new(),
            next_smsp: 0,
        }
    }

    /// Registers a dispatched block with `warps` warps.
    pub fn begin_block(&mut self, block_id: u32, warps: u32) {
        self.resident_blocks += 1;
        self.block_remaining.insert(block_id, warps);
    }

    /// Places a warp of a resident block onto the next sub-partition in
    /// round-robin order. Returns the chosen sub-partition index.
    pub fn place_warp(&mut self, warp_id: usize) -> usize {
        let idx = self.next_smsp;
        self.smsps[idx].add_warp(warp_id);
        self.next_smsp = (self.next_smsp + 1) % self.smsps.len();
        idx
    }

    /// Records that one warp of `block_id` retired. Returns `true` if the
    /// whole block has now finished (freeing a block slot on this SM).
    pub fn warp_retired(&mut self, block_id: u32) -> bool {
        let remaining = self
            .block_remaining
            .get_mut(&block_id)
            .expect("retired warp's block must be resident");
        *remaining -= 1;
        if *remaining == 0 {
            self.block_remaining.remove(&block_id);
            self.resident_blocks -= 1;
            true
        } else {
            false
        }
    }

    /// Whether any warp on this SM is still active.
    pub fn has_active(&self, warps: &[WarpContext]) -> bool {
        self.smsps.iter().any(|s| s.has_active(warps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use crate::isa::{Instruction, SrcSet};
    use crate::launch::{VecProgram, WarpInfo};
    use crate::mem::MemorySystem;
    use crate::stats::RawCounters;
    use crate::warp::WarpContext;

    fn warp_with_alu_chain(id: u64, latency: u32, n: usize) -> WarpContext {
        let insts: Vec<Instruction> = (0..n)
            .map(|i| Instruction::Alu {
                dst: 1,
                srcs: if i == 0 {
                    SrcSet::none()
                } else {
                    SrcSet::one(1)
                },
                latency,
            })
            .collect();
        let info = WarpInfo {
            block_id: 0,
            warp_in_block: id as u32,
            warps_per_block: 8,
            threads_per_block: 256,
            global_warp_id: id,
            sm_id: 0,
        };
        WarpContext::new(info, Box::new(VecProgram::new(insts)), 0)
    }

    #[test]
    fn scheduler_prefers_last_issued_warp() {
        let cfg = GpuConfig::test_small();
        let mut mem = MemorySystem::new(&cfg);
        let mut counters = RawCounters::default();
        let mut warps = vec![warp_with_alu_chain(0, 1, 4), warp_with_alu_chain(1, 1, 4)];
        let mut smsp = SmspState::new();
        smsp.add_warp(0);
        smsp.add_warp(1);

        let first = smsp.select_ready(&warps, 1).unwrap();
        warps[first].issue(1, &mut mem, &cfg, &mut counters);
        // With a 1-cycle ALU latency the same warp is ready again next cycle
        // and the greedy policy sticks with it.
        let second = smsp.select_ready(&warps, 2).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn scheduler_falls_back_to_oldest_ready() {
        let cfg = GpuConfig::test_small();
        let mut mem = MemorySystem::new(&cfg);
        let mut counters = RawCounters::default();
        let mut warps = vec![warp_with_alu_chain(0, 50, 2), warp_with_alu_chain(1, 50, 2)];
        let mut smsp = SmspState::new();
        smsp.add_warp(0);
        smsp.add_warp(1);

        let w0 = smsp.select_ready(&warps, 1).unwrap();
        assert_eq!(w0, 0);
        warps[0].issue(1, &mut mem, &cfg, &mut counters);
        // Warp 0 now stalls on its 50-cycle dependence; warp 1 is selected.
        let w1 = smsp.select_ready(&warps, 2).unwrap();
        assert_eq!(w1, 1);
    }

    #[test]
    fn min_ready_at_and_pruning() {
        let warps = vec![warp_with_alu_chain(0, 1, 0), warp_with_alu_chain(1, 1, 2)];
        let mut smsp = SmspState::new();
        smsp.add_warp(0);
        smsp.add_warp(1);
        assert!(warps[0].is_exited());
        assert_eq!(smsp.min_ready_at(&warps), Some(warps[1].ready_at()));
        smsp.prune_exited(&warps);
        assert_eq!(smsp.resident(), 1);
        assert!(smsp.has_active(&warps));
    }

    #[test]
    fn block_bookkeeping_frees_slot_when_all_warps_retire() {
        let mut sm = SmState::new(4);
        sm.begin_block(7, 2);
        assert_eq!(sm.resident_blocks, 1);
        assert!(!sm.warp_retired(7));
        assert!(sm.warp_retired(7));
        assert_eq!(sm.resident_blocks, 0);
    }

    #[test]
    fn warps_are_distributed_round_robin() {
        let mut sm = SmState::new(4);
        sm.begin_block(0, 8);
        let placements: Vec<usize> = (0..8).map(|w| sm.place_warp(w)).collect();
        assert_eq!(placements, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }
}
