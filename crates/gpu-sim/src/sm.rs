//! Streaming-multiprocessor structures: the greedy-then-oldest warp
//! schedulers that select from the [`WarpSlots`] arena, and per-SM block
//! bookkeeping.
//!
//! # Scheduling over the slot arena
//!
//! Each SM sub-partition (SMSP) owns a fixed contiguous slot range of the
//! [`WarpSlots`] arena (see `warp.rs` for the layout). [`Schedulers`] holds
//! the only scheduler state that is not per-slot: the greedy pointer of
//! each sub-partition, stored as a `(slot, warp id)` pair so that slot
//! reuse can never be mistaken for the previously issued warp.
//!
//! [`Schedulers::select`] is **pure** (`&self`): selection at cycle `t`
//! depends only on the sub-partition's own slots (`ready`, `seq`) and its
//! greedy pointer, never on what other sub-partitions issue at `t` —
//! dispatches triggered by an issue at `t` create warps that are ready at
//! `t + 1` or later, so they cannot change any same-cycle selection. This
//! is the property that lets the engine compute selections for a whole
//! clock step in parallel and commit them serially in ascending
//! `(sm, smsp)` order with bit-identical results (see `engine.rs`).
//!
//! [`Schedulers::select_and_min`] is the fused variant used by the serial
//! engine path: the same selection plus the minimum `ready_at` over the
//! sub-partition's *other* slots, from one pass — the engine folds the
//! picked warp's post-issue readiness into that minimum to re-arm the
//! deadline queue without a second scan.

use std::collections::HashMap;

use crate::warp::WarpSlots;

/// Greedy sentinel: no previously issued warp to stick with.
const NONE: u32 = u32::MAX;

/// The per-sub-partition scheduler state for a whole device: greedy
/// pointers indexed by flat sub-partition id, selecting over the
/// [`WarpSlots`] arena.
pub struct Schedulers {
    /// Slot most recently issued from, per flat sub-partition.
    greedy_slot: Vec<u32>,
    /// Warp arena id that was resident in `greedy_slot` at issue time; the
    /// greedy preference only holds while the slot still hosts that warp.
    greedy_wid: Vec<u32>,
}

impl Default for Schedulers {
    fn default() -> Self {
        Schedulers::new(0)
    }
}

impl Schedulers {
    /// Creates scheduler state for `n` flat sub-partitions.
    pub fn new(n: usize) -> Self {
        let mut s = Schedulers {
            greedy_slot: Vec::new(),
            greedy_wid: Vec::new(),
        };
        s.reset(n);
        s
    }

    /// Re-sizes and clears the greedy pointers for a new run.
    pub fn reset(&mut self, n: usize) {
        self.greedy_slot.clear();
        self.greedy_slot.resize(n, NONE);
        self.greedy_wid.clear();
        self.greedy_wid.resize(n, NONE);
    }

    /// Selects the slot sub-partition `smsp` issues from at cycle `now`
    /// using a greedy-then-oldest policy: keep issuing from the same warp
    /// while it stays ready, otherwise fall back to the oldest ready warp
    /// (smallest placement sequence number). Pure: commit the choice with
    /// [`Schedulers::commit`] after the issue is applied.
    #[inline]
    pub fn select(&self, slots: &WarpSlots, smsp: usize, now: u64) -> Option<u32> {
        let g = self.greedy_slot[smsp];
        if g != NONE {
            let s = g as usize;
            if slots.wid(s) == self.greedy_wid[smsp] && slots.ready_at(s) <= now {
                return Some(g);
            }
        }
        slots.oldest_ready(smsp, now)
    }

    /// Fused variant of [`Schedulers::select`]: one pass over the slot
    /// range returns both the selection (`u32::MAX` = none) and the
    /// minimum ready cycle of the *other* slots, so the engine's commit
    /// can re-arm the sub-partition's next deadline without a second scan
    /// (see [`WarpSlots::select_with_min`]). Pure, like `select`.
    #[inline]
    pub fn select_and_min(&self, slots: &WarpSlots, smsp: usize, now: u64) -> (u32, u64) {
        slots.select_with_min(smsp, now, self.greedy_slot[smsp], self.greedy_wid[smsp])
    }

    /// Records that `smsp` issued from `slot` (hosting warp `wid`), making
    /// it the greedy preference for the next cycle.
    #[inline]
    pub fn commit(&mut self, smsp: usize, slot: u32, wid: u32) {
        self.greedy_slot[smsp] = slot;
        self.greedy_wid[smsp] = wid;
    }
}

/// One streaming multiprocessor: block bookkeeping used by the engine to
/// decide when new thread blocks can be dispatched, plus the round-robin
/// cursor that distributes a block's warps over the SM's sub-partitions.
///
/// Blocks are keyed by an opaque `u64` so that co-resident kernel streams
/// (which each number their blocks from zero) can share one SM without
/// colliding: the engine packs `(stream, block)` into the key.
#[derive(Debug)]
pub struct SmState {
    /// Number of sub-partitions on this SM.
    smsps: usize,
    /// Currently resident thread blocks (across all streams).
    pub resident_blocks: u32,
    /// Remaining (non-retired) warps per resident block key.
    // audit:allow(unordered_collection): keyed decrement/remove only, never
    // iterated — retirement order comes from the warps, not this map
    block_remaining: HashMap<u64, u32>,
    next_smsp: usize,
}

impl SmState {
    /// Creates an SM with `num_smsps` sub-partitions.
    pub fn new(num_smsps: usize) -> Self {
        SmState {
            smsps: num_smsps,
            resident_blocks: 0,
            // audit:allow(unordered_collection): empty init of the keyed map
            block_remaining: HashMap::new(),
            next_smsp: 0,
        }
    }

    /// Clears the bookkeeping for a new run (keeping map allocations),
    /// adjusting to `num_smsps` sub-partitions.
    pub fn reset(&mut self, num_smsps: usize) {
        self.smsps = num_smsps;
        self.resident_blocks = 0;
        self.block_remaining.clear();
        self.next_smsp = 0;
    }

    /// Registers a dispatched block with `warps` warps under `block_key`.
    pub fn begin_block(&mut self, block_key: u64, warps: u32) {
        self.resident_blocks += 1;
        self.block_remaining.insert(block_key, warps);
    }

    /// Returns the sub-partition the next warp is placed on, advancing the
    /// round-robin cursor. The cursor advances for *every* spawned warp —
    /// including warps that retire instantly and never claim a slot — so
    /// placement is a pure function of spawn order.
    pub fn next_rotation(&mut self) -> usize {
        let idx = self.next_smsp;
        self.next_smsp = (self.next_smsp + 1) % self.smsps;
        idx
    }

    /// Records that one warp of the block under `block_key` retired. Returns
    /// `true` if the whole block has now finished (freeing a block slot on
    /// this SM).
    pub fn warp_retired(&mut self, block_key: u64) -> bool {
        let remaining = self
            .block_remaining
            .get_mut(&block_key)
            .expect("retired warp's block must be resident");
        *remaining -= 1;
        if *remaining == 0 {
            self.block_remaining.remove(&block_key);
            self.resident_blocks -= 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use crate::isa::{Instruction, SrcSet};
    use crate::launch::{VecProgram, WarpInfo};
    use crate::mem::MemorySystem;
    use crate::stats::RawCounters;
    use crate::warp::WarpContext;

    fn alu_chain_ctx(id: u64, latency: u32, n: usize) -> WarpContext {
        let insts: Vec<Instruction> = (0..n)
            .map(|i| Instruction::Alu {
                dst: 1,
                srcs: if i == 0 {
                    SrcSet::none()
                } else {
                    SrcSet::one(1)
                },
                latency,
            })
            .collect();
        let info = WarpInfo {
            block_id: 0,
            warp_in_block: id as u32,
            warps_per_block: 8,
            threads_per_block: 256,
            global_warp_id: id,
            sm_id: 0,
        };
        WarpContext::new(info, Box::new(VecProgram::new(insts)), 0)
    }

    /// One-smsp scheduler harness over a small arena.
    struct Harness {
        slots: WarpSlots,
        sched: Schedulers,
        ctxs: Vec<WarpContext>,
        slot_of: Vec<Option<usize>>,
        mem: MemorySystem,
        cfg: GpuConfig,
        counters: RawCounters,
    }

    impl Harness {
        fn new(specs: &[(u32, usize)]) -> Self {
            let cfg = GpuConfig::test_small();
            let mem = MemorySystem::new(&cfg);
            let mut slots = WarpSlots::new(1, specs.len().max(1));
            let mut ctxs = Vec::new();
            let mut slot_of = Vec::new();
            for (wid, &(latency, n)) in specs.iter().enumerate() {
                let mut ctx = alu_chain_ctx(wid as u64, latency, n);
                let slot = slots
                    .spawn(0, wid as u32, 0, &mut ctx, 0)
                    .map(|s| s as usize);
                ctxs.push(ctx);
                slot_of.push(slot);
            }
            Harness {
                slots,
                sched: Schedulers::new(1),
                ctxs,
                slot_of,
                mem,
                cfg,
                counters: RawCounters::default(),
            }
        }

        /// Select-commit-issue at `now`, returning the issued warp id.
        fn step(&mut self, now: u64) -> Option<u32> {
            let slot = self.sched.select(&self.slots, 0, now)? as usize;
            let wid = self.slots.wid(slot);
            self.sched.commit(0, slot as u32, wid);
            let retired = self.slots.issue(
                slot,
                0,
                now,
                &mut self.ctxs[wid as usize],
                &mut self.mem,
                &self.cfg,
                &mut self.counters,
            );
            if retired {
                self.slots.release(slot);
            }
            Some(wid)
        }
    }

    #[test]
    fn scheduler_prefers_last_issued_warp() {
        // With a 1-cycle ALU latency the same warp is ready again next cycle
        // and the greedy policy sticks with it.
        let mut h = Harness::new(&[(1, 4), (1, 4)]);
        let first = h.step(1).unwrap();
        let second = h.step(2).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn scheduler_falls_back_to_oldest_ready() {
        let mut h = Harness::new(&[(50, 2), (50, 2)]);
        assert_eq!(h.step(1), Some(0));
        // Warp 0 now stalls on its 50-cycle dependence; warp 1 is selected.
        assert_eq!(h.step(2), Some(1));
    }

    #[test]
    fn greedy_pointer_ignores_a_reused_slot() {
        // Warp 0 issues once and retires, freeing its slot; warp 2 is then
        // spawned into the same slot. The greedy pointer still references
        // warp 0, so selection must fall back to the oldest ready warp
        // (warp 1) instead of greedily picking the slot's new occupant.
        let mut h = Harness::new(&[(1, 1), (1, 3)]);
        assert_eq!(h.step(1), Some(0));
        assert!(h.ctxs[0].is_exited());
        let mut ctx = alu_chain_ctx(2, 1, 3);
        let slot = h.slots.spawn(0, 2, 0, &mut ctx, 1).unwrap() as usize;
        assert_eq!(Some(slot), h.slot_of[0], "slot must be reused");
        h.ctxs.push(ctx);
        assert_eq!(h.step(2), Some(1));
    }

    #[test]
    fn min_ready_at_tracks_active_slots_only() {
        let mut h = Harness::new(&[(1, 1), (1, 2)]);
        assert_eq!(h.slots.min_ready_at(0), Some(1));
        assert_eq!(h.slots.next_issue_at(0, 8), Some(8));
        // Retire warp 0; only warp 1 remains.
        assert_eq!(h.step(1), Some(0));
        assert_eq!(
            h.slots.min_ready_at(0),
            Some(h.slots.ready_at(h.slot_of[1].unwrap()))
        );
        // Retire warp 1 (two instructions).
        h.step(2);
        h.step(3);
        assert_eq!(h.slots.min_ready_at(0), None);
        assert_eq!(h.slots.next_issue_at(0, 10), None);
    }

    #[test]
    fn selection_is_pure_until_committed() {
        let h = Harness::new(&[(1, 2), (1, 2)]);
        let a = h.sched.select(&h.slots, 0, 1);
        let b = h.sched.select(&h.slots, 0, 1);
        assert_eq!(a, b, "select must not mutate scheduler state");
    }

    #[test]
    fn block_bookkeeping_frees_slot_when_all_warps_retire() {
        let mut sm = SmState::new(4);
        sm.begin_block(7, 2);
        assert_eq!(sm.resident_blocks, 1);
        assert!(!sm.warp_retired(7));
        assert!(sm.warp_retired(7));
        assert_eq!(sm.resident_blocks, 0);
    }

    #[test]
    fn warps_are_distributed_round_robin() {
        let mut sm = SmState::new(4);
        sm.begin_block(0, 8);
        let placements: Vec<usize> = (0..8).map(|_| sm.next_rotation()).collect();
        assert_eq!(placements, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }
}
