//! Streaming-multiprocessor structures: SM sub-partitions (SMSPs) with
//! greedy-then-oldest warp schedulers, and per-SM block bookkeeping.

use std::collections::HashMap;

use crate::warp::WarpContext;

/// One resident-warp slot: the warp's arena index plus a cached copy of its
/// next-ready cycle, so scheduler scans stay inside this contiguous array
/// instead of chasing into the (much larger) warp arena. Retired warps are
/// cached as [`Slot::NEVER`].
#[derive(Debug, Clone, Copy)]
struct Slot {
    warp: usize,
    ready_at: u64,
}

impl Slot {
    /// Cached readiness of a retired warp: never ready again.
    const NEVER: u64 = u64::MAX;
}

/// One SM sub-partition: a warp scheduler with its queue of resident warps.
#[derive(Debug, Default)]
pub struct SmspState {
    /// Resident warps in residency (age) order.
    slots: Vec<Slot>,
    /// Warp most recently issued from (greedy-then-oldest policy).
    last_issued: Option<usize>,
}

impl SmspState {
    /// Creates an empty sub-partition.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of currently resident (possibly retired but not yet pruned)
    /// warps.
    pub fn resident(&self) -> usize {
        self.slots.len()
    }

    /// Adds a newly spawned warp to this scheduler's queue. `ready_at` is
    /// the warp's current [`WarpContext::ready_at`] (or [`u64::MAX`] if it
    /// spawned already retired).
    pub fn add_warp(&mut self, warp_id: usize, ready_at: u64) {
        self.slots.push(Slot {
            warp: warp_id,
            ready_at,
        });
    }

    /// Refreshes the cached readiness of `warp_id` after it issued: its next
    /// instruction's ready cycle, or [`u64::MAX`] if it retired. The engine
    /// must call this after every issue so the cache stays exact.
    pub fn note_ready(&mut self, warp_id: usize, ready_at: u64) {
        if let Some(slot) = self.slots.iter_mut().find(|s| s.warp == warp_id) {
            slot.ready_at = ready_at;
        }
    }

    /// Removes retired warps from the queue.
    pub fn prune_exited(&mut self, warps: &[WarpContext]) {
        self.slots.retain(|s| !warps[s.warp].is_exited());
    }

    /// Selects a warp to issue at cycle `now` using a greedy-then-oldest
    /// policy: keep issuing from the same warp while it stays ready,
    /// otherwise fall back to the oldest ready warp.
    pub fn select_ready(&mut self, now: u64) -> Option<usize> {
        if let Some(last) = self.last_issued {
            if self
                .slots
                .iter()
                .any(|s| s.warp == last && s.ready_at <= now)
            {
                return Some(last);
            }
        }
        let pick = self
            .slots
            .iter()
            .find(|s| s.ready_at <= now)
            .map(|s| s.warp);
        if pick.is_some() {
            self.last_issued = pick;
        }
        pick
    }

    /// Earliest cycle at which any resident, non-retired warp becomes ready.
    pub fn min_ready_at(&self) -> Option<u64> {
        let min = self
            .slots
            .iter()
            .map(|s| s.ready_at)
            .min()
            .unwrap_or(Slot::NEVER);
        (min != Slot::NEVER).then_some(min)
    }

    /// Earliest cycle `>= floor` at which this sub-partition can issue a
    /// warp, or `None` if it holds no active warps. This is the deadline the
    /// event-driven engine queues: a sub-partition issues at most one warp
    /// per cycle, so after issuing at cycle `t` its next opportunity is
    /// `next_issue_at(t + 1)`.
    pub fn next_issue_at(&self, floor: u64) -> Option<u64> {
        self.min_ready_at().map(|r| r.max(floor))
    }

    /// Whether this sub-partition still has non-retired warps.
    pub fn has_active(&self, warps: &[WarpContext]) -> bool {
        self.slots.iter().any(|s| !warps[s.warp].is_exited())
    }
}

/// One streaming multiprocessor: its sub-partitions plus block bookkeeping
/// used by the engine to decide when new thread blocks can be dispatched.
///
/// Blocks are keyed by an opaque `u64` so that co-resident kernel streams
/// (which each number their blocks from zero) can share one SM without
/// colliding: the engine packs `(stream, block)` into the key.
#[derive(Debug)]
pub struct SmState {
    /// The SM's sub-partitions (warp schedulers).
    pub smsps: Vec<SmspState>,
    /// Currently resident thread blocks (across all streams).
    pub resident_blocks: u32,
    /// Remaining (non-retired) warps per resident block key.
    // audit:allow(unordered_collection): keyed decrement/remove only, never
    // iterated — retirement order comes from the warps, not this map
    block_remaining: HashMap<u64, u32>,
    next_smsp: usize,
}

impl SmState {
    /// Creates an SM with `num_smsps` sub-partitions.
    pub fn new(num_smsps: usize) -> Self {
        SmState {
            smsps: (0..num_smsps).map(|_| SmspState::new()).collect(),
            resident_blocks: 0,
            // audit:allow(unordered_collection): empty init of the keyed map
            block_remaining: HashMap::new(),
            next_smsp: 0,
        }
    }

    /// Registers a dispatched block with `warps` warps under `block_key`.
    pub fn begin_block(&mut self, block_key: u64, warps: u32) {
        self.resident_blocks += 1;
        self.block_remaining.insert(block_key, warps);
    }

    /// Places a warp of a resident block onto the next sub-partition in
    /// round-robin order, caching its current readiness (`u64::MAX` for a
    /// warp that spawned already retired). Returns the chosen sub-partition
    /// index.
    pub fn place_warp(&mut self, warp_id: usize, ready_at: u64) -> usize {
        let idx = self.next_smsp;
        self.smsps[idx].add_warp(warp_id, ready_at);
        self.next_smsp = (self.next_smsp + 1) % self.smsps.len();
        idx
    }

    /// Records that one warp of the block under `block_key` retired. Returns
    /// `true` if the whole block has now finished (freeing a block slot on
    /// this SM).
    pub fn warp_retired(&mut self, block_key: u64) -> bool {
        let remaining = self
            .block_remaining
            .get_mut(&block_key)
            .expect("retired warp's block must be resident");
        *remaining -= 1;
        if *remaining == 0 {
            self.block_remaining.remove(&block_key);
            self.resident_blocks -= 1;
            true
        } else {
            false
        }
    }

    /// Whether any warp on this SM is still active.
    pub fn has_active(&self, warps: &[WarpContext]) -> bool {
        self.smsps.iter().any(|s| s.has_active(warps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use crate::isa::{Instruction, SrcSet};
    use crate::launch::{VecProgram, WarpInfo};
    use crate::mem::MemorySystem;
    use crate::stats::RawCounters;
    use crate::warp::WarpContext;

    fn warp_with_alu_chain(id: u64, latency: u32, n: usize) -> WarpContext {
        let insts: Vec<Instruction> = (0..n)
            .map(|i| Instruction::Alu {
                dst: 1,
                srcs: if i == 0 {
                    SrcSet::none()
                } else {
                    SrcSet::one(1)
                },
                latency,
            })
            .collect();
        let info = WarpInfo {
            block_id: 0,
            warp_in_block: id as u32,
            warps_per_block: 8,
            threads_per_block: 256,
            global_warp_id: id,
            sm_id: 0,
        };
        WarpContext::new(info, Box::new(VecProgram::new(insts)), 0)
    }

    /// Adds a warp to the scheduler, caching its live readiness the way the
    /// engine does.
    fn enlist(smsp: &mut SmspState, warps: &[WarpContext], wid: usize) {
        let ready = if warps[wid].is_exited() {
            u64::MAX
        } else {
            warps[wid].ready_at()
        };
        smsp.add_warp(wid, ready);
    }

    #[test]
    fn scheduler_prefers_last_issued_warp() {
        let cfg = GpuConfig::test_small();
        let mut mem = MemorySystem::new(&cfg);
        let mut counters = RawCounters::default();
        let mut warps = vec![warp_with_alu_chain(0, 1, 4), warp_with_alu_chain(1, 1, 4)];
        let mut smsp = SmspState::new();
        enlist(&mut smsp, &warps, 0);
        enlist(&mut smsp, &warps, 1);

        let first = smsp.select_ready(1).unwrap();
        warps[first].issue(1, &mut mem, &cfg, &mut counters);
        smsp.note_ready(first, warps[first].ready_at());
        // With a 1-cycle ALU latency the same warp is ready again next cycle
        // and the greedy policy sticks with it.
        let second = smsp.select_ready(2).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn scheduler_falls_back_to_oldest_ready() {
        let cfg = GpuConfig::test_small();
        let mut mem = MemorySystem::new(&cfg);
        let mut counters = RawCounters::default();
        let mut warps = vec![warp_with_alu_chain(0, 50, 2), warp_with_alu_chain(1, 50, 2)];
        let mut smsp = SmspState::new();
        enlist(&mut smsp, &warps, 0);
        enlist(&mut smsp, &warps, 1);

        let w0 = smsp.select_ready(1).unwrap();
        assert_eq!(w0, 0);
        warps[0].issue(1, &mut mem, &cfg, &mut counters);
        smsp.note_ready(0, warps[0].ready_at());
        // Warp 0 now stalls on its 50-cycle dependence; warp 1 is selected.
        let w1 = smsp.select_ready(2).unwrap();
        assert_eq!(w1, 1);
    }

    #[test]
    fn min_ready_at_and_pruning() {
        let warps = vec![warp_with_alu_chain(0, 1, 0), warp_with_alu_chain(1, 1, 2)];
        let mut smsp = SmspState::new();
        enlist(&mut smsp, &warps, 0);
        enlist(&mut smsp, &warps, 1);
        assert!(warps[0].is_exited());
        assert_eq!(smsp.min_ready_at(), Some(warps[1].ready_at()));
        assert_eq!(
            smsp.next_issue_at(warps[1].ready_at() + 7),
            Some(warps[1].ready_at() + 7)
        );
        smsp.prune_exited(&warps);
        assert_eq!(smsp.resident(), 1);
        assert!(smsp.has_active(&warps));
    }

    #[test]
    fn block_bookkeeping_frees_slot_when_all_warps_retire() {
        let mut sm = SmState::new(4);
        sm.begin_block(7, 2);
        assert_eq!(sm.resident_blocks, 1);
        assert!(!sm.warp_retired(7));
        assert!(sm.warp_retired(7));
        assert_eq!(sm.resident_blocks, 0);
    }

    #[test]
    fn warps_are_distributed_round_robin() {
        let mut sm = SmState::new(4);
        sm.begin_block(0, 8);
        let placements: Vec<usize> = (0..8).map(|w| sm.place_warp(w, 1)).collect();
        assert_eq!(placements, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }
}
