//! The warp-level instruction set consumed by the simulator.
//!
//! Instructions are modelled at warp granularity: one `Load` corresponds to
//! one warp-wide (coalesced) load instruction, carrying the set of distinct
//! 128-byte cache lines the 32 threads touch. This matches how the paper
//! counts "#load insts" in its NCU tables (Tables IV/V/VIII/IX) and keeps the
//! simulation cost proportional to issued instructions rather than threads.

/// A register identifier inside a warp's (modelled) register context.
///
/// Only dependence timing is tracked, not values, so 256 registers per warp
/// is more than enough for every kernel in this repository.
pub type Reg = u8;

/// Maximum number of distinct cache lines a single warp-level memory
/// instruction can touch in this model.
pub const MAX_LINES_PER_ACCESS: usize = 4;

/// Which address space a memory instruction targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// Global (device) memory, cached in L1/L2, backed by HBM.
    Global,
    /// Local memory (register spills); physically global memory but private
    /// per thread, so it caches extremely well in L1.
    Local,
    /// On-chip shared memory (scratchpad) with a fixed low latency.
    Shared,
}

impl MemSpace {
    /// Whether a dependent stall on this space counts as a *long scoreboard*
    /// stall (global/local) or a *short scoreboard* stall (shared memory),
    /// matching NCU's classification.
    pub fn is_long_scoreboard(self) -> bool {
        matches!(self, MemSpace::Global | MemSpace::Local)
    }
}

/// Destination of a software prefetch instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrefetchTarget {
    /// `prefetch.global.L1`: bring the line into the issuing SM's L1D.
    L1,
    /// `prefetch.global.L2::evict_last`: bring the line into the L2
    /// persisting carve-out and mark it evict-last (Ampere residency
    /// control). Used by the paper's L2 pinning scheme.
    L2EvictLast,
}

/// A small, inline (non-allocating) set of cache-line addresses touched by a
/// warp-level memory instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineSet {
    lines: [u64; MAX_LINES_PER_ACCESS],
    len: u8,
}

impl LineSet {
    /// Creates an empty line set.
    pub fn new() -> Self {
        LineSet {
            lines: [0; MAX_LINES_PER_ACCESS],
            len: 0,
        }
    }

    /// Creates a set containing a single line address.
    pub fn single(line: u64) -> Self {
        let mut s = Self::new();
        s.push(line);
        s
    }

    /// Builds a line set from byte address and access size, splitting the
    /// access into 128-byte-aligned lines.
    ///
    /// # Panics
    /// Panics if the access spans more than [`MAX_LINES_PER_ACCESS`] lines.
    pub fn from_byte_range(addr: u64, bytes: u64, line_bytes: u64) -> Self {
        let mut s = Self::new();
        if bytes == 0 {
            return s;
        }
        let first = addr / line_bytes;
        let last = (addr + bytes - 1) / line_bytes;
        for line in first..=last {
            s.push(line * line_bytes);
        }
        s
    }

    /// Adds a line address to the set (duplicates are coalesced away).
    ///
    /// # Panics
    /// Panics if the set is already full.
    pub fn push(&mut self, line: u64) {
        for i in 0..self.len as usize {
            if self.lines[i] == line {
                return;
            }
        }
        assert!(
            (self.len as usize) < MAX_LINES_PER_ACCESS,
            "a warp-level access may touch at most {MAX_LINES_PER_ACCESS} lines"
        );
        self.lines[self.len as usize] = line;
        self.len += 1;
    }

    /// Number of distinct lines.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the line addresses.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.lines[..self.len as usize].iter().copied()
    }
}

impl Default for LineSet {
    fn default() -> Self {
        Self::new()
    }
}

impl FromIterator<u64> for LineSet {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        let mut s = Self::new();
        for line in iter {
            s.push(line);
        }
        s
    }
}

/// Source operands of an ALU instruction (at most three).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SrcSet {
    regs: [Reg; 3],
    len: u8,
}

impl SrcSet {
    /// No source operands.
    pub fn none() -> Self {
        Self::default()
    }

    /// A single source operand.
    pub fn one(a: Reg) -> Self {
        SrcSet {
            regs: [a, 0, 0],
            len: 1,
        }
    }

    /// Two source operands.
    pub fn two(a: Reg, b: Reg) -> Self {
        SrcSet {
            regs: [a, b, 0],
            len: 2,
        }
    }

    /// Three source operands.
    pub fn three(a: Reg, b: Reg, c: Reg) -> Self {
        SrcSet {
            regs: [a, b, c],
            len: 3,
        }
    }

    /// Iterates over the source registers.
    pub fn iter(&self) -> impl Iterator<Item = Reg> + '_ {
        self.regs[..self.len as usize].iter().copied()
    }

    /// Number of source registers.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether there are no source registers.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// One warp-level instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instruction {
    /// A warp-wide load. The destination register becomes ready when the
    /// slowest of the touched lines returns.
    Load {
        /// Address space accessed.
        space: MemSpace,
        /// Cache lines touched by the coalesced access.
        lines: LineSet,
        /// Destination register.
        dst: Reg,
        /// Total bytes requested by the warp (for bandwidth accounting).
        bytes: u32,
        /// Register holding the (indirect) address; the load cannot issue
        /// before it is ready. `None` for loads whose address is a loop
        /// induction value. This models the pointer-chasing nature of the
        /// embedding gather (offsets -> indices -> table row).
        addr_dep: Option<Reg>,
    },
    /// A warp-wide store. Stores are fire-and-forget (write-back traffic is
    /// accounted but never stalls the warp).
    Store {
        /// Address space accessed.
        space: MemSpace,
        /// Cache lines touched by the coalesced access.
        lines: LineSet,
        /// Source register that must be ready before the store can issue.
        src: Reg,
        /// Total bytes written by the warp.
        bytes: u32,
    },
    /// A non-blocking software prefetch (`prefetch.global.L1` or
    /// `prefetch.global.L2::evict_last`).
    Prefetch {
        /// Where the prefetched line should be installed.
        target: PrefetchTarget,
        /// Cache lines to prefetch.
        lines: LineSet,
        /// Register holding the prefetch address, if it is produced by an
        /// earlier load (e.g. the index of the row being prefetched).
        addr_dep: Option<Reg>,
    },
    /// An arithmetic/logic instruction with a fixed result latency.
    Alu {
        /// Destination register (may be reused as a source).
        dst: Reg,
        /// Source registers that must be ready before issue.
        srcs: SrcSet,
        /// Result latency in cycles; `0` means "use the device default".
        latency: u32,
    },
}

impl Instruction {
    /// Convenience constructor for a single-line global load with no address
    /// dependence.
    pub fn global_load(line: u64, dst: Reg, bytes: u32) -> Self {
        Instruction::Load {
            space: MemSpace::Global,
            lines: LineSet::single(line),
            dst,
            bytes,
            addr_dep: None,
        }
    }

    /// Convenience constructor for a single-line global load whose address
    /// depends on a previously loaded register (an indirect gather).
    pub fn global_gather(line: u64, dst: Reg, bytes: u32, addr_dep: Reg) -> Self {
        Instruction::Load {
            space: MemSpace::Global,
            lines: LineSet::single(line),
            dst,
            bytes,
            addr_dep: Some(addr_dep),
        }
    }

    /// Convenience constructor for a default-latency ALU op with two sources.
    pub fn fadd(dst: Reg, a: Reg, b: Reg) -> Self {
        Instruction::Alu {
            dst,
            srcs: SrcSet::two(a, b),
            latency: 0,
        }
    }

    /// Convenience constructor for an address-computation style ALU op.
    pub fn iadd(dst: Reg, a: Reg) -> Self {
        Instruction::Alu {
            dst,
            srcs: SrcSet::one(a),
            latency: 0,
        }
    }

    /// Whether this instruction is a load from global or local memory
    /// (the quantity reported as "#load insts" in the paper's NCU tables).
    pub fn is_memory_load(&self) -> bool {
        matches!(self, Instruction::Load { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineset_deduplicates() {
        let mut s = LineSet::new();
        s.push(128);
        s.push(128);
        s.push(256);
        assert_eq!(s.len(), 2);
        let v: Vec<u64> = s.iter().collect();
        assert_eq!(v, vec![128, 256]);
    }

    #[test]
    fn lineset_from_byte_range_single_line() {
        let s = LineSet::from_byte_range(130, 4, 128);
        assert_eq!(s.len(), 1);
        assert_eq!(s.iter().next(), Some(128));
    }

    #[test]
    fn lineset_from_byte_range_straddles_lines() {
        // A 128-byte access starting at offset 64 touches two lines.
        let s = LineSet::from_byte_range(64, 128, 128);
        assert_eq!(s.len(), 2);
        let v: Vec<u64> = s.iter().collect();
        assert_eq!(v, vec![0, 128]);
    }

    #[test]
    fn lineset_empty_range() {
        let s = LineSet::from_byte_range(0, 0, 128);
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn lineset_overflow_panics() {
        let mut s = LineSet::new();
        for i in 0..5 {
            s.push(i * 128);
        }
    }

    #[test]
    fn srcset_iteration() {
        let s = SrcSet::three(1, 2, 3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(SrcSet::none().len(), 0);
        assert!(SrcSet::none().is_empty());
    }

    #[test]
    fn memspace_scoreboard_classification() {
        assert!(MemSpace::Global.is_long_scoreboard());
        assert!(MemSpace::Local.is_long_scoreboard());
        assert!(!MemSpace::Shared.is_long_scoreboard());
    }

    #[test]
    fn instruction_helpers() {
        let ld = Instruction::global_load(1024, 5, 128);
        assert!(ld.is_memory_load());
        let add = Instruction::fadd(1, 1, 2);
        assert!(!add.is_memory_load());
    }

    #[test]
    fn lineset_collects_from_iterator() {
        let s: LineSet = [0u64, 128, 0].into_iter().collect();
        assert_eq!(s.len(), 2);
    }
}
