//! The occupancy model: how many warps can be resident on one SM given a
//! kernel's register and shared-memory footprint.
//!
//! This reproduces the effect at the heart of the paper's Section III-C: the
//! off-the-shelf embedding-bag kernel uses 74 registers per thread, which at
//! a 256-thread block (8 warps) limits the A100 to 3 resident blocks → 24
//! warps per SM (37.5% of the 64-warp maximum). Forcing `-maxrregcount`
//! trades registers (and therefore spills) for more resident warps.

use crate::config::GpuConfig;
use crate::launch::KernelLaunch;

/// The result of the occupancy calculation for one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Occupancy {
    /// Warps per thread block.
    pub warps_per_block: u32,
    /// Resident blocks per SM.
    pub blocks_per_sm: u32,
    /// Resident warps per SM (`blocks_per_sm * warps_per_block`).
    pub warps_per_sm: u32,
    /// Hardware maximum warps per SM.
    pub max_warps_per_sm: u32,
    /// Registers actually allocated per thread (after granularity rounding).
    pub allocated_regs_per_thread: u32,
    /// Which resource limits occupancy.
    pub limiter: OccupancyLimiter,
}

/// The resource that limits how many blocks fit on an SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OccupancyLimiter {
    /// The register file is exhausted first (the paper's base kernel).
    Registers,
    /// Shared memory is exhausted first.
    SharedMemory,
    /// The hardware warp limit is reached first.
    WarpSlots,
    /// The hardware block limit is reached first.
    BlockSlots,
    /// The grid is too small to fill the SM.
    GridSize,
}

impl Occupancy {
    /// Computes occupancy for `launch` on `cfg`.
    ///
    /// # Panics
    /// Panics if the launch cannot fit on the device at all (e.g. more
    /// registers per block than the register file holds).
    pub fn compute(cfg: &GpuConfig, launch: &KernelLaunch) -> Self {
        let warps_per_block = launch.threads_per_block.div_ceil(cfg.warp_size);
        let gran = cfg.register_alloc_granularity;
        let allocated_regs_per_thread = launch.regs_per_thread.div_ceil(gran) * gran;
        let regs_per_block = allocated_regs_per_thread * cfg.warp_size * warps_per_block;
        assert!(
            regs_per_block <= cfg.registers_per_sm,
            "a single block of kernel '{}' needs {} registers but one SM only has {}",
            launch.name,
            regs_per_block,
            cfg.registers_per_sm
        );

        let by_regs = cfg.registers_per_sm / regs_per_block;
        let by_warps = cfg.max_warps_per_sm as u32 / warps_per_block;
        let by_blocks = cfg.max_blocks_per_sm as u32;
        let by_smem = match cfg
            .shared_mem_per_sm
            .checked_div(launch.shared_mem_per_block)
        {
            None => u32::MAX,
            Some(blocks) => blocks as u32,
        };
        assert!(
            by_smem >= 1,
            "a single block of kernel '{}' needs {} bytes of shared memory but one SM only has {}",
            launch.name,
            launch.shared_mem_per_block,
            cfg.shared_mem_per_sm
        );
        assert!(
            by_warps >= 1,
            "block of kernel '{}' has too many warps",
            launch.name
        );

        let mut blocks_per_sm = by_regs.min(by_warps).min(by_blocks).min(by_smem);
        let mut limiter = if blocks_per_sm == by_regs {
            OccupancyLimiter::Registers
        } else if blocks_per_sm == by_smem {
            OccupancyLimiter::SharedMemory
        } else if blocks_per_sm == by_warps {
            OccupancyLimiter::WarpSlots
        } else {
            OccupancyLimiter::BlockSlots
        };

        // A small grid may not have enough blocks to fill every SM.
        let blocks_per_sm_from_grid = launch.grid_blocks.div_ceil(cfg.num_sms as u32).max(1);
        if blocks_per_sm_from_grid < blocks_per_sm {
            blocks_per_sm = blocks_per_sm_from_grid;
            limiter = OccupancyLimiter::GridSize;
        }

        Occupancy {
            warps_per_block,
            blocks_per_sm,
            warps_per_sm: blocks_per_sm * warps_per_block,
            max_warps_per_sm: cfg.max_warps_per_sm as u32,
            allocated_regs_per_thread,
            limiter,
        }
    }

    /// Theoretical occupancy as a percentage of the hardware warp limit.
    pub fn occupancy_pct(&self) -> f64 {
        100.0 * self.warps_per_sm as f64 / self.max_warps_per_sm as f64
    }
}

/// Returns the register budget per thread that yields exactly
/// `target_warps_per_sm` resident warps for a given block shape, i.e. the
/// inverse problem solved by the paper's `-maxrregcount` sweep (Section VII
/// step iii: `regs <= max_registers_per_sm / (desired_warps * warp_size)`).
///
/// Returns `None` if the target is not reachable (not a multiple of the block
/// warp count, or above the hardware limit).
pub fn regs_per_thread_for_target_warps(
    cfg: &GpuConfig,
    threads_per_block: u32,
    target_warps_per_sm: u32,
) -> Option<u32> {
    let warps_per_block = threads_per_block.div_ceil(cfg.warp_size);
    if target_warps_per_sm == 0
        || !target_warps_per_sm.is_multiple_of(warps_per_block)
        || target_warps_per_sm > cfg.max_warps_per_sm as u32
    {
        return None;
    }
    let blocks = target_warps_per_sm / warps_per_block;
    // Largest granular register count such that `blocks` blocks fit but
    // `blocks + 1` do not (so the target is hit exactly, not exceeded).
    let per_block_budget = cfg.registers_per_sm / blocks;
    let per_thread = per_block_budget / (cfg.warp_size * warps_per_block);
    let gran = cfg.register_alloc_granularity;
    // Hardware caps a thread at 255 architectural registers.
    let per_thread = ((per_thread / gran) * gran).min(255);
    if per_thread == 0 {
        return None;
    }
    // Register allocation granularity means not every warp count is exactly
    // reachable (e.g. 56 warps on an A100 with 256-thread blocks); verify the
    // forward mapping before reporting success.
    let achieved_blocks = cfg.registers_per_sm / (per_thread * cfg.warp_size * warps_per_block);
    let achieved_blocks = achieved_blocks
        .min(cfg.max_warps_per_sm as u32 / warps_per_block)
        .min(cfg.max_blocks_per_sm as u32);
    if achieved_blocks != blocks {
        return None;
    }
    Some(per_thread)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::KernelLaunch;

    fn launch(regs: u32) -> KernelLaunch {
        KernelLaunch::new("emb", 1024, 256).with_regs_per_thread(regs)
    }

    #[test]
    fn base_pytorch_kernel_gets_24_warps() {
        // 74 registers/thread, 256-thread blocks: the paper's Table IV setup.
        let cfg = GpuConfig::a100();
        let occ = Occupancy::compute(&cfg, &launch(74));
        assert_eq!(occ.warps_per_block, 8);
        assert_eq!(occ.blocks_per_sm, 3);
        assert_eq!(occ.warps_per_sm, 24);
        assert_eq!(occ.limiter, OccupancyLimiter::Registers);
        assert!((occ.occupancy_pct() - 37.5).abs() < 1e-9);
    }

    #[test]
    fn optmt_register_budget_gives_40_warps() {
        // 42 registers/thread (the paper's OptMT) rounds to 48 and yields 5
        // blocks = 40 resident warps.
        let cfg = GpuConfig::a100();
        let occ = Occupancy::compute(&cfg, &launch(42));
        assert_eq!(occ.warps_per_sm, 40);
    }

    #[test]
    fn register_sweep_hits_paper_wlp_points() {
        let cfg = GpuConfig::a100();
        for (warps, max_regs) in [(24u32, 74u32), (32, 56), (40, 48), (48, 40), (64, 32)] {
            let occ = Occupancy::compute(&cfg, &launch(max_regs));
            assert_eq!(occ.warps_per_sm, warps, "regs={max_regs}");
        }
    }

    #[test]
    fn inverse_mapping_matches_forward_mapping() {
        let cfg = GpuConfig::a100();
        for target in [8u32, 16, 24, 32, 40, 48, 64] {
            let regs = regs_per_thread_for_target_warps(&cfg, 256, target)
                .expect("target should be reachable");
            let occ = Occupancy::compute(&cfg, &launch(regs));
            assert_eq!(occ.warps_per_sm, target, "target={target} regs={regs}");
        }
    }

    #[test]
    fn inverse_mapping_rejects_unreachable_targets() {
        let cfg = GpuConfig::a100();
        assert_eq!(regs_per_thread_for_target_warps(&cfg, 256, 0), None);
        assert_eq!(regs_per_thread_for_target_warps(&cfg, 256, 12), None);
        assert_eq!(regs_per_thread_for_target_warps(&cfg, 256, 128), None);
        // 56 warps (7 blocks of 8 warps) is not reachable on the A100 with
        // 8-register allocation granularity.
        assert_eq!(regs_per_thread_for_target_warps(&cfg, 256, 56), None);
    }

    #[test]
    fn shared_memory_can_be_the_limiter() {
        let cfg = GpuConfig::a100();
        let l = KernelLaunch::new("smem-heavy", 1024, 256)
            .with_regs_per_thread(32)
            .with_shared_mem_per_block(40 * 1024);
        let occ = Occupancy::compute(&cfg, &l);
        assert_eq!(occ.limiter, OccupancyLimiter::SharedMemory);
        assert_eq!(occ.blocks_per_sm, 4);
    }

    #[test]
    fn tiny_grid_is_grid_limited() {
        let cfg = GpuConfig::a100();
        let l = KernelLaunch::new("tiny", 10, 256).with_regs_per_thread(32);
        let occ = Occupancy::compute(&cfg, &l);
        assert_eq!(occ.limiter, OccupancyLimiter::GridSize);
        assert_eq!(occ.blocks_per_sm, 1);
    }

    #[test]
    fn warp_slot_limit_applies_to_light_kernels() {
        let cfg = GpuConfig::a100();
        let l = KernelLaunch::new("light", 100_000, 256).with_regs_per_thread(8);
        let occ = Occupancy::compute(&cfg, &l);
        assert_eq!(occ.warps_per_sm, 64);
        assert_eq!(occ.limiter, OccupancyLimiter::WarpSlots);
    }

    #[test]
    #[should_panic(expected = "registers")]
    fn impossible_launch_panics() {
        let cfg = GpuConfig::a100();
        let l = KernelLaunch::new("huge", 1, 1024).with_regs_per_thread(255);
        let _ = Occupancy::compute(&cfg, &l);
    }
}
