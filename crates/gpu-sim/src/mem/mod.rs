//! The memory subsystem: caches, DRAM, and the per-device hierarchy.

pub mod cache;
pub mod dram;
pub mod hierarchy;

pub use cache::{Cache, CacheStats};
pub use dram::Dram;
pub use hierarchy::{AccessOutcome, MemorySystem};
