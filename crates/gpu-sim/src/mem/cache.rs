//! A set-associative cache model with LRU replacement and Ampere-style
//! residency control (persisting lines with an evict-last policy).
//!
//! The L2 pinning optimization in the paper relies on
//! `cudaAccessPropertyPersisting` / `prefetch.global.L2::evict_last`: a
//! carve-out of at most 75% of the L2 holds "persisting" lines which the
//! replacement policy prefers to keep. This model implements exactly that
//! behaviour: within a set, non-persistent victims are chosen before
//! persistent ones, and the total number of persistent lines is capped at the
//! configured carve-out.

use crate::config::CacheConfig;

/// Hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of lookups performed.
    pub accesses: u64,
    /// Number of lookups that hit.
    pub hits: u64,
    /// Number of lines filled.
    pub fills: u64,
    /// Number of valid lines evicted to make room for fills.
    pub evictions: u64,
    /// Number of persistent (pinned) lines evicted.
    pub persistent_evictions: u64,
}

impl CacheStats {
    /// Hit rate in [0, 1]; zero when the cache was never accessed.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Number of misses.
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }
}

#[derive(Debug, Clone, Copy)]
struct CacheLine {
    tag: u64,
    valid: bool,
    persistent: bool,
    last_use: u64,
}

impl CacheLine {
    fn empty() -> Self {
        CacheLine {
            tag: 0,
            valid: false,
            persistent: false,
            last_use: 0,
        }
    }
}

/// A set-associative, LRU cache with an optional persisting carve-out.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<CacheLine>>,
    num_sets: u64,
    /// Current number of resident persistent lines.
    persistent_lines: u64,
    /// Maximum number of persistent lines allowed (carve-out).
    persistent_capacity_lines: u64,
    /// Running statistics.
    pub stats: CacheStats,
}

impl Cache {
    /// Creates a cache from its configuration with no persisting carve-out.
    pub fn new(cfg: CacheConfig) -> Self {
        let num_sets = cfg.num_sets();
        // A degenerate configuration (associativity larger than the line
        // count) must not inflate the capacity beyond what was configured.
        let ways = cfg.associativity.min(cfg.num_lines().max(1) as usize);
        let sets = (0..num_sets)
            .map(|_| vec![CacheLine::empty(); ways])
            .collect();
        Cache {
            cfg,
            sets,
            num_sets,
            persistent_lines: 0,
            persistent_capacity_lines: 0,
            stats: CacheStats::default(),
        }
    }

    /// Sets the persisting carve-out capacity in bytes (rounded down to whole
    /// lines). Lines marked persistent beyond this capacity are inserted as
    /// normal lines.
    pub fn set_persisting_capacity(&mut self, bytes: u64) {
        self.persistent_capacity_lines = bytes / self.cfg.line_bytes;
    }

    /// Currently configured persisting carve-out in bytes.
    pub fn persisting_capacity_bytes(&self) -> u64 {
        self.persistent_capacity_lines * self.cfg.line_bytes
    }

    /// Number of currently resident persistent lines.
    pub fn persistent_lines(&self) -> u64 {
        self.persistent_lines
    }

    /// The cache line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.cfg.line_bytes
    }

    /// The hit latency in cycles.
    pub fn hit_latency(&self) -> u64 {
        self.cfg.hit_latency
    }

    fn set_index(&self, line_addr: u64) -> usize {
        ((line_addr / self.cfg.line_bytes) % self.num_sets) as usize
    }

    fn tag(&self, line_addr: u64) -> u64 {
        line_addr / self.cfg.line_bytes / self.num_sets
    }

    /// Looks up a line, updating LRU state and hit/miss statistics.
    /// Returns `true` on a hit.
    pub fn access(&mut self, line_addr: u64, now: u64) -> bool {
        self.stats.accesses += 1;
        let set_idx = self.set_index(line_addr);
        let tag = self.tag(line_addr);
        for way in self.sets[set_idx].iter_mut() {
            if way.valid && way.tag == tag {
                way.last_use = now;
                self.stats.hits += 1;
                return true;
            }
        }
        false
    }

    /// Probes for a line without updating statistics or LRU state.
    pub fn probe(&self, line_addr: u64) -> bool {
        let set_idx = self.set_index(line_addr);
        let tag = self.tag(line_addr);
        self.sets[set_idx].iter().any(|w| w.valid && w.tag == tag)
    }

    /// Returns whether the given line is resident *and* marked persistent.
    pub fn is_persistent(&self, line_addr: u64) -> bool {
        let set_idx = self.set_index(line_addr);
        let tag = self.tag(line_addr);
        self.sets[set_idx]
            .iter()
            .any(|w| w.valid && w.tag == tag && w.persistent)
    }

    /// Installs a line. If `persistent` is requested and the carve-out has
    /// room, the line is marked evict-last; otherwise it is installed as a
    /// normal line. Returns `true` if the line was installed as persistent.
    pub fn fill(&mut self, line_addr: u64, persistent: bool, now: u64) -> bool {
        let set_idx = self.set_index(line_addr);
        let tag = self.tag(line_addr);
        self.stats.fills += 1;

        // Already resident: update flags in place (a prefetch may promote a
        // resident line to persistent).
        let can_pin_more = self.persistent_lines < self.persistent_capacity_lines;
        if let Some(way) = self.sets[set_idx]
            .iter_mut()
            .find(|w| w.valid && w.tag == tag)
        {
            way.last_use = now;
            if persistent && !way.persistent && can_pin_more {
                way.persistent = true;
                self.persistent_lines += 1;
                return true;
            }
            return way.persistent;
        }

        let install_persistent = persistent && can_pin_more;

        // Choose a victim: invalid first, then LRU among non-persistent,
        // then LRU among persistent (evict-last behaviour).
        let set = &mut self.sets[set_idx];
        let victim_idx = if let Some(i) = set.iter().position(|w| !w.valid) {
            i
        } else if let Some(i) = set
            .iter()
            .enumerate()
            .filter(|(_, w)| !w.persistent)
            .min_by_key(|(_, w)| w.last_use)
            .map(|(i, _)| i)
        {
            i
        } else {
            // Every way is persistent: evict the LRU persistent line.
            set.iter()
                .enumerate()
                .min_by_key(|(_, w)| w.last_use)
                .map(|(i, _)| i)
                .unwrap()
        };

        let victim = &mut set[victim_idx];
        if victim.valid {
            self.stats.evictions += 1;
            if victim.persistent {
                self.stats.persistent_evictions += 1;
                self.persistent_lines -= 1;
            }
        }
        *victim = CacheLine {
            tag,
            valid: true,
            persistent: install_persistent,
            last_use: now,
        };
        if install_persistent {
            self.persistent_lines += 1;
        }
        install_persistent
    }

    /// Invalidates every line and resets persistence bookkeeping (statistics
    /// are preserved).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for way in set.iter_mut() {
                *way = CacheLine::empty();
            }
        }
        self.persistent_lines = 0;
    }

    /// Number of valid lines currently resident (O(capacity); intended for
    /// tests and diagnostics).
    pub fn resident_lines(&self) -> u64 {
        self.sets.iter().flatten().filter(|w| w.valid).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(lines: u64, assoc: usize) -> Cache {
        Cache::new(CacheConfig {
            capacity_bytes: lines * 128,
            line_bytes: 128,
            associativity: assoc,
            hit_latency: 10,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small_cache(8, 2);
        assert!(!c.access(0, 0));
        c.fill(0, false, 0);
        assert!(c.access(0, 1));
        assert_eq!(c.stats.accesses, 2);
        assert_eq!(c.stats.hits, 1);
        assert!((c.stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_replacement_evicts_oldest() {
        // 2-way cache with 4 sets: lines 0, 512, 1024 map to set 0.
        let mut c = small_cache(8, 2);
        c.fill(0, false, 0);
        c.fill(512, false, 1);
        // Touch line 0 so 512 becomes LRU.
        assert!(c.access(0, 2));
        c.fill(1024, false, 3);
        assert!(c.probe(0));
        assert!(!c.probe(512));
        assert!(c.probe(1024));
    }

    #[test]
    fn persistent_lines_survive_thrashing() {
        let mut c = small_cache(8, 2);
        c.set_persisting_capacity(4 * 128);
        assert!(c.fill(0, true, 0));
        // Stream many conflicting lines through set 0.
        for i in 1..20u64 {
            c.fill(i * 512, false, i);
        }
        assert!(c.probe(0), "pinned line should still be resident");
        assert!(c.is_persistent(0));
    }

    #[test]
    fn persistent_capacity_is_enforced() {
        let mut c = small_cache(64, 4);
        c.set_persisting_capacity(2 * 128);
        assert!(c.fill(0, true, 0));
        assert!(c.fill(128, true, 1));
        // Third pin request exceeds the carve-out and degrades to normal.
        assert!(!c.fill(256, true, 2));
        assert_eq!(c.persistent_lines(), 2);
    }

    #[test]
    fn all_persistent_set_still_allows_progress() {
        let mut c = small_cache(8, 2);
        c.set_persisting_capacity(8 * 128);
        c.fill(0, true, 0);
        c.fill(512, true, 1);
        // Set 0 now holds only persistent lines; a new fill must still work.
        c.fill(1024, false, 2);
        assert!(c.probe(1024));
        assert_eq!(c.stats.persistent_evictions, 1);
    }

    #[test]
    fn promote_resident_line_to_persistent() {
        let mut c = small_cache(8, 2);
        c.set_persisting_capacity(128);
        c.fill(0, false, 0);
        assert!(!c.is_persistent(0));
        assert!(c.fill(0, true, 1));
        assert!(c.is_persistent(0));
        assert_eq!(c.persistent_lines(), 1);
    }

    #[test]
    fn flush_clears_contents_but_not_stats() {
        let mut c = small_cache(8, 2);
        c.fill(0, true, 0);
        c.access(0, 1);
        c.flush();
        assert!(!c.probe(0));
        assert_eq!(c.persistent_lines(), 0);
        assert_eq!(c.stats.accesses, 1);
    }

    #[test]
    fn resident_line_count() {
        let mut c = small_cache(8, 2);
        assert_eq!(c.resident_lines(), 0);
        c.fill(0, false, 0);
        c.fill(128, false, 0);
        assert_eq!(c.resident_lines(), 2);
    }
}
