//! A set-associative cache model with LRU replacement and Ampere-style
//! residency control (persisting lines with an evict-last policy).
//!
//! The L2 pinning optimization in the paper relies on
//! `cudaAccessPropertyPersisting` / `prefetch.global.L2::evict_last`: a
//! carve-out of at most 75% of the L2 holds "persisting" lines which the
//! replacement policy prefers to keep. This model implements exactly that
//! behaviour: within a set, non-persistent victims are chosen before
//! persistent ones, and the total number of persistent lines is capped at the
//! configured carve-out.

use crate::config::CacheConfig;

/// Hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of lookups performed.
    pub accesses: u64,
    /// Number of lookups that hit.
    pub hits: u64,
    /// Number of lines filled.
    pub fills: u64,
    /// Number of valid lines evicted to make room for fills.
    pub evictions: u64,
    /// Number of persistent (pinned) lines evicted.
    pub persistent_evictions: u64,
}

impl CacheStats {
    /// Hit rate in [0, 1]; zero when the cache was never accessed.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Number of misses.
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }
}

/// Valid bit packed into a way's tag word (tags are line addresses divided
/// by line size and set count, far below 2^62, so the top bits are free).
const VALID: u64 = 1 << 63;
/// Persistent (evict-last) bit packed into a way's tag word.
const PERSISTENT: u64 = 1 << 62;
/// Mask selecting the tag payload of a tag word.
const TAG_MASK: u64 = (1 << 62) - 1;

/// A set-associative, LRU cache with an optional persisting carve-out.
///
/// Lines are stored as one contiguous array with `ways` entries per set
/// (instead of one heap allocation per set): an A100-sized L2 has 20 480
/// sets, and a per-set `Vec` would cost an allocation each at construction
/// and a pointer chase on every lookup. Tags and LRU timestamps live in
/// *separate* arrays (structure-of-arrays): the dominant operation is the
/// hit scan, which reads every way's tag but touches at most one way's
/// timestamp, so splitting them halves the host cache lines the scan pulls
/// in (a 16-way L2 set's tags span two 64-byte lines instead of four).
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// Per-way tag words (`VALID`/`PERSISTENT` flags in the top bits),
    /// `ways` entries per set.
    tags: Vec<u64>,
    /// Per-way LRU timestamps, indexed identically to `tags`.
    last_use: Vec<u64>,
    ways: usize,
    num_sets: u64,
    /// `log2(line_bytes)` when the line size is a power of two, so the hot
    /// lookup path shifts instead of dividing.
    line_shift: Option<u32>,
    /// `log2(num_sets)` when the set count is a power of two.
    set_shift: Option<u32>,
    /// Round-up reciprocal of `num_sets` for the non-power-of-two case
    /// (`floor(2^85 / num_sets) + 1`): `(x * set_magic) >> 85` equals
    /// `x / num_sets` exactly for all `x < 2^43` (see [`Cache::locate`]),
    /// replacing the hardware divide on every lookup — the A100's L1 (384
    /// sets) and L2 (20 480 sets) are both non-powers of two.
    set_magic: u128,
    /// Current number of resident persistent lines.
    persistent_lines: u64,
    /// Maximum number of persistent lines allowed (carve-out).
    persistent_capacity_lines: u64,
    /// Running statistics.
    pub stats: CacheStats,
}

impl Cache {
    /// Creates a cache from its configuration with no persisting carve-out.
    pub fn new(cfg: CacheConfig) -> Self {
        let num_sets = cfg.num_sets();
        // A degenerate configuration (associativity larger than the line
        // count) must not inflate the capacity beyond what was configured.
        let ways = cfg.associativity.min(cfg.num_lines().max(1) as usize);
        let tags = vec![0u64; num_sets as usize * ways];
        let last_use = vec![0u64; num_sets as usize * ways];
        let line_shift = cfg
            .line_bytes
            .is_power_of_two()
            .then(|| cfg.line_bytes.trailing_zeros());
        let set_shift = num_sets
            .is_power_of_two()
            .then(|| num_sets.trailing_zeros());
        let set_magic = (1u128 << 85) / num_sets as u128 + 1;
        Cache {
            cfg,
            tags,
            last_use,
            ways,
            num_sets,
            line_shift,
            set_shift,
            set_magic,
            persistent_lines: 0,
            persistent_capacity_lines: 0,
            stats: CacheStats::default(),
        }
    }

    /// Index range of one set's ways within `tags`/`last_use`.
    #[inline]
    fn span(&self, set_idx: usize) -> std::ops::Range<usize> {
        set_idx * self.ways..(set_idx + 1) * self.ways
    }

    /// Sets the persisting carve-out capacity in bytes (rounded down to whole
    /// lines). Lines marked persistent beyond this capacity are inserted as
    /// normal lines.
    pub fn set_persisting_capacity(&mut self, bytes: u64) {
        self.persistent_capacity_lines = bytes / self.cfg.line_bytes;
    }

    /// Currently configured persisting carve-out in bytes.
    pub fn persisting_capacity_bytes(&self) -> u64 {
        self.persistent_capacity_lines * self.cfg.line_bytes
    }

    /// Number of currently resident persistent lines.
    pub fn persistent_lines(&self) -> u64 {
        self.persistent_lines
    }

    /// The cache line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.cfg.line_bytes
    }

    /// The hit latency in cycles.
    pub fn hit_latency(&self) -> u64 {
        self.cfg.hit_latency
    }

    /// Maps a line address to `(set index, tag)` with a single line-index
    /// computation, shifting instead of dividing for power-of-two
    /// geometries (every lookup goes through here, so this is the hottest
    /// arithmetic in the memory hierarchy).
    #[inline]
    fn locate(&self, line_addr: u64) -> (usize, u64) {
        let line_index = match self.line_shift {
            Some(s) => line_addr >> s,
            None => line_addr / self.cfg.line_bytes,
        };
        match self.set_shift {
            Some(s) => ((line_index & (self.num_sets - 1)) as usize, line_index >> s),
            None => {
                // Granlund–Montgomery round-up reciprocal: with
                // `m = floor(2^85 / d) + 1` the error `e = m*d - 2^85`
                // satisfies `0 < e <= d`, so `x*m/2^85 = x/d + x*e/(d*2^85)`
                // and the fractional excess `x*e/2^85 <= x*d/2^85 < 1/d`
                // for `x < 2^43`, `d < 2^42` — the quotient is exact.
                let tag = if line_index < 1 << 43 {
                    ((line_index as u128 * self.set_magic) >> 85) as u64
                } else {
                    line_index / self.num_sets
                };
                ((line_index - tag * self.num_sets) as usize, tag)
            }
        }
    }

    /// Looks up a line, updating LRU state and hit/miss statistics.
    /// Returns `true` on a hit.
    #[inline]
    pub fn access(&mut self, line_addr: u64, now: u64) -> bool {
        self.stats.accesses += 1;
        let (set_idx, tag) = self.locate(line_addr);
        let want = tag | VALID;
        for i in self.span(set_idx) {
            if self.tags[i] & (VALID | TAG_MASK) == want {
                self.last_use[i] = now;
                self.stats.hits += 1;
                return true;
            }
        }
        false
    }

    /// Probes for a line without updating statistics or LRU state.
    pub fn probe(&self, line_addr: u64) -> bool {
        let (set_idx, tag) = self.locate(line_addr);
        let want = tag | VALID;
        self.tags[self.span(set_idx)]
            .iter()
            .any(|&w| w & (VALID | TAG_MASK) == want)
    }

    /// Returns whether the given line is resident *and* marked persistent.
    pub fn is_persistent(&self, line_addr: u64) -> bool {
        let (set_idx, tag) = self.locate(line_addr);
        let want = tag | VALID | PERSISTENT;
        self.tags[self.span(set_idx)].contains(&want)
    }

    /// Installs a line. If `persistent` is requested and the carve-out has
    /// room, the line is marked evict-last; otherwise it is installed as a
    /// normal line. Returns `true` if the line was installed as persistent.
    pub fn fill(&mut self, line_addr: u64, persistent: bool, now: u64) -> bool {
        let (set_idx, tag) = self.locate(line_addr);
        debug_assert!(tag & !TAG_MASK == 0, "tag overflows the packing");
        self.stats.fills += 1;
        let span = self.span(set_idx);

        // Already resident: update flags in place (a prefetch may promote a
        // resident line to persistent).
        let can_pin_more = self.persistent_lines < self.persistent_capacity_lines;
        let want = tag | VALID;
        if let Some(i) = span
            .clone()
            .find(|&i| self.tags[i] & (VALID | TAG_MASK) == want)
        {
            self.last_use[i] = now;
            if persistent && self.tags[i] & PERSISTENT == 0 && can_pin_more {
                self.tags[i] |= PERSISTENT;
                self.persistent_lines += 1;
                return true;
            }
            return self.tags[i] & PERSISTENT != 0;
        }

        let install_persistent = persistent && can_pin_more;

        // Choose a victim: invalid first, then LRU among non-persistent,
        // then LRU among persistent (evict-last behaviour).
        let victim = if let Some(i) = span.clone().find(|&i| self.tags[i] & VALID == 0) {
            i
        } else if let Some(i) = span
            .clone()
            .filter(|&i| self.tags[i] & PERSISTENT == 0)
            .min_by_key(|&i| self.last_use[i])
        {
            i
        } else {
            // Every way is persistent: evict the LRU persistent line.
            span.min_by_key(|&i| self.last_use[i]).unwrap()
        };

        let evicted = self.tags[victim];
        self.tags[victim] = tag | VALID | if install_persistent { PERSISTENT } else { 0 };
        self.last_use[victim] = now;
        if evicted & VALID != 0 {
            self.stats.evictions += 1;
            if evicted & PERSISTENT != 0 {
                self.stats.persistent_evictions += 1;
                self.persistent_lines -= 1;
            }
        }
        if install_persistent {
            self.persistent_lines += 1;
        }
        install_persistent
    }

    /// Invalidates every line and resets persistence bookkeeping (statistics
    /// are preserved).
    pub fn flush(&mut self) {
        self.tags.fill(0);
        self.last_use.fill(0);
        self.persistent_lines = 0;
    }

    /// Number of valid lines currently resident (O(capacity); intended for
    /// tests and diagnostics).
    pub fn resident_lines(&self) -> u64 {
        self.tags.iter().filter(|&&w| w & VALID != 0).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(lines: u64, assoc: usize) -> Cache {
        Cache::new(CacheConfig {
            capacity_bytes: lines * 128,
            line_bytes: 128,
            associativity: assoc,
            hit_latency: 10,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small_cache(8, 2);
        assert!(!c.access(0, 0));
        c.fill(0, false, 0);
        assert!(c.access(0, 1));
        assert_eq!(c.stats.accesses, 2);
        assert_eq!(c.stats.hits, 1);
        assert!((c.stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_replacement_evicts_oldest() {
        // 2-way cache with 4 sets: lines 0, 512, 1024 map to set 0.
        let mut c = small_cache(8, 2);
        c.fill(0, false, 0);
        c.fill(512, false, 1);
        // Touch line 0 so 512 becomes LRU.
        assert!(c.access(0, 2));
        c.fill(1024, false, 3);
        assert!(c.probe(0));
        assert!(!c.probe(512));
        assert!(c.probe(1024));
    }

    #[test]
    fn persistent_lines_survive_thrashing() {
        let mut c = small_cache(8, 2);
        c.set_persisting_capacity(4 * 128);
        assert!(c.fill(0, true, 0));
        // Stream many conflicting lines through set 0.
        for i in 1..20u64 {
            c.fill(i * 512, false, i);
        }
        assert!(c.probe(0), "pinned line should still be resident");
        assert!(c.is_persistent(0));
    }

    #[test]
    fn persistent_capacity_is_enforced() {
        let mut c = small_cache(64, 4);
        c.set_persisting_capacity(2 * 128);
        assert!(c.fill(0, true, 0));
        assert!(c.fill(128, true, 1));
        // Third pin request exceeds the carve-out and degrades to normal.
        assert!(!c.fill(256, true, 2));
        assert_eq!(c.persistent_lines(), 2);
    }

    #[test]
    fn all_persistent_set_still_allows_progress() {
        let mut c = small_cache(8, 2);
        c.set_persisting_capacity(8 * 128);
        c.fill(0, true, 0);
        c.fill(512, true, 1);
        // Set 0 now holds only persistent lines; a new fill must still work.
        c.fill(1024, false, 2);
        assert!(c.probe(1024));
        assert_eq!(c.stats.persistent_evictions, 1);
    }

    #[test]
    fn promote_resident_line_to_persistent() {
        let mut c = small_cache(8, 2);
        c.set_persisting_capacity(128);
        c.fill(0, false, 0);
        assert!(!c.is_persistent(0));
        assert!(c.fill(0, true, 1));
        assert!(c.is_persistent(0));
        assert_eq!(c.persistent_lines(), 1);
    }

    #[test]
    fn flush_clears_contents_but_not_stats() {
        let mut c = small_cache(8, 2);
        c.fill(0, true, 0);
        c.access(0, 1);
        c.flush();
        assert!(!c.probe(0));
        assert_eq!(c.persistent_lines(), 0);
        assert_eq!(c.stats.accesses, 1);
    }

    #[test]
    fn non_power_of_two_set_count_maps_like_the_division_formula() {
        // The A100 L2 has 20480 sets — not a power of two — so the lookup
        // must fall back to division and agree with the reference mapping.
        let mut c = Cache::new(CacheConfig {
            capacity_bytes: 3 * 128 * 16, // 3 sets of 16 ways
            line_bytes: 128,
            associativity: 16,
            hit_latency: 10,
        });
        assert_eq!(c.num_sets, 3);
        for i in 0..64u64 {
            let addr = i * 128;
            c.fill(addr, false, i);
            assert!(c.probe(addr));
            // Distinct lines mapping to the same set must not alias.
            assert!(!c.probe(addr + 3 * 128 * 64));
        }
    }

    #[test]
    fn reciprocal_set_mapping_matches_division_exactly() {
        // Real non-power-of-two geometries (A100 L1 = 384 sets, L2 = 20480
        // sets) plus awkward divisors; sweep line indices across the exact
        // range, its boundary, and beyond (where the fallback divides).
        for sets in [3u64, 7, 384, 20480, (1 << 21) - 1] {
            let c = Cache::new(CacheConfig {
                capacity_bytes: sets * 128,
                line_bytes: 128,
                associativity: 1,
                hit_latency: 1,
            });
            assert_eq!(c.num_sets, sets);
            let probes = (0..4096).map(|i| i * 977).chain([
                (1 << 43) - 2,
                (1 << 43) - 1,
                1 << 43,
                u64::MAX / 128,
            ]);
            for line_index in probes {
                let (set, tag) = c.locate(line_index * 128);
                assert_eq!(set as u64, line_index % sets, "set for {line_index}/{sets}");
                assert_eq!(tag, line_index / sets, "tag for {line_index}/{sets}");
            }
        }
    }

    #[test]
    fn resident_line_count() {
        let mut c = small_cache(8, 2);
        assert_eq!(c.resident_lines(), 0);
        c.fill(0, false, 0);
        c.fill(128, false, 0);
        assert_eq!(c.resident_lines(), 2);
    }
}
