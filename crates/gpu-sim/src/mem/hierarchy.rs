//! The per-device memory system: per-SM L1 data caches, a shared L2 with a
//! persisting carve-out, shared memory, and HBM.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::config::GpuConfig;
use crate::isa::{LineSet, MemSpace, PrefetchTarget};
use crate::mem::cache::Cache;
use crate::mem::dram::Dram;

/// Where a load was ultimately serviced from (slowest line of the access).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Serviced from shared memory.
    SharedMem,
    /// All lines hit in the SM's L1 data cache.
    L1Hit,
    /// At least one line came from L2 (none from DRAM).
    L2Hit,
    /// At least one line had to be fetched from device memory.
    DramAccess,
}

/// Where an in-flight prefetch fill will land, used to key its reported
/// completion deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum FillSite {
    /// An L1 fill for `(sm, line)`.
    L1 { sm: usize, line: u64 },
    /// An L2 fill for `line`.
    L2 { line: u64 },
}

/// The complete memory hierarchy of one simulated device.
#[derive(Debug)]
pub struct MemorySystem {
    l1: Vec<Cache>,
    l2: Cache,
    dram: Dram,
    shared_latency: u64,
    /// Lines installed in an L1 by an in-flight software prefetch, keyed by
    /// `(sm, line)` and holding the cycle at which the data actually arrives.
    /// A demand load that hits such a line before its fill completes waits
    /// for the fill instead of enjoying a full-speed hit (MSHR-style
    /// hit-under-miss), which is what limits the usefulness of `L1DPF` at
    /// short prefetch distances. One map per SM: each SM's L1 fills are
    /// independent, and the per-SM emptiness check on the demand-hit fast
    /// path stays cheap even while another SM has fills in flight.
    // audit:allow(unordered_collection): keyed by exact line address, never
    // iterated; completions drain through the sorted fill_deadlines heap
    l1_pending: Vec<HashMap<u64, u64>>,
    /// Same bookkeeping for lines being installed into L2 by a prefetch.
    // audit:allow(unordered_collection): same keyed-lookup-only discipline
    l2_pending: HashMap<u64, u64>,
    /// Completion deadlines of the in-flight fills above, ordered soonest
    /// first, so the hierarchy reports its pending work as deadlines rather
    /// than being polled per cycle. The event-driven engine consumes
    /// [`MemorySystem::retire_completed_fills`] at every clock jump
    /// (bounding the pending maps); [`MemorySystem::earliest_pending_response`]
    /// is the read side for diagnostics and future memory-side event
    /// sources (warp wakeups themselves need no memory events, because
    /// completion cycles are computed at issue).
    fill_deadlines: BinaryHeap<Reverse<(u64, FillSite)>>,
    /// Number of warp-level shared-memory accesses.
    pub shared_accesses: u64,
    /// Number of warp-level local-memory load accesses (register spills).
    pub local_load_accesses: u64,
    /// Number of software prefetch line requests issued.
    pub prefetch_lines: u64,
}

impl MemorySystem {
    /// Builds the memory system for a device configuration.
    pub fn new(cfg: &GpuConfig) -> Self {
        let l1 = (0..cfg.num_sms)
            .map(|_| Cache::new(cfg.l1.clone()))
            .collect();
        let l2 = Cache::new(cfg.l2.clone());
        let dram = Dram::new(&cfg.dram, cfg.dram_bytes_per_cycle());
        MemorySystem {
            l1,
            l2,
            dram,
            shared_latency: cfg.shared_mem_latency,
            // audit:allow(unordered_collection): empty init of the keyed maps
            l1_pending: (0..cfg.num_sms).map(|_| HashMap::new()).collect(),
            // audit:allow(unordered_collection): empty init of the keyed map
            l2_pending: HashMap::new(),
            fill_deadlines: BinaryHeap::new(),
            shared_accesses: 0,
            local_load_accesses: 0,
            prefetch_lines: 0,
        }
    }

    /// Configures the L2 persisting carve-out used by L2 pinning, in bytes.
    ///
    /// # Panics
    /// Panics if `bytes` exceeds the device's maximum persisting capacity.
    pub fn set_l2_persisting_carveout(&mut self, bytes: u64, cfg: &GpuConfig) {
        assert!(
            bytes <= cfg.l2_max_persisting_bytes(),
            "requested carve-out of {} bytes exceeds the device limit of {} bytes",
            bytes,
            cfg.l2_max_persisting_bytes()
        );
        self.l2.set_persisting_capacity(bytes);
    }

    /// Services a warp-level load and returns `(completion_cycle, outcome)`.
    #[inline]
    pub fn load(
        &mut self,
        sm: usize,
        space: MemSpace,
        lines: &LineSet,
        bytes: u32,
        now: u64,
    ) -> (u64, AccessOutcome) {
        match space {
            MemSpace::Shared => {
                self.shared_accesses += 1;
                (now + self.shared_latency, AccessOutcome::SharedMem)
            }
            MemSpace::Global | MemSpace::Local => {
                if space == MemSpace::Local {
                    self.local_load_accesses += 1;
                }
                let mut completion = now;
                let mut outcome = AccessOutcome::L1Hit;
                // Single-line accesses (the overwhelmingly common case) skip
                // the per-line split — and its runtime division — entirely.
                let n = lines.len() as u64;
                let per_line_bytes = if n <= 1 {
                    bytes as u64
                } else {
                    bytes as u64 / n
                }
                .max(1)
                .min(self.l2.line_bytes());
                for line in lines.iter() {
                    let (done, line_outcome) = self.load_line(sm, line, per_line_bytes, now);
                    completion = completion.max(done);
                    outcome = worst_outcome(outcome, line_outcome);
                }
                (completion, outcome)
            }
        }
    }

    #[inline]
    fn load_line(&mut self, sm: usize, line: u64, bytes: u64, now: u64) -> (u64, AccessOutcome) {
        if self.l1[sm].access(line, now) {
            // An in-flight prefetch fill delays the hit until the data lands.
            let ready = self.pending_l1_ready(sm, line, now);
            return (
                ready.max(now) + self.l1[sm].hit_latency(),
                AccessOutcome::L1Hit,
            );
        }
        if self.l2.access(line, now) {
            let ready = self.pending_l2_ready(line, now);
            self.l1[sm].fill(line, false, now);
            return (ready.max(now) + self.l2.hit_latency(), AccessOutcome::L2Hit);
        }
        // L2 miss: fetch a full line from DRAM, fill L2 then L1.
        let line_bytes = self.l2.line_bytes().max(bytes);
        let done = self.dram.read(line_bytes, now);
        self.l2.fill(line, false, now);
        self.l1[sm].fill(line, false, now);
        (done, AccessOutcome::DramAccess)
    }

    /// Services a warp-level store. Stores never stall the warp; global
    /// stores write through to L2 and consume DRAM write bandwidth.
    pub fn store(&mut self, sm: usize, space: MemSpace, lines: &LineSet, bytes: u32, now: u64) {
        match space {
            MemSpace::Shared => {
                self.shared_accesses += 1;
            }
            MemSpace::Global | MemSpace::Local => {
                for line in lines.iter() {
                    // Allocate in L1/L2 so subsequent spill reloads hit.
                    if !self.l2.access(line, now) {
                        self.l2.fill(line, false, now);
                    }
                    if !self.l1[sm].access(line, now) {
                        self.l1[sm].fill(line, false, now);
                    }
                }
                if space == MemSpace::Global {
                    self.dram.write(bytes as u64, now);
                }
            }
        }
    }

    /// Services a software prefetch request. Prefetches never stall the warp,
    /// but the prefetched data only becomes usable once its fill completes —
    /// a demand load that arrives earlier waits for the in-flight fill.
    pub fn prefetch(&mut self, sm: usize, target: PrefetchTarget, lines: &LineSet, now: u64) {
        for line in lines.iter() {
            self.prefetch_lines += 1;
            match target {
                PrefetchTarget::L1 => {
                    if self.l1[sm].probe(line) {
                        continue;
                    }
                    let ready = if self.l2.access(line, now) {
                        now + self.l2.hit_latency()
                    } else {
                        let done = self.dram.read(self.l2.line_bytes(), now);
                        self.l2.fill(line, false, now);
                        self.record_l2_fill(line, done);
                        done
                    };
                    self.l1[sm].fill(line, false, now);
                    self.l1_pending[sm].insert(line, ready);
                    self.fill_deadlines
                        .push(Reverse((ready, FillSite::L1 { sm, line })));
                }
                PrefetchTarget::L2EvictLast => {
                    if self.l2.probe(line) {
                        // Promote an already-resident line to persistent.
                        self.l2.fill(line, true, now);
                        continue;
                    }
                    let done = self.dram.read(self.l2.line_bytes(), now);
                    self.l2.fill(line, true, now);
                    self.record_l2_fill(line, done);
                }
            }
        }
    }

    /// Records an in-flight L2 fill completing at `done`.
    fn record_l2_fill(&mut self, line: u64, done: u64) {
        self.l2_pending.insert(line, done);
        self.fill_deadlines
            .push(Reverse((done, FillSite::L2 { line })));
    }

    /// The earliest cycle at which an in-flight prefetch fill completes, or
    /// `None` when nothing is outstanding. Deadlines superseded by a newer
    /// fill of the same line are discarded on the way.
    ///
    /// The engine itself does not schedule on this value — every warp
    /// wakeup is already a precomputed completion cycle — so this is the
    /// introspective half of the deadline registry (tests, diagnostics, and
    /// any future event source that models memory-side state changes);
    /// [`MemorySystem::retire_completed_fills`] is the half the
    /// event-driven engine drives.
    pub fn earliest_pending_response(&mut self) -> Option<u64> {
        while let Some(&Reverse((ready, site))) = self.fill_deadlines.peek() {
            let live = match site {
                FillSite::L1 { sm, line } => self.l1_pending[sm].get(&line) == Some(&ready),
                FillSite::L2 { line } => self.l2_pending.get(&line) == Some(&ready),
            };
            if live {
                return Some(ready);
            }
            self.fill_deadlines.pop();
        }
        None
    }

    /// Retires every in-flight fill whose reported deadline has passed by
    /// `now`. The event-driven engine calls this when it jumps the clock;
    /// retiring is observably identical to the lazy per-lookup pruning (a
    /// completed fill delays nothing) but keeps the pending maps bounded.
    pub fn retire_completed_fills(&mut self, now: u64) {
        while let Some(&Reverse((ready, site))) = self.fill_deadlines.peek() {
            if ready > now {
                break;
            }
            self.fill_deadlines.pop();
            match site {
                FillSite::L1 { sm, line } => {
                    if self.l1_pending[sm].get(&line).is_some_and(|&r| r <= now) {
                        self.l1_pending[sm].remove(&line);
                    }
                }
                FillSite::L2 { line } => {
                    if self.l2_pending.get(&line).is_some_and(|&r| r <= now) {
                        self.l2_pending.remove(&line);
                    }
                }
            }
        }
    }

    /// Returns (and prunes) the completion cycle of an in-flight L1 prefetch
    /// fill for `(sm, line)`, or `now` if none is outstanding.
    #[inline]
    fn pending_l1_ready(&mut self, sm: usize, line: u64, now: u64) -> u64 {
        // Fast path: no prefetches in flight on this SM (always true for
        // the non-prefetching schemes), so skip the hash lookup per hit.
        let pending = &mut self.l1_pending[sm];
        if pending.is_empty() {
            return now;
        }
        match pending.get(&line).copied() {
            Some(ready) if ready > now => ready,
            Some(_) => {
                pending.remove(&line);
                now
            }
            None => now,
        }
    }

    /// Returns (and prunes) the completion cycle of an in-flight L2 prefetch
    /// fill for `line`, or `now` if none is outstanding.
    fn pending_l2_ready(&mut self, line: u64, now: u64) -> u64 {
        if self.l2_pending.is_empty() {
            return now;
        }
        match self.l2_pending.get(&line).copied() {
            Some(ready) if ready > now => ready,
            Some(_) => {
                self.l2_pending.remove(&line);
                now
            }
            None => now,
        }
    }

    /// Installs a line into the L2 persisting carve-out *without* consuming
    /// DRAM bandwidth or simulated time. This models a pinning pass whose
    /// cost is hidden behind host-side preprocessing (paper Section IV-C:
    /// "the overhead of the L2P kernel is small and can be hidden by
    /// overlapping it with the CPU pre-processing"). Returns `true` if the
    /// line was installed (or promoted) as persistent.
    pub fn warm_l2_persistent(&mut self, line_addr: u64, now: u64) -> bool {
        self.l2.fill(line_addr, true, now)
    }

    /// Immutable access to the shared L2 cache (for statistics).
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Immutable access to one SM's L1 data cache (for statistics).
    pub fn l1(&self, sm: usize) -> &Cache {
        &self.l1[sm]
    }

    /// Aggregated L1 statistics across all SMs: `(accesses, hits)`.
    pub fn l1_totals(&self) -> (u64, u64) {
        let mut acc = 0;
        let mut hits = 0;
        for c in &self.l1 {
            acc += c.stats.accesses;
            hits += c.stats.hits;
        }
        (acc, hits)
    }

    /// Immutable access to the DRAM model (for statistics).
    pub fn dram(&self) -> &Dram {
        &self.dram
    }
}

fn worst_outcome(a: AccessOutcome, b: AccessOutcome) -> AccessOutcome {
    use AccessOutcome::*;
    let rank = |o: AccessOutcome| match o {
        SharedMem => 0,
        L1Hit => 1,
        L2Hit => 2,
        DramAccess => 3,
    };
    if rank(b) > rank(a) {
        b
    } else {
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;

    fn mem() -> (MemorySystem, GpuConfig) {
        let cfg = GpuConfig::test_small();
        (MemorySystem::new(&cfg), cfg)
    }

    #[test]
    fn cold_load_goes_to_dram_then_hits_l1() {
        let (mut m, cfg) = mem();
        let lines = LineSet::single(0);
        let (done, outcome) = m.load(0, MemSpace::Global, &lines, 128, 0);
        assert_eq!(outcome, AccessOutcome::DramAccess);
        assert!(done >= cfg.dram.latency);
        let (done2, outcome2) = m.load(0, MemSpace::Global, &lines, 128, done);
        assert_eq!(outcome2, AccessOutcome::L1Hit);
        assert_eq!(done2, done + cfg.l1.hit_latency);
    }

    #[test]
    fn l2_services_other_sms_after_first_miss() {
        let (mut m, cfg) = mem();
        let lines = LineSet::single(4096);
        m.load(0, MemSpace::Global, &lines, 128, 0);
        let (done, outcome) = m.load(1, MemSpace::Global, &lines, 128, 1000);
        assert_eq!(outcome, AccessOutcome::L2Hit);
        assert_eq!(done, 1000 + cfg.l2.hit_latency);
    }

    #[test]
    fn shared_memory_has_fixed_latency() {
        let (mut m, cfg) = mem();
        let lines = LineSet::single(0);
        let (done, outcome) = m.load(0, MemSpace::Shared, &lines, 128, 50);
        assert_eq!(outcome, AccessOutcome::SharedMem);
        assert_eq!(done, 50 + cfg.shared_mem_latency);
        assert_eq!(m.shared_accesses, 1);
    }

    #[test]
    fn local_loads_are_counted() {
        let (mut m, _cfg) = mem();
        let lines = LineSet::single(1 << 40);
        m.load(0, MemSpace::Local, &lines, 4, 0);
        m.load(0, MemSpace::Local, &lines, 4, 10);
        assert_eq!(m.local_load_accesses, 2);
    }

    #[test]
    fn l2_evict_last_prefetch_pins_lines() {
        let (mut m, cfg) = mem();
        m.set_l2_persisting_carveout(64 * 1024, &cfg);
        let lines = LineSet::single(8192);
        m.prefetch(0, PrefetchTarget::L2EvictLast, &lines, 0);
        assert!(m.l2().is_persistent(8192));
        assert!(m.dram().bytes_read >= 128);
    }

    #[test]
    fn l1_prefetch_installs_into_l1() {
        let (mut m, _cfg) = mem();
        let lines = LineSet::single(2048);
        m.prefetch(0, PrefetchTarget::L1, &lines, 0);
        assert!(m.l1(0).probe(2048));
        // A subsequent demand load hits in L1.
        let (_, outcome) = m.load(0, MemSpace::Global, &lines, 128, 100);
        assert_eq!(outcome, AccessOutcome::L1Hit);
    }

    #[test]
    fn carveout_limit_is_enforced() {
        let (mut m, cfg) = mem();
        let too_big = cfg.l2_max_persisting_bytes() + 1;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.set_l2_persisting_carveout(too_big, &cfg);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn stores_write_through_and_allocate() {
        let (mut m, _cfg) = mem();
        let lines = LineSet::single(512);
        m.store(0, MemSpace::Global, &lines, 128, 0);
        assert!(m.dram().bytes_written >= 128);
        let (_, outcome) = m.load(0, MemSpace::Global, &lines, 128, 10);
        assert_eq!(outcome, AccessOutcome::L1Hit);
    }

    #[test]
    fn multi_line_load_takes_slowest_path() {
        let (mut m, _cfg) = mem();
        // Warm only the first line.
        m.load(0, MemSpace::Global, &LineSet::single(0), 128, 0);
        let mut both = LineSet::new();
        both.push(0);
        both.push(1 << 20);
        let (_, outcome) = m.load(0, MemSpace::Global, &both, 256, 1000);
        assert_eq!(outcome, AccessOutcome::DramAccess);
    }

    #[test]
    fn pending_fills_report_their_deadlines() {
        let (mut m, _cfg) = mem();
        assert_eq!(m.earliest_pending_response(), None);
        m.prefetch(0, PrefetchTarget::L1, &LineSet::single(4096), 0);
        let deadline = m.earliest_pending_response().expect("fill in flight");
        assert!(deadline > 0, "a cold prefetch must take time to land");
        // Before the deadline nothing retires; after it the registry drains.
        m.retire_completed_fills(deadline - 1);
        assert_eq!(m.earliest_pending_response(), Some(deadline));
        m.retire_completed_fills(deadline);
        assert_eq!(m.earliest_pending_response(), None);
    }

    #[test]
    fn retiring_fills_does_not_change_load_timing() {
        let (mut m1, _) = mem();
        let (mut m2, _) = mem();
        let lines = LineSet::single(8192);
        m1.prefetch(0, PrefetchTarget::L1, &lines, 0);
        m2.prefetch(0, PrefetchTarget::L1, &lines, 0);
        let deadline = m1.earliest_pending_response().unwrap();
        // m1 retires eagerly (event-driven engine), m2 prunes lazily.
        m1.retire_completed_fills(deadline + 10);
        let a = m1.load(0, MemSpace::Global, &lines, 128, deadline + 10);
        let b = m2.load(0, MemSpace::Global, &lines, 128, deadline + 10);
        assert_eq!(a, b);
    }

    #[test]
    fn superseded_fill_deadlines_are_discarded() {
        let (mut m, _cfg) = mem();
        let lines = LineSet::single(1 << 16);
        m.prefetch(0, PrefetchTarget::L2EvictLast, &lines, 0);
        let first = m.earliest_pending_response().unwrap();
        // A demand load hits the L2 line, evicting nothing; re-prefetching
        // much later re-registers the pending fill with a later deadline
        // only if the line left the cache. Force that by flushing.
        m.retire_completed_fills(first);
        m.prefetch(0, PrefetchTarget::L1, &lines, first + 1000);
        let second = m.earliest_pending_response().unwrap();
        assert!(second > first);
    }

    #[test]
    fn l1_totals_aggregate_across_sms() {
        let (mut m, _cfg) = mem();
        m.load(0, MemSpace::Global, &LineSet::single(0), 128, 0);
        m.load(1, MemSpace::Global, &LineSet::single(0), 128, 0);
        let (acc, _hits) = m.l1_totals();
        assert_eq!(acc, 2);
    }
}
