//! High-bandwidth memory (HBM) model: fixed access latency plus a
//! throughput limiter.
//!
//! The paper's central claim is that the embedding-bag kernel is *latency*
//! bound rather than *bandwidth* bound: the measured average HBM read
//! bandwidth (up to ~330 GB/s for base PyTorch, ~700 GB/s for the prefetching
//! schemes) stays far below the ~2 TB/s peak. This model therefore charges a
//! fixed device-memory latency per access and additionally serialises
//! transfers through a bandwidth pipe so that, if a scheme ever did approach
//! the peak, queueing delay would appear — exactly the head-room argument of
//! Section IV-B.

use crate::config::DramConfig;

/// Off-chip device-memory model.
#[derive(Debug, Clone)]
pub struct Dram {
    /// Fixed load-to-use latency (cycles).
    latency: u64,
    /// Peak transfer rate in bytes per core cycle.
    bytes_per_cycle: f64,
    /// Cycle (as a rational number of bytes-time) until which the pipe is busy.
    next_free: f64,
    /// Total bytes read from device memory.
    pub bytes_read: u64,
    /// Total bytes written to device memory.
    pub bytes_written: u64,
    /// Number of read transactions.
    pub read_transactions: u64,
    /// Cycles during which the pipe was transferring data.
    pub busy_cycles: f64,
}

impl Dram {
    /// Creates a DRAM model from its configuration and the core clock-derived
    /// bytes-per-cycle rate.
    pub fn new(cfg: &DramConfig, bytes_per_cycle: f64) -> Self {
        assert!(bytes_per_cycle > 0.0, "DRAM bandwidth must be positive");
        Dram {
            latency: cfg.latency,
            bytes_per_cycle,
            next_free: 0.0,
            bytes_read: 0,
            bytes_written: 0,
            read_transactions: 0,
            busy_cycles: 0.0,
        }
    }

    /// Issues a read of `bytes` at cycle `now`; returns the cycle at which
    /// the data is available to the requester.
    pub fn read(&mut self, bytes: u64, now: u64) -> u64 {
        self.bytes_read += bytes;
        self.read_transactions += 1;
        let transfer = bytes as f64 / self.bytes_per_cycle;
        let start = self.next_free.max(now as f64);
        self.next_free = start + transfer;
        self.busy_cycles += transfer;
        // Queueing delay only appears when the pipe is saturated.
        let queue_delay = (start - now as f64).max(0.0);
        now + self.latency + queue_delay.ceil() as u64 + transfer.ceil() as u64
    }

    /// Issues a write of `bytes` at cycle `now`. Writes consume bandwidth but
    /// never stall the issuing warp.
    pub fn write(&mut self, bytes: u64, now: u64) {
        self.bytes_written += bytes;
        let transfer = bytes as f64 / self.bytes_per_cycle;
        let start = self.next_free.max(now as f64);
        self.next_free = start + transfer;
        self.busy_cycles += transfer;
    }

    /// Fixed access latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// The cycle at which the bandwidth pipe drains: transfers issued before
    /// this deadline queue behind the in-flight ones. Reported (rather than
    /// polled) so callers jumping the clock know when DRAM state changes.
    pub fn busy_until(&self) -> u64 {
        self.next_free.ceil() as u64
    }

    /// Average read bandwidth in GB/s over `elapsed_cycles` at `clock_ghz`.
    pub fn avg_read_bandwidth_gbps(&self, elapsed_cycles: u64, clock_ghz: f64) -> f64 {
        if elapsed_cycles == 0 {
            return 0.0;
        }
        let seconds = elapsed_cycles as f64 / (clock_ghz * 1e9);
        self.bytes_read as f64 / seconds / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(
            &DramConfig {
                capacity_bytes: 1 << 30,
                latency: 466,
                peak_bandwidth_gbps: 1940.0,
            },
            1375.0,
        )
    }

    #[test]
    fn unloaded_read_sees_pure_latency() {
        let mut d = dram();
        let done = d.read(128, 1000);
        // 128 bytes transfer in well under a cycle, so latency dominates.
        assert_eq!(done, 1000 + 466 + 1);
        assert_eq!(d.bytes_read, 128);
        assert_eq!(d.read_transactions, 1);
    }

    #[test]
    fn saturated_pipe_adds_queueing_delay() {
        let mut d = dram();
        // Issue far more traffic than one cycle can carry.
        let mut last = 0;
        for _ in 0..10_000 {
            last = d.read(128, 0);
        }
        // 10_000 * 128 bytes / 1375 B/cycle ≈ 931 cycles of queueing.
        assert!(last > 466 + 900, "expected queueing delay, got {last}");
    }

    #[test]
    fn writes_consume_bandwidth_without_latency_result() {
        let mut d = dram();
        d.write(1024, 0);
        assert_eq!(d.bytes_written, 1024);
        assert!(d.busy_cycles > 0.0);
    }

    #[test]
    fn busy_until_tracks_the_pipe_deadline() {
        let mut d = dram();
        assert_eq!(d.busy_until(), 0);
        // Saturate the pipe: 10_000 * 128 B at 1375 B/cycle ≈ 931 cycles.
        for _ in 0..10_000 {
            d.read(128, 0);
        }
        assert!(d.busy_until() > 900);
        // An idle gap later than the deadline does not move it.
        let deadline = d.busy_until();
        d.read(1, deadline + 100);
        assert!(d.busy_until() >= deadline + 100);
    }

    #[test]
    fn bandwidth_accounting() {
        let mut d = dram();
        for i in 0..1000u64 {
            d.read(128, i);
        }
        // 128 KB over 1000 cycles at 1.41 GHz.
        let bw = d.avg_read_bandwidth_gbps(1000, 1.41);
        let expected = 128.0 * 1000.0 / (1000.0 / 1.41e9) / 1e9;
        assert!((bw - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn zero_elapsed_reports_zero_bandwidth() {
        let d = dram();
        assert_eq!(d.avg_read_bandwidth_gbps(0, 1.41), 0.0);
    }
}
