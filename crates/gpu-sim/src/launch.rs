//! Kernel launch descriptors and the program interface.
//!
//! A kernel is described by two pieces:
//!
//! * a [`KernelLaunch`]: the launch configuration (grid, block, registers per
//!   thread, dynamic shared memory) which determines occupancy, and
//! * a [`KernelProgram`]: a factory that produces one [`WarpProgram`]
//!   (an instruction generator) per warp.
//!
//! Generating instructions lazily keeps memory usage flat even for the
//! paper-scale workload (~65M warp instructions per embedding-bag kernel).

use crate::isa::Instruction;

/// Launch configuration of a kernel, mirroring a CUDA `<<<grid, block>>>`
/// launch plus the compiler-chosen register count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelLaunch {
    /// Kernel name, used in statistics and error messages.
    pub name: String,
    /// Number of thread blocks in the grid.
    pub grid_blocks: u32,
    /// Number of threads per block.
    pub threads_per_block: u32,
    /// Registers allocated per thread (before granularity rounding).
    pub regs_per_thread: u32,
    /// Dynamic + static shared memory per block, in bytes.
    pub shared_mem_per_block: u64,
}

impl KernelLaunch {
    /// Creates a launch with the given grid and block size, 32 registers per
    /// thread and no shared memory.
    ///
    /// # Panics
    /// Panics if the grid or block is empty or the block exceeds 1024 threads.
    pub fn new(name: impl Into<String>, grid_blocks: u32, threads_per_block: u32) -> Self {
        assert!(grid_blocks > 0, "grid must contain at least one block");
        assert!(
            threads_per_block > 0 && threads_per_block <= 1024,
            "block size must be in 1..=1024"
        );
        KernelLaunch {
            name: name.into(),
            grid_blocks,
            threads_per_block,
            regs_per_thread: 32,
            shared_mem_per_block: 0,
        }
    }

    /// Sets the number of registers allocated per thread.
    pub fn with_regs_per_thread(mut self, regs: u32) -> Self {
        assert!(
            regs > 0 && regs <= 255,
            "registers per thread must be in 1..=255"
        );
        self.regs_per_thread = regs;
        self
    }

    /// Sets the shared memory usage per block in bytes.
    pub fn with_shared_mem_per_block(mut self, bytes: u64) -> Self {
        self.shared_mem_per_block = bytes;
        self
    }

    /// Total number of threads in the grid.
    pub fn total_threads(&self) -> u64 {
        self.grid_blocks as u64 * self.threads_per_block as u64
    }

    /// Total number of warps in the grid (assuming 32-thread warps).
    pub fn total_warps(&self) -> u64 {
        self.grid_blocks as u64 * (self.threads_per_block as u64).div_ceil(32)
    }
}

/// Identity of one warp within a kernel launch, passed to the
/// [`KernelProgram`] factory so it can decide what work the warp performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarpInfo {
    /// Index of the thread block this warp belongs to.
    pub block_id: u32,
    /// Index of this warp within its block.
    pub warp_in_block: u32,
    /// Number of warps per block.
    pub warps_per_block: u32,
    /// Number of threads per block.
    pub threads_per_block: u32,
    /// Flat warp index across the whole grid.
    pub global_warp_id: u64,
    /// Index of the SM the warp is resident on (for per-SM buffers such as
    /// shared memory or local-memory spill slots).
    pub sm_id: u32,
}

/// A per-warp instruction generator.
///
/// The simulator calls [`WarpProgram::next_inst`] exactly once per issued
/// instruction; returning `None` retires the warp.
pub trait WarpProgram: Send {
    /// Produces the next instruction, or `None` when the warp has finished.
    fn next_inst(&mut self) -> Option<Instruction>;
}

/// A kernel: a factory of per-warp programs.
pub trait KernelProgram: Sync {
    /// Creates the instruction generator for one warp.
    fn warp_program(&self, info: WarpInfo) -> Box<dyn WarpProgram>;

    /// A short, human-readable kernel name.
    fn name(&self) -> &str {
        "kernel"
    }
}

/// A [`WarpProgram`] backed by a pre-built instruction vector. Convenient for
/// tests and for short kernels (e.g. the L2-pinning prefetch kernel).
#[derive(Debug, Clone)]
pub struct VecProgram {
    insts: Vec<Instruction>,
    pos: usize,
}

impl VecProgram {
    /// Wraps a vector of instructions.
    pub fn new(insts: Vec<Instruction>) -> Self {
        VecProgram { insts, pos: 0 }
    }
}

impl WarpProgram for VecProgram {
    fn next_inst(&mut self) -> Option<Instruction> {
        let inst = self.insts.get(self.pos).copied();
        self.pos += 1;
        inst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Instruction;

    #[test]
    fn launch_totals() {
        let l = KernelLaunch::new("k", 1024, 256);
        assert_eq!(l.total_threads(), 262_144);
        assert_eq!(l.total_warps(), 8192);
    }

    #[test]
    fn launch_builders() {
        let l = KernelLaunch::new("k", 1, 32)
            .with_regs_per_thread(74)
            .with_shared_mem_per_block(1024);
        assert_eq!(l.regs_per_thread, 74);
        assert_eq!(l.shared_mem_per_block, 1024);
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn oversized_block_rejected() {
        let _ = KernelLaunch::new("k", 1, 2048);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn empty_grid_rejected() {
        let _ = KernelLaunch::new("k", 0, 32);
    }

    #[test]
    #[should_panic(expected = "registers per thread")]
    fn zero_regs_rejected() {
        let _ = KernelLaunch::new("k", 1, 32).with_regs_per_thread(0);
    }

    #[test]
    fn vec_program_replays_and_terminates() {
        let mut p = VecProgram::new(vec![Instruction::fadd(1, 1, 2), Instruction::iadd(2, 1)]);
        assert!(p.next_inst().is_some());
        assert!(p.next_inst().is_some());
        assert!(p.next_inst().is_none());
        assert!(p.next_inst().is_none());
    }

    #[test]
    fn non_multiple_block_rounds_warps_up() {
        let l = KernelLaunch::new("k", 2, 48);
        assert_eq!(l.total_warps(), 4);
    }
}
