//! Per-warp execution state in struct-of-arrays form: the slot arena that
//! holds every resident warp's per-issue working set, plus the cold
//! [`WarpContext`] tail.
//!
//! # Layout
//!
//! The engine's hot loop touches, per issued instruction: the warp's next
//! decoded instruction, its register scoreboard, its readiness cycle and its
//! stall-attribution state. Keeping those inside per-warp heap objects (the
//! pre-SoA design) meant every issue strided through `~200` bytes of
//! `WarpContext`, a boxed 2 KiB scoreboard and a boxed instruction
//! generator, all in data-dependent order across thousands of resident
//! warps — host cache misses dominated simulation time.
//!
//! [`WarpSlots`] instead owns one dense array per field, indexed by *slot*:
//!
//! * each SM sub-partition owns the fixed contiguous slot range
//!   `[smsp * cap, (smsp + 1) * cap)`, so a scheduler scan reads a handful
//!   of adjacent `u64`s;
//! * `ready`/`seq`/`occupant` drive selection, `last_issue`/`dep` drive
//!   stall attribution, and a flat scoreboard arena (`TRACKED_REGS` packed
//!   words per slot) replaces the per-warp boxes — a reused slot keeps its
//!   scoreboard lines hot in cache across warp generations;
//! * a decode-ahead instruction buffer ([`IBUF`] entries per slot) batches
//!   calls into the (cold) [`WarpProgram`] generator so the issue path
//!   usually reads the next instruction from a line it already owns.
//!
//! The per-smsp capacity `cap` is exact, not heuristic: blocks place their
//! warps round-robin over a SM's sub-partitions in one burst, so one block
//! contributes at most `ceil(warps_per_block / smsps_per_sm)` warps to any
//! single sub-partition, and the engine sizes `cap` from the occupancy
//! residency caps of every co-resident stream (see `engine.rs`).
//!
//! [`WarpContext`] keeps only the cold tail — the warp's identity, its
//! boxed instruction generator and retirement bookkeeping — and is touched
//! on spawn, buffer refill and retirement, not per issue.

use crate::config::GpuConfig;
use crate::isa::{Instruction, LineSet, MemSpace, PrefetchTarget, Reg};
use crate::launch::{WarpInfo, WarpProgram};
use crate::mem::MemorySystem;
use crate::stats::RawCounters;

/// Number of architectural registers whose readiness is tracked per warp.
const TRACKED_REGS: usize = 256;

/// Decode-ahead depth: instructions buffered per slot between calls into
/// the warp's [`WarpProgram`] generator. Deep enough that the generator is
/// driven in long per-warp bursts (its queue and trace data stay hot in the
/// host cache across one refill) instead of being re-entered cold between
/// every few issues.
pub const IBUF: usize = 64;

/// Top-bit flag in a packed scoreboard word: the register's last writer was
/// a long-latency (global/local) load. The low 63 bits hold the cycle at
/// which that writer completes, which the engine's cycle cap keeps below
/// `2^63`.
const LONG: u64 = 1 << 63;

/// What the warp's next instruction is currently waiting on; used to
/// attribute stall cycles the way NCU does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepKind {
    /// No unfinished dependence: the warp is ready to issue.
    None,
    /// Waiting on an ALU or shared-memory result ("short scoreboard").
    Short,
    /// Waiting on a global/local-memory load ("long scoreboard").
    Long,
}

/// Packed opcodes; see [`PackedInst`].
const OP_LOAD_GLOBAL: u64 = 0;
const OP_LOAD_LOCAL: u64 = 1;
const OP_LOAD_SHARED: u64 = 2;
const OP_STORE_GLOBAL: u64 = 3;
const OP_STORE_LOCAL: u64 = 4;
const OP_STORE_SHARED: u64 = 5;
const OP_PREF_L1: u64 = 6;
const OP_PREF_L2: u64 = 7;
const OP_ALU: u64 = 8;
const OP_EXT: u64 = 9;

/// One decoded instruction packed into 16 bytes for the per-slot
/// decode-ahead buffers. A full [`Instruction`] is 56 bytes, so buffering
/// it directly made the decode buffers the largest per-issue working set in
/// the engine; the packed form keeps them 3.5x smaller and copies one
/// sixteenth of a host cache line per issue instead of one full line.
///
/// `meta` bit layout: `[0,4)` opcode, `[4,12)` primary register (load
/// destination / store source / ALU destination); memory ops add bit 12 =
/// "has address dependence", `[13,21)` the dependence register and
/// `[21,42)` the byte count; ALU ops add `[12,14)` source count and
/// `[16,40)` three source registers. `arg` holds the line address (memory
/// ops), the latency (ALU), or a side-table index (`OP_EXT`).
///
/// Instructions that do not fit (multi-line accesses, byte counts of 2 MiB
/// or more) are stored verbatim in the slot's side table and referenced by
/// an `OP_EXT` entry, so the packing is an encoding, never a restriction.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PackedInst {
    arg: u64,
    meta: u64,
}

/// Largest byte count a packed memory instruction can carry.
const PACK_MAX_BYTES: u32 = 1 << 21;

impl PackedInst {
    fn encode(inst: &Instruction) -> Option<PackedInst> {
        let mem_meta = |op: u64, reg0: Reg, dep: Option<Reg>, bytes: u32| -> u64 {
            op | (reg0 as u64) << 4
                | dep.map_or(0, |r| 1 << 12 | (r as u64) << 13)
                | (bytes as u64) << 21
        };
        match *inst {
            Instruction::Load {
                space,
                lines,
                dst,
                bytes,
                addr_dep,
            } => {
                if lines.len() != 1 || bytes >= PACK_MAX_BYTES {
                    return None;
                }
                let op = match space {
                    MemSpace::Global => OP_LOAD_GLOBAL,
                    MemSpace::Local => OP_LOAD_LOCAL,
                    MemSpace::Shared => OP_LOAD_SHARED,
                };
                Some(PackedInst {
                    arg: lines.iter().next().unwrap(),
                    meta: mem_meta(op, dst, addr_dep, bytes),
                })
            }
            Instruction::Store {
                space,
                lines,
                src,
                bytes,
            } => {
                if lines.len() != 1 || bytes >= PACK_MAX_BYTES {
                    return None;
                }
                let op = match space {
                    MemSpace::Global => OP_STORE_GLOBAL,
                    MemSpace::Local => OP_STORE_LOCAL,
                    MemSpace::Shared => OP_STORE_SHARED,
                };
                Some(PackedInst {
                    arg: lines.iter().next().unwrap(),
                    meta: mem_meta(op, src, None, bytes),
                })
            }
            Instruction::Prefetch {
                target,
                lines,
                addr_dep,
            } => {
                if lines.len() != 1 {
                    return None;
                }
                let op = match target {
                    PrefetchTarget::L1 => OP_PREF_L1,
                    PrefetchTarget::L2EvictLast => OP_PREF_L2,
                };
                Some(PackedInst {
                    arg: lines.iter().next().unwrap(),
                    meta: mem_meta(op, 0, addr_dep, 0),
                })
            }
            Instruction::Alu { dst, srcs, latency } => {
                let mut meta = OP_ALU | (dst as u64) << 4 | (srcs.len() as u64) << 12;
                for (i, r) in srcs.iter().enumerate() {
                    meta |= (r as u64) << (16 + 8 * i);
                }
                Some(PackedInst {
                    arg: latency as u64,
                    meta,
                })
            }
        }
    }

    #[inline]
    fn op(self) -> u64 {
        self.meta & 0xF
    }

    #[inline]
    fn reg0(self) -> Reg {
        (self.meta >> 4) as Reg
    }

    #[inline]
    fn addr_dep(self) -> Option<Reg> {
        if self.meta & (1 << 12) != 0 {
            Some((self.meta >> 13) as Reg)
        } else {
            None
        }
    }

    #[inline]
    fn bytes(self) -> u32 {
        ((self.meta >> 21) & (PACK_MAX_BYTES as u64 - 1)) as u32
    }

    #[inline]
    fn nsrcs(self) -> usize {
        ((self.meta >> 12) & 0x3) as usize
    }

    #[inline]
    fn src(self, i: usize) -> Reg {
        (self.meta >> (16 + 8 * i)) as Reg
    }
}

/// Cold per-warp state: everything the engine does *not* touch per issue.
pub struct WarpContext {
    /// Static identity of the warp.
    pub info: WarpInfo,
    program: Box<dyn WarpProgram>,
    /// Cycle at which this warp became resident.
    pub spawn_cycle: u64,
    /// Whether the warp has retired.
    exited: bool,
    /// Whether the instruction generator has returned `None` (it is never
    /// called again after that).
    prog_done: bool,
}

impl std::fmt::Debug for WarpContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WarpContext")
            .field("info", &self.info)
            .field("spawn_cycle", &self.spawn_cycle)
            .field("exited", &self.exited)
            .finish()
    }
}

impl WarpContext {
    /// Creates the cold tail of a warp that becomes resident at
    /// `spawn_cycle`. Its hot state lives in [`WarpSlots`] from the moment
    /// [`WarpSlots::spawn`] claims a slot for it.
    pub fn new(info: WarpInfo, program: Box<dyn WarpProgram>, spawn_cycle: u64) -> Self {
        WarpContext {
            info,
            program,
            spawn_cycle,
            exited: false,
            prog_done: false,
        }
    }

    /// Whether the warp has retired.
    pub fn is_exited(&self) -> bool {
        self.exited
    }
}

/// Slot sentinel: no warp resident.
const FREE: u32 = u32::MAX;

/// The struct-of-arrays arena of resident-warp hot state; see the module
/// documentation for the layout rationale. One instance covers every SM
/// sub-partition of the device: sub-partition `i` (flat index) owns slots
/// `[i * cap, (i + 1) * cap)`.
pub struct WarpSlots {
    /// Slots per sub-partition.
    cap: usize,
    /// Cycle at which each slot's pending instruction becomes eligible
    /// (`u64::MAX` for a free slot, so scheduler scans skip it for free).
    ready: Vec<u64>,
    /// Global placement sequence number; the scheduler's oldest-first
    /// fallback is "smallest `seq` among ready slots", which reproduces the
    /// residency order of the pre-SoA design exactly.
    seq: Vec<u64>,
    /// Arena index of the resident warp ([`FREE`] if empty).
    occupant: Vec<u32>,
    /// Stream the resident warp belongs to (for per-stream counters).
    stream: Vec<u32>,
    /// Cycle at which the slot's previous instruction issued.
    last_issue: Vec<u64>,
    /// What the pending instruction is waiting on.
    dep: Vec<DepKind>,
    /// Read cursor into the slot's decode-ahead buffer.
    ibuf_pos: Vec<u8>,
    /// Valid entries in the slot's decode-ahead buffer.
    ibuf_len: Vec<u8>,
    /// Decode-ahead buffers, [`IBUF`] packed entries per slot.
    ibuf: Vec<PackedInst>,
    /// Side tables for instructions that do not fit the packed encoding
    /// (multi-line accesses); indexed by `OP_EXT` entries, cleared per
    /// refill. Empty — and allocation-free — for the embedding kernels.
    ext: Vec<Vec<Instruction>>,
    /// Packed scoreboards, [`TRACKED_REGS`] words per slot.
    boards: Vec<u64>,
    /// High-water register mark per slot: the prefix of the slot's
    /// scoreboard that may be non-zero. Claiming a slot clears exactly that
    /// prefix, so scoreboard reuse costs what the previous warp touched,
    /// not a full 2 KiB memset.
    board_dirty: Vec<u16>,
    /// Next placement sequence number.
    next_seq: u64,
}

impl Default for WarpSlots {
    fn default() -> Self {
        WarpSlots::new(0, 0)
    }
}

impl WarpSlots {
    /// Creates an arena for `smsps` sub-partitions with `cap` slots each.
    pub fn new(smsps: usize, cap: usize) -> Self {
        let mut slots = WarpSlots {
            cap: 0,
            ready: Vec::new(),
            seq: Vec::new(),
            occupant: Vec::new(),
            stream: Vec::new(),
            last_issue: Vec::new(),
            dep: Vec::new(),
            ibuf_pos: Vec::new(),
            ibuf_len: Vec::new(),
            ibuf: Vec::new(),
            ext: Vec::new(),
            boards: Vec::new(),
            board_dirty: Vec::new(),
            next_seq: 0,
        };
        slots.reset(smsps, cap);
        slots
    }

    /// Re-sizes the arena for a new run, keeping allocations (and the
    /// scoreboard-clearing discipline) from previous runs. Slots grow with
    /// zeroed scoreboards; shrunk-then-regrown regions are re-zeroed by
    /// `Vec::resize`, so the dirty-prefix invariant holds across reuse.
    pub fn reset(&mut self, smsps: usize, cap: usize) {
        let n = smsps * cap;
        self.cap = cap;
        self.ready.clear();
        self.ready.resize(n, u64::MAX);
        self.seq.clear();
        self.seq.resize(n, 0);
        self.occupant.clear();
        self.occupant.resize(n, FREE);
        self.stream.clear();
        self.stream.resize(n, 0);
        self.last_issue.clear();
        self.last_issue.resize(n, 0);
        self.dep.clear();
        self.dep.resize(n, DepKind::None);
        self.ibuf_pos.clear();
        self.ibuf_pos.resize(n, 0);
        self.ibuf_len.clear();
        self.ibuf_len.resize(n, 0);
        self.ibuf.resize(n * IBUF, PackedInst::default());
        self.ext.clear();
        self.ext.resize_with(n, Vec::new);
        self.boards.resize(n * TRACKED_REGS, 0);
        self.board_dirty.resize(n, 0);
        self.next_seq = 0;
    }

    /// Slots per sub-partition.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// The slot range owned by flat sub-partition `smsp`.
    #[inline]
    fn range(&self, smsp: usize) -> (usize, usize) {
        (smsp * self.cap, (smsp + 1) * self.cap)
    }

    /// Arena index of the warp resident in `slot` (valid only while the
    /// slot is occupied).
    #[inline]
    pub fn wid(&self, slot: usize) -> u32 {
        self.occupant[slot]
    }

    /// Stream of the warp resident in `slot`.
    #[inline]
    pub fn stream_of(&self, slot: usize) -> u32 {
        self.stream[slot]
    }

    /// Cycle at which `slot`'s pending instruction becomes eligible to
    /// issue (`u64::MAX` for a free slot).
    #[inline]
    pub fn ready_at(&self, slot: usize) -> u64 {
        self.ready[slot]
    }

    /// Placement sequence number of `slot`'s resident warp.
    #[inline]
    pub fn seq_of(&self, slot: usize) -> u64 {
        self.seq[slot]
    }

    /// Greedy-then-oldest selection at cycle `now` over `smsp`'s slot
    /// range, ignoring the greedy pointer (the caller checks it): the ready
    /// slot with the smallest placement sequence number.
    #[inline]
    pub fn oldest_ready(&self, smsp: usize, now: u64) -> Option<u32> {
        let (lo, hi) = self.range(smsp);
        let mut best: Option<(u64, u32)> = None;
        for s in lo..hi {
            if self.ready[s] <= now {
                let sq = self.seq[s];
                if best.is_none_or(|(b, _)| sq < b) {
                    best = Some((sq, s as u32));
                }
            }
        }
        best.map(|(_, s)| s)
    }

    /// Greedy-then-oldest selection fused with the next-deadline scan: one
    /// pass over `smsp`'s slot range computing the slot to issue at `now`
    /// (`u32::MAX` = none) *and* the minimum ready cycle over every slot
    /// *other than* the returned pick (`u64::MAX` = none). The caller
    /// combines the latter with the pick's post-issue ready cycle to get
    /// the sub-partition's next deadline without a second scan.
    ///
    /// `greedy_slot`/`greedy_wid` are the sub-partition's greedy pointer
    /// (see `sm.rs`); selection semantics are identical to
    /// `Schedulers::select` followed by [`WarpSlots::min_ready_at`].
    #[inline]
    pub fn select_with_min(
        &self,
        smsp: usize,
        now: u64,
        greedy_slot: u32,
        greedy_wid: u32,
    ) -> (u32, u64) {
        let (lo, hi) = self.range(smsp);
        let mut best_seq = u64::MAX;
        let mut best = u32::MAX;
        // Minimum ready cycle and its slot, plus the runner-up minimum, so
        // the min excluding any single slot falls out of one pass.
        let mut min1 = u64::MAX;
        let mut min1_slot = u32::MAX;
        let mut min2 = u64::MAX;
        for s in lo..hi {
            let r = self.ready[s];
            if r < min1 {
                min2 = min1;
                min1 = r;
                min1_slot = s as u32;
            } else if r < min2 {
                min2 = r;
            }
            if r <= now {
                let sq = self.seq[s];
                if sq < best_seq {
                    best_seq = sq;
                    best = s as u32;
                }
            }
        }
        let pick = if greedy_slot != u32::MAX
            && self.occupant[greedy_slot as usize] == greedy_wid
            && self.ready[greedy_slot as usize] <= now
        {
            greedy_slot
        } else {
            best
        };
        let min_others = if pick == min1_slot { min2 } else { min1 };
        (pick, min_others)
    }

    /// Earliest cycle at which any resident warp of `smsp` becomes ready.
    #[inline]
    pub fn min_ready_at(&self, smsp: usize) -> Option<u64> {
        let (lo, hi) = self.range(smsp);
        let min = self.ready[lo..hi].iter().copied().min().unwrap_or(u64::MAX);
        (min != u64::MAX).then_some(min)
    }

    /// Earliest cycle `>= floor` at which `smsp` can issue a warp, or
    /// `None` if it holds no active warps. A sub-partition issues at most
    /// one warp per cycle, so after issuing at cycle `t` its next
    /// opportunity is `next_issue_at(t + 1)`.
    #[inline]
    pub fn next_issue_at(&self, smsp: usize, floor: u64) -> Option<u64> {
        self.min_ready_at(smsp).map(|r| r.max(floor))
    }

    /// Claims a slot in `smsp` for warp `wid` of `stream`, spawning at
    /// `now`: decodes up to [`IBUF`] instructions ahead and marks the first
    /// ready at `now + 1` (a fresh scoreboard has no pending writers).
    /// Returns `None` — and marks the warp exited — if its program is
    /// empty.
    ///
    /// # Panics
    /// Panics if `smsp` has no free slot; the engine sizes `cap` so this
    /// cannot happen (see the module documentation).
    pub fn spawn(
        &mut self,
        smsp: usize,
        wid: u32,
        stream: u32,
        ctx: &mut WarpContext,
        now: u64,
    ) -> Option<u32> {
        let Some(first) = ctx.program.next_inst() else {
            ctx.exited = true;
            ctx.prog_done = true;
            return None;
        };
        let (lo, hi) = self.range(smsp);
        let slot = (lo..hi)
            .find(|&s| self.occupant[s] == FREE)
            .expect("resident-warp slot capacity exceeded: occupancy bound violated");
        self.occupant[slot] = wid;
        self.stream[slot] = stream;
        self.seq[slot] = self.next_seq;
        self.next_seq += 1;
        self.last_issue[slot] = now;
        // An instruction can never issue in the same cycle as the dispatch
        // that created its warp, and a fresh scoreboard holds no pending
        // writers, so the first instruction is ready exactly at `now + 1`.
        self.ready[slot] = now + 1;
        self.dep[slot] = DepKind::None;
        let dirty = self.board_dirty[slot] as usize;
        let base = slot * TRACKED_REGS;
        self.boards[base..base + dirty].fill(0);
        self.board_dirty[slot] = 0;
        self.ext[slot].clear();
        self.put_inst(slot, 0, first);
        let mut len = 1usize;
        while len < IBUF {
            match ctx.program.next_inst() {
                Some(inst) => {
                    self.put_inst(slot, len, inst);
                    len += 1;
                }
                None => {
                    ctx.prog_done = true;
                    break;
                }
            }
        }
        self.ibuf_pos[slot] = 0;
        self.ibuf_len[slot] = len as u8;
        Some(slot as u32)
    }

    /// Frees `slot` after its warp retired. The scoreboard is left as-is
    /// and cleared lazily (dirty prefix only) by the next [`WarpSlots::spawn`]
    /// into this slot.
    pub fn release(&mut self, slot: usize) {
        self.occupant[slot] = FREE;
        self.ready[slot] = u64::MAX;
    }

    /// `(ready cycle, was written by a long-latency load)` for `reg` of the
    /// warp in `slot`.
    #[inline]
    fn board_get(&self, base: usize, reg: u8) -> (u64, bool) {
        let v = self.boards[base + reg as usize];
        (v & !LONG, v & LONG != 0)
    }

    /// Records that `reg`'s writer completes at `ready`.
    #[inline]
    fn board_set(&mut self, slot: usize, reg: u8, ready: u64, long: bool) {
        debug_assert!(ready & LONG == 0, "cycle overflows the packing");
        self.boards[slot * TRACKED_REGS + reg as usize] = ready | if long { LONG } else { 0 };
        let mark = reg as u16 + 1;
        if self.board_dirty[slot] < mark {
            self.board_dirty[slot] = mark;
        }
    }

    /// Encodes `inst` into the slot's decode-ahead buffer at `at`, spilling
    /// unpackable instructions into the slot's side table.
    #[inline]
    fn put_inst(&mut self, slot: usize, at: usize, inst: Instruction) {
        self.ibuf[slot * IBUF + at] = PackedInst::encode(&inst).unwrap_or_else(|| {
            let ext = &mut self.ext[slot];
            ext.push(inst);
            PackedInst {
                arg: ext.len() as u64 - 1,
                meta: OP_EXT,
            }
        });
    }

    /// Computes when the operands of the packed instruction `p` are ready
    /// for the warp in `slot` and what kind of dependence dominates.
    fn packed_readiness(&self, slot: usize, p: PackedInst) -> (u64, DepKind) {
        let mut ready = 0u64;
        let mut kind = DepKind::None;
        let base = slot * TRACKED_REGS;
        let mut consider = |reg: Reg| {
            let (r, long) = self.board_get(base, reg);
            if r > ready {
                ready = r;
                kind = if long { DepKind::Long } else { DepKind::Short };
            }
        };
        match p.op() {
            OP_ALU => {
                for i in 0..p.nsrcs() {
                    consider(p.src(i));
                }
            }
            OP_LOAD_GLOBAL | OP_LOAD_LOCAL | OP_LOAD_SHARED | OP_PREF_L1 | OP_PREF_L2 => {
                if let Some(reg) = p.addr_dep() {
                    consider(reg);
                }
            }
            OP_STORE_GLOBAL | OP_STORE_LOCAL | OP_STORE_SHARED => consider(p.reg0()),
            _ => return self.operand_readiness(slot, &self.ext[slot][p.arg as usize]),
        }
        (ready, kind)
    }

    /// Computes when the operands of `inst` are ready for the warp in
    /// `slot` and what kind of dependence dominates.
    fn operand_readiness(&self, slot: usize, inst: &Instruction) -> (u64, DepKind) {
        let mut ready = 0u64;
        let mut kind = DepKind::None;
        let base = slot * TRACKED_REGS;
        let mut consider = |reg: u8| {
            let (r, long) = self.board_get(base, reg);
            if r > ready {
                ready = r;
                kind = if long { DepKind::Long } else { DepKind::Short };
            }
        };
        match inst {
            Instruction::Load { addr_dep, .. } | Instruction::Prefetch { addr_dep, .. } => {
                // Indirect accesses cannot issue until their address operand
                // (e.g. the loaded embedding index) is available.
                if let Some(reg) = addr_dep {
                    consider(*reg);
                }
            }
            Instruction::Store { src, .. } => consider(*src),
            Instruction::Alu { srcs, .. } => {
                for s in srcs.iter() {
                    consider(s);
                }
            }
        }
        (ready, kind)
    }

    /// Issues `slot`'s pending instruction at cycle `now` on SM `sm`,
    /// updating the memory system, the scoreboard and the raw counters,
    /// and decodes the next instruction (refilling the decode-ahead buffer
    /// from `ctx`'s generator when it runs dry). Returns `true` if the warp
    /// retired; the caller must then [`WarpSlots::release`] the slot.
    ///
    /// # Panics
    /// Panics if the slot's warp is not ready at `now` (the scheduler must
    /// only select ready warps).
    // The issue path threads the per-run context explicitly instead of
    // bundling it in a struct: every parameter is a distinct hot borrow.
    #[allow(clippy::too_many_arguments)]
    pub fn issue(
        &mut self,
        slot: usize,
        sm: usize,
        now: u64,
        ctx: &mut WarpContext,
        mem: &mut MemorySystem,
        cfg: &GpuConfig,
        counters: &mut RawCounters,
    ) -> bool {
        assert!(
            self.ready[slot] <= now,
            "scheduler issued a warp that was not ready"
        );
        let pos = self.ibuf_pos[slot] as usize;
        debug_assert!(pos < self.ibuf_len[slot] as usize);
        let p = self.ibuf[slot * IBUF + pos];

        // Stall attribution for the cycles since the previous issue.
        counters.charge_issue_gap(self.dep[slot], self.last_issue[slot], self.ready[slot], now);

        // ---- execute ----
        counters.insts_issued += 1;
        match p.op() {
            OP_ALU => {
                let lat = if p.arg == 0 { cfg.alu_latency } else { p.arg };
                self.board_set(slot, p.reg0(), now + lat, false);
            }
            OP_LOAD_GLOBAL | OP_LOAD_LOCAL | OP_LOAD_SHARED => {
                counters.load_insts += 1;
                let space = match p.op() {
                    OP_LOAD_GLOBAL => MemSpace::Global,
                    OP_LOAD_LOCAL => {
                        counters.local_load_insts += 1;
                        MemSpace::Local
                    }
                    _ => MemSpace::Shared,
                };
                let (done, _outcome) = mem.load(sm, space, &LineSet::single(p.arg), p.bytes(), now);
                self.board_set(slot, p.reg0(), done, space.is_long_scoreboard());
            }
            OP_STORE_GLOBAL | OP_STORE_LOCAL | OP_STORE_SHARED => {
                counters.store_insts += 1;
                let space = match p.op() {
                    OP_STORE_GLOBAL => MemSpace::Global,
                    OP_STORE_LOCAL => MemSpace::Local,
                    _ => MemSpace::Shared,
                };
                mem.store(sm, space, &LineSet::single(p.arg), p.bytes(), now);
            }
            OP_PREF_L1 | OP_PREF_L2 => {
                counters.prefetch_insts += 1;
                let target = if p.op() == OP_PREF_L1 {
                    PrefetchTarget::L1
                } else {
                    PrefetchTarget::L2EvictLast
                };
                mem.prefetch(sm, target, &LineSet::single(p.arg), now);
            }
            _ => self.execute_ext(slot, p.arg as usize, sm, now, mem, cfg, counters),
        }

        self.last_issue[slot] = now;

        // ---- advance the decode-ahead buffer ----
        let mut next = pos + 1;
        if next == self.ibuf_len[slot] as usize {
            next = 0;
            let mut len = 0usize;
            if !ctx.prog_done {
                self.ext[slot].clear();
                while len < IBUF {
                    match ctx.program.next_inst() {
                        Some(i) => {
                            self.put_inst(slot, len, i);
                            len += 1;
                        }
                        None => {
                            ctx.prog_done = true;
                            break;
                        }
                    }
                }
            }
            if len == 0 {
                ctx.exited = true;
                self.ibuf_len[slot] = 0;
                self.ibuf_pos[slot] = 0;
                return true;
            }
            self.ibuf_len[slot] = len as u8;
        }
        self.ibuf_pos[slot] = next as u8;

        let head = self.ibuf[slot * IBUF + next];
        let (ready, kind) = self.packed_readiness(slot, head);
        // An instruction can never issue in the same cycle as (or before)
        // its predecessor.
        self.ready[slot] = ready.max(now + 1);
        self.dep[slot] = kind;
        false
    }

    /// Executes an instruction that did not fit the packed encoding
    /// (multi-line `LineSet`s or very large byte counts). Cold path: the
    /// embedding kernels emit single-line accesses almost exclusively.
    #[cold]
    #[allow(clippy::too_many_arguments)]
    fn execute_ext(
        &mut self,
        slot: usize,
        at: usize,
        sm: usize,
        now: u64,
        mem: &mut MemorySystem,
        cfg: &GpuConfig,
        counters: &mut RawCounters,
    ) {
        let inst = self.ext[slot][at];
        match inst {
            Instruction::Load {
                space,
                lines,
                dst,
                bytes,
                addr_dep: _,
            } => {
                counters.load_insts += 1;
                if space == MemSpace::Local {
                    counters.local_load_insts += 1;
                }
                let (done, _outcome) = mem.load(sm, space, &lines, bytes, now);
                self.board_set(slot, dst, done, space.is_long_scoreboard());
            }
            Instruction::Store {
                space,
                lines,
                src: _,
                bytes,
            } => {
                counters.store_insts += 1;
                mem.store(sm, space, &lines, bytes, now);
            }
            Instruction::Prefetch {
                target,
                lines,
                addr_dep: _,
            } => {
                counters.prefetch_insts += 1;
                mem.prefetch(sm, target, &lines, now);
            }
            Instruction::Alu {
                dst,
                srcs: _,
                latency,
            } => {
                let lat = if latency == 0 {
                    cfg.alu_latency
                } else {
                    latency as u64
                };
                self.board_set(slot, dst, now + lat, false);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Instruction, LineSet, SrcSet};
    use crate::launch::VecProgram;

    fn info() -> WarpInfo {
        WarpInfo {
            block_id: 0,
            warp_in_block: 0,
            warps_per_block: 8,
            threads_per_block: 256,
            global_warp_id: 0,
            sm_id: 0,
        }
    }

    /// One warp spawned into a single-smsp arena, issued directly.
    struct Harness {
        slots: WarpSlots,
        ctx: WarpContext,
        slot: Option<usize>,
        mem: MemorySystem,
        cfg: GpuConfig,
        counters: RawCounters,
    }

    impl Harness {
        fn ready_at(&self) -> u64 {
            self.slots.ready_at(self.slot.unwrap())
        }

        fn is_ready(&self, now: u64) -> bool {
            !self.ctx.is_exited() && self.ready_at() <= now
        }

        fn issue(&mut self, now: u64) -> bool {
            let slot = self.slot.unwrap();
            let retired = self.slots.issue(
                slot,
                0,
                now,
                &mut self.ctx,
                &mut self.mem,
                &self.cfg,
                &mut self.counters,
            );
            if retired {
                self.slots.release(slot);
            }
            retired
        }
    }

    fn make_warp(insts: Vec<Instruction>) -> Harness {
        let cfg = GpuConfig::test_small();
        let mem = MemorySystem::new(&cfg);
        let mut slots = WarpSlots::new(1, 2);
        let mut ctx = WarpContext::new(info(), Box::new(VecProgram::new(insts)), 0);
        let slot = slots.spawn(0, 0, 0, &mut ctx, 0).map(|s| s as usize);
        Harness {
            slots,
            ctx,
            slot,
            mem,
            cfg,
            counters: RawCounters::default(),
        }
    }

    #[test]
    fn empty_program_exits_immediately() {
        let h = make_warp(vec![]);
        assert!(h.ctx.is_exited());
        assert!(h.slot.is_none());
    }

    #[test]
    fn load_use_dependency_accrues_long_scoreboard_stall() {
        let insts = vec![
            Instruction::global_load(0, 1, 128),
            Instruction::Alu {
                dst: 2,
                srcs: SrcSet::two(1, 2),
                latency: 0,
            },
        ];
        let mut h = make_warp(insts);

        // Issue the load at cycle 1.
        assert!(h.is_ready(1));
        h.issue(1);
        // The dependent add is not ready until the DRAM access returns.
        assert!(!h.is_ready(2));
        let ready = h.ready_at();
        assert!(
            ready > h.cfg.dram.latency,
            "dependent use must wait for DRAM"
        );
        h.issue(ready);
        assert!(h.counters.long_scoreboard_cycles > 400);
        assert_eq!(h.counters.insts_issued, 2);
        assert_eq!(h.counters.load_insts, 1);
    }

    #[test]
    fn independent_alu_ops_issue_back_to_back() {
        let insts = (1..=3u8)
            .map(|dst| Instruction::Alu {
                dst,
                srcs: SrcSet::none(),
                latency: 0,
            })
            .collect();
        let mut h = make_warp(insts);
        for cycle in 1..=3 {
            assert!(h.is_ready(cycle));
            h.issue(cycle);
        }
        assert_eq!(h.counters.long_scoreboard_cycles, 0);
        assert_eq!(h.counters.short_scoreboard_cycles, 0);
        assert!(h.ctx.is_exited());
    }

    #[test]
    fn alu_dependency_is_short_scoreboard() {
        let insts = vec![
            Instruction::Alu {
                dst: 1,
                srcs: SrcSet::none(),
                latency: 8,
            },
            Instruction::Alu {
                dst: 2,
                srcs: SrcSet::one(1),
                latency: 0,
            },
        ];
        let mut h = make_warp(insts);
        h.issue(1);
        let ready = h.ready_at();
        assert_eq!(ready, 9);
        h.issue(ready);
        assert_eq!(h.counters.short_scoreboard_cycles, 7);
        assert_eq!(h.counters.long_scoreboard_cycles, 0);
    }

    #[test]
    fn not_selected_stall_when_issue_is_delayed_past_readiness() {
        let insts = vec![
            Instruction::Alu {
                dst: 1,
                srcs: SrcSet::none(),
                latency: 0,
            },
            Instruction::Alu {
                dst: 2,
                srcs: SrcSet::none(),
                latency: 0,
            },
        ];
        let mut h = make_warp(insts);
        h.issue(1);
        // Warp is ready at cycle 2 but the scheduler picks it only at 10.
        assert!(h.is_ready(2));
        h.issue(10);
        assert_eq!(h.counters.not_selected_cycles, 8);
    }

    #[test]
    fn prefetch_does_not_block_the_warp() {
        let insts = vec![
            Instruction::Prefetch {
                target: crate::isa::PrefetchTarget::L1,
                lines: LineSet::single(0),
                addr_dep: None,
            },
            Instruction::Alu {
                dst: 1,
                srcs: SrcSet::none(),
                latency: 0,
            },
        ];
        let mut h = make_warp(insts);
        h.issue(1);
        // Next instruction is ready on the very next cycle.
        assert!(h.is_ready(2));
        h.issue(2);
        assert_eq!(h.counters.prefetch_insts, 1);
        assert_eq!(h.counters.long_scoreboard_cycles, 0);
    }

    #[test]
    fn store_waits_for_its_source() {
        let insts = vec![
            Instruction::global_load(0, 7, 128),
            Instruction::Store {
                space: MemSpace::Global,
                lines: LineSet::single(4096),
                src: 7,
                bytes: 128,
            },
        ];
        let mut h = make_warp(insts);
        h.issue(1);
        assert!(h.ready_at() > 100, "store must wait for the loaded value");
        let r = h.ready_at();
        h.issue(r);
        assert_eq!(h.counters.store_insts, 1);
    }

    #[test]
    #[should_panic(expected = "not ready")]
    fn issuing_unready_warp_panics() {
        let insts = vec![
            Instruction::Alu {
                dst: 1,
                srcs: SrcSet::none(),
                latency: 10,
            },
            Instruction::Alu {
                dst: 2,
                srcs: SrcSet::one(1),
                latency: 0,
            },
        ];
        let mut h = make_warp(insts);
        h.issue(1);
        h.issue(2);
    }

    #[test]
    fn programs_longer_than_the_decode_buffer_refill_and_retire() {
        let n = IBUF * 3 + 2;
        let insts = (0..n)
            .map(|_| Instruction::Alu {
                dst: 1,
                srcs: SrcSet::none(),
                latency: 0,
            })
            .collect();
        let mut h = make_warp(insts);
        let mut issued = 0u64;
        let mut cycle = 1;
        while !h.ctx.is_exited() {
            assert!(h.is_ready(cycle));
            h.issue(cycle);
            issued += 1;
            cycle += 1;
        }
        assert_eq!(issued, n as u64);
        assert_eq!(h.counters.insts_issued, n as u64);
    }

    #[test]
    fn reused_slot_starts_with_a_clean_scoreboard() {
        let cfg = GpuConfig::test_small();
        let mut mem = MemorySystem::new(&cfg);
        let mut slots = WarpSlots::new(1, 1);
        let mut counters = RawCounters::default();
        // First occupant leaves register 5 pending far in the future.
        let first = vec![Instruction::Alu {
            dst: 5,
            srcs: SrcSet::none(),
            latency: 1000,
        }];
        let mut ctx = WarpContext::new(info(), Box::new(VecProgram::new(first)), 0);
        let slot = slots.spawn(0, 0, 0, &mut ctx, 0).unwrap() as usize;
        assert!(slots.issue(slot, 0, 1, &mut ctx, &mut mem, &cfg, &mut counters));
        slots.release(slot);
        // Second occupant reads register 5: must see it ready immediately.
        let second = vec![
            Instruction::Alu {
                dst: 1,
                srcs: SrcSet::one(5),
                latency: 0,
            },
            Instruction::Alu {
                dst: 2,
                srcs: SrcSet::one(5),
                latency: 0,
            },
        ];
        let mut ctx2 = WarpContext::new(info(), Box::new(VecProgram::new(second)), 10);
        let slot2 = slots.spawn(0, 1, 0, &mut ctx2, 10).unwrap() as usize;
        assert_eq!(slot2, slot, "single-slot arena must reuse the slot");
        assert_eq!(slots.ready_at(slot2), 11);
        slots.issue(slot2, 0, 11, &mut ctx2, &mut mem, &cfg, &mut counters);
        assert_eq!(
            slots.ready_at(slot2),
            12,
            "stale scoreboard entry leaked into the reused slot"
        );
    }
}
