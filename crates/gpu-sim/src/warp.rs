//! Per-warp execution state: the scoreboard, stall attribution, and the
//! interface between a warp's instruction stream and the memory system.

use crate::config::GpuConfig;
use crate::isa::{Instruction, MemSpace};
use crate::launch::{WarpInfo, WarpProgram};
use crate::mem::MemorySystem;
use crate::stats::RawCounters;

/// Number of architectural registers whose readiness is tracked per warp.
const TRACKED_REGS: usize = 256;

/// What the warp's next instruction is currently waiting on; used to
/// attribute stall cycles the way NCU does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepKind {
    /// No unfinished dependence: the warp is ready to issue.
    None,
    /// Waiting on an ALU or shared-memory result ("short scoreboard").
    Short,
    /// Waiting on a global/local-memory load ("long scoreboard").
    Long,
}

/// Per-register readiness tracking, boxed as one unit so that spawning a
/// warp costs a single scoreboard allocation on the launch path.
///
/// Each entry packs the cycle at which the register's most recent writer
/// completes (low 63 bits) with a flag in the top bit marking that writer as
/// a long-latency (global/local) load. One packed word per register means
/// one cache line touched per operand instead of two — measurable on the
/// issue path, where the scoreboards of thousands of resident warps are
/// visited in data-dependent order.
struct Scoreboard {
    packed: [u64; TRACKED_REGS],
}

impl Scoreboard {
    /// Top-bit flag: the register's last writer was a global/local load.
    const LONG: u64 = 1 << 63;

    fn fresh() -> Box<Self> {
        Box::new(Scoreboard {
            packed: [0; TRACKED_REGS],
        })
    }

    /// `(ready cycle, was written by a long-latency load)` for `reg`.
    #[inline]
    fn get(&self, reg: u8) -> (u64, bool) {
        let v = self.packed[reg as usize];
        (v & !Self::LONG, v & Self::LONG != 0)
    }

    /// Records that `reg`'s writer completes at `ready` (`ready` must stay
    /// below 2^63, which [`crate::engine`]'s cycle cap guarantees).
    #[inline]
    fn set(&mut self, reg: u8, ready: u64, long: bool) {
        debug_assert!(ready & Self::LONG == 0, "cycle overflows the packing");
        self.packed[reg as usize] = ready | if long { Self::LONG } else { 0 };
    }
}

/// Execution state of one resident warp.
pub struct WarpContext {
    /// Static identity of the warp.
    pub info: WarpInfo,
    program: Box<dyn WarpProgram>,
    /// The next instruction to issue, if the warp has not exited.
    pending: Option<Instruction>,
    /// The register scoreboard.
    board: Box<Scoreboard>,
    /// Cycle at which the pending instruction's operands are ready.
    ready_at: u64,
    /// What the pending instruction is waiting on.
    dep_kind: DepKind,
    /// Cycle at which the previous instruction issued.
    last_issue: u64,
    /// Cycle at which this warp became resident.
    pub spawn_cycle: u64,
    /// Whether the warp has retired.
    exited: bool,
    /// Instructions issued by this warp.
    pub insts_issued: u64,
}

impl std::fmt::Debug for WarpContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WarpContext")
            .field("info", &self.info)
            .field("ready_at", &self.ready_at)
            .field("dep_kind", &self.dep_kind)
            .field("exited", &self.exited)
            .field("insts_issued", &self.insts_issued)
            .finish()
    }
}

impl WarpContext {
    /// Creates a warp that becomes resident at `spawn_cycle` and immediately
    /// fetches its first instruction.
    pub fn new(info: WarpInfo, program: Box<dyn WarpProgram>, spawn_cycle: u64) -> Self {
        let mut w = WarpContext {
            info,
            program,
            pending: None,
            board: Scoreboard::fresh(),
            ready_at: spawn_cycle,
            dep_kind: DepKind::None,
            last_issue: spawn_cycle,
            spawn_cycle,
            exited: false,
            insts_issued: 0,
        };
        w.fetch_next(spawn_cycle);
        w
    }

    /// Whether the warp has retired.
    pub fn is_exited(&self) -> bool {
        self.exited
    }

    /// Cycle at which the warp's next instruction becomes eligible to issue.
    pub fn ready_at(&self) -> u64 {
        self.ready_at
    }

    /// Whether the warp can issue at `now`.
    pub fn is_ready(&self, now: u64) -> bool {
        !self.exited && self.ready_at <= now
    }

    fn fetch_next(&mut self, now: u64) {
        match self.program.next_inst() {
            None => {
                self.pending = None;
                self.exited = true;
            }
            Some(inst) => {
                let (ready_at, dep_kind) = self.operand_readiness(&inst);
                self.pending = Some(inst);
                // An instruction can never issue in the same cycle as (or
                // before) its predecessor.
                self.ready_at = ready_at.max(now + 1).max(self.last_issue + 1);
                self.dep_kind = dep_kind;
            }
        }
    }

    /// Computes when the operands of `inst` are ready and what kind of
    /// dependence dominates.
    fn operand_readiness(&self, inst: &Instruction) -> (u64, DepKind) {
        let mut ready = 0u64;
        let mut kind = DepKind::None;
        let board = &self.board;
        let mut consider = |reg: u8| {
            let (r, long) = board.get(reg);
            if r > ready {
                ready = r;
                kind = if long { DepKind::Long } else { DepKind::Short };
            }
        };
        match inst {
            Instruction::Load { addr_dep, .. } | Instruction::Prefetch { addr_dep, .. } => {
                // Indirect accesses cannot issue until their address operand
                // (e.g. the loaded embedding index) is available.
                if let Some(reg) = addr_dep {
                    consider(*reg);
                }
            }
            Instruction::Store { src, .. } => consider(*src),
            Instruction::Alu { srcs, .. } => {
                for s in srcs.iter() {
                    consider(s);
                }
            }
        }
        (ready, kind)
    }

    /// Issues the pending instruction at cycle `now`, updating the memory
    /// system, the scoreboard and the raw counters, and fetches the next
    /// instruction. Returns `true` if the warp retired as a result.
    ///
    /// # Panics
    /// Panics if the warp is not ready at `now` (the scheduler must only
    /// select ready warps).
    pub fn issue(
        &mut self,
        now: u64,
        mem: &mut MemorySystem,
        cfg: &GpuConfig,
        counters: &mut RawCounters,
    ) -> bool {
        assert!(
            self.is_ready(now),
            "scheduler issued a warp that was not ready"
        );
        let inst = self
            .pending
            .take()
            .expect("ready warp must have a pending instruction");

        // ---- stall attribution for the cycles since the previous issue ----
        let prev = self.last_issue;
        let gap = now.saturating_sub(prev + 1);
        if gap > 0 {
            let dep_stall = self.ready_at.saturating_sub(prev + 1).min(gap);
            let not_selected = gap - dep_stall;
            match self.dep_kind {
                DepKind::Long => counters.long_scoreboard_cycles += dep_stall,
                DepKind::Short => counters.short_scoreboard_cycles += dep_stall,
                DepKind::None => counters.not_selected_cycles += dep_stall,
            }
            counters.not_selected_cycles += not_selected;
        }

        // ---- execute ----
        counters.insts_issued += 1;
        self.insts_issued += 1;
        match inst {
            Instruction::Load {
                space,
                lines,
                dst,
                bytes,
                addr_dep: _,
            } => {
                counters.load_insts += 1;
                if space == MemSpace::Local {
                    counters.local_load_insts += 1;
                }
                let (done, _outcome) =
                    mem.load(self.info.sm_id as usize, space, &lines, bytes, now);
                self.board.set(dst, done, space.is_long_scoreboard());
            }
            Instruction::Store {
                space,
                lines,
                src: _,
                bytes,
            } => {
                counters.store_insts += 1;
                mem.store(self.info.sm_id as usize, space, &lines, bytes, now);
            }
            Instruction::Prefetch {
                target,
                lines,
                addr_dep: _,
            } => {
                counters.prefetch_insts += 1;
                mem.prefetch(self.info.sm_id as usize, target, &lines, now);
            }
            Instruction::Alu {
                dst,
                srcs: _,
                latency,
            } => {
                let lat = if latency == 0 {
                    cfg.alu_latency
                } else {
                    latency as u64
                };
                self.board.set(dst, now + lat, false);
            }
        }

        self.last_issue = now;
        self.fetch_next(now);
        self.exited
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Instruction, LineSet, SrcSet};
    use crate::launch::VecProgram;

    fn info() -> WarpInfo {
        WarpInfo {
            block_id: 0,
            warp_in_block: 0,
            warps_per_block: 8,
            threads_per_block: 256,
            global_warp_id: 0,
            sm_id: 0,
        }
    }

    fn make_warp(insts: Vec<Instruction>) -> (WarpContext, MemorySystem, GpuConfig) {
        let cfg = GpuConfig::test_small();
        let mem = MemorySystem::new(&cfg);
        let warp = WarpContext::new(info(), Box::new(VecProgram::new(insts)), 0);
        (warp, mem, cfg)
    }

    #[test]
    fn empty_program_exits_immediately() {
        let (warp, _mem, _cfg) = make_warp(vec![]);
        assert!(warp.is_exited());
    }

    #[test]
    fn load_use_dependency_accrues_long_scoreboard_stall() {
        let insts = vec![
            Instruction::global_load(0, 1, 128),
            Instruction::Alu {
                dst: 2,
                srcs: SrcSet::two(1, 2),
                latency: 0,
            },
        ];
        let (mut warp, mut mem, cfg) = make_warp(insts);
        let mut counters = RawCounters::default();

        // Issue the load at cycle 1.
        assert!(warp.is_ready(1));
        warp.issue(1, &mut mem, &cfg, &mut counters);
        // The dependent add is not ready until the DRAM access returns.
        assert!(!warp.is_ready(2));
        let ready = warp.ready_at();
        assert!(ready > cfg.dram.latency, "dependent use must wait for DRAM");
        warp.issue(ready, &mut mem, &cfg, &mut counters);
        assert!(counters.long_scoreboard_cycles > 400);
        assert_eq!(counters.insts_issued, 2);
        assert_eq!(counters.load_insts, 1);
    }

    #[test]
    fn independent_alu_ops_issue_back_to_back() {
        let insts = vec![
            Instruction::Alu {
                dst: 1,
                srcs: SrcSet::none(),
                latency: 0,
            },
            Instruction::Alu {
                dst: 2,
                srcs: SrcSet::none(),
                latency: 0,
            },
            Instruction::Alu {
                dst: 3,
                srcs: SrcSet::none(),
                latency: 0,
            },
        ];
        let (mut warp, mut mem, cfg) = make_warp(insts);
        let mut counters = RawCounters::default();
        for cycle in 1..=3 {
            assert!(warp.is_ready(cycle));
            warp.issue(cycle, &mut mem, &cfg, &mut counters);
        }
        assert_eq!(counters.long_scoreboard_cycles, 0);
        assert_eq!(counters.short_scoreboard_cycles, 0);
        assert!(warp.is_exited());
    }

    #[test]
    fn alu_dependency_is_short_scoreboard() {
        let insts = vec![
            Instruction::Alu {
                dst: 1,
                srcs: SrcSet::none(),
                latency: 8,
            },
            Instruction::Alu {
                dst: 2,
                srcs: SrcSet::one(1),
                latency: 0,
            },
        ];
        let (mut warp, mut mem, cfg) = make_warp(insts);
        let mut counters = RawCounters::default();
        warp.issue(1, &mut mem, &cfg, &mut counters);
        let ready = warp.ready_at();
        assert_eq!(ready, 9);
        warp.issue(ready, &mut mem, &cfg, &mut counters);
        assert_eq!(counters.short_scoreboard_cycles, 7);
        assert_eq!(counters.long_scoreboard_cycles, 0);
    }

    #[test]
    fn not_selected_stall_when_issue_is_delayed_past_readiness() {
        let insts = vec![
            Instruction::Alu {
                dst: 1,
                srcs: SrcSet::none(),
                latency: 0,
            },
            Instruction::Alu {
                dst: 2,
                srcs: SrcSet::none(),
                latency: 0,
            },
        ];
        let (mut warp, mut mem, cfg) = make_warp(insts);
        let mut counters = RawCounters::default();
        warp.issue(1, &mut mem, &cfg, &mut counters);
        // Warp is ready at cycle 2 but the scheduler picks it only at 10.
        assert!(warp.is_ready(2));
        warp.issue(10, &mut mem, &cfg, &mut counters);
        assert_eq!(counters.not_selected_cycles, 8);
    }

    #[test]
    fn prefetch_does_not_block_the_warp() {
        let insts = vec![
            Instruction::Prefetch {
                target: crate::isa::PrefetchTarget::L1,
                lines: LineSet::single(0),
                addr_dep: None,
            },
            Instruction::Alu {
                dst: 1,
                srcs: SrcSet::none(),
                latency: 0,
            },
        ];
        let (mut warp, mut mem, cfg) = make_warp(insts);
        let mut counters = RawCounters::default();
        warp.issue(1, &mut mem, &cfg, &mut counters);
        // Next instruction is ready on the very next cycle.
        assert!(warp.is_ready(2));
        warp.issue(2, &mut mem, &cfg, &mut counters);
        assert_eq!(counters.prefetch_insts, 1);
        assert_eq!(counters.long_scoreboard_cycles, 0);
    }

    #[test]
    fn store_waits_for_its_source() {
        let insts = vec![
            Instruction::global_load(0, 7, 128),
            Instruction::Store {
                space: MemSpace::Global,
                lines: LineSet::single(4096),
                src: 7,
                bytes: 128,
            },
        ];
        let (mut warp, mut mem, cfg) = make_warp(insts);
        let mut counters = RawCounters::default();
        warp.issue(1, &mut mem, &cfg, &mut counters);
        assert!(
            warp.ready_at() > 100,
            "store must wait for the loaded value"
        );
        let r = warp.ready_at();
        warp.issue(r, &mut mem, &cfg, &mut counters);
        assert_eq!(counters.store_insts, 1);
    }

    #[test]
    #[should_panic(expected = "not ready")]
    fn issuing_unready_warp_panics() {
        let insts = vec![
            Instruction::Alu {
                dst: 1,
                srcs: SrcSet::none(),
                latency: 10,
            },
            Instruction::Alu {
                dst: 2,
                srcs: SrcSet::one(1),
                latency: 0,
            },
        ];
        let (mut warp, mut mem, cfg) = make_warp(insts);
        let mut counters = RawCounters::default();
        warp.issue(1, &mut mem, &cfg, &mut counters);
        warp.issue(2, &mut mem, &cfg, &mut counters);
    }
}
