//! A bitset calendar wheel over sub-partition issue deadlines, used by the
//! event-driven engine loop in place of a flat min-scan.
//!
//! # Design
//!
//! The flat deadline array `sched[idx]` (one `u64` per flat sub-partition)
//! stays **authoritative**; the wheel is a lossy index over it. The wheel
//! covers a window of [`WHEEL_CYCLES`] consecutive cycles starting at
//! `base` (a multiple of the window size): one bitmask row per cycle, one
//! bit per sub-partition. Deadlines at or beyond the window end are parked
//! in a single `far` mask and re-bucketed when the window advances.
//!
//! Invariants (the engine relies on these; see `engine.rs`):
//!
//! * **Bits may be stale, never missing.** [`DeadlineWheel::note`] sets a
//!   bit for every recorded deadline and nothing ever *moves* a bit when a
//!   deadline changes — a reader must verify `sched[idx] == cycle` and may
//!   clear the bit on mismatch. Every finite `sched[idx]` therefore always
//!   has at least one live bit (in its row if it was within the window
//!   when last noted, in `far` otherwise).
//! * **Drained rows cannot be re-entered.** The engine drains cycle `t`
//!   only after deadlines can no longer be created at `t` (an issue at `t`
//!   schedules `t + 1` or later). A new deadline `t + WHEEL_CYCLES` that
//!   would alias onto row `t` is `>= base + WHEEL_CYCLES` and goes to
//!   `far` instead, so a row being drained never receives new bits.
//! * **Ascending bit order = ascending `(sm, smsp)` order.** Bit `i` of
//!   word `w` is flat sub-partition `w * 64 + i`, so iterating a row's set
//!   bits from LSB to MSB preserves the same-cycle drain order the
//!   scheduler contract demands.
//!
//! Scanning forward one row per cycle makes the total scan work
//! proportional to (simulated cycles x words per row), independent of how
//! many deadlines fire — near-constant per clock jump for the dense,
//! memory-bound kernels this simulator models, where the old min-scan paid
//! O(sub-partitions) on every step.

/// Cycles covered by the wheel window. Must be a power of two and larger
/// than the longest common stall (DRAM latency + queueing) so deadlines
/// rarely land in `far`.
pub(crate) const WHEEL_CYCLES: u64 = 1024;

/// The calendar wheel; see the module documentation.
pub(crate) struct DeadlineWheel {
    /// Words per row (`ceil(n / 64)`).
    n_words: usize,
    /// First cycle of the current window (multiple of [`WHEEL_CYCLES`]).
    base: u64,
    /// Row bitmasks, `WHEEL_CYCLES * n_words` words.
    rows: Vec<u64>,
    /// Deadlines at or beyond the window end, re-bucketed on advance.
    far: Vec<u64>,
}

impl Default for DeadlineWheel {
    fn default() -> Self {
        DeadlineWheel::new(0, 0)
    }
}

impl DeadlineWheel {
    /// Creates a wheel for `n` flat sub-partitions with its window
    /// containing `start`.
    pub(crate) fn new(n: usize, start: u64) -> Self {
        let mut w = DeadlineWheel {
            n_words: 0,
            base: 0,
            rows: Vec::new(),
            far: Vec::new(),
        };
        w.reset(n, start);
        w
    }

    /// Clears the wheel for a new run (keeping allocations).
    pub(crate) fn reset(&mut self, n: usize, start: u64) {
        self.n_words = n.div_ceil(64);
        self.base = start - start % WHEEL_CYCLES;
        self.rows.clear();
        self.rows.resize(WHEEL_CYCLES as usize * self.n_words, 0);
        self.far.clear();
        self.far.resize(self.n_words, 0);
    }

    /// Records that sub-partition `idx`'s deadline is now `deadline`. Old
    /// bits for `idx` are left behind as stale; readers verify against the
    /// authoritative `sched` array.
    #[inline]
    pub(crate) fn note(&mut self, idx: usize, deadline: u64) {
        let (word, bit) = (idx / 64, 1u64 << (idx % 64));
        if deadline >= self.base + WHEEL_CYCLES {
            self.far[word] |= bit;
        } else {
            let row = (deadline % WHEEL_CYCLES) as usize * self.n_words;
            self.rows[row + word] |= bit;
        }
    }

    /// Finds the earliest cycle `>= from` holding a live deadline
    /// (`sched[idx] == cycle`), clearing stale bits as it scans and
    /// advancing the window (re-bucketing `far`) as needed. Returns `None`
    /// only if no finite deadline exists in `sched`.
    pub(crate) fn next_deadline(&mut self, from: u64, sched: &[u64]) -> Option<u64> {
        loop {
            let end = self.base + WHEEL_CYCLES;
            let mut c = from.max(self.base);
            while c < end {
                let row = (c % WHEEL_CYCLES) as usize * self.n_words;
                let mut live = false;
                for w in 0..self.n_words {
                    let mut bits = self.rows[row + w];
                    if bits == 0 {
                        continue;
                    }
                    let mut keep = 0u64;
                    while bits != 0 {
                        let b = bits & bits.wrapping_neg();
                        let idx = w * 64 + b.trailing_zeros() as usize;
                        if sched[idx] == c {
                            keep |= b;
                        }
                        bits ^= b;
                    }
                    self.rows[row + w] = keep;
                    live |= keep != 0;
                }
                if live {
                    return Some(c);
                }
                c += 1;
            }
            // Window exhausted: every live deadline (if any) is parked in
            // `far`. Advance and re-bucket.
            if self.far.iter().all(|&w| w == 0) {
                return None;
            }
            self.base = end;
            for w in 0..self.n_words {
                let mut bits = self.far[w];
                let mut keep = 0u64;
                while bits != 0 {
                    let b = bits & bits.wrapping_neg();
                    let idx = w * 64 + b.trailing_zeros() as usize;
                    let d = sched[idx];
                    if d != u64::MAX && d < self.base + WHEEL_CYCLES {
                        let row = (d % WHEEL_CYCLES) as usize * self.n_words;
                        self.rows[row + w] |= b;
                    } else if d != u64::MAX {
                        keep |= b;
                    }
                    bits ^= b;
                }
                self.far[w] = keep;
            }
        }
    }

    /// Copies row `t`'s words into `out` and clears them. The caller
    /// iterates `out`'s set bits in ascending order, verifying each against
    /// `sched` (bits may be stale).
    pub(crate) fn take_row_into(&mut self, t: u64, out: &mut Vec<u64>) {
        debug_assert!(t >= self.base && t < self.base + WHEEL_CYCLES);
        let row = (t % WHEEL_CYCLES) as usize * self.n_words;
        out.clear();
        out.extend_from_slice(&self.rows[row..row + self.n_words]);
        self.rows[row..row + self.n_words].fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_deadlines_in_ascending_order() {
        let mut sched = vec![u64::MAX; 100];
        let mut wheel = DeadlineWheel::new(100, 0);
        for (idx, d) in [(3usize, 17u64), (70, 5), (99, 17)] {
            sched[idx] = d;
            wheel.note(idx, d);
        }
        assert_eq!(wheel.next_deadline(0, &sched), Some(5));
        sched[70] = u64::MAX;
        assert_eq!(wheel.next_deadline(6, &sched), Some(17));
        let mut row = Vec::new();
        wheel.take_row_into(17, &mut row);
        let idxs: Vec<usize> = (0..100)
            .filter(|&i| row[i / 64] & (1 << (i % 64)) != 0)
            .collect();
        assert_eq!(idxs, vec![3, 99]);
    }

    #[test]
    fn stale_bits_are_skipped_and_cleared() {
        let mut sched = vec![u64::MAX; 10];
        let mut wheel = DeadlineWheel::new(10, 0);
        sched[4] = 8;
        wheel.note(4, 8);
        // Deadline moves later; the old bit at 8 is now stale.
        sched[4] = 12;
        wheel.note(4, 12);
        assert_eq!(wheel.next_deadline(0, &sched), Some(12));
    }

    #[test]
    fn far_deadlines_survive_window_advances() {
        let mut sched = vec![u64::MAX; 10];
        let mut wheel = DeadlineWheel::new(10, 0);
        let d = WHEEL_CYCLES * 3 + 41;
        sched[7] = d;
        wheel.note(7, d);
        assert_eq!(wheel.next_deadline(0, &sched), Some(d));
        sched[7] = u64::MAX;
        assert_eq!(wheel.next_deadline(d, &sched), None);
    }

    #[test]
    fn empty_wheel_reports_none() {
        let sched = vec![u64::MAX; 10];
        let mut wheel = DeadlineWheel::new(10, 1000);
        assert_eq!(wheel.next_deadline(1000, &sched), None);
    }
}
