//! # gpu-sim — a warp-level GPU timing simulator
//!
//! This crate is the hardware substrate for the reproduction of
//! *"Pushing the Performance Envelope of DNN-based Recommendation Systems
//! Inference on GPUs"* (MICRO 2024). The paper's experiments run on real
//! NVIDIA A100 / H100 GPUs and are characterised with Nsight Compute; since
//! neither is available here, this crate models the microarchitectural
//! mechanisms the paper reasons about:
//!
//! * streaming multiprocessors (SMs) split into sub-partitions (SMSPs), each
//!   with a warp scheduler that issues at most one instruction per cycle,
//! * a scoreboard that tracks outstanding register writes so that dependent
//!   instructions stall ("long scoreboard stalls" for global/local loads),
//! * a register-file occupancy model (more registers per thread means fewer
//!   resident warps, i.e. less warp-level parallelism),
//! * per-SM L1 data caches, a shared L2 cache with Ampere-style *residency
//!   control* (a persisting carve-out with an evict-last policy), shared
//!   memory, and an HBM model with both latency and bandwidth,
//! * NCU-like statistics (issue-slot utilization, warp cycles per executed
//!   instruction, long scoreboard stalls, cache hit rates, DRAM bytes read,
//!   average HBM read bandwidth).
//!
//! Kernels are expressed as [`KernelProgram`]s: factories that create one
//! warp-level instruction generator ([`WarpProgram`]) per warp. The
//! `embedding-kernels` crate builds the paper's embedding-bag variants on top
//! of this interface.
//!
//! ## Example
//!
//! ```
//! use gpu_sim::{GpuConfig, Simulator, KernelLaunch};
//! use gpu_sim::programs::StreamKernel;
//!
//! let cfg = GpuConfig::a100().with_num_sms(4);
//! let sim = Simulator::new(cfg);
//! let launch = KernelLaunch::new("stream", 8, 128).with_regs_per_thread(32);
//! let kernel = StreamKernel::new(64);
//! let stats = sim.run(&launch, &kernel);
//! assert!(stats.elapsed_cycles > 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub(crate) mod contract;
pub mod engine;
pub mod isa;
pub mod launch;
pub mod mem;
pub mod occupancy;
pub mod programs;
pub mod sm;
pub mod stats;
pub mod warp;
pub(crate) mod wheel;

pub use config::{CacheConfig, DramConfig, GpuConfig};
pub use engine::{EngineMode, EngineTuning, Simulator, StreamPartition};
pub use isa::{Instruction, LineSet, MemSpace, PrefetchTarget, Reg};
pub use launch::{KernelLaunch, KernelProgram, WarpInfo, WarpProgram};
pub use occupancy::Occupancy;
pub use stats::KernelStats;
