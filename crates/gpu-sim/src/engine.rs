//! The simulation engine: dispatches thread blocks onto SMs, drives warp
//! issue, and assembles [`KernelStats`].
//!
//! Two observably identical execution loops are provided:
//!
//! * [`EngineMode::CycleAccurate`] — the reference loop. Every device cycle,
//!   every SM sub-partition is polled for a ready warp. Simple, obviously
//!   correct, and O(schedulers × resident warps) per simulated cycle even
//!   when every warp is stalled on a 200+-cycle DRAM access — the dominant
//!   state in the memory-bound embedding kernels this repository models.
//! * [`EngineMode::EventDriven`] — the default. Each sub-partition exposes
//!   the earliest cycle at which it can issue (`SmspState::next_issue_at`);
//!   the engine keeps those deadlines in an ordered event queue, jumps the
//!   clock straight to the next deadline, and touches only the
//!   sub-partitions that can actually issue there. Sub-partitions whose
//!   warps are all waiting on memory cost nothing until their responses
//!   arrive.
//!
//! The two modes produce **bit-identical** [`KernelStats`] (cycles, issue
//! and stall counters, cache and DRAM counters). The invariants that make
//! this hold, and that any future scheduler change must preserve:
//!
//! 1. A sub-partition issues at most one warp per cycle, and its next issue
//!    opportunity is fully determined by its own resident warps' `ready_at`
//!    cycles — so `max(min ready_at, last issue + 1)` is exactly the next
//!    cycle on which the cycle-accurate loop would pick a warp from it.
//! 2. Within one cycle, sub-partitions issue in `(sm, smsp)` order. The
//!    event queue is keyed `(cycle, sm, smsp)`, so draining it preserves the
//!    order of memory-system side effects (cache state, DRAM queueing).
//! 3. Warps created by a block dispatched at cycle `t` first become ready at
//!    `t + 1` or later, so a dispatch can never add work to the cycle that
//!    triggered it.

use crate::config::GpuConfig;
use crate::launch::{KernelLaunch, KernelProgram, WarpInfo};
use crate::mem::MemorySystem;
use crate::occupancy::Occupancy;
use crate::sm::SmState;
use crate::stats::{KernelStats, RawCounters};
use crate::warp::WarpContext;

/// Hard safety bound on simulated cycles per kernel; reaching it indicates a
/// livelocked program and aborts the simulation with a panic.
const MAX_CYCLES: u64 = 50_000_000_000;

/// Which execution loop [`Simulator`] uses. Both produce identical
/// statistics; see the module documentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineMode {
    /// Poll every SM sub-partition every cycle (reference loop).
    CycleAccurate,
    /// Jump the clock between per-sub-partition issue deadlines (default).
    #[default]
    EventDriven,
}

impl EngineMode {
    /// Stable machine-readable name (used in benchmark reports).
    pub fn name(&self) -> &'static str {
        match self {
            EngineMode::CycleAccurate => "cycle_accurate",
            EngineMode::EventDriven => "event_driven",
        }
    }
}

/// The GPU simulator: owns a device configuration and runs kernels on it.
#[derive(Debug, Clone)]
pub struct Simulator {
    cfg: GpuConfig,
    mode: EngineMode,
}

impl Simulator {
    /// Creates a simulator for the given device, using the event-driven
    /// engine.
    pub fn new(cfg: GpuConfig) -> Self {
        Simulator {
            cfg,
            mode: EngineMode::EventDriven,
        }
    }

    /// Returns a copy of this simulator using the given engine mode.
    pub fn with_mode(mut self, mode: EngineMode) -> Self {
        self.mode = mode;
        self
    }

    /// The engine mode this simulator runs.
    pub fn mode(&self) -> EngineMode {
        self.mode
    }

    /// The device configuration this simulator uses.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Runs a kernel on a cold memory hierarchy and returns its statistics.
    pub fn run(&self, launch: &KernelLaunch, program: &dyn KernelProgram) -> KernelStats {
        let mut mem = MemorySystem::new(&self.cfg);
        self.run_with_memory(launch, program, &mut mem, 0)
    }

    /// Runs a kernel against an existing memory system (so cache contents —
    /// including L2-pinned lines — persist across kernels), starting the
    /// device clock at `start_cycle`. The returned statistics are relative to
    /// this kernel only.
    pub fn run_with_memory(
        &self,
        launch: &KernelLaunch,
        program: &dyn KernelProgram,
        mem: &mut MemorySystem,
        start_cycle: u64,
    ) -> KernelStats {
        let cfg = &self.cfg;
        let occ = Occupancy::compute(cfg, launch);

        // Snapshot memory-system counters so this run reports deltas only.
        let (l1_acc0, l1_hit0) = mem.l1_totals();
        let l2_acc0 = mem.l2().stats.accesses;
        let l2_hit0 = mem.l2().stats.hits;
        let dram_read0 = mem.dram().bytes_read;
        let dram_write0 = mem.dram().bytes_written;

        let mut run = Run::new(cfg, launch, program, occ, start_cycle);
        let end_cycle = match self.mode {
            EngineMode::CycleAccurate => run.run_cycle_accurate(mem, start_cycle),
            EngineMode::EventDriven => run.run_event_driven(mem, start_cycle),
        };

        // Account residency for any warps that never retired (impossible in
        // practice but keeps the accounting robust).
        for w in run.warps.iter().filter(|w| !w.is_exited()) {
            run.counters.resident_warp_cycles += end_cycle.saturating_sub(w.spawn_cycle);
        }

        let mut stats = KernelStats::empty(&launch.name, cfg);
        stats.set_occupancy(&occ);
        stats.elapsed_cycles = end_cycle.saturating_sub(start_cycle);
        stats.counters = run.counters;
        let (l1_acc, l1_hit) = mem.l1_totals();
        stats.l1_accesses = l1_acc - l1_acc0;
        stats.l1_hits = l1_hit - l1_hit0;
        stats.l2_accesses = mem.l2().stats.accesses - l2_acc0;
        stats.l2_hits = mem.l2().stats.hits - l2_hit0;
        stats.dram_bytes_read = mem.dram().bytes_read - dram_read0;
        stats.dram_bytes_written = mem.dram().bytes_written - dram_write0;
        stats
    }
}

/// Mutable state of one kernel execution, shared by both engine loops.
struct Run<'a> {
    cfg: &'a GpuConfig,
    launch: &'a KernelLaunch,
    program: &'a dyn KernelProgram,
    occ: Occupancy,
    counters: RawCounters,
    warps: Vec<WarpContext>,
    sms: Vec<SmState>,
    /// Which (SM, block) each warp belongs to.
    warp_home: Vec<(usize, u32)>,
    next_block: u32,
    total_blocks: u32,
    warps_per_block: u32,
    active_warps: u64,
    /// `(smsp index, warp id)` of the warps placed by the most recent
    /// [`Run::dispatch_block`] call (reused across dispatches to avoid
    /// per-block allocation).
    placements: Vec<(usize, usize)>,
}

impl<'a> Run<'a> {
    fn new(
        cfg: &'a GpuConfig,
        launch: &'a KernelLaunch,
        program: &'a dyn KernelProgram,
        occ: Occupancy,
        start_cycle: u64,
    ) -> Self {
        let total_blocks = launch.grid_blocks;
        let warps_per_block = occ.warps_per_block;
        // Every block of the grid is eventually dispatched and its warps stay
        // in the arena until the kernel completes, so the final length is
        // known exactly up front.
        let total_warps = total_blocks as usize * warps_per_block as usize;
        let mut run = Run {
            cfg,
            launch,
            program,
            occ,
            counters: RawCounters::default(),
            warps: Vec::with_capacity(total_warps),
            sms: (0..cfg.num_sms)
                .map(|_| SmState::new(cfg.smsps_per_sm))
                .collect(),
            warp_home: Vec::with_capacity(total_warps),
            next_block: 0,
            total_blocks,
            warps_per_block,
            active_warps: 0,
            placements: Vec::with_capacity(warps_per_block as usize),
        };

        // Initial wave: fill every SM up to its occupancy limit, round-robin
        // over SMs the way the GigaThread engine distributes blocks.
        'outer: for _slot in 0..run.occ.blocks_per_sm {
            for sm_id in 0..cfg.num_sms {
                if run.next_block >= run.total_blocks {
                    break 'outer;
                }
                let block = run.next_block;
                run.next_block += 1;
                run.dispatch_block(sm_id, block, start_cycle);
            }
        }

        run.active_warps = run.warps.iter().filter(|w| !w.is_exited()).count() as u64;
        // Warps whose programs are empty retire instantly; account for their
        // blocks so replacement blocks can still be dispatched.
        for wid in 0..run.warps.len() {
            if run.warps[wid].is_exited() {
                let (sm_id, block_id) = run.warp_home[wid];
                let _ = run.sms[sm_id].warp_retired(block_id);
            }
        }
        run
    }

    /// Dispatches one thread block onto `sm_id` at `cycle`, recording the
    /// placements of its warps in [`Run::placements`].
    fn dispatch_block(&mut self, sm_id: usize, block_id: u32, cycle: u64) {
        self.sms[sm_id].begin_block(block_id, self.warps_per_block);
        self.counters.blocks_launched += 1;
        self.placements.clear();
        for w in 0..self.warps_per_block {
            let info = WarpInfo {
                block_id,
                warp_in_block: w,
                warps_per_block: self.warps_per_block,
                threads_per_block: self.launch.threads_per_block,
                global_warp_id: block_id as u64 * self.warps_per_block as u64 + w as u64,
                sm_id: sm_id as u32,
            };
            let ctx = WarpContext::new(info, self.program.warp_program(info), cycle);
            self.counters.warps_launched += 1;
            let ready = if ctx.is_exited() {
                u64::MAX
            } else {
                ctx.ready_at()
            };
            let warp_id = self.warps.len();
            self.warps.push(ctx);
            self.warp_home.push((sm_id, block_id));
            let smsp = self.sms[sm_id].place_warp(warp_id, ready);
            self.placements.push((smsp, warp_id));
        }
    }

    /// Handles the degenerate "all resident warps retired but blocks remain"
    /// state (possible with empty warp programs): refills every SM at
    /// `cycle`. Returns `true` if the whole launch turned out to be empty
    /// and the engine should stop.
    fn degenerate_refill(&mut self, cycle: u64) -> bool {
        for sm_id in 0..self.cfg.num_sms {
            while self.sms[sm_id].resident_blocks < self.occ.blocks_per_sm
                && self.next_block < self.total_blocks
            {
                let block = self.next_block;
                self.next_block += 1;
                self.dispatch_block(sm_id, block, cycle);
            }
        }
        let newly_active = self.warps.iter().filter(|w| !w.is_exited()).count() as u64;
        if newly_active == 0 {
            // Every program in this launch is empty.
            for wid in 0..self.warps.len() {
                if self.warps[wid].is_exited() {
                    let (sm_id, block_id) = self.warp_home[wid];
                    let _ = self.sms[sm_id].warp_retired(block_id);
                }
            }
            return true;
        }
        self.active_warps = newly_active;
        false
    }

    /// Issues warp `wid` (already selected by sub-partition `(sm, smsp)`) at
    /// cycle `now`, handling retirement, block completion and replacement
    /// dispatch. Returns `true` if the warp retired.
    fn issue_selected(
        &mut self,
        wid: usize,
        sm: usize,
        smsp: usize,
        now: u64,
        mem: &mut MemorySystem,
    ) -> bool {
        let retired = self.warps[wid].issue(now, mem, self.cfg, &mut self.counters);
        if !retired {
            let ready = self.warps[wid].ready_at();
            self.sms[sm].smsps[smsp].note_ready(wid, ready);
            return false;
        }
        self.active_warps -= 1;
        self.counters.resident_warp_cycles += now + 1 - self.warps[wid].spawn_cycle;
        let (home_sm, block_id) = self.warp_home[wid];
        let block_done = self.sms[home_sm].warp_retired(block_id);
        self.sms[sm].smsps[smsp].prune_exited(&self.warps);
        if block_done && self.next_block < self.total_blocks {
            let block = self.next_block;
            self.next_block += 1;
            self.dispatch_block(home_sm, block, now + 1);
            self.active_warps += self
                .placements
                .iter()
                .filter(|&&(_, w)| !self.warps[w].is_exited())
                .count() as u64;
        } else {
            self.placements.clear();
        }
        true
    }

    /// The reference loop: poll every sub-partition every cycle, jumping the
    /// clock only when the whole device is stalled.
    fn run_cycle_accurate(&mut self, mem: &mut MemorySystem, start_cycle: u64) -> u64 {
        let mut cycle = start_cycle;
        while self.active_warps > 0 || self.next_block < self.total_blocks {
            if self.active_warps == 0 && self.next_block < self.total_blocks {
                // All resident warps retired but blocks remain (can happen
                // with degenerate empty programs).
                if self.degenerate_refill(cycle) {
                    break;
                }
            }

            let mut issued_any = false;
            for sm_id in 0..self.cfg.num_sms {
                for smsp_idx in 0..self.cfg.smsps_per_sm {
                    let pick = self.sms[sm_id].smsps[smsp_idx].select_ready(cycle);
                    let Some(wid) = pick else { continue };
                    issued_any = true;
                    self.issue_selected(wid, sm_id, smsp_idx, cycle, mem);
                }
            }

            if issued_any {
                cycle += 1;
            } else {
                // Nothing could issue: fast-forward to the earliest cycle at
                // which any warp becomes ready.
                let next_ready = self
                    .sms
                    .iter()
                    .flat_map(|sm| sm.smsps.iter())
                    .filter_map(|smsp| smsp.min_ready_at())
                    .min();
                match next_ready {
                    Some(c) if c > cycle => cycle = c,
                    _ => cycle += 1,
                }
            }

            assert!(
                cycle - start_cycle < MAX_CYCLES,
                "kernel '{}' exceeded {MAX_CYCLES} simulated cycles; the program is livelocked",
                self.launch.name
            );
        }
        cycle
    }

    /// The event-driven loop: keep every sub-partition's next issue deadline
    /// in a flat per-sub-partition array and jump the clock straight to the
    /// smallest deadline, touching only the sub-partitions that can issue
    /// there. A linear min/match scan over a few hundred contiguous `u64`s
    /// beats an ordered queue at this size and trivially preserves the
    /// cycle-accurate loop's `(sm, smsp)` issue order. See the module
    /// documentation for the invariants that keep this bit-exact with
    /// [`Run::run_cycle_accurate`].
    fn run_event_driven(&mut self, mem: &mut MemorySystem, start_cycle: u64) -> u64 {
        let smsps_per_sm = self.cfg.smsps_per_sm;
        let n = self.cfg.num_sms * smsps_per_sm;
        // Next issue deadline per sub-partition (u64::MAX = no active warps).
        let mut sched: Vec<u64> = vec![u64::MAX; n];

        let mut cycle = start_cycle;
        self.reschedule_all(&mut sched, cycle);

        loop {
            if self.active_warps == 0 && self.next_block < self.total_blocks {
                if self.degenerate_refill(cycle) {
                    break;
                }
                self.reschedule_all(&mut sched, cycle);
            }
            if self.active_warps == 0 {
                break;
            }
            let t = sched.iter().copied().min().unwrap_or(u64::MAX);
            if t == u64::MAX {
                debug_assert!(false, "active warps but no scheduled deadlines");
                break;
            }
            if t > cycle {
                // The clock is about to jump past `t - cycle` stalled
                // cycles; let the memory hierarchy retire the in-flight
                // fills whose reported deadlines have passed.
                mem.retire_completed_fills(t);
            }

            // Drain every sub-partition scheduled at `t`, in (sm, smsp)
            // order. Dispatches triggered here only create deadlines at
            // `t + 1` or later (invariant 3), so the batch is stable.
            for idx in 0..n {
                if sched[idx] != t {
                    continue;
                }
                let (sm, smsp) = (idx / smsps_per_sm, idx % smsps_per_sm);
                sched[idx] = u64::MAX;

                if let Some(wid) = self.sms[sm].smsps[smsp].select_ready(t) {
                    let retired = self.issue_selected(wid, sm, smsp, t, mem);
                    if retired && !self.placements.is_empty() {
                        // A replacement block landed on this warp's SM: give
                        // its sub-partitions deadlines for the new warps.
                        let (home_sm, _) = self.warp_home[wid];
                        for i in 0..self.placements.len() {
                            let (psmsp, pwid) = self.placements[i];
                            if self.warps[pwid].is_exited() {
                                continue;
                            }
                            let pidx = home_sm * smsps_per_sm + psmsp;
                            let ready = self.warps[pwid].ready_at();
                            if ready < sched[pidx] {
                                sched[pidx] = ready;
                            }
                        }
                    }
                }

                // One issue per sub-partition per cycle: its next deadline
                // is clamped to t + 1 even if another warp is already ready.
                if let Some(next) = self.sms[sm].smsps[smsp].next_issue_at(t + 1) {
                    sched[idx] = next;
                }
            }

            cycle = t + 1;
            assert!(
                cycle - start_cycle < MAX_CYCLES,
                "kernel '{}' exceeded {MAX_CYCLES} simulated cycles; the program is livelocked",
                self.launch.name
            );
        }
        cycle
    }

    /// Recomputes every sub-partition's issue deadline from scratch (used at
    /// startup and after a degenerate refill; the hot path maintains
    /// deadlines incrementally).
    fn reschedule_all(&self, sched: &mut [u64], floor: u64) {
        for sm in 0..self.cfg.num_sms {
            for smsp in 0..self.cfg.smsps_per_sm {
                sched[sm * self.cfg.smsps_per_sm + smsp] = self.sms[sm].smsps[smsp]
                    .next_issue_at(floor)
                    .unwrap_or(u64::MAX);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::{PointerChaseKernel, StreamKernel};

    #[test]
    fn stream_kernel_completes_and_counts_instructions() {
        let cfg = GpuConfig::test_small();
        let sim = Simulator::new(cfg);
        let launch = KernelLaunch::new("stream", 8, 128).with_regs_per_thread(32);
        let kernel = StreamKernel::new(16);
        let stats = sim.run(&launch, &kernel);
        // 8 blocks * 4 warps * 16 iterations * 2 insts (load + add).
        assert_eq!(stats.counters.load_insts, 8 * 4 * 16);
        assert_eq!(stats.counters.insts_issued, 8 * 4 * 16 * 2);
        assert!(stats.elapsed_cycles > 0);
        assert_eq!(stats.counters.warps_launched, 32);
        assert_eq!(stats.counters.blocks_launched, 8);
    }

    #[test]
    fn latency_bound_chain_is_slower_than_streaming() {
        let cfg = GpuConfig::test_small();
        let sim = Simulator::new(cfg);
        let launch = KernelLaunch::new("k", 8, 128).with_regs_per_thread(32);
        let stream = sim.run(&launch, &StreamKernel::new(32));
        let chase = sim.run(&launch, &PointerChaseKernel::new(32, 1 << 26));
        assert!(
            chase.elapsed_cycles > stream.elapsed_cycles,
            "dependent chain ({}) should be slower than independent streaming ({})",
            chase.elapsed_cycles,
            stream.elapsed_cycles
        );
        assert!(chase.long_scoreboard_per_inst() > stream.long_scoreboard_per_inst());
    }

    #[test]
    fn more_blocks_than_capacity_are_drained() {
        let cfg = GpuConfig::test_small().with_num_sms(1);
        let sim = Simulator::new(cfg);
        // 1 SM, many blocks: blocks must be dispatched in waves.
        let launch = KernelLaunch::new("waves", 64, 256).with_regs_per_thread(64);
        let stats = sim.run(&launch, &StreamKernel::new(4));
        assert_eq!(stats.counters.blocks_launched, 64);
        assert_eq!(stats.counters.warps_launched, 64 * 8);
    }

    #[test]
    fn run_with_memory_reports_deltas_and_preserves_cache_state() {
        let cfg = GpuConfig::test_small();
        let sim = Simulator::new(cfg.clone());
        let launch = KernelLaunch::new("stream", 4, 128).with_regs_per_thread(32);
        let kernel = StreamKernel::new(16);
        let mut mem = MemorySystem::new(&cfg);
        let first = sim.run_with_memory(&launch, &kernel, &mut mem, 0);
        let second = sim.run_with_memory(&launch, &kernel, &mut mem, first.elapsed_cycles);
        // The second pass re-reads the same lines, so it should hit in cache
        // and read (almost) nothing new from DRAM.
        assert!(first.dram_bytes_read > 0);
        assert!(second.dram_bytes_read < first.dram_bytes_read / 4);
        assert!(second.elapsed_cycles < first.elapsed_cycles);
    }

    #[test]
    fn higher_occupancy_hides_latency_better() {
        let cfg = GpuConfig::test_small();
        let sim = Simulator::new(cfg);
        let kernel = PointerChaseKernel::new(64, 1 << 27);
        // Same total work, but one launch is register-starved (1 block/SM).
        let low = KernelLaunch::new("low-occ", 16, 256).with_regs_per_thread(160);
        let high = KernelLaunch::new("high-occ", 16, 256).with_regs_per_thread(32);
        let s_low = sim.run(&low, &kernel);
        let s_high = sim.run(&high, &kernel);
        assert!(s_low.theoretical_warps_per_sm < s_high.theoretical_warps_per_sm);
        assert!(
            s_high.elapsed_cycles < s_low.elapsed_cycles,
            "more resident warps should hide more latency ({} vs {})",
            s_high.elapsed_cycles,
            s_low.elapsed_cycles
        );
    }

    #[test]
    fn stats_issue_utilization_is_bounded() {
        let cfg = GpuConfig::test_small();
        let sim = Simulator::new(cfg);
        let launch = KernelLaunch::new("stream", 32, 256).with_regs_per_thread(32);
        let stats = sim.run(&launch, &StreamKernel::new(64));
        let util = stats.issued_per_scheduler_per_cycle();
        assert!(util > 0.0 && util <= 1.0, "utilization {util} out of range");
    }

    #[test]
    fn engine_modes_agree_on_synthetic_kernels() {
        let cfg = GpuConfig::test_small();
        let reference = Simulator::new(cfg.clone()).with_mode(EngineMode::CycleAccurate);
        let event = Simulator::new(cfg);
        assert_eq!(event.mode(), EngineMode::EventDriven);
        let launch = KernelLaunch::new("agree", 8, 128).with_regs_per_thread(32);
        for (name, kernel) in [
            ("stream", &StreamKernel::new(24) as &dyn KernelProgram),
            ("chase", &PointerChaseKernel::new(24, 1 << 22)),
        ] {
            let a = reference.run(&launch, kernel);
            let b = event.run(&launch, kernel);
            assert_eq!(a, b, "engine modes diverged on '{name}'");
        }
    }

    #[test]
    fn engine_modes_agree_across_chained_kernels() {
        let cfg = GpuConfig::test_small();
        let reference = Simulator::new(cfg.clone()).with_mode(EngineMode::CycleAccurate);
        let event = Simulator::new(cfg.clone());
        let launch = KernelLaunch::new("chained", 4, 128).with_regs_per_thread(32);
        let kernel = StreamKernel::new(16);

        let mut mem_a = MemorySystem::new(&cfg);
        let a1 = reference.run_with_memory(&launch, &kernel, &mut mem_a, 0);
        let a2 = reference.run_with_memory(&launch, &kernel, &mut mem_a, a1.elapsed_cycles);

        let mut mem_b = MemorySystem::new(&cfg);
        let b1 = event.run_with_memory(&launch, &kernel, &mut mem_b, 0);
        let b2 = event.run_with_memory(&launch, &kernel, &mut mem_b, b1.elapsed_cycles);

        assert_eq!(a1, b1);
        assert_eq!(a2, b2);
    }
}
