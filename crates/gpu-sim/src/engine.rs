//! The simulation engine: dispatches thread blocks onto SMs, drives warp
//! issue, and assembles [`KernelStats`].
//!
//! Two observably identical execution loops are provided:
//!
//! * [`EngineMode::CycleAccurate`] — the reference loop. Every device cycle,
//!   every SM sub-partition is polled for a ready warp. Simple, obviously
//!   correct, and kept deliberately free of the event-driven loop's
//!   machinery so it stays a trustworthy oracle.
//! * [`EngineMode::EventDriven`] — the default. Each sub-partition exposes
//!   the earliest cycle at which it can issue; the engine keeps those
//!   deadlines in a flat per-sub-partition array (`sched`) indexed by a
//!   bitset calendar wheel (`DeadlineWheel` in `wheel.rs`), jumps the
//!   clock straight to the next deadline, and touches only the
//!   sub-partitions that can actually issue there. Sub-partitions whose
//!   warps are all waiting on memory cost nothing until their responses
//!   arrive, and finding the next deadline costs near-constant time per
//!   clock jump instead of a scan over every sub-partition.
//!
//! # Hot-state layout
//!
//! All per-issue warp state lives in the struct-of-arrays [`WarpSlots`]
//! arena (see `warp.rs`): each sub-partition owns a fixed contiguous slot
//! range, so scheduler scans and issue bookkeeping touch dense, reused
//! cache lines instead of striding across boxed per-warp objects. The
//! cold tail (program generator, identity, retirement flags) stays in
//! [`WarpContext`]. All of it is allocated once per [`Simulator`] in an
//! `EngineWorkspace` that is recycled across runs, so repeated cells
//! skip re-allocation entirely.
//!
//! # Bucketed deadline queue
//!
//! Deadlines live in two places that must agree: `sched[idx]` holds each
//! sub-partition's authoritative next-issue cycle, and the
//! `DeadlineWheel` (`wheel.rs`) is a bitset calendar over the next 1024
//! cycles (plus a `far` overflow bucket) used only to *find* the next
//! deadline. The wheel's bits may be stale — a re-armed sub-partition
//! leaves its old bit behind — but never missing: every `sched[idx]` value
//! has a bit at its row (or sits in `far`). `next_deadline` clears stale
//! bits as it scans and drains whole rows at once, so a drained row
//! contains exactly the sub-partitions whose `sched` equals that cycle,
//! in ascending flat-index order (invariant 2 below for free). See
//! `wheel.rs` for the full invariant list.
//!
//! # Bit-exactness invariants
//!
//! The two modes produce **bit-identical** [`KernelStats`] (cycles, issue
//! and stall counters, cache and DRAM counters). The invariants that make
//! this hold, and that any future scheduler change must preserve:
//!
//! 1. A sub-partition issues at most one warp per cycle, and its next issue
//!    opportunity is fully determined by its own resident warps' `ready_at`
//!    cycles — so `max(min ready_at, last issue + 1)` is exactly the next
//!    cycle on which the cycle-accurate loop would pick a warp from it.
//! 2. Within one cycle, sub-partitions issue in `(sm, smsp)` order. Wheel
//!    rows are scanned bit-ascending (= flat-index-ascending), so draining
//!    a deadline row preserves the order of memory-system side effects
//!    (cache state, DRAM queueing).
//! 3. Warps created by a block dispatched at cycle `t` first become ready at
//!    `t + 1` or later, so a dispatch can never add work to the cycle that
//!    triggered it.
//!
//! # Sharded issue and the commit-point rule
//!
//! Invariant 3 plus the purity of [`Schedulers::select`] give the
//! event-driven loop a parallel phase: selection at cycle `t` for a
//! sub-partition depends only on that sub-partition's own slots and greedy
//! pointer, and nothing another sub-partition issues at `t` can change it
//! (issues free only the issuing slot; replacement dispatches create warps
//! ready at `t + 1`). The loop therefore
//!
//! 1. collects every sub-partition scheduled at `t` (ascending flat order),
//! 2. computes all of their selections — optionally sharded across
//!    [`EngineTuning::sm_workers`] threads, each writing a disjoint span of
//!    the pick buffer, with **no shared mutable state**, and
//! 3. commits serially, in ascending `(sm, smsp)` order, at a single
//!    serialization point: every memory-system side effect, counter update
//!    and replacement dispatch happens here, in exactly the order the
//!    cycle-accurate loop would produce.
//!
//! Step 3 is the **commit-point rule**: anything that mutates shared state
//! must run inside the serial commit in ascending `(sm, smsp)` order. That
//! makes [`KernelStats`] byte-identical regardless of `sm_workers` — the
//! thread count can only change wall-clock time, never results.
//!
//! With `sm_workers <= 1` the loop takes a fused serial path instead:
//! one pass over each drained sub-partition both selects the warp and
//! computes the minimum `ready_at` of the remaining slots
//! ([`WarpSlots::select_with_min`]), so re-arming needs no second scan.
//! Both paths commit through the same `commit_candidate`, so they are
//! trivially bit-identical.
//!
//! # Concurrent kernel streams
//!
//! [`Simulator::run_concurrent`] runs K kernels as co-resident streams on
//! one device, sharing the memory hierarchy (and therefore contending for
//! L2 capacity and DRAM bandwidth). Two residency policies exist
//! ([`StreamPartition`]):
//!
//! * **SM-partitioned** (MIG-style): each stream owns a contiguous,
//!   disjoint slice of the device's SMs. L1 caches are private per stream
//!   because warps route memory through their home SM's L1.
//! * **Interleaved** (MPS-style): every stream dispatches blocks onto every
//!   SM and their warps compete for the same sub-partition issue slots;
//!   each stream's residency is capped at `max(1, blocks_per_sm / K)`
//!   blocks per SM so K streams roughly share the occupancy budget.
//!
//! The stream dimension is a restructuring of launch/occupancy/statistics
//! bookkeeping, not a new engine: both execution loops are stream-agnostic
//! and preserve invariants 1–3 unchanged, so the engine modes stay
//! bit-identical at every K. A single-stream `run_concurrent` call executes
//! the exact issue/dispatch sequence of [`Simulator::run_with_memory`]
//! (which now delegates to it), keeping K=1 bit-exact with the historical
//! single-stream path.
//!
//! Per-stream statistics: issue/stall counters, occupancy and elapsed
//! cycles are exact per stream (a stream's `elapsed_cycles` run from the
//! shared `start_cycle` to the retirement of its last warp). Cache and DRAM
//! counters are device-wide deltas over that same window — with K > 1 the
//! windows overlap, so shared-level counters describe the device while the
//! stream ran, not the stream's own traffic.

use std::sync::Mutex;

use crate::config::GpuConfig;
use crate::contract::EngineContract;
use crate::launch::{KernelLaunch, KernelProgram, WarpInfo};
use crate::mem::MemorySystem;
use crate::occupancy::Occupancy;
use crate::sm::{Schedulers, SmState};
use crate::stats::{KernelStats, RawCounters};
use crate::warp::{WarpContext, WarpSlots};
use crate::wheel::DeadlineWheel;

/// Hard safety bound on simulated cycles per kernel; reaching it indicates a
/// livelocked program and aborts the simulation with a panic.
const MAX_CYCLES: u64 = 50_000_000_000;

/// Which execution loop [`Simulator`] uses. Both produce identical
/// statistics; see the module documentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineMode {
    /// Poll every SM sub-partition every cycle (reference loop).
    CycleAccurate,
    /// Jump the clock between per-sub-partition issue deadlines (default).
    #[default]
    EventDriven,
}

impl EngineMode {
    /// Stable machine-readable name (used in benchmark reports).
    pub fn name(&self) -> &'static str {
        match self {
            EngineMode::CycleAccurate => "cycle_accurate",
            EngineMode::EventDriven => "event_driven",
        }
    }
}

/// Performance knobs that cannot affect simulation results.
///
/// Every field of this struct is constrained by the engine's commit-point
/// rule (see the module documentation): tuning may change how fast the
/// simulator runs, never what it computes. [`KernelStats`] are byte-identical
/// across all tunings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineTuning {
    /// Worker threads for the event-driven loop's parallel selection phase.
    /// `1` (the default) keeps the engine single-threaded; `0` uses one
    /// worker per available core. Leave at `1` when the caller already
    /// parallelizes over simulations (e.g. a campaign running cells on a
    /// thread pool) — nesting multiplies thread counts.
    pub sm_workers: usize,
}

impl Default for EngineTuning {
    fn default() -> Self {
        EngineTuning { sm_workers: 1 }
    }
}

/// How K co-resident kernel streams share one device in
/// [`Simulator::run_concurrent`]; see the module documentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StreamPartition {
    /// Each stream owns a disjoint, contiguous subset of the SMs
    /// (MIG-style spatial partitioning).
    #[default]
    SmPartitioned,
    /// All streams share every SM and compete for issue slots
    /// (MPS-style temporal sharing).
    Interleaved,
}

impl StreamPartition {
    /// Every partition policy, for sweeps.
    pub const ALL: [StreamPartition; 2] =
        [StreamPartition::SmPartitioned, StreamPartition::Interleaved];

    /// Stable machine-readable name (used in fingerprints and reports).
    pub fn name(&self) -> &'static str {
        match self {
            StreamPartition::SmPartitioned => "sm_partitioned",
            StreamPartition::Interleaved => "interleaved",
        }
    }

    /// Parses a name produced by [`StreamPartition::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.name() == name)
    }
}

impl std::fmt::Display for StreamPartition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The GPU simulator: owns a device configuration and runs kernels on it.
pub struct Simulator {
    cfg: GpuConfig,
    mode: EngineMode,
    tuning: EngineTuning,
    /// Recycled engine state: arenas, queues and scratch buffers sized by
    /// the previous run, handed back at run end so repeated cells skip
    /// re-allocation. `None` until the first run (or while a run borrows
    /// it; a concurrent run on the same simulator just starts fresh).
    ws: Mutex<Option<Box<EngineWorkspace>>>,
    /// Test-only fault injection: deliberately issue a second warp from the
    /// same sub-partition in the same cycle, to prove the contract checker
    /// trips (see `contract_checker_trips_on_double_issue`).
    #[cfg(all(test, feature = "contract-checks"))]
    double_issue_sabotage: bool,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("cfg", &self.cfg)
            .field("mode", &self.mode)
            .field("tuning", &self.tuning)
            .finish()
    }
}

impl Clone for Simulator {
    fn clone(&self) -> Self {
        Simulator {
            cfg: self.cfg.clone(),
            mode: self.mode,
            tuning: self.tuning,
            // The workspace is a cache, not state: clones start cold.
            ws: Mutex::new(None),
            #[cfg(all(test, feature = "contract-checks"))]
            double_issue_sabotage: self.double_issue_sabotage,
        }
    }
}

impl Simulator {
    /// Creates a simulator for the given device, using the event-driven
    /// engine.
    pub fn new(cfg: GpuConfig) -> Self {
        Simulator {
            cfg,
            mode: EngineMode::EventDriven,
            tuning: EngineTuning::default(),
            ws: Mutex::new(None),
            #[cfg(all(test, feature = "contract-checks"))]
            double_issue_sabotage: false,
        }
    }

    /// Enables the deliberate one-issue-per-cycle violation used to test
    /// the contract checker.
    #[cfg(all(test, feature = "contract-checks"))]
    fn with_double_issue_sabotage(mut self) -> Self {
        self.double_issue_sabotage = true;
        self
    }

    /// Returns a copy of this simulator using the given engine mode.
    pub fn with_mode(mut self, mode: EngineMode) -> Self {
        self.mode = mode;
        self
    }

    /// Returns a copy of this simulator using the given tuning. Tuning can
    /// only change wall-clock speed, never results (see [`EngineTuning`]).
    pub fn with_tuning(mut self, tuning: EngineTuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Returns a copy of this simulator using `workers` threads for the
    /// event-driven selection phase (see [`EngineTuning::sm_workers`]).
    pub fn with_sm_workers(self, workers: usize) -> Self {
        self.with_tuning(EngineTuning {
            sm_workers: workers,
        })
    }

    /// The engine mode this simulator runs.
    pub fn mode(&self) -> EngineMode {
        self.mode
    }

    /// The device configuration this simulator uses.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// The performance tuning this simulator runs with.
    pub fn tuning(&self) -> EngineTuning {
        self.tuning
    }

    /// Borrows the recycled workspace (fresh if this is the first run or
    /// another run on this simulator currently holds it).
    fn take_workspace(&self) -> Box<EngineWorkspace> {
        self.ws
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .take()
            .unwrap_or_default()
    }

    /// Returns the workspace for the next run to recycle.
    fn put_workspace(&self, ws: Box<EngineWorkspace>) {
        *self.ws.lock().unwrap_or_else(|p| p.into_inner()) = Some(ws);
    }

    /// Runs a kernel on a cold memory hierarchy and returns its statistics.
    pub fn run(&self, launch: &KernelLaunch, program: &dyn KernelProgram) -> KernelStats {
        let mut mem = MemorySystem::new(&self.cfg);
        self.run_with_memory(launch, program, &mut mem, 0)
    }

    /// Runs a kernel against an existing memory system (so cache contents —
    /// including L2-pinned lines — persist across kernels), starting the
    /// device clock at `start_cycle`. The returned statistics are relative to
    /// this kernel only.
    pub fn run_with_memory(
        &self,
        launch: &KernelLaunch,
        program: &dyn KernelProgram,
        mem: &mut MemorySystem,
        start_cycle: u64,
    ) -> KernelStats {
        self.run_concurrent(
            &[(launch, program)],
            StreamPartition::SmPartitioned,
            mem,
            start_cycle,
        )
        .pop()
        .expect("one stream produces one statistics record")
    }

    /// Runs K kernels as concurrently resident streams against one memory
    /// system, returning one [`KernelStats`] per stream (in input order).
    ///
    /// The streams share L2 and DRAM; `partition` decides whether they split
    /// the SMs (MIG-style) or interleave on all of them (MPS-style). With a
    /// single kernel this is exactly [`Simulator::run_with_memory`] under
    /// either policy. See the module documentation for the statistics
    /// semantics at K > 1.
    ///
    /// # Panics
    /// Panics if no kernel is given, if more streams are requested than
    /// [`GpuConfig::max_concurrent_streams`], or (SM-partitioned) if there
    /// are more streams than SMs.
    pub fn run_concurrent(
        &self,
        kernels: &[(&KernelLaunch, &dyn KernelProgram)],
        partition: StreamPartition,
        mem: &mut MemorySystem,
        start_cycle: u64,
    ) -> Vec<KernelStats> {
        assert!(
            !kernels.is_empty(),
            "run_concurrent needs at least one kernel stream"
        );
        assert!(
            kernels.len() <= self.cfg.max_concurrent_streams,
            "device '{}' supports at most {} concurrent streams (asked for {})",
            self.cfg.name,
            self.cfg.max_concurrent_streams,
            kernels.len()
        );
        if partition == StreamPartition::SmPartitioned {
            assert!(
                kernels.len() <= self.cfg.num_sms,
                "cannot SM-partition {} streams across {} SMs",
                kernels.len(),
                self.cfg.num_sms
            );
        }

        let workers = match self.tuning.sm_workers {
            0 => std::thread::available_parallelism().map_or(1, |p| p.get()),
            w => w,
        };
        let start_snap = MemSnapshot::take(mem);
        let mut ws = self.take_workspace();
        let mut run = Run::new(&self.cfg, kernels, partition, start_cycle, &mut ws, workers);
        #[cfg(all(test, feature = "contract-checks"))]
        {
            run.double_issue = self.double_issue_sabotage;
        }
        let end_cycle = match self.mode {
            EngineMode::CycleAccurate => run.run_cycle_accurate(mem, start_cycle),
            EngineMode::EventDriven => run.run_event_driven(mem, start_cycle),
        };

        // Account residency for any warps that never retired (impossible in
        // practice but keeps the accounting robust).
        for wid in 0..run.ws.warps.len() {
            if !run.ws.warps[wid].is_exited() {
                let (_, stream, _) = run.ws.warp_home[wid];
                run.streams[stream].counters.resident_warp_cycles +=
                    end_cycle.saturating_sub(run.ws.warps[wid].spawn_cycle);
            }
        }

        let final_snap = MemSnapshot::take(mem);
        let stats = run
            .streams
            .iter()
            .map(|s| {
                let (end, snap) = s.end.unwrap_or((end_cycle, final_snap));
                let mut stats = KernelStats::empty(&s.launch.name, &s.view);
                stats.set_occupancy(&s.occ);
                stats.elapsed_cycles = end.saturating_sub(start_cycle);
                stats.counters = s.counters;
                stats.l1_accesses = snap.l1_accesses - start_snap.l1_accesses;
                stats.l1_hits = snap.l1_hits - start_snap.l1_hits;
                stats.l2_accesses = snap.l2_accesses - start_snap.l2_accesses;
                stats.l2_hits = snap.l2_hits - start_snap.l2_hits;
                stats.dram_bytes_read = snap.dram_bytes_read - start_snap.dram_bytes_read;
                stats.dram_bytes_written = snap.dram_bytes_written - start_snap.dram_bytes_written;
                stats
            })
            .collect();
        drop(run);
        self.put_workspace(ws);
        stats
    }
}

/// A snapshot of the memory hierarchy's cumulative counters, used to report
/// per-window deltas.
#[derive(Debug, Clone, Copy)]
struct MemSnapshot {
    l1_accesses: u64,
    l1_hits: u64,
    l2_accesses: u64,
    l2_hits: u64,
    dram_bytes_read: u64,
    dram_bytes_written: u64,
}

impl MemSnapshot {
    fn take(mem: &MemorySystem) -> Self {
        let (l1_accesses, l1_hits) = mem.l1_totals();
        MemSnapshot {
            l1_accesses,
            l1_hits,
            l2_accesses: mem.l2().stats.accesses,
            l2_hits: mem.l2().stats.hits,
            dram_bytes_read: mem.dram().bytes_read,
            dram_bytes_written: mem.dram().bytes_written,
        }
    }
}

/// Packs a stream index and the stream's own block id into the opaque block
/// key [`SmState`] tracks, so co-resident streams never collide.
fn block_key(stream: usize, block: u32) -> u64 {
    ((stream as u64) << 32) | block as u64
}

/// Recycled engine state: every allocation whose size is bound by the
/// launch (warp arenas, slot arrays, deadline queues, scratch buffers).
/// Lives on the [`Simulator`] between runs so repeated cells re-use — and
/// keep hot — the same memory.
#[derive(Default)]
struct EngineWorkspace {
    /// Cold per-warp state, indexed by arena warp id.
    warps: Vec<WarpContext>,
    /// Which (SM, stream, block) each warp belongs to.
    warp_home: Vec<(usize, usize, u32)>,
    /// Struct-of-arrays hot state of every resident warp.
    slots: WarpSlots,
    /// Greedy pointers of every sub-partition.
    sched_state: Schedulers,
    /// Per-SM block bookkeeping and placement cursors.
    sms: Vec<SmState>,
    /// Authoritative next issue deadline per flat sub-partition
    /// (`u64::MAX` = no active warps).
    sched: Vec<u64>,
    /// Calendar-queue index over `sched` (bits may be stale, never missing).
    wheel: DeadlineWheel,
    /// Scratch: the deadline row being drained.
    row: Vec<u64>,
    /// Scratch: flat sub-partition ids scheduled at the cycle being drained,
    /// in ascending order.
    candidates: Vec<u32>,
    /// Scratch: the slot each candidate selected (`u32::MAX` = none),
    /// aligned with `candidates`.
    picks: Vec<u32>,
    /// Scratch: minimum ready cycle over each candidate's non-picked slots
    /// (`u64::MAX` = none), aligned with `candidates`; produced by the same
    /// selection scan and consumed by the commit's deadline re-arm.
    mins: Vec<u64>,
    /// `(smsp, slot)` placements of the most recent block dispatch
    /// (`u32::MAX` slot = the warp exited at spawn and claimed no slot).
    placements: Vec<(usize, u32)>,
    /// SM id of each flat sub-partition (`idx / smsps_per_sm` without the
    /// per-commit division).
    sm_of: Vec<u32>,
}

impl EngineWorkspace {
    /// Re-sizes everything for a new run, keeping allocations. `cap` is the
    /// exact per-sub-partition slot bound derived from the streams'
    /// occupancy caps (see [`Run::new`]); `total_warps` is the total number
    /// of warps the run will ever create.
    fn reset(&mut self, cfg: &GpuConfig, cap: usize, total_warps: usize, start_cycle: u64) {
        let n = cfg.num_sms * cfg.smsps_per_sm;
        self.warps.clear();
        self.warps.reserve(total_warps);
        self.warp_home.clear();
        self.warp_home.reserve(total_warps);
        self.slots.reset(n, cap);
        self.sched_state.reset(n);
        self.sms.truncate(cfg.num_sms);
        for sm in self.sms.iter_mut() {
            sm.reset(cfg.smsps_per_sm);
        }
        while self.sms.len() < cfg.num_sms {
            self.sms.push(SmState::new(cfg.smsps_per_sm));
        }
        self.sched.clear();
        self.sched.resize(n, u64::MAX);
        self.wheel.reset(n, start_cycle);
        self.row.clear();
        self.candidates.clear();
        self.picks.clear();
        self.mins.clear();
        self.placements.clear();
        self.sm_of.clear();
        self.sm_of
            .extend((0..n).map(|idx| (idx / cfg.smsps_per_sm) as u32));
    }
}

/// Per-stream launch state: one kernel of a (possibly concurrent) run.
struct StreamRun<'a> {
    launch: &'a KernelLaunch,
    program: &'a dyn KernelProgram,
    /// Device view this stream's occupancy and statistics are computed
    /// against: its SM slice when partitioned, the whole device otherwise.
    view: GpuConfig,
    occ: Occupancy,
    /// Residency cap per SM for this stream (`occ.blocks_per_sm`, split K
    /// ways for interleaved streams).
    blocks_cap: u32,
    /// First global SM id this stream may dispatch onto.
    sm_base: usize,
    /// Number of contiguous SMs from `sm_base` this stream may use.
    sm_count: usize,
    /// Resident blocks of *this stream* per local SM (index `sm - sm_base`).
    resident: Vec<u32>,
    counters: RawCounters,
    next_block: u32,
    total_blocks: u32,
    warps_per_block: u32,
    active_warps: u64,
    /// Completion cycle and memory snapshot, recorded when the stream's last
    /// warp retires.
    end: Option<(u64, MemSnapshot)>,
}

/// Mutable state of one (possibly multi-stream) kernel execution, shared by
/// both engine loops.
struct Run<'a> {
    cfg: &'a GpuConfig,
    streams: Vec<StreamRun<'a>>,
    /// Display label for diagnostics ("+"-joined kernel names).
    label: String,
    /// The simulator's recycled arenas and scratch buffers.
    ws: &'a mut EngineWorkspace,
    active_warps: u64,
    /// Threads for the event-driven selection phase (1 = inline).
    workers: usize,
    /// Scheduler-contract checker; a zero-sized no-op unless the
    /// `contract-checks` feature is enabled.
    contract: EngineContract,
    /// Test-only fault injection (see [`Simulator`]).
    #[cfg(all(test, feature = "contract-checks"))]
    double_issue: bool,
}

impl<'a> Run<'a> {
    fn new(
        cfg: &'a GpuConfig,
        kernels: &[(&'a KernelLaunch, &'a dyn KernelProgram)],
        partition: StreamPartition,
        start_cycle: u64,
        ws: &'a mut EngineWorkspace,
        workers: usize,
    ) -> Self {
        let k = kernels.len();
        // Contiguous, near-even SM split for partitioned streams; every
        // stream sees the whole device when interleaved.
        let mut streams = Vec::with_capacity(k);
        let mut next_base = 0usize;
        for (i, &(launch, program)) in kernels.iter().enumerate() {
            let (sm_base, sm_count) = match partition {
                StreamPartition::SmPartitioned => {
                    let count = cfg.num_sms / k + usize::from(i < cfg.num_sms % k);
                    let base = next_base;
                    next_base += count;
                    (base, count)
                }
                StreamPartition::Interleaved => (0, cfg.num_sms),
            };
            let view = cfg.clone().with_num_sms(sm_count);
            let occ = Occupancy::compute(&view, launch);
            let blocks_cap = match partition {
                StreamPartition::SmPartitioned => occ.blocks_per_sm,
                StreamPartition::Interleaved => (occ.blocks_per_sm / k as u32).max(1),
            };
            streams.push(StreamRun {
                launch,
                program,
                view,
                occ,
                blocks_cap,
                sm_base,
                sm_count,
                resident: vec![0; sm_count],
                counters: RawCounters::default(),
                next_block: 0,
                total_blocks: launch.grid_blocks,
                warps_per_block: occ.warps_per_block,
                active_warps: 0,
                end: None,
            });
        }

        // Exact per-sub-partition slot bound: a block places its warps
        // round-robin over one SM's sub-partitions in a single burst, so
        // each resident block contributes at most ceil(warps_per_block /
        // smsps_per_sm) warps to any one sub-partition, and each SM hosts
        // at most `blocks_cap` blocks per stream covering it.
        let cap = (0..cfg.num_sms)
            .map(|sm| {
                streams
                    .iter()
                    .filter(|s| sm >= s.sm_base && sm < s.sm_base + s.sm_count)
                    .map(|s| {
                        s.blocks_cap as usize
                            * (s.warps_per_block as usize).div_ceil(cfg.smsps_per_sm)
                    })
                    .sum::<usize>()
            })
            .max()
            .unwrap_or(0)
            .max(1);

        // Every block of every grid is eventually dispatched and its warps
        // stay in the arena until the kernel completes, so the final length
        // is known exactly up front.
        let total_warps: usize = streams
            .iter()
            .map(|s| s.total_blocks as usize * s.warps_per_block as usize)
            .sum();
        let label = kernels
            .iter()
            .map(|(l, _)| l.name.as_str())
            .collect::<Vec<_>>()
            .join("+");
        ws.reset(cfg, cap, total_warps, start_cycle);
        let mut run = Run {
            cfg,
            streams,
            label,
            ws,
            active_warps: 0,
            workers,
            contract: EngineContract::new(cfg.num_sms, cfg.smsps_per_sm, start_cycle),
            #[cfg(all(test, feature = "contract-checks"))]
            double_issue: false,
        };

        // Initial wave: fill every SM of each stream up to the stream's
        // residency cap, round-robin over the stream's SMs the way the
        // GigaThread engine distributes blocks.
        for s in 0..run.streams.len() {
            'outer: for _slot in 0..run.streams[s].blocks_cap {
                for local in 0..run.streams[s].sm_count {
                    if run.streams[s].next_block >= run.streams[s].total_blocks {
                        break 'outer;
                    }
                    let sm_id = run.streams[s].sm_base + local;
                    let block = run.streams[s].next_block;
                    run.streams[s].next_block += 1;
                    run.dispatch_block(s, sm_id, block, start_cycle);
                }
            }
        }

        run.recount_active_warps();
        // Warps whose programs are empty retire instantly; account for their
        // blocks so replacement blocks can still be dispatched.
        for wid in 0..run.ws.warps.len() {
            if run.ws.warps[wid].is_exited() {
                let (sm_id, stream, block_id) = run.ws.warp_home[wid];
                if run.ws.sms[sm_id].warp_retired(block_key(stream, block_id)) {
                    let local = sm_id - run.streams[stream].sm_base;
                    run.streams[stream].resident[local] -= 1;
                }
            }
        }
        run
    }

    /// Recomputes the global and per-stream active-warp counts from the
    /// arena (used at startup and after a degenerate refill).
    fn recount_active_warps(&mut self) {
        for s in self.streams.iter_mut() {
            s.active_warps = 0;
        }
        let mut total = 0u64;
        for wid in 0..self.ws.warps.len() {
            if !self.ws.warps[wid].is_exited() {
                let (_, stream, _) = self.ws.warp_home[wid];
                self.streams[stream].active_warps += 1;
                total += 1;
            }
        }
        self.active_warps = total;
    }

    /// Whether any stream still has undispatched blocks.
    fn blocks_pending(&self) -> bool {
        self.streams.iter().any(|s| s.next_block < s.total_blocks)
    }

    /// Dispatches one thread block of `stream` onto `sm_id` at `cycle`,
    /// recording the placements of its warps in the workspace's
    /// `placements` buffer.
    fn dispatch_block(&mut self, stream: usize, sm_id: usize, block_id: u32, cycle: u64) {
        let warps_per_block = self.streams[stream].warps_per_block;
        let threads_per_block = self.streams[stream].launch.threads_per_block;
        self.ws.sms[sm_id].begin_block(block_key(stream, block_id), warps_per_block);
        self.streams[stream].counters.blocks_launched += 1;
        let local = sm_id - self.streams[stream].sm_base;
        self.streams[stream].resident[local] += 1;
        self.ws.placements.clear();
        for w in 0..warps_per_block {
            let info = WarpInfo {
                block_id,
                warp_in_block: w,
                warps_per_block,
                threads_per_block,
                global_warp_id: block_id as u64 * warps_per_block as u64 + w as u64,
                sm_id: sm_id as u32,
            };
            let mut ctx =
                WarpContext::new(info, self.streams[stream].program.warp_program(info), cycle);
            self.streams[stream].counters.warps_launched += 1;
            let wid = self.ws.warps.len();
            assert!(wid < u32::MAX as usize, "warp arena overflow");
            // The rotation cursor advances for every spawned warp — even one
            // that exits instantly and claims no slot — so placement stays a
            // pure function of spawn order.
            let smsp = self.ws.sms[sm_id].next_rotation();
            let flat = sm_id * self.cfg.smsps_per_sm + smsp;
            let slot = self
                .ws
                .slots
                .spawn(flat, wid as u32, stream as u32, &mut ctx, cycle);
            let ready = slot.map_or(u64::MAX, |s| self.ws.slots.ready_at(s as usize));
            self.ws.warps.push(ctx);
            self.ws.warp_home.push((sm_id, stream, block_id));
            self.contract
                .on_dispatch(sm_id, smsp, ready, cycle, &self.ws.slots);
            self.ws.placements.push((smsp, slot.unwrap_or(u32::MAX)));
        }
    }

    /// Handles the degenerate "all resident warps retired but blocks remain"
    /// state (possible with empty warp programs): refills every stream at
    /// `cycle`. Returns `true` if the whole launch turned out to be empty
    /// and the engine should stop.
    fn degenerate_refill(&mut self, cycle: u64) -> bool {
        for s in 0..self.streams.len() {
            for local in 0..self.streams[s].sm_count {
                let sm_id = self.streams[s].sm_base + local;
                while self.streams[s].resident[local] < self.streams[s].blocks_cap
                    && self.streams[s].next_block < self.streams[s].total_blocks
                {
                    let block = self.streams[s].next_block;
                    self.streams[s].next_block += 1;
                    self.dispatch_block(s, sm_id, block, cycle);
                }
            }
        }
        let newly_active = self.ws.warps.iter().filter(|w| !w.is_exited()).count() as u64;
        if newly_active == 0 {
            // Every program in this launch is empty.
            for wid in 0..self.ws.warps.len() {
                if self.ws.warps[wid].is_exited() {
                    let (sm_id, stream, block_id) = self.ws.warp_home[wid];
                    if self.ws.sms[sm_id].warp_retired(block_key(stream, block_id)) {
                        let local = sm_id - self.streams[stream].sm_base;
                        self.streams[stream].resident[local] -= 1;
                    }
                }
            }
            return true;
        }
        self.recount_active_warps();
        false
    }

    /// Issues the warp in `slot` (already selected and committed by
    /// sub-partition `(sm, smsp)`) at cycle `now`, handling retirement,
    /// block completion and replacement dispatch. This is the engine's
    /// serialization point: every memory-system side effect happens here,
    /// and the event-driven loop calls it in ascending `(sm, smsp)` order
    /// within a cycle. Returns `true` if the warp retired.
    fn issue_selected(
        &mut self,
        slot: usize,
        sm: usize,
        smsp: usize,
        now: u64,
        mem: &mut MemorySystem,
    ) -> bool {
        let wid = self.ws.slots.wid(slot) as usize;
        let stream = self.ws.slots.stream_of(slot) as usize;
        self.contract
            .pre_issue(sm, smsp, now, self.ws.slots.ready_at(slot));
        let retired = {
            // Disjoint workspace fields: the slot arena mutates, the cold
            // warp tail refills its decode buffer.
            let ws = &mut *self.ws;
            ws.slots.issue(
                slot,
                sm,
                now,
                &mut ws.warps[wid],
                mem,
                self.cfg,
                &mut self.streams[stream].counters,
            )
        };
        if !retired {
            self.contract.post_issue(sm, smsp, &self.ws.slots);
            return false;
        }
        self.ws.slots.release(slot);
        self.active_warps -= 1;
        self.streams[stream].active_warps -= 1;
        self.streams[stream].counters.resident_warp_cycles +=
            now + 1 - self.ws.warps[wid].spawn_cycle;
        let (home_sm, _, block_id) = self.ws.warp_home[wid];
        let block_done = self.ws.sms[home_sm].warp_retired(block_key(stream, block_id));
        if block_done {
            let local = home_sm - self.streams[stream].sm_base;
            self.streams[stream].resident[local] -= 1;
        }
        if block_done && self.streams[stream].next_block < self.streams[stream].total_blocks {
            let block = self.streams[stream].next_block;
            self.streams[stream].next_block += 1;
            self.dispatch_block(stream, home_sm, block, now + 1);
            let newly = self
                .ws
                .placements
                .iter()
                .filter(|&&(_, s)| s != u32::MAX)
                .count() as u64;
            self.active_warps += newly;
            self.streams[stream].active_warps += newly;
        } else {
            self.ws.placements.clear();
        }
        if self.streams[stream].active_warps == 0
            && self.streams[stream].next_block >= self.streams[stream].total_blocks
            && self.streams[stream].end.is_none()
        {
            // The stream just finished: its last issue landed at `now`, so
            // its clock stops at `now + 1` (exactly where a single-stream
            // run's loop would exit).
            self.streams[stream].end = Some((now + 1, MemSnapshot::take(mem)));
        }
        self.contract.post_issue(sm, smsp, &self.ws.slots);
        true
    }

    /// The reference loop: poll every sub-partition every cycle, jumping the
    /// clock only when the whole device is stalled. Deliberately kept
    /// serial and queue-free so it stays an independent oracle for the
    /// event-driven loop.
    fn run_cycle_accurate(&mut self, mem: &mut MemorySystem, start_cycle: u64) -> u64 {
        let smsps_per_sm = self.cfg.smsps_per_sm;
        let n = self.cfg.num_sms * smsps_per_sm;
        let mut cycle = start_cycle;
        while self.active_warps > 0 || self.blocks_pending() {
            self.contract.on_clock(cycle);
            if self.active_warps == 0 && self.blocks_pending() {
                // All resident warps retired but blocks remain (can happen
                // with degenerate empty programs).
                if self.degenerate_refill(cycle) {
                    break;
                }
            }

            let mut issued_any = false;
            for idx in 0..n {
                let Some(slot) = self.ws.sched_state.select(&self.ws.slots, idx, cycle) else {
                    continue;
                };
                issued_any = true;
                let wid = self.ws.slots.wid(slot as usize);
                self.ws.sched_state.commit(idx, slot, wid);
                let (sm, smsp) = (idx / smsps_per_sm, idx % smsps_per_sm);
                self.issue_selected(slot as usize, sm, smsp, cycle, mem);
            }

            if issued_any {
                cycle += 1;
            } else {
                // Nothing could issue: fast-forward to the earliest cycle at
                // which any warp becomes ready.
                let next_ready = (0..n).filter_map(|i| self.ws.slots.min_ready_at(i)).min();
                match next_ready {
                    Some(c) if c > cycle => cycle = c,
                    _ => cycle += 1,
                }
            }

            assert!(
                cycle - start_cycle < MAX_CYCLES,
                "kernel '{}' exceeded {MAX_CYCLES} simulated cycles; the program is livelocked",
                self.label
            );
        }
        cycle
    }

    /// The event-driven loop: jump the clock straight to the earliest
    /// deadline in the calendar wheel, compute every scheduled
    /// sub-partition's selection (in parallel when `workers > 1`), then
    /// commit the issues serially in ascending `(sm, smsp)` order. See the
    /// module documentation for why this is bit-exact with
    /// [`Run::run_cycle_accurate`] at every thread count.
    fn run_event_driven(&mut self, mem: &mut MemorySystem, start_cycle: u64) -> u64 {
        let mut cycle = start_cycle;
        self.reschedule_all(cycle);

        loop {
            if self.active_warps == 0 && self.blocks_pending() {
                if self.degenerate_refill(cycle) {
                    break;
                }
                self.reschedule_all(cycle);
            }
            if self.active_warps == 0 {
                break;
            }
            let t = {
                let ws = &mut *self.ws;
                ws.wheel.next_deadline(cycle, &ws.sched)
            };
            let Some(t) = t else {
                debug_assert!(false, "active warps but no scheduled deadlines");
                break;
            };
            self.contract.on_clock(t);
            if t > cycle {
                // The clock is about to jump past `t - cycle` stalled
                // cycles; let the memory hierarchy retire the in-flight
                // fills whose reported deadlines have passed.
                mem.retire_completed_fills(t);
            }

            if self.workers <= 1 {
                // Fused serial path: select and commit each scheduled
                // sub-partition inline while walking the row bits (same
                // ascending (sm, smsp) order), skipping the candidates/
                // picks round trip entirely. Bit-exact with the sharded
                // path below because selection is sub-partition-local and
                // an issue at `t` only creates or changes deadlines at
                // `t + 1` or later, so a later candidate's selection is
                // unaffected by an earlier commit in the same cycle.
                self.ws.wheel.take_row_into(t, &mut self.ws.row);
                let n_words = self.ws.row.len();
                for w in 0..n_words {
                    let mut bits = self.ws.row[w];
                    while bits != 0 {
                        let b = bits & bits.wrapping_neg();
                        bits ^= b;
                        let idx = w * 64 + b.trailing_zeros() as usize;
                        // Every bit in a row returned by `next_deadline` is
                        // verified live, and a drained row cannot be
                        // re-entered (see `wheel.rs` invariants), so no
                        // staleness filter is needed here.
                        debug_assert_eq!(self.ws.sched[idx], t, "stale bit in drained wheel row");
                        let (pick, min_others) =
                            self.ws.sched_state.select_and_min(&self.ws.slots, idx, t);
                        self.commit_candidate(idx, pick, min_others, t, mem);
                    }
                }
            } else {
                // Phase 0: collect the sub-partitions scheduled at `t` from
                // the wheel row, ascending bit order = ascending (sm, smsp)
                // order.
                {
                    let ws = &mut *self.ws;
                    ws.wheel.take_row_into(t, &mut ws.row);
                    ws.candidates.clear();
                    for (w, &word) in ws.row.iter().enumerate() {
                        let mut bits = word;
                        while bits != 0 {
                            let b = bits & bits.wrapping_neg();
                            let idx = w * 64 + b.trailing_zeros() as usize;
                            if ws.sched[idx] == t {
                                ws.candidates.push(idx as u32);
                            }
                            bits ^= b;
                        }
                    }
                }

                // Phase 1: pure selection for every candidate
                // (parallelizable because selection is sub-partition-local;
                // see `sm.rs`).
                self.select_batch(t);

                // Phase 2: serial commit in ascending (sm, smsp) order —
                // the single serialization point for memory-system side
                // effects. Dispatches triggered here only create deadlines
                // at `t + 1` or later (invariant 3), so the candidate batch
                // is stable.
                for i in 0..self.ws.candidates.len() {
                    let idx = self.ws.candidates[i] as usize;
                    let pick = self.ws.picks[i];
                    let min_others = self.ws.mins[i];
                    self.commit_candidate(idx, pick, min_others, t, mem);
                }
            }

            cycle = t + 1;
            assert!(
                cycle - start_cycle < MAX_CYCLES,
                "kernel '{}' exceeded {MAX_CYCLES} simulated cycles; the program is livelocked",
                self.label
            );
        }
        cycle
    }

    /// Commits one scheduled sub-partition at cycle `t`: clears its
    /// deadline, issues `pick` (`u32::MAX` = nothing selected), seeds
    /// deadlines for any replacement-block warps the issue dispatched, and
    /// re-arms the sub-partition's next deadline clamped to `t + 1` (one
    /// issue per sub-partition per cycle). This is the single serialization
    /// point for memory-system side effects; callers invoke it in ascending
    /// `(sm, smsp)` order within a cycle.
    ///
    /// `min_others` is the minimum ready cycle over the sub-partition's
    /// slots *excluding* `pick` as computed by the selection scan
    /// (`select_and_min`). The re-arm folds in the only three things that
    /// can change between that scan and here — the pick's post-issue ready
    /// cycle, a retirement freeing the slot, and replacement-block warps
    /// dispatched into this very sub-partition — so no second pass over the
    /// slot range is needed.
    fn commit_candidate(
        &mut self,
        idx: usize,
        pick: u32,
        min_others: u64,
        t: u64,
        mem: &mut MemorySystem,
    ) {
        let smsps_per_sm = self.cfg.smsps_per_sm;
        self.ws.sched[idx] = u64::MAX;
        let sm = self.ws.sm_of[idx] as usize;
        let smsp = idx - sm * smsps_per_sm;
        let mut min_after = min_others;

        if pick != u32::MAX {
            let wid = self.ws.slots.wid(pick as usize);
            self.ws.sched_state.commit(idx, pick, wid);
            let retired = self.issue_selected(pick as usize, sm, smsp, t, mem);
            // A released slot reports `u64::MAX`, so retirement needs no
            // special case here.
            min_after = min_after.min(self.ws.slots.ready_at(pick as usize));
            #[cfg(all(test, feature = "contract-checks"))]
            if self.double_issue {
                // Fault injection: issue a second ready warp from the
                // same sub-partition in the same cycle, violating the
                // one-issue-per-cycle contract on purpose.
                if let Some(s2) = self.ws.sched_state.select(&self.ws.slots, idx, t) {
                    let w2 = self.ws.slots.wid(s2 as usize);
                    self.ws.sched_state.commit(idx, s2, w2);
                    self.issue_selected(s2 as usize, sm, smsp, t, mem);
                    // The second issue invalidates the fused minimum;
                    // rescan so fault-injection runs re-arm exactly.
                    min_after = self.ws.slots.min_ready_at(idx).unwrap_or(u64::MAX);
                }
            }
            if retired && !self.ws.placements.is_empty() {
                // A replacement block landed on this warp's SM: give
                // its sub-partitions deadlines for the new warps.
                let (home_sm, _, _) = self.ws.warp_home[wid as usize];
                for p in 0..self.ws.placements.len() {
                    let (psmsp, pslot) = self.ws.placements[p];
                    if pslot == u32::MAX {
                        continue;
                    }
                    let pidx = home_sm * smsps_per_sm + psmsp;
                    let ready = self.ws.slots.ready_at(pslot as usize);
                    if pidx == idx {
                        // New warp in this sub-partition: fold into the
                        // re-arm below instead of writing `sched` twice.
                        min_after = min_after.min(ready);
                    } else if ready < self.ws.sched[pidx] {
                        self.ws.sched[pidx] = ready;
                        self.ws.wheel.note(pidx, ready);
                    }
                }
            }
        }

        // One issue per sub-partition per cycle: its next deadline is
        // clamped to t + 1 even if another warp is already ready.
        if min_after != u64::MAX {
            let next = min_after.max(t + 1);
            self.ws.sched[idx] = next;
            self.ws.wheel.note(idx, next);
        }
    }

    /// Computes the selection of every candidate sub-partition at cycle `t`
    /// into the aligned `picks` buffer. Sharded across `self.workers`
    /// scoped threads when there is enough work — each worker reads the
    /// shared slot arena and greedy pointers immutably and writes a
    /// disjoint span of `picks`, so the result is identical at any thread
    /// count (and no synchronization beyond the scope join exists).
    fn select_batch(&mut self, t: u64) {
        /// Below this many candidates the spawn cost dwarfs the work.
        const SHARD_MIN_BATCH: usize = 2;
        let workers = self.workers;
        let ws = &mut *self.ws;
        let n = ws.candidates.len();
        ws.picks.clear();
        ws.picks.resize(n, u32::MAX);
        ws.mins.clear();
        ws.mins.resize(n, u64::MAX);
        let slots = &ws.slots;
        let sched_state = &ws.sched_state;
        let candidates = &ws.candidates[..];
        let picks = &mut ws.picks[..];
        let mins = &mut ws.mins[..];
        let fill = |cand: &[u32], out: &mut [u32], out_min: &mut [u64]| {
            for ((c, o), m) in cand.iter().zip(out.iter_mut()).zip(out_min.iter_mut()) {
                let (pick, min_others) = sched_state.select_and_min(slots, *c as usize, t);
                *o = pick;
                *m = min_others;
            }
        };
        if workers > 1 && n >= SHARD_MIN_BATCH {
            let chunk = n.div_ceil(workers);
            std::thread::scope(|scope| {
                for ((cand, out), out_min) in candidates
                    .chunks(chunk)
                    .zip(picks.chunks_mut(chunk))
                    .zip(mins.chunks_mut(chunk))
                {
                    scope.spawn(move || fill(cand, out, out_min));
                }
            });
        } else {
            fill(candidates, picks, mins);
        }
    }

    /// Recomputes every sub-partition's issue deadline from scratch (used at
    /// startup and after a degenerate refill; the hot path maintains
    /// deadlines incrementally).
    fn reschedule_all(&mut self, floor: u64) {
        let n = self.cfg.num_sms * self.cfg.smsps_per_sm;
        let ws = &mut *self.ws;
        for idx in 0..n {
            let d = ws.slots.next_issue_at(idx, floor).unwrap_or(u64::MAX);
            ws.sched[idx] = d;
            if d != u64::MAX {
                ws.wheel.note(idx, d);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::{PointerChaseKernel, StreamKernel};

    #[test]
    fn stream_kernel_completes_and_counts_instructions() {
        let cfg = GpuConfig::test_small();
        let sim = Simulator::new(cfg);
        let launch = KernelLaunch::new("stream", 8, 128).with_regs_per_thread(32);
        let kernel = StreamKernel::new(16);
        let stats = sim.run(&launch, &kernel);
        // 8 blocks * 4 warps * 16 iterations * 2 insts (load + add).
        assert_eq!(stats.counters.load_insts, 8 * 4 * 16);
        assert_eq!(stats.counters.insts_issued, 8 * 4 * 16 * 2);
        assert!(stats.elapsed_cycles > 0);
        assert_eq!(stats.counters.warps_launched, 32);
        assert_eq!(stats.counters.blocks_launched, 8);
    }

    #[test]
    fn latency_bound_chain_is_slower_than_streaming() {
        let cfg = GpuConfig::test_small();
        let sim = Simulator::new(cfg);
        let launch = KernelLaunch::new("k", 8, 128).with_regs_per_thread(32);
        let stream = sim.run(&launch, &StreamKernel::new(32));
        let chase = sim.run(&launch, &PointerChaseKernel::new(32, 1 << 26));
        assert!(
            chase.elapsed_cycles > stream.elapsed_cycles,
            "dependent chain ({}) should be slower than independent streaming ({})",
            chase.elapsed_cycles,
            stream.elapsed_cycles
        );
        assert!(chase.long_scoreboard_per_inst() > stream.long_scoreboard_per_inst());
    }

    #[test]
    fn more_blocks_than_capacity_are_drained() {
        let cfg = GpuConfig::test_small().with_num_sms(1);
        let sim = Simulator::new(cfg);
        // 1 SM, many blocks: blocks must be dispatched in waves.
        let launch = KernelLaunch::new("waves", 64, 256).with_regs_per_thread(64);
        let stats = sim.run(&launch, &StreamKernel::new(4));
        assert_eq!(stats.counters.blocks_launched, 64);
        assert_eq!(stats.counters.warps_launched, 64 * 8);
    }

    #[test]
    fn run_with_memory_reports_deltas_and_preserves_cache_state() {
        let cfg = GpuConfig::test_small();
        let sim = Simulator::new(cfg.clone());
        let launch = KernelLaunch::new("stream", 4, 128).with_regs_per_thread(32);
        let kernel = StreamKernel::new(16);
        let mut mem = MemorySystem::new(&cfg);
        let first = sim.run_with_memory(&launch, &kernel, &mut mem, 0);
        let second = sim.run_with_memory(&launch, &kernel, &mut mem, first.elapsed_cycles);
        // The second pass re-reads the same lines, so it should hit in cache
        // and read (almost) nothing new from DRAM.
        assert!(first.dram_bytes_read > 0);
        assert!(second.dram_bytes_read < first.dram_bytes_read / 4);
        assert!(second.elapsed_cycles < first.elapsed_cycles);
    }

    #[test]
    fn higher_occupancy_hides_latency_better() {
        let cfg = GpuConfig::test_small();
        let sim = Simulator::new(cfg);
        let kernel = PointerChaseKernel::new(64, 1 << 27);
        // Same total work, but one launch is register-starved (1 block/SM).
        let low = KernelLaunch::new("low-occ", 16, 256).with_regs_per_thread(160);
        let high = KernelLaunch::new("high-occ", 16, 256).with_regs_per_thread(32);
        let s_low = sim.run(&low, &kernel);
        let s_high = sim.run(&high, &kernel);
        assert!(s_low.theoretical_warps_per_sm < s_high.theoretical_warps_per_sm);
        assert!(
            s_high.elapsed_cycles < s_low.elapsed_cycles,
            "more resident warps should hide more latency ({} vs {})",
            s_high.elapsed_cycles,
            s_low.elapsed_cycles
        );
    }

    #[test]
    fn stats_issue_utilization_is_bounded() {
        let cfg = GpuConfig::test_small();
        let sim = Simulator::new(cfg);
        let launch = KernelLaunch::new("stream", 32, 256).with_regs_per_thread(32);
        let stats = sim.run(&launch, &StreamKernel::new(64));
        let util = stats.issued_per_scheduler_per_cycle();
        assert!(util > 0.0 && util <= 1.0, "utilization {util} out of range");
    }

    #[test]
    fn engine_modes_agree_on_synthetic_kernels() {
        let cfg = GpuConfig::test_small();
        let reference = Simulator::new(cfg.clone()).with_mode(EngineMode::CycleAccurate);
        let event = Simulator::new(cfg);
        assert_eq!(event.mode(), EngineMode::EventDriven);
        let launch = KernelLaunch::new("agree", 8, 128).with_regs_per_thread(32);
        for (name, kernel) in [
            ("stream", &StreamKernel::new(24) as &dyn KernelProgram),
            ("chase", &PointerChaseKernel::new(24, 1 << 22)),
        ] {
            let a = reference.run(&launch, kernel);
            let b = event.run(&launch, kernel);
            assert_eq!(a, b, "engine modes diverged on '{name}'");
        }
    }

    #[test]
    fn engine_modes_agree_across_chained_kernels() {
        let cfg = GpuConfig::test_small();
        let reference = Simulator::new(cfg.clone()).with_mode(EngineMode::CycleAccurate);
        let event = Simulator::new(cfg.clone());
        let launch = KernelLaunch::new("chained", 4, 128).with_regs_per_thread(32);
        let kernel = StreamKernel::new(16);

        let mut mem_a = MemorySystem::new(&cfg);
        let a1 = reference.run_with_memory(&launch, &kernel, &mut mem_a, 0);
        let a2 = reference.run_with_memory(&launch, &kernel, &mut mem_a, a1.elapsed_cycles);

        let mut mem_b = MemorySystem::new(&cfg);
        let b1 = event.run_with_memory(&launch, &kernel, &mut mem_b, 0);
        let b2 = event.run_with_memory(&launch, &kernel, &mut mem_b, b1.elapsed_cycles);

        assert_eq!(a1, b1);
        assert_eq!(a2, b2);
    }

    #[test]
    fn single_stream_run_concurrent_matches_run_with_memory() {
        let cfg = GpuConfig::test_small();
        let launch = KernelLaunch::new("solo", 8, 128).with_regs_per_thread(32);
        let kernel = StreamKernel::new(24);
        for mode in [EngineMode::CycleAccurate, EngineMode::EventDriven] {
            let sim = Simulator::new(cfg.clone()).with_mode(mode);
            let direct = sim.run(&launch, &kernel);
            for partition in StreamPartition::ALL {
                let mut mem = MemorySystem::new(&cfg);
                let stats = sim.run_concurrent(&[(&launch, &kernel)], partition, &mut mem, 0);
                assert_eq!(stats.len(), 1);
                assert_eq!(
                    stats[0], direct,
                    "K=1 {partition} diverged from the single-stream path"
                );
            }
        }
    }

    #[test]
    fn concurrent_streams_agree_across_engine_modes() {
        let cfg = GpuConfig::test_small();
        let la = KernelLaunch::new("a", 6, 128).with_regs_per_thread(32);
        let lb = KernelLaunch::new("b", 4, 256).with_regs_per_thread(64);
        let ka = StreamKernel::new(20);
        let kb = PointerChaseKernel::new(12, 1 << 20);
        for partition in StreamPartition::ALL {
            let run = |mode: EngineMode| {
                let sim = Simulator::new(cfg.clone()).with_mode(mode);
                let mut mem = MemorySystem::new(&cfg);
                sim.run_concurrent(&[(&la, &ka), (&lb, &kb)], partition, &mut mem, 0)
            };
            let reference = run(EngineMode::CycleAccurate);
            let event = run(EngineMode::EventDriven);
            for (i, (a, b)) in reference.iter().zip(event.iter()).enumerate() {
                if let Some(diff) = a.first_difference(b) {
                    panic!("engine modes diverged on {partition} stream {i}: {diff}");
                }
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn partitioned_streams_split_the_sms() {
        // Two identical kernels on a 4-SM device: each stream gets 2 SMs and
        // performs exactly the same work, so their issue counters match.
        let cfg = GpuConfig::test_small();
        let sim = Simulator::new(cfg.clone());
        let launch = KernelLaunch::new("half", 8, 128).with_regs_per_thread(32);
        let kernel = StreamKernel::new(16);
        let mut mem = MemorySystem::new(&cfg);
        let stats = sim.run_concurrent(
            &[(&launch, &kernel), (&launch, &kernel)],
            StreamPartition::SmPartitioned,
            &mut mem,
            0,
        );
        assert_eq!(
            stats[0].counters.insts_issued,
            stats[1].counters.insts_issued
        );
        assert_eq!(stats[0].counters.blocks_launched, 8);
        assert_eq!(stats[1].counters.blocks_launched, 8);
        // Each stream's view is its 2-SM slice.
        assert_eq!(stats[0].total_schedulers, 2 * 4);
        assert!(stats[0].elapsed_cycles > 0 && stats[1].elapsed_cycles > 0);
    }

    #[test]
    fn interleaved_streams_share_issue_slots() {
        let cfg = GpuConfig::test_small();
        let sim = Simulator::new(cfg.clone());
        let launch = KernelLaunch::new("mix", 8, 128).with_regs_per_thread(32);
        let kernel = PointerChaseKernel::new(24, 1 << 20);
        let solo = sim.run(&launch, &kernel);
        let mut mem = MemorySystem::new(&cfg);
        let stats = sim.run_concurrent(
            &[(&launch, &kernel), (&launch, &kernel)],
            StreamPartition::Interleaved,
            &mut mem,
            0,
        );
        // Co-residency slows each stream down, but filling each other's
        // stall cycles keeps the pair faster than running serially.
        let slowest = stats.iter().map(|s| s.elapsed_cycles).max().unwrap();
        assert!(slowest >= solo.elapsed_cycles);
        assert!(
            slowest < 2 * solo.elapsed_cycles,
            "interleaving two latency-bound kernels must beat running them \
             back-to-back ({slowest} vs 2x{})",
            solo.elapsed_cycles
        );
    }

    #[test]
    #[should_panic(expected = "concurrent streams")]
    fn stream_capacity_is_enforced() {
        let cfg = GpuConfig::test_small().with_max_concurrent_streams(1);
        let sim = Simulator::new(cfg.clone());
        let launch = KernelLaunch::new("over", 2, 64);
        let kernel = StreamKernel::new(4);
        let mut mem = MemorySystem::new(&cfg);
        let _ = sim.run_concurrent(
            &[(&launch, &kernel), (&launch, &kernel)],
            StreamPartition::Interleaved,
            &mut mem,
            0,
        );
    }

    /// The checker must actually detect a broken scheduler, not just stay
    /// quiet on a correct one: injecting a second same-cycle issue from one
    /// sub-partition has to trip the one-issue-per-cycle assertion.
    #[test]
    #[cfg(feature = "contract-checks")]
    #[should_panic(expected = "more than one warp per smsp per cycle")]
    fn contract_checker_trips_on_double_issue() {
        let cfg = GpuConfig::test_small();
        let sim = Simulator::new(cfg).with_double_issue_sabotage();
        let launch = KernelLaunch::new("sabotaged", 8, 128).with_regs_per_thread(32);
        let _ = sim.run(&launch, &StreamKernel::new(16));
    }

    #[test]
    fn stream_partition_names_round_trip() {
        for p in StreamPartition::ALL {
            assert_eq!(StreamPartition::from_name(p.name()), Some(p));
            assert_eq!(format!("{p}"), p.name());
        }
        assert_eq!(StreamPartition::from_name("bogus"), None);
    }

    #[test]
    fn sharded_issue_is_thread_count_invariant() {
        let cfg = GpuConfig::test_small();
        let launch = KernelLaunch::new("shard", 12, 256).with_regs_per_thread(32);
        let kernel = PointerChaseKernel::new(24, 1 << 22);
        let baseline = Simulator::new(cfg.clone()).run(&launch, &kernel);
        assert_eq!(Simulator::new(cfg.clone()).tuning().sm_workers, 1);
        for workers in [1usize, 2, 8] {
            let sim = Simulator::new(cfg.clone()).with_sm_workers(workers);
            let stats = sim.run(&launch, &kernel);
            assert_eq!(stats, baseline, "sm_workers={workers} changed the results");
        }
    }

    #[test]
    fn workspace_reuse_is_invisible() {
        let cfg = GpuConfig::test_small();
        let sim = Simulator::new(cfg.clone());
        let launch = KernelLaunch::new("reuse", 8, 128).with_regs_per_thread(32);
        let kernel = StreamKernel::new(16);
        let first = sim.run(&launch, &kernel);
        let second = sim.run(&launch, &kernel);
        assert_eq!(first, second, "recycled workspace leaked state");
        // A differently-shaped launch through the same recycled workspace
        // must match a cold simulator exactly.
        let big = KernelLaunch::new("reshape", 16, 256).with_regs_per_thread(64);
        let fresh = Simulator::new(cfg).run(&big, &kernel);
        let reused = sim.run(&big, &kernel);
        assert_eq!(fresh, reused, "workspace reshape changed the results");
    }
}
