//! The simulation engine: dispatches thread blocks onto SMs, drives the
//! per-cycle issue loop, and assembles [`KernelStats`].

use crate::config::GpuConfig;
use crate::launch::{KernelLaunch, KernelProgram, WarpInfo};
use crate::mem::MemorySystem;
use crate::occupancy::Occupancy;
use crate::sm::SmState;
use crate::stats::{KernelStats, RawCounters};
use crate::warp::WarpContext;

/// Hard safety bound on simulated cycles per kernel; reaching it indicates a
/// livelocked program and aborts the simulation with a panic.
const MAX_CYCLES: u64 = 50_000_000_000;

/// The GPU simulator: owns a device configuration and runs kernels on it.
#[derive(Debug, Clone)]
pub struct Simulator {
    cfg: GpuConfig,
}

impl Simulator {
    /// Creates a simulator for the given device.
    pub fn new(cfg: GpuConfig) -> Self {
        Simulator { cfg }
    }

    /// The device configuration this simulator uses.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Runs a kernel on a cold memory hierarchy and returns its statistics.
    pub fn run(&self, launch: &KernelLaunch, program: &dyn KernelProgram) -> KernelStats {
        let mut mem = MemorySystem::new(&self.cfg);
        self.run_with_memory(launch, program, &mut mem, 0)
    }

    /// Runs a kernel against an existing memory system (so cache contents —
    /// including L2-pinned lines — persist across kernels), starting the
    /// device clock at `start_cycle`. The returned statistics are relative to
    /// this kernel only.
    pub fn run_with_memory(
        &self,
        launch: &KernelLaunch,
        program: &dyn KernelProgram,
        mem: &mut MemorySystem,
        start_cycle: u64,
    ) -> KernelStats {
        let cfg = &self.cfg;
        let occ = Occupancy::compute(cfg, launch);

        // Snapshot memory-system counters so this run reports deltas only.
        let (l1_acc0, l1_hit0) = mem.l1_totals();
        let l2_acc0 = mem.l2().stats.accesses;
        let l2_hit0 = mem.l2().stats.hits;
        let dram_read0 = mem.dram().bytes_read;
        let dram_write0 = mem.dram().bytes_written;

        let mut counters = RawCounters::default();
        let mut warps: Vec<WarpContext> = Vec::new();
        let mut sms: Vec<SmState> = (0..cfg.num_sms)
            .map(|_| SmState::new(cfg.smsps_per_sm))
            .collect();
        // Which block each warp belongs to, and which SM it runs on.
        let mut warp_home: Vec<(usize, u32)> = Vec::new();

        let warps_per_block = occ.warps_per_block;
        let total_blocks = launch.grid_blocks;
        let mut next_block: u32 = 0;

        let dispatch_block = |sm_id: usize,
                              block_id: u32,
                              cycle: u64,
                              warps: &mut Vec<WarpContext>,
                              warp_home: &mut Vec<(usize, u32)>,
                              sms: &mut Vec<SmState>,
                              counters: &mut RawCounters| {
            sms[sm_id].begin_block(block_id, warps_per_block);
            counters.blocks_launched += 1;
            for w in 0..warps_per_block {
                let info = WarpInfo {
                    block_id,
                    warp_in_block: w,
                    warps_per_block,
                    threads_per_block: launch.threads_per_block,
                    global_warp_id: block_id as u64 * warps_per_block as u64 + w as u64,
                    sm_id: sm_id as u32,
                };
                let ctx = WarpContext::new(info, program.warp_program(info), cycle);
                counters.warps_launched += 1;
                let warp_id = warps.len();
                warps.push(ctx);
                warp_home.push((sm_id, block_id));
                sms[sm_id].place_warp(warp_id);
            }
        };

        // Initial wave: fill every SM up to its occupancy limit, round-robin
        // over SMs the way the GigaThread engine distributes blocks.
        'outer: for _slot in 0..occ.blocks_per_sm {
            for sm_id in 0..cfg.num_sms {
                if next_block >= total_blocks {
                    break 'outer;
                }
                dispatch_block(
                    sm_id,
                    next_block,
                    start_cycle,
                    &mut warps,
                    &mut warp_home,
                    &mut sms,
                    &mut counters,
                );
                next_block += 1;
            }
        }

        let mut cycle = start_cycle;
        let mut active_warps: u64 = warps.iter().filter(|w| !w.is_exited()).count() as u64;
        // Warps whose programs are empty retire instantly; account for their
        // blocks so replacement blocks can still be dispatched.
        for wid in 0..warps.len() {
            if warps[wid].is_exited() {
                let (sm_id, block_id) = warp_home[wid];
                let _ = sms[sm_id].warp_retired(block_id);
            }
        }

        while active_warps > 0 || next_block < total_blocks {
            if active_warps == 0 && next_block < total_blocks {
                // All resident warps retired but blocks remain (can happen
                // with degenerate empty programs): dispatch onto SM 0.
                for sm_id in 0..cfg.num_sms {
                    while sms[sm_id].resident_blocks < occ.blocks_per_sm
                        && next_block < total_blocks
                    {
                        dispatch_block(
                            sm_id,
                            next_block,
                            cycle,
                            &mut warps,
                            &mut warp_home,
                            &mut sms,
                            &mut counters,
                        );
                        next_block += 1;
                    }
                }
                let newly_active = warps.iter().filter(|w| !w.is_exited()).count() as u64;
                if newly_active == 0 {
                    // Every program in this launch is empty.
                    for wid in 0..warps.len() {
                        if warps[wid].is_exited() {
                            let (sm_id, block_id) = warp_home[wid];
                            let _ = sms[sm_id].warp_retired(block_id);
                        }
                    }
                    break;
                }
                active_warps = newly_active;
            }

            let mut issued_any = false;
            for sm_id in 0..cfg.num_sms {
                for smsp_idx in 0..cfg.smsps_per_sm {
                    let pick = sms[sm_id].smsps[smsp_idx].select_ready(&warps, cycle);
                    let Some(wid) = pick else { continue };
                    issued_any = true;
                    let retired = warps[wid].issue(cycle, mem, cfg, &mut counters);
                    if retired {
                        active_warps -= 1;
                        counters.resident_warp_cycles += cycle + 1 - warps[wid].spawn_cycle;
                        let (home_sm, block_id) = warp_home[wid];
                        let block_done = sms[home_sm].warp_retired(block_id);
                        sms[sm_id].smsps[smsp_idx].prune_exited(&warps);
                        if block_done && next_block < total_blocks {
                            dispatch_block(
                                home_sm,
                                next_block,
                                cycle + 1,
                                &mut warps,
                                &mut warp_home,
                                &mut sms,
                                &mut counters,
                            );
                            next_block += 1;
                            active_warps += (warps.len() - warps_per_block as usize..warps.len())
                                .filter(|&i| !warps[i].is_exited())
                                .count() as u64;
                        }
                    }
                }
            }

            if issued_any {
                cycle += 1;
            } else {
                // Nothing could issue: fast-forward to the earliest cycle at
                // which any warp becomes ready.
                let next_ready = sms
                    .iter()
                    .flat_map(|sm| sm.smsps.iter())
                    .filter_map(|smsp| smsp.min_ready_at(&warps))
                    .min();
                match next_ready {
                    Some(c) if c > cycle => cycle = c,
                    _ => cycle += 1,
                }
            }

            assert!(
                cycle - start_cycle < MAX_CYCLES,
                "kernel '{}' exceeded {MAX_CYCLES} simulated cycles; the program is livelocked",
                launch.name
            );
        }

        // Account residency for any warps that never retired (impossible in
        // practice but keeps the accounting robust).
        for w in warps.iter().filter(|w| !w.is_exited()) {
            counters.resident_warp_cycles += cycle.saturating_sub(w.spawn_cycle);
        }

        let mut stats = KernelStats::empty(&launch.name, cfg);
        stats.set_occupancy(&occ);
        stats.elapsed_cycles = cycle.saturating_sub(start_cycle);
        stats.counters = counters;
        let (l1_acc, l1_hit) = mem.l1_totals();
        stats.l1_accesses = l1_acc - l1_acc0;
        stats.l1_hits = l1_hit - l1_hit0;
        stats.l2_accesses = mem.l2().stats.accesses - l2_acc0;
        stats.l2_hits = mem.l2().stats.hits - l2_hit0;
        stats.dram_bytes_read = mem.dram().bytes_read - dram_read0;
        stats.dram_bytes_written = mem.dram().bytes_written - dram_write0;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::{PointerChaseKernel, StreamKernel};

    #[test]
    fn stream_kernel_completes_and_counts_instructions() {
        let cfg = GpuConfig::test_small();
        let sim = Simulator::new(cfg);
        let launch = KernelLaunch::new("stream", 8, 128).with_regs_per_thread(32);
        let kernel = StreamKernel::new(16);
        let stats = sim.run(&launch, &kernel);
        // 8 blocks * 4 warps * 16 iterations * 2 insts (load + add).
        assert_eq!(stats.counters.load_insts, 8 * 4 * 16);
        assert_eq!(stats.counters.insts_issued, 8 * 4 * 16 * 2);
        assert!(stats.elapsed_cycles > 0);
        assert_eq!(stats.counters.warps_launched, 32);
        assert_eq!(stats.counters.blocks_launched, 8);
    }

    #[test]
    fn latency_bound_chain_is_slower_than_streaming() {
        let cfg = GpuConfig::test_small();
        let sim = Simulator::new(cfg);
        let launch = KernelLaunch::new("k", 8, 128).with_regs_per_thread(32);
        let stream = sim.run(&launch, &StreamKernel::new(32));
        let chase = sim.run(&launch, &PointerChaseKernel::new(32, 1 << 26));
        assert!(
            chase.elapsed_cycles > stream.elapsed_cycles,
            "dependent chain ({}) should be slower than independent streaming ({})",
            chase.elapsed_cycles,
            stream.elapsed_cycles
        );
        assert!(chase.long_scoreboard_per_inst() > stream.long_scoreboard_per_inst());
    }

    #[test]
    fn more_blocks_than_capacity_are_drained() {
        let cfg = GpuConfig::test_small().with_num_sms(1);
        let sim = Simulator::new(cfg);
        // 1 SM, many blocks: blocks must be dispatched in waves.
        let launch = KernelLaunch::new("waves", 64, 256).with_regs_per_thread(64);
        let stats = sim.run(&launch, &StreamKernel::new(4));
        assert_eq!(stats.counters.blocks_launched, 64);
        assert_eq!(stats.counters.warps_launched, 64 * 8);
    }

    #[test]
    fn run_with_memory_reports_deltas_and_preserves_cache_state() {
        let cfg = GpuConfig::test_small();
        let sim = Simulator::new(cfg.clone());
        let launch = KernelLaunch::new("stream", 4, 128).with_regs_per_thread(32);
        let kernel = StreamKernel::new(16);
        let mut mem = MemorySystem::new(&cfg);
        let first = sim.run_with_memory(&launch, &kernel, &mut mem, 0);
        let second = sim.run_with_memory(&launch, &kernel, &mut mem, first.elapsed_cycles);
        // The second pass re-reads the same lines, so it should hit in cache
        // and read (almost) nothing new from DRAM.
        assert!(first.dram_bytes_read > 0);
        assert!(second.dram_bytes_read < first.dram_bytes_read / 4);
        assert!(second.elapsed_cycles < first.elapsed_cycles);
    }

    #[test]
    fn higher_occupancy_hides_latency_better() {
        let cfg = GpuConfig::test_small();
        let sim = Simulator::new(cfg);
        let kernel = PointerChaseKernel::new(64, 1 << 27);
        // Same total work, but one launch is register-starved (1 block/SM).
        let low = KernelLaunch::new("low-occ", 16, 256).with_regs_per_thread(160);
        let high = KernelLaunch::new("high-occ", 16, 256).with_regs_per_thread(32);
        let s_low = sim.run(&low, &kernel);
        let s_high = sim.run(&high, &kernel);
        assert!(s_low.theoretical_warps_per_sm < s_high.theoretical_warps_per_sm);
        assert!(
            s_high.elapsed_cycles < s_low.elapsed_cycles,
            "more resident warps should hide more latency ({} vs {})",
            s_high.elapsed_cycles,
            s_low.elapsed_cycles
        );
    }

    #[test]
    fn stats_issue_utilization_is_bounded() {
        let cfg = GpuConfig::test_small();
        let sim = Simulator::new(cfg);
        let launch = KernelLaunch::new("stream", 32, 256).with_regs_per_thread(32);
        let stats = sim.run(&launch, &StreamKernel::new(64));
        let util = stats.issued_per_scheduler_per_cycle();
        assert!(util > 0.0 && util <= 1.0, "utilization {util} out of range");
    }
}
