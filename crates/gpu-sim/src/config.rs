//! GPU device configuration and presets.
//!
//! The presets mirror the devices used in the paper's evaluation
//! (Table I, Table II, Table VI and Section VI-B4): an NVIDIA A100-SXM4-80GB
//! and an H100 NVL. Latencies come from the paper's Table I (measured by
//! Luo et al., "Benchmarking and dissecting the NVIDIA Hopper GPU
//! architecture").

/// Configuration of a single cache level (L1 data cache or device-wide L2).
#[derive(Debug, Clone, PartialEq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Cache line size in bytes (128 on NVIDIA GPUs).
    pub line_bytes: u64,
    /// Associativity (number of ways per set).
    pub associativity: usize,
    /// Load-to-use latency for a hit, in cycles.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// Number of cache lines this cache can hold.
    pub fn num_lines(&self) -> u64 {
        self.capacity_bytes / self.line_bytes
    }

    /// Number of sets (lines / associativity), always at least one.
    pub fn num_sets(&self) -> u64 {
        (self.num_lines() / self.associativity as u64).max(1)
    }
}

/// Configuration of the off-chip HBM device memory.
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Capacity in bytes (80 GB on A100-SXM4-80GB).
    pub capacity_bytes: u64,
    /// Load-to-use latency of a device-memory access in cycles.
    pub latency: u64,
    /// Peak bandwidth in GB/s (1 GB = 1e9 bytes).
    pub peak_bandwidth_gbps: f64,
}

/// Full device configuration consumed by the [`crate::Simulator`].
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Human-readable device name (e.g. "A100-SXM4-80GB").
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Number of SM sub-partitions (warp schedulers) per SM.
    pub smsps_per_sm: usize,
    /// Maximum resident warps per SM supported by the hardware.
    pub max_warps_per_sm: usize,
    /// Maximum resident thread blocks per SM.
    pub max_blocks_per_sm: usize,
    /// Number of 32-bit registers in the register file of one SM.
    pub registers_per_sm: u32,
    /// Register allocation granularity (registers are allocated to a warp in
    /// multiples of this value).
    pub register_alloc_granularity: u32,
    /// Threads per warp (32 on all NVIDIA GPUs).
    pub warp_size: u32,
    /// Core clock in GHz, used to convert cycles to wall-clock time.
    pub clock_ghz: f64,
    /// Shared-memory capacity per SM in bytes.
    pub shared_mem_per_sm: u64,
    /// Shared-memory access latency in cycles.
    pub shared_mem_latency: u64,
    /// Register access latency in cycles (effectively part of the pipeline).
    pub register_latency: u64,
    /// Per-SM L1 data cache.
    pub l1: CacheConfig,
    /// Device-wide L2 cache.
    pub l2: CacheConfig,
    /// Maximum fraction of the L2 that may be set aside for persisting
    /// accesses (0.75 on A100/H100 per the CUDA programming guide).
    pub l2_max_persisting_fraction: f64,
    /// Off-chip device memory.
    pub dram: DramConfig,
    /// Default ALU result latency in cycles (dependent-issue distance).
    pub alu_latency: u64,
    /// Maximum number of concurrently resident kernel streams the device
    /// supports (the 7 MIG compute instances of an A100/H100). The engine's
    /// [`crate::Simulator::run_concurrent`] refuses launches beyond this.
    pub max_concurrent_streams: usize,
}

impl GpuConfig {
    /// Preset matching the paper's primary evaluation platform
    /// (Table VI: NVIDIA A100-SXM4-80GB, 108 SMs, 40 MB L2, 192 KB L1,
    /// HBM2e at ~2 TB/s).
    pub fn a100() -> Self {
        GpuConfig {
            name: "A100-SXM4-80GB".to_string(),
            num_sms: 108,
            smsps_per_sm: 4,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 32,
            registers_per_sm: 65_536,
            register_alloc_granularity: 8,
            warp_size: 32,
            clock_ghz: 1.41,
            shared_mem_per_sm: 164 * 1024,
            shared_mem_latency: 29,
            register_latency: 1,
            l1: CacheConfig {
                capacity_bytes: 192 * 1024,
                line_bytes: 128,
                associativity: 4,
                hit_latency: 38,
            },
            l2: CacheConfig {
                capacity_bytes: 40 * 1024 * 1024,
                line_bytes: 128,
                associativity: 16,
                hit_latency: 261,
            },
            l2_max_persisting_fraction: 0.75,
            dram: DramConfig {
                capacity_bytes: 80 * 1024 * 1024 * 1024,
                latency: 466,
                peak_bandwidth_gbps: 1940.0,
            },
            alu_latency: 4,
            max_concurrent_streams: 7,
        }
    }

    /// Preset matching the H100 NVL used in Section VI-B4: 132 SMs, 50 MB L2,
    /// 192 KB L1, HBM3 at 3.84 TB/s, ~27% faster SM clock than the A100.
    pub fn h100_nvl() -> Self {
        GpuConfig {
            name: "H100-NVL".to_string(),
            num_sms: 132,
            smsps_per_sm: 4,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 32,
            registers_per_sm: 65_536,
            register_alloc_granularity: 8,
            warp_size: 32,
            clock_ghz: 1.79,
            shared_mem_per_sm: 228 * 1024,
            shared_mem_latency: 29,
            register_latency: 1,
            l1: CacheConfig {
                capacity_bytes: 256 * 1024,
                line_bytes: 128,
                associativity: 4,
                hit_latency: 36,
            },
            l2: CacheConfig {
                capacity_bytes: 50 * 1024 * 1024,
                line_bytes: 128,
                associativity: 16,
                hit_latency: 255,
            },
            l2_max_persisting_fraction: 0.75,
            dram: DramConfig {
                capacity_bytes: 94 * 1024 * 1024 * 1024,
                latency: 440,
                peak_bandwidth_gbps: 3840.0,
            },
            alu_latency: 4,
            max_concurrent_streams: 7,
        }
    }

    /// A small configuration intended for unit tests: 4 SMs with shrunken
    /// caches so that cache-behaviour edge cases are reachable quickly.
    pub fn test_small() -> Self {
        let mut cfg = Self::a100();
        cfg.name = "test-small".to_string();
        cfg.num_sms = 4;
        cfg.l1.capacity_bytes = 16 * 1024;
        cfg.l2.capacity_bytes = 256 * 1024;
        cfg.max_concurrent_streams = 4;
        cfg
    }

    /// Returns a copy with a different SM count (useful for scaling tests).
    pub fn with_num_sms(mut self, num_sms: usize) -> Self {
        assert!(num_sms > 0, "a GPU must have at least one SM");
        self.num_sms = num_sms;
        self
    }

    /// Returns a copy with a different number of sub-partitions (warp
    /// schedulers) per SM; `1` degenerates every SM to a single scheduler,
    /// an edge shape the engine-equivalence suite exercises.
    pub fn with_smsps_per_sm(mut self, smsps: usize) -> Self {
        assert!(smsps > 0, "an SM must have at least one sub-partition");
        self.smsps_per_sm = smsps;
        self
    }

    /// Returns a copy with a different L2 capacity in bytes.
    pub fn with_l2_capacity(mut self, bytes: u64) -> Self {
        self.l2.capacity_bytes = bytes;
        self
    }

    /// Returns a copy with a different concurrent-stream capacity.
    pub fn with_max_concurrent_streams(mut self, streams: usize) -> Self {
        assert!(streams > 0, "a GPU must support at least one stream");
        self.max_concurrent_streams = streams;
        self
    }

    /// Maximum number of bytes of L2 that may be carved out for persisting
    /// (pinned) data.
    pub fn l2_max_persisting_bytes(&self) -> u64 {
        (self.l2.capacity_bytes as f64 * self.l2_max_persisting_fraction) as u64
    }

    /// Total number of warp schedulers on the device.
    pub fn total_schedulers(&self) -> usize {
        self.num_sms * self.smsps_per_sm
    }

    /// Peak DRAM bytes transferred per core cycle.
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        self.dram.peak_bandwidth_gbps * 1e9 / (self.clock_ghz * 1e9)
    }

    /// Converts a cycle count into microseconds at this device's clock.
    pub fn cycles_to_us(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_ghz * 1e3)
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::a100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_matches_paper_table_vi() {
        let cfg = GpuConfig::a100();
        assert_eq!(cfg.num_sms, 108);
        assert_eq!(cfg.registers_per_sm, 65_536);
        assert_eq!(cfg.l1.capacity_bytes, 192 * 1024);
        assert_eq!(cfg.l2.capacity_bytes, 40 * 1024 * 1024);
        assert_eq!(cfg.dram.capacity_bytes, 80 * 1024 * 1024 * 1024);
        assert!((cfg.dram.peak_bandwidth_gbps - 1940.0).abs() < 1e-9);
    }

    #[test]
    fn a100_latencies_match_paper_table_i() {
        let cfg = GpuConfig::a100();
        assert_eq!(cfg.register_latency, 1);
        assert_eq!(cfg.shared_mem_latency, 29);
        assert_eq!(cfg.l1.hit_latency, 38);
        assert_eq!(cfg.l2.hit_latency, 261);
        assert_eq!(cfg.dram.latency, 466);
    }

    #[test]
    fn h100_is_bigger_and_faster_than_a100() {
        let a100 = GpuConfig::a100();
        let h100 = GpuConfig::h100_nvl();
        assert!(h100.num_sms > a100.num_sms);
        assert!(h100.clock_ghz > a100.clock_ghz);
        assert!(h100.l2.capacity_bytes > a100.l2.capacity_bytes);
        assert!(h100.dram.peak_bandwidth_gbps > a100.dram.peak_bandwidth_gbps);
    }

    #[test]
    fn l2_persisting_carveout_is_75_percent() {
        let cfg = GpuConfig::a100();
        assert_eq!(cfg.l2_max_persisting_bytes(), 30 * 1024 * 1024);
    }

    #[test]
    fn cache_geometry_is_consistent() {
        let cfg = GpuConfig::a100();
        assert_eq!(cfg.l1.num_lines(), 192 * 1024 / 128);
        assert_eq!(
            cfg.l2.num_sets() * cfg.l2.associativity as u64,
            cfg.l2.num_lines()
        );
    }

    #[test]
    fn cycles_to_us_uses_clock() {
        let cfg = GpuConfig::a100();
        let us = cfg.cycles_to_us(1_410_000);
        assert!((us - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn dram_bytes_per_cycle_reasonable() {
        let cfg = GpuConfig::a100();
        let bpc = cfg.dram_bytes_per_cycle();
        assert!(bpc > 1000.0 && bpc < 2000.0, "got {bpc}");
    }

    #[test]
    fn with_builders_modify_copy() {
        let cfg = GpuConfig::a100()
            .with_num_sms(8)
            .with_l2_capacity(1024 * 1024);
        assert_eq!(cfg.num_sms, 8);
        assert_eq!(cfg.l2.capacity_bytes, 1024 * 1024);
    }

    #[test]
    #[should_panic(expected = "at least one SM")]
    fn zero_sms_rejected() {
        let _ = GpuConfig::a100().with_num_sms(0);
    }

    #[test]
    fn stream_capacity_matches_mig_instance_counts() {
        // A100 and H100 expose 7 MIG compute instances; the test device is
        // capped at its SM count so partitioned streams always get an SM.
        assert_eq!(GpuConfig::a100().max_concurrent_streams, 7);
        assert_eq!(GpuConfig::h100_nvl().max_concurrent_streams, 7);
        assert_eq!(GpuConfig::test_small().max_concurrent_streams, 4);
        let cfg = GpuConfig::a100().with_max_concurrent_streams(2);
        assert_eq!(cfg.max_concurrent_streams, 2);
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn zero_streams_rejected() {
        let _ = GpuConfig::a100().with_max_concurrent_streams(0);
    }
}
