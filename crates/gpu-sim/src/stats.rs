//! Kernel execution statistics, mirroring the NVIDIA Nsight Compute (NCU)
//! metrics the paper reports in Tables IV, V, VIII and IX.

use std::fmt;

use crate::config::GpuConfig;
use crate::occupancy::Occupancy;

/// Raw event counters accumulated while a kernel executes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RawCounters {
    /// Warp-level instructions issued (executed).
    pub insts_issued: u64,
    /// Warp-level load instructions issued (global + local).
    pub load_insts: u64,
    /// Warp-level load instructions from local memory (register spills).
    pub local_load_insts: u64,
    /// Warp-level store instructions issued.
    pub store_insts: u64,
    /// Warp-level prefetch instructions issued.
    pub prefetch_insts: u64,
    /// Cycles warps spent stalled on global/local-memory dependences.
    pub long_scoreboard_cycles: u64,
    /// Cycles warps spent stalled on ALU or shared-memory dependences.
    pub short_scoreboard_cycles: u64,
    /// Cycles warps were ready but another warp was selected.
    pub not_selected_cycles: u64,
    /// Sum over warps of their residency duration in cycles.
    pub resident_warp_cycles: u64,
    /// Number of warps that were launched.
    pub warps_launched: u64,
    /// Number of thread blocks that were launched.
    pub blocks_launched: u64,
}

impl RawCounters {
    /// Attributes the idle cycles between a warp's previous issue (at
    /// `prev_issue`) and the current one (at `now`): the span until the
    /// instruction's operands became ready (`ready_at`) is charged to the
    /// dependence kind that gated it, and any remainder — ready but not
    /// picked by the scheduler — to "not selected".
    pub(crate) fn charge_issue_gap(
        &mut self,
        kind: crate::warp::DepKind,
        prev_issue: u64,
        ready_at: u64,
        now: u64,
    ) {
        let gap = now.saturating_sub(prev_issue + 1);
        if gap == 0 {
            return;
        }
        let dep_stall = ready_at.saturating_sub(prev_issue + 1).min(gap);
        match kind {
            crate::warp::DepKind::Long => self.long_scoreboard_cycles += dep_stall,
            crate::warp::DepKind::Short => self.short_scoreboard_cycles += dep_stall,
            crate::warp::DepKind::None => self.not_selected_cycles += dep_stall,
        }
        self.not_selected_cycles += gap - dep_stall;
    }

    /// Adds another set of counters into this one.
    pub fn accumulate(&mut self, other: &RawCounters) {
        self.insts_issued += other.insts_issued;
        self.load_insts += other.load_insts;
        self.local_load_insts += other.local_load_insts;
        self.store_insts += other.store_insts;
        self.prefetch_insts += other.prefetch_insts;
        self.long_scoreboard_cycles += other.long_scoreboard_cycles;
        self.short_scoreboard_cycles += other.short_scoreboard_cycles;
        self.not_selected_cycles += other.not_selected_cycles;
        self.resident_warp_cycles += other.resident_warp_cycles;
        self.warps_launched += other.warps_launched;
        self.blocks_launched += other.blocks_launched;
    }
}

/// The full set of statistics produced by one simulated kernel execution
/// (or by merging several executions, e.g. the 250 embedding tables of the
/// paper's embedding stage).
#[derive(Debug, Clone, PartialEq)]
pub struct KernelStats {
    /// Name of the kernel (or merged stage).
    pub kernel_name: String,
    /// Name of the simulated device.
    pub device_name: String,
    /// Core clock in GHz used for time conversion.
    pub clock_ghz: f64,
    /// Total warp schedulers on the device.
    pub total_schedulers: u64,
    /// Hardware peak DRAM bandwidth in GB/s.
    pub peak_dram_bandwidth_gbps: f64,
    /// Elapsed cycles of the kernel.
    pub elapsed_cycles: u64,
    /// Raw issue/stall counters.
    pub counters: RawCounters,
    /// L1 data-cache accesses across all SMs.
    pub l1_accesses: u64,
    /// L1 data-cache hits across all SMs.
    pub l1_hits: u64,
    /// L2 cache accesses.
    pub l2_accesses: u64,
    /// L2 cache hits.
    pub l2_hits: u64,
    /// Bytes read from device memory.
    pub dram_bytes_read: u64,
    /// Bytes written to device memory.
    pub dram_bytes_written: u64,
    /// Theoretical resident warps per SM from the occupancy model.
    pub theoretical_warps_per_sm: u32,
    /// Theoretical occupancy percentage.
    pub theoretical_occupancy_pct: f64,
    /// Registers allocated per thread after granularity rounding.
    pub allocated_regs_per_thread: u32,
}

impl KernelStats {
    /// Creates an empty statistics record for a device.
    pub fn empty(kernel_name: &str, cfg: &GpuConfig) -> Self {
        KernelStats {
            kernel_name: kernel_name.to_string(),
            device_name: cfg.name.clone(),
            clock_ghz: cfg.clock_ghz,
            total_schedulers: cfg.total_schedulers() as u64,
            peak_dram_bandwidth_gbps: cfg.dram.peak_bandwidth_gbps,
            elapsed_cycles: 0,
            counters: RawCounters::default(),
            l1_accesses: 0,
            l1_hits: 0,
            l2_accesses: 0,
            l2_hits: 0,
            dram_bytes_read: 0,
            dram_bytes_written: 0,
            theoretical_warps_per_sm: 0,
            theoretical_occupancy_pct: 0.0,
            allocated_regs_per_thread: 0,
        }
    }

    /// Records the occupancy outcome of the launch.
    pub fn set_occupancy(&mut self, occ: &Occupancy) {
        self.theoretical_warps_per_sm = occ.warps_per_sm;
        self.theoretical_occupancy_pct = occ.occupancy_pct();
        self.allocated_regs_per_thread = occ.allocated_regs_per_thread;
    }

    /// Kernel (or stage) time in microseconds.
    pub fn kernel_time_us(&self) -> f64 {
        self.elapsed_cycles as f64 / (self.clock_ghz * 1e3)
    }

    /// Kernel time in milliseconds.
    pub fn kernel_time_ms(&self) -> f64 {
        self.kernel_time_us() / 1e3
    }

    /// Warp-level load instructions, in millions (paper: "#load insts (M)").
    pub fn load_insts_millions(&self) -> f64 {
        self.counters.load_insts as f64 / 1e6
    }

    /// Local-memory (spill) load instructions, in millions.
    pub fn local_loads_millions(&self) -> f64 {
        self.counters.local_load_insts as f64 / 1e6
    }

    /// Issued warps per scheduler per cycle ("issue slot utilization").
    pub fn issued_per_scheduler_per_cycle(&self) -> f64 {
        if self.elapsed_cycles == 0 {
            return 0.0;
        }
        self.counters.insts_issued as f64 / (self.elapsed_cycles * self.total_schedulers) as f64
    }

    /// SM throughput percentage. NCU's "SM throughput" tracks the busiest SM
    /// pipeline; for the latency-bound kernels studied here it is dominated
    /// by the issue-slot utilization, so this model reports that quantity as
    /// a percentage.
    pub fn sm_throughput_pct(&self) -> f64 {
        (self.issued_per_scheduler_per_cycle() * 100.0).min(100.0)
    }

    /// Average warp cycles per executed instruction (NCU
    /// "Warp Cycles Per Executed Instruction").
    pub fn warp_cycles_per_executed_inst(&self) -> f64 {
        if self.counters.insts_issued == 0 {
            return 0.0;
        }
        self.counters.resident_warp_cycles as f64 / self.counters.insts_issued as f64
    }

    /// Average long-scoreboard stall cycles per executed instruction.
    pub fn long_scoreboard_per_inst(&self) -> f64 {
        if self.counters.insts_issued == 0 {
            return 0.0;
        }
        self.counters.long_scoreboard_cycles as f64 / self.counters.insts_issued as f64
    }

    /// Average not-selected stall cycles per executed instruction.
    pub fn not_selected_per_inst(&self) -> f64 {
        if self.counters.insts_issued == 0 {
            return 0.0;
        }
        self.counters.not_selected_cycles as f64 / self.counters.insts_issued as f64
    }

    /// L1 data-cache hit rate in percent.
    pub fn l1_hit_rate_pct(&self) -> f64 {
        if self.l1_accesses == 0 {
            0.0
        } else {
            100.0 * self.l1_hits as f64 / self.l1_accesses as f64
        }
    }

    /// L2 cache hit rate in percent.
    pub fn l2_hit_rate_pct(&self) -> f64 {
        if self.l2_accesses == 0 {
            0.0
        } else {
            100.0 * self.l2_hits as f64 / self.l2_accesses as f64
        }
    }

    /// Bytes read from device memory, in megabytes (paper: "Device Memory
    /// size read (MB)").
    pub fn device_mem_read_mb(&self) -> f64 {
        self.dram_bytes_read as f64 / 1e6
    }

    /// Average HBM read bandwidth in GB/s over the kernel duration.
    pub fn avg_hbm_read_bw_gbps(&self) -> f64 {
        let t = self.kernel_time_us();
        if t == 0.0 {
            return 0.0;
        }
        self.dram_bytes_read as f64 / (t * 1e-6) / 1e9
    }

    /// Average HBM read bandwidth as a percentage of the device peak.
    pub fn hbm_read_bw_utilization_pct(&self) -> f64 {
        100.0 * self.avg_hbm_read_bw_gbps() / self.peak_dram_bandwidth_gbps
    }

    /// Achieved average resident warps per SM.
    pub fn achieved_warps_per_sm(&self) -> f64 {
        if self.elapsed_cycles == 0 {
            return 0.0;
        }
        let sms = self.total_schedulers as f64 / 4.0;
        self.counters.resident_warp_cycles as f64 / self.elapsed_cycles as f64 / sms
    }

    /// Merges another kernel execution into this record by summing counters
    /// and serialising elapsed time (the embedding tables of one GPU execute
    /// sequentially, Section II-A).
    pub fn merge_sequential(&mut self, other: &KernelStats) {
        assert_eq!(
            self.device_name, other.device_name,
            "cannot merge statistics from different devices"
        );
        self.merge_across_devices(other);
    }

    /// Merges a kernel execution that ran on a *different* device into this
    /// record: work and traffic counters are summed exactly like
    /// [`KernelStats::merge_sequential`], while the device metadata (name,
    /// clock, scheduler count, peak bandwidth) keeps `self`'s values — the
    /// caller picks the record, typically the cluster's root device, that
    /// the aggregate is reported against. With heterogeneous clocks the
    /// summed `elapsed_cycles` is a work total, not a wall-clock quantity;
    /// sharded runs carry the wall-clock answer separately as the per-device
    /// critical path.
    pub fn merge_across_devices(&mut self, other: &KernelStats) {
        self.elapsed_cycles += other.elapsed_cycles;
        self.counters.accumulate(&other.counters);
        self.l1_accesses += other.l1_accesses;
        self.l1_hits += other.l1_hits;
        self.l2_accesses += other.l2_accesses;
        self.l2_hits += other.l2_hits;
        self.dram_bytes_read += other.dram_bytes_read;
        self.dram_bytes_written += other.dram_bytes_written;
        if self.theoretical_warps_per_sm == 0 {
            self.theoretical_warps_per_sm = other.theoretical_warps_per_sm;
            self.theoretical_occupancy_pct = other.theoretical_occupancy_pct;
            self.allocated_regs_per_thread = other.allocated_regs_per_thread;
        }
    }

    /// Names the first field in which `other` differs from `self`, with both
    /// values, or `None` when the records are identical. Used by the engine
    /// equivalence suite to turn "two 20-field structs differ" into an
    /// actionable message.
    pub fn first_difference(&self, other: &KernelStats) -> Option<String> {
        macro_rules! cmp {
            ($($field:ident).+) => {
                if self.$($field).+ != other.$($field).+ {
                    return Some(format!(
                        "{}: {:?} vs {:?}",
                        stringify!($($field).+),
                        self.$($field).+,
                        other.$($field).+
                    ));
                }
            };
        }
        cmp!(elapsed_cycles);
        cmp!(counters.insts_issued);
        cmp!(counters.load_insts);
        cmp!(counters.local_load_insts);
        cmp!(counters.store_insts);
        cmp!(counters.prefetch_insts);
        cmp!(counters.long_scoreboard_cycles);
        cmp!(counters.short_scoreboard_cycles);
        cmp!(counters.not_selected_cycles);
        cmp!(counters.resident_warp_cycles);
        cmp!(counters.warps_launched);
        cmp!(counters.blocks_launched);
        cmp!(l1_accesses);
        cmp!(l1_hits);
        cmp!(l2_accesses);
        cmp!(l2_hits);
        cmp!(dram_bytes_read);
        cmp!(dram_bytes_written);
        cmp!(theoretical_warps_per_sm);
        cmp!(allocated_regs_per_thread);
        None
    }

    /// Renders the statistics as the rows used by the paper's NCU tables.
    pub fn ncu_rows(&self) -> Vec<(String, String)> {
        vec![
            (
                "Kernel time (us)".into(),
                format!("{:.1}", self.kernel_time_us()),
            ),
            (
                "#load insts (M)".into(),
                format!("{:.2}", self.load_insts_millions()),
            ),
            (
                "SM Throughput %".into(),
                format!("{:.2}", self.sm_throughput_pct()),
            ),
            (
                "warp cycles per executed inst".into(),
                format!("{:.2}", self.warp_cycles_per_executed_inst()),
            ),
            (
                "long scoreboard stall (cycles)".into(),
                format!("{:.2}", self.long_scoreboard_per_inst()),
            ),
            (
                "issued warp per scheduler per cycle".into(),
                format!("{:.2}", self.issued_per_scheduler_per_cycle()),
            ),
            (
                "Global L1$ hit rate %".into(),
                format!("{:.2}", self.l1_hit_rate_pct()),
            ),
            (
                "L2$ hit rate %".into(),
                format!("{:.2}", self.l2_hit_rate_pct()),
            ),
            (
                "Device Memory size read (MB)".into(),
                format!("{:.2}", self.device_mem_read_mb()),
            ),
            (
                "Avg HBM Read BW (GBps)".into(),
                format!("{:.1}", self.avg_hbm_read_bw_gbps()),
            ),
            (
                "Avg HBM Read BW Utilization (%)".into(),
                format!("{:.2}", self.hbm_read_bw_utilization_pct()),
            ),
        ]
    }
}

impl fmt::Display for KernelStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "kernel '{}' on {}", self.kernel_name, self.device_name)?;
        writeln!(
            f,
            "  occupancy: {} warps/SM ({:.1}%), {} regs/thread",
            self.theoretical_warps_per_sm,
            self.theoretical_occupancy_pct,
            self.allocated_regs_per_thread
        )?;
        for (name, value) in self.ncu_rows() {
            writeln!(f, "  {name}: {value}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats() -> KernelStats {
        let cfg = GpuConfig::a100();
        let mut s = KernelStats::empty("test", &cfg);
        s.elapsed_cycles = 1_410_000; // 1 ms
        s.counters.insts_issued = 1_000_000;
        s.counters.load_insts = 250_000;
        s.counters.resident_warp_cycles = 20_000_000;
        s.counters.long_scoreboard_cycles = 10_000_000;
        s.l1_accesses = 200_000;
        s.l1_hits = 50_000;
        s.l2_accesses = 150_000;
        s.l2_hits = 15_000;
        s.dram_bytes_read = 100_000_000;
        s
    }

    #[test]
    fn time_conversion() {
        let s = sample_stats();
        assert!((s.kernel_time_us() - 1000.0).abs() < 1e-9);
        assert!((s.kernel_time_ms() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn derived_rates() {
        let s = sample_stats();
        assert!((s.l1_hit_rate_pct() - 25.0).abs() < 1e-9);
        assert!((s.l2_hit_rate_pct() - 10.0).abs() < 1e-9);
        assert!((s.warp_cycles_per_executed_inst() - 20.0).abs() < 1e-9);
        assert!((s.long_scoreboard_per_inst() - 10.0).abs() < 1e-9);
        assert!((s.load_insts_millions() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_math() {
        let s = sample_stats();
        // 100 MB over 1 ms = 100 GB/s.
        assert!((s.avg_hbm_read_bw_gbps() - 100.0).abs() < 1e-6);
        assert!((s.hbm_read_bw_utilization_pct() - 100.0 / 1940.0 * 100.0).abs() < 1e-6);
    }

    #[test]
    fn issue_utilization() {
        let s = sample_stats();
        let expected = 1_000_000.0 / (1_410_000.0 * 432.0);
        assert!((s.issued_per_scheduler_per_cycle() - expected).abs() < 1e-12);
        assert!((s.sm_throughput_pct() - expected * 100.0).abs() < 1e-9);
    }

    #[test]
    fn merge_sums_counters_and_time() {
        let mut a = sample_stats();
        let b = sample_stats();
        a.merge_sequential(&b);
        assert_eq!(a.elapsed_cycles, 2_820_000);
        assert_eq!(a.counters.insts_issued, 2_000_000);
        assert_eq!(a.dram_bytes_read, 200_000_000);
    }

    #[test]
    fn empty_stats_do_not_divide_by_zero() {
        let cfg = GpuConfig::a100();
        let s = KernelStats::empty("e", &cfg);
        assert_eq!(s.kernel_time_us(), 0.0);
        assert_eq!(s.issued_per_scheduler_per_cycle(), 0.0);
        assert_eq!(s.warp_cycles_per_executed_inst(), 0.0);
        assert_eq!(s.l1_hit_rate_pct(), 0.0);
        assert_eq!(s.avg_hbm_read_bw_gbps(), 0.0);
    }

    #[test]
    fn ncu_rows_contain_paper_metrics() {
        let s = sample_stats();
        let rows = s.ncu_rows();
        let names: Vec<&str> = rows.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"Kernel time (us)"));
        assert!(names.contains(&"long scoreboard stall (cycles)"));
        assert!(names.contains(&"Avg HBM Read BW Utilization (%)"));
        assert_eq!(rows.len(), 11);
    }

    #[test]
    fn display_is_not_empty() {
        let s = sample_stats();
        let text = format!("{s}");
        assert!(text.contains("kernel 'test'"));
        assert!(text.contains("SM Throughput"));
    }

    #[test]
    #[should_panic(expected = "different devices")]
    fn merging_different_devices_panics() {
        let mut a = KernelStats::empty("a", &GpuConfig::a100());
        let b = KernelStats::empty("b", &GpuConfig::h100_nvl());
        a.merge_sequential(&b);
    }
}
