//! Feature-gated runtime checker for the scheduler contract.
//!
//! The engine's two execution loops stay bit-identical because every
//! scheduler change preserves the invariants spelled out in the
//! [`crate::engine`] module docs. With the `contract-checks` feature
//! enabled, [`EngineContract`] re-derives those invariants independently
//! inside both loops and panics the moment one is violated:
//!
//! 1. **One issue per sub-partition per cycle** — a second issue from the
//!    same `(sm, smsp)` at the same cycle is a contract violation.
//! 2. **Next issue = max(min ready_at, last issue + 1)** — the checker
//!    recomputes the expected issue cycle from the sub-partition's own
//!    slot range of the [`WarpSlots`] arena after every event that can
//!    change it (an issue on it, a warp dispatched to it) and asserts the
//!    actual issue lands exactly there.
//! 3. **Dispatch readiness** — a warp created by a block dispatched at
//!    cycle `t` must not be ready before `t + 1`.
//! 4. **Drain order** — within one cycle, sub-partitions issue in
//!    ascending `(sm, smsp)` order, which is what keeps memory-system
//!    side effects in the same order in both loops (and is what the
//!    sharded issue phase's serial commit point must reproduce).
//! 5. **Monotone clock** — the engine clock never moves backwards.
//!
//! The checker reads the same struct-of-arrays slot state the schedulers
//! read ([`WarpSlots::min_ready_at`] over the sub-partition's fixed slot
//! range), so it verifies the production layout rather than a shadow copy.
//!
//! With the feature disabled (the default) the checker is a zero-sized
//! no-op, so the hooks cost nothing; call sites are unconditional. CI
//! runs the equivalence suites under `--features gpu-sim/contract-checks`
//! so every scheduler path the suites exercise is checked.

#[cfg(feature = "contract-checks")]
use crate::warp::WarpSlots;

/// Independent re-derivation of the scheduler contract; see the module
/// docs. Zero-sized no-op unless the `contract-checks` feature is on.
#[cfg(feature = "contract-checks")]
#[derive(Debug, Clone)]
pub(crate) struct EngineContract {
    smsps_per_sm: usize,
    /// Last cycle each sub-partition issued at (`None` = never).
    last_issue: Vec<Option<u64>>,
    /// Independently recomputed next legal issue cycle per sub-partition
    /// (`None` = no active warps resident).
    expected: Vec<Option<u64>>,
    /// Highest clock value observed so far.
    clock: u64,
    /// Flat index of the last sub-partition to issue in `clock`'s cycle,
    /// for the drain-order check.
    cursor: Option<(u64, usize)>,
}

#[cfg(feature = "contract-checks")]
impl EngineContract {
    pub(crate) fn new(num_sms: usize, smsps_per_sm: usize, start_cycle: u64) -> Self {
        EngineContract {
            smsps_per_sm,
            last_issue: vec![None; num_sms * smsps_per_sm],
            expected: vec![None; num_sms * smsps_per_sm],
            clock: start_cycle,
            cursor: None,
        }
    }

    /// Recomputes the expected next issue cycle of one sub-partition from
    /// its slot range: `max(min ready_at, last issue + 1)`.
    fn refresh(&mut self, idx: usize, slots: &WarpSlots) {
        let floor = self.last_issue[idx].map_or(0, |l| l + 1);
        self.expected[idx] = slots.min_ready_at(idx).map(|r| r.max(floor));
    }

    /// A warp with readiness `warp_ready` was just placed on `(sm, smsp)`
    /// by a block dispatched at `now`.
    pub(crate) fn on_dispatch(
        &mut self,
        sm: usize,
        smsp: usize,
        warp_ready: u64,
        now: u64,
        slots: &WarpSlots,
    ) {
        assert!(
            warp_ready > now,
            "scheduler contract: warp dispatched at cycle {now} reported \
             ready at {warp_ready}; dispatch must never add work to the \
             cycle that triggered it"
        );
        self.refresh(sm * self.smsps_per_sm + smsp, slots);
    }

    /// `(sm, smsp)` is about to issue a warp whose pre-issue readiness is
    /// `warp_ready` at cycle `now`.
    pub(crate) fn pre_issue(&mut self, sm: usize, smsp: usize, now: u64, warp_ready: u64) {
        let idx = sm * self.smsps_per_sm + smsp;
        assert!(
            self.last_issue[idx].is_none_or(|l| l < now),
            "scheduler contract: more than one warp per smsp per cycle \
             (sm {sm} smsp {smsp} issued twice at cycle {now})"
        );
        assert!(
            warp_ready <= now,
            "scheduler contract: sm {sm} smsp {smsp} issued a warp at cycle \
             {now} that is not ready until {warp_ready}"
        );
        if let Some(expected) = self.expected[idx] {
            assert!(
                now == expected,
                "scheduler contract: sm {sm} smsp {smsp} issued at cycle \
                 {now}, but max(min ready_at, last issue + 1) = {expected}"
            );
        }
        if let Some((cycle, prev_idx)) = self.cursor {
            assert!(
                cycle != now || idx > prev_idx,
                "scheduler contract: (sm, smsp) drain order violated at \
                 cycle {now}: flat smsp {idx} issued after {prev_idx}"
            );
        }
        self.cursor = Some((now, idx));
        self.last_issue[idx] = Some(now);
    }

    /// The issue on `(sm, smsp)` at `now` (and any replacement dispatch it
    /// triggered) is fully applied; re-derive the sub-partition's next
    /// legal issue cycle.
    pub(crate) fn post_issue(&mut self, sm: usize, smsp: usize, slots: &WarpSlots) {
        self.refresh(sm * self.smsps_per_sm + smsp, slots);
    }

    /// The engine clock reached `cycle`.
    pub(crate) fn on_clock(&mut self, cycle: u64) {
        assert!(
            cycle >= self.clock,
            "scheduler contract: clock moved backwards ({} -> {cycle})",
            self.clock
        );
        self.clock = cycle;
    }
}

/// No-op stand-in when `contract-checks` is off: every hook compiles to
/// nothing, so the engine carries no checking overhead by default.
#[cfg(not(feature = "contract-checks"))]
#[derive(Debug, Clone)]
pub(crate) struct EngineContract;

#[cfg(not(feature = "contract-checks"))]
impl EngineContract {
    #[inline(always)]
    pub(crate) fn new(_num_sms: usize, _smsps_per_sm: usize, _start_cycle: u64) -> Self {
        EngineContract
    }

    #[inline(always)]
    pub(crate) fn on_dispatch(
        &mut self,
        _sm: usize,
        _smsp: usize,
        _warp_ready: u64,
        _now: u64,
        _slots: &crate::warp::WarpSlots,
    ) {
    }

    #[inline(always)]
    pub(crate) fn pre_issue(&mut self, _sm: usize, _smsp: usize, _now: u64, _warp_ready: u64) {}

    #[inline(always)]
    pub(crate) fn post_issue(&mut self, _sm: usize, _smsp: usize, _slots: &crate::warp::WarpSlots) {
    }

    #[inline(always)]
    pub(crate) fn on_clock(&mut self, _cycle: u64) {}
}
