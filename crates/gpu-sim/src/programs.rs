//! Simple synthetic kernels used by unit tests, documentation examples and
//! the `cache_model` benchmark. The DLRM embedding-bag kernels live in the
//! `embedding-kernels` crate.

use crate::isa::{Instruction, LineSet, MemSpace, SrcSet};
use crate::launch::{KernelProgram, WarpInfo, WarpProgram};

/// Number of loads a [`StreamKernel`] warp keeps in flight: the consumer of a
/// load runs this many iterations after it, so the scoreboard can overlap
/// several memory accesses (memory-level parallelism).
const STREAM_WINDOW: u32 = 4;

/// A bandwidth-friendly streaming kernel: every warp loads a private,
/// sequential range of cache lines and accumulates them with a software
/// pipeline of `STREAM_WINDOW` outstanding loads, so ample instruction- and
/// warp-level parallelism hides latency.
#[derive(Debug, Clone)]
pub struct StreamKernel {
    lines_per_warp: u32,
}

impl StreamKernel {
    /// Creates a streaming kernel where each warp touches `lines_per_warp`
    /// distinct 128-byte lines.
    pub fn new(lines_per_warp: u32) -> Self {
        assert!(lines_per_warp > 0, "each warp must load at least one line");
        StreamKernel { lines_per_warp }
    }
}

impl KernelProgram for StreamKernel {
    fn warp_program(&self, info: WarpInfo) -> Box<dyn WarpProgram> {
        Box::new(StreamWarp {
            next: 0,
            total: self.lines_per_warp,
            base_line: info.global_warp_id * self.lines_per_warp as u64,
            emit_load: true,
        })
    }

    fn name(&self) -> &str {
        "stream"
    }
}

#[derive(Debug)]
struct StreamWarp {
    next: u32,
    total: u32,
    base_line: u64,
    emit_load: bool,
}

impl WarpProgram for StreamWarp {
    fn next_inst(&mut self) -> Option<Instruction> {
        if self.next >= self.total {
            return None;
        }
        if self.emit_load {
            self.emit_load = false;
            let line = (self.base_line + self.next as u64) * 128;
            let dst = 1 + (self.next % STREAM_WINDOW) as u8;
            Some(Instruction::Load {
                space: MemSpace::Global,
                lines: LineSet::single(line),
                dst,
                bytes: 128,
                addr_dep: None,
            })
        } else {
            self.emit_load = true;
            // Consume the load issued STREAM_WINDOW - 1 iterations ago, so
            // several loads stay in flight concurrently.
            let consumed = 1 + ((self.next + 1) % STREAM_WINDOW) as u8;
            self.next += 1;
            Some(Instruction::Alu {
                dst: 10,
                srcs: SrcSet::two(consumed, 10),
                latency: 0,
            })
        }
    }
}

/// A latency-bound pointer-chasing kernel: each warp performs a chain of
/// dependent loads whose addresses are scattered pseudo-randomly over a
/// configurable footprint, so caches help little and every load stalls the
/// warp ("long scoreboard" stalls).
#[derive(Debug, Clone)]
pub struct PointerChaseKernel {
    chain_len: u32,
    footprint_bytes: u64,
}

impl PointerChaseKernel {
    /// Creates a pointer-chase kernel with `chain_len` dependent loads per
    /// warp spread over `footprint_bytes` of memory.
    pub fn new(chain_len: u32, footprint_bytes: u64) -> Self {
        assert!(chain_len > 0, "chain must contain at least one load");
        assert!(
            footprint_bytes >= 128,
            "footprint must cover at least one line"
        );
        PointerChaseKernel {
            chain_len,
            footprint_bytes,
        }
    }
}

impl KernelProgram for PointerChaseKernel {
    fn warp_program(&self, info: WarpInfo) -> Box<dyn WarpProgram> {
        Box::new(ChaseWarp {
            remaining: self.chain_len,
            state: info.global_warp_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
            footprint_lines: (self.footprint_bytes / 128).max(1),
            emit_load: true,
        })
    }

    fn name(&self) -> &str {
        "pointer-chase"
    }
}

#[derive(Debug)]
struct ChaseWarp {
    remaining: u32,
    state: u64,
    footprint_lines: u64,
    emit_load: bool,
}

impl ChaseWarp {
    fn next_line(&mut self) -> u64 {
        // xorshift64* generator: deterministic, no external dependency.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) % self.footprint_lines) * 128
    }
}

impl WarpProgram for ChaseWarp {
    fn next_inst(&mut self) -> Option<Instruction> {
        if self.remaining == 0 {
            return None;
        }
        if self.emit_load {
            self.emit_load = false;
            let line = self.next_line();
            // The address of each hop depends on the value loaded by the
            // previous hop, so every load stalls until its predecessor
            // returns: a true pointer chase.
            Some(Instruction::Load {
                space: MemSpace::Global,
                lines: LineSet::single(line),
                dst: 1,
                bytes: 128,
                addr_dep: Some(1),
            })
        } else {
            self.emit_load = true;
            self.remaining -= 1;
            // The "pointer dereference": depends on the just-loaded value.
            Some(Instruction::Alu {
                dst: 1,
                srcs: SrcSet::one(1),
                latency: 0,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use crate::engine::Simulator;
    use crate::launch::KernelLaunch;

    #[test]
    fn stream_kernel_emits_expected_instruction_count() {
        let kernel = StreamKernel::new(4);
        let info = WarpInfo {
            block_id: 0,
            warp_in_block: 0,
            warps_per_block: 4,
            threads_per_block: 128,
            global_warp_id: 0,
            sm_id: 0,
        };
        let mut prog = kernel.warp_program(info);
        let mut count = 0;
        while prog.next_inst().is_some() {
            count += 1;
        }
        assert_eq!(count, 8);
    }

    #[test]
    fn chase_addresses_stay_in_footprint() {
        let kernel = PointerChaseKernel::new(100, 4096);
        let info = WarpInfo {
            block_id: 0,
            warp_in_block: 0,
            warps_per_block: 1,
            threads_per_block: 32,
            global_warp_id: 3,
            sm_id: 0,
        };
        let mut prog = kernel.warp_program(info);
        while let Some(inst) = prog.next_inst() {
            if let Instruction::Load { lines, .. } = inst {
                for line in lines.iter() {
                    assert!(line < 4096, "address {line} escaped the footprint");
                }
            }
        }
    }

    #[test]
    fn different_warps_chase_different_sequences() {
        let kernel = PointerChaseKernel::new(8, 1 << 20);
        let mk = |id| WarpInfo {
            block_id: 0,
            warp_in_block: 0,
            warps_per_block: 1,
            threads_per_block: 32,
            global_warp_id: id,
            sm_id: 0,
        };
        let collect = |id| {
            let mut prog = kernel.warp_program(mk(id));
            let mut lines = Vec::new();
            while let Some(inst) = prog.next_inst() {
                if let Instruction::Load { lines: ls, .. } = inst {
                    lines.extend(ls.iter());
                }
            }
            lines
        };
        assert_ne!(collect(1), collect(2));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(StreamKernel::new(1).name(), "stream");
        assert_eq!(PointerChaseKernel::new(1, 128).name(), "pointer-chase");
    }

    #[test]
    fn small_footprint_chase_hits_in_cache() {
        let cfg = GpuConfig::test_small();
        let sim = Simulator::new(cfg);
        let launch = KernelLaunch::new("chase", 4, 128).with_regs_per_thread(32);
        let hot = sim.run(&launch, &PointerChaseKernel::new(64, 4 * 1024));
        let cold = sim.run(&launch, &PointerChaseKernel::new(64, 1 << 28));
        assert!(
            hot.l1_hit_rate_pct() + hot.l2_hit_rate_pct()
                > cold.l1_hit_rate_pct() + cold.l2_hit_rate_pct()
        );
        assert!(hot.elapsed_cycles < cold.elapsed_cycles);
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn zero_line_stream_rejected() {
        let _ = StreamKernel::new(0);
    }
}
