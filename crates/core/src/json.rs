//! A small dependency-free JSON document model used by [`crate::report`].
//!
//! The build environment has no crates.io access, so `serde`/`serde_json`
//! cannot be pulled in; this module provides the subset the experiment
//! reports need: building documents, rendering them, and parsing them back.
//! Numbers keep their integer/float distinction so that `u64` fields (seeds,
//! cycle counters) round-trip exactly, and floats are rendered with Rust's
//! shortest-round-trip formatting so `f64` fields round-trip exactly too.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (no decimal point or exponent in the source).
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted (`BTreeMap`) so rendering is canonical.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Creates an empty object.
    pub fn object() -> Json {
        Json::Obj(BTreeMap::new())
    }

    /// Inserts `value` under `key`; panics if `self` is not an object.
    pub fn set(&mut self, key: &str, value: Json) -> &mut Self {
        match self {
            Json::Obj(map) => {
                map.insert(key.to_string(), value);
            }
            _ => panic!("Json::set called on a non-object"),
        }
        self
    }

    /// Looks up `key`; returns `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as `f64` (integers widen losslessly up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::UInt(u) => Some(u as f64),
            Json::Int(i) => Some(i as f64),
            Json::Num(n) => Some(n),
            _ => None,
        }
    }

    /// The value as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(u) => Some(u),
            Json::Int(i) => u64::try_from(i).ok(),
            _ => None,
        }
    }

    /// The value as `u32`.
    pub fn as_u32(&self) -> Option<u32> {
        self.as_u64().and_then(|u| u32::try_from(u).ok())
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice of array elements.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the document as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Num(n) => {
                if n.is_finite() {
                    let s = format!("{n}");
                    out.push_str(&s);
                    // Keep floats recognisable as floats on re-parse.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    /// Returns a [`JsonError`] describing the first syntax error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after the document"));
        }
        Ok(value)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON syntax or schema error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset where the error was detected (0 for schema errors).
    pub offset: usize,
}

impl JsonError {
    /// Creates a schema-level error (no source position).
    pub fn schema(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
            offset: 0,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    /// Reads the four hex digits of a `\u` escape (the `\u` itself already
    /// consumed).
    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    /// Decodes one `\u` escape, combining UTF-16 surrogate pairs
    /// (`😀` and friends) into their code point.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let code = self.hex4()?;
        let code = match code {
            0xD800..=0xDBFF => {
                if self.peek() != Some(b'\\') || self.bytes.get(self.pos + 1) != Some(&b'u') {
                    return Err(self.error("unpaired high surrogate in \\u escape"));
                }
                self.pos += 2;
                let low = self.hex4()?;
                if !(0xDC00..=0xDFFF).contains(&low) {
                    return Err(self.error("invalid low surrogate in \\u escape"));
                }
                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
            }
            0xDC00..=0xDFFF => {
                return Err(self.error("unpaired low surrogate in \\u escape"));
            }
            code => code,
        };
        char::from_u32(code).ok_or_else(|| self.error("invalid \\u code point"))
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_scalars() {
        for (value, text) in [
            (Json::Null, "null"),
            (Json::Bool(true), "true"),
            (Json::UInt(42), "42"),
            (Json::Int(-7), "-7"),
            (Json::Str("a\"b\n".to_string()), "\"a\\\"b\\n\""),
        ] {
            assert_eq!(value.render(), text);
            assert_eq!(Json::parse(text).unwrap(), value);
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.1, 1.0 / 3.0, 123456.789, 1e-30, 2.5e20, f64::MIN_POSITIVE] {
            let rendered = Json::Num(f).render();
            match Json::parse(&rendered).unwrap() {
                Json::Num(back) => assert_eq!(back.to_bits(), f.to_bits(), "{rendered}"),
                other => panic!("{rendered} parsed as {other:?}"),
            }
        }
        // Whole-valued floats keep their float-ness through a round trip.
        assert_eq!(Json::Num(3.0).render(), "3.0");
        assert_eq!(Json::parse("3.0").unwrap(), Json::Num(3.0));
    }

    #[test]
    fn integers_round_trip_exactly() {
        let rendered = Json::UInt(u64::MAX).render();
        assert_eq!(Json::parse(&rendered).unwrap(), Json::UInt(u64::MAX));
    }

    #[test]
    fn objects_and_arrays_nest() {
        let mut obj = Json::object();
        obj.set("xs", Json::Arr(vec![Json::UInt(1), Json::Num(2.5)]));
        obj.set("name", Json::Str("grid".into()));
        let text = obj.render();
        assert_eq!(Json::parse(&text).unwrap(), obj);
    }

    #[test]
    fn parse_errors_carry_positions() {
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("42 trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn surrogate_pairs_decode_and_lone_surrogates_fail() {
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("\u{1F600}".to_string())
        );
        assert_eq!(
            Json::parse("\"\\u00e9\"").unwrap(),
            Json::Str("é".to_string())
        );
        assert!(Json::parse("\"\\ud83d\"").is_err());
        assert!(Json::parse("\"\\ud83d\\u0041\"").is_err());
        assert!(Json::parse("\"\\ude00\"").is_err());
    }

    #[test]
    fn whitespace_is_tolerated() {
        let doc = " { \"a\" : [ 1 , null , { } ] } ";
        assert!(Json::parse(doc).is_ok());
    }
}
