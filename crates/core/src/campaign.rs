//! Declarative experiment grids: [`Campaign`].
//!
//! The paper's evaluation is a grid — schemes × workloads × seeds × pooling
//! factors — and the seed repo walked that grid with hand-rolled nested
//! loops in every sweep, figure and example. A `Campaign` expresses the grid
//! once and executes its cells **in parallel across threads**, with results
//! returned in deterministic grid order regardless of the thread count:
//! every cell builds its own [`Experiment`] clone (and therefore its own
//! simulated memory system), so no cell observes another cell's execution.
//! The same machinery is what a sharded workload's per-shard fan-out rides
//! on, so campaigns over sharded workloads nest naturally and per-shard
//! cells hit an attached [`CampaignCache`] individually.
//!
//! ```
//! use dlrm::WorkloadScale;
//! use dlrm_datasets::AccessPattern;
//! use gpu_sim::GpuConfig;
//! use perf_envelope::{Campaign, Experiment, Scheme, Workload};
//!
//! let run = Campaign::new(Experiment::new(GpuConfig::test_small(), WorkloadScale::Test))
//!     .workloads([AccessPattern::HighHot, AccessPattern::Random].map(Workload::kernel))
//!     .schemes([Scheme::base(), Scheme::combined()])
//!     .run();
//! assert_eq!(run.len(), 4);
//! let base = run.get(1, 0, 0, 0);     // random under base
//! let combined = run.get(1, 1, 0, 0); // random under the combined scheme
//! assert!(combined.speedup_over(base) > 0.0);
//! ```

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::cache::CampaignCache;
use crate::report::RunReport;
use crate::runner::Experiment;
use crate::scheme::Scheme;
use crate::topology::Cluster;
use crate::workload::Workload;

/// Resolves a requested worker-thread count (`0` = available parallelism)
/// against the number of independent jobs.
pub(crate) fn resolve_worker_count(threads: usize, jobs: usize) -> usize {
    match threads {
        0 => std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
        n => n,
    }
    .min(jobs)
    .max(1)
}

/// Executes `count` independent jobs over at most `threads` workers (`0` =
/// available parallelism) and returns the results in job order, whatever
/// the worker count. The worker-pool machinery shared by [`Campaign::run`]
/// and the heterogeneous per-shard fan-out in
/// [`crate::Experiment`](Experiment).
pub(crate) fn run_jobs<T, F>(threads: usize, count: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let worker_count = resolve_worker_count(threads, count);
    let next_job = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..worker_count {
            scope.spawn(|| loop {
                // audit:allow(thread_accumulation): index allocator; every
                // result lands in its per-index slot, not in claim order
                let index = next_job.fetch_add(1, Ordering::Relaxed);
                if index >= count {
                    break;
                }
                *slots[index].lock().expect("worker panicked") = Some(job(index));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("lock poisoned")
                .expect("job not executed")
        })
        .collect()
}

/// A declarative grid of experiment cells and how to execute it.
#[derive(Debug, Clone)]
pub struct Campaign {
    base: Experiment,
    workloads: Vec<Workload>,
    schemes: Vec<Scheme>,
    seeds: Vec<u64>,
    pooling_factors: Vec<Option<u32>>,
    threads: usize,
}

impl Campaign {
    /// Starts a campaign over `base` (which fixes device, model and scale).
    ///
    /// Until overridden, the grid has the base experiment's seed as its only
    /// seed, the model's configured pooling factor as its only pooling
    /// factor, and the base experiment's preferred worker-thread count
    /// ([`Experiment::with_threads`]).
    pub fn new(base: Experiment) -> Self {
        Campaign {
            threads: base.threads(),
            base,
            workloads: Vec::new(),
            schemes: Vec::new(),
            seeds: Vec::new(),
            pooling_factors: vec![None],
        }
    }

    /// Adds one workload to the grid.
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workloads.push(workload);
        self
    }

    /// Adds workloads to the grid.
    pub fn workloads(mut self, workloads: impl IntoIterator<Item = Workload>) -> Self {
        self.workloads.extend(workloads);
        self
    }

    /// Adds one scheme to the grid.
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.schemes.push(scheme);
        self
    }

    /// Adds schemes to the grid.
    pub fn schemes(mut self, schemes: impl IntoIterator<Item = Scheme>) -> Self {
        self.schemes.extend(schemes);
        self
    }

    /// Replaces the seed axis (default: the base experiment's seed).
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Replaces the pooling-factor axis (default: the model's configured
    /// pooling factor).
    pub fn pooling_factors(mut self, factors: impl IntoIterator<Item = u32>) -> Self {
        self.pooling_factors = factors.into_iter().map(Some).collect();
        if self.pooling_factors.is_empty() {
            self.pooling_factors.push(None);
        }
        self
    }

    /// Sets the number of worker threads; `0` uses the machine's available
    /// parallelism. The default is inherited from the base experiment.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Replaces the base experiment's topology
    /// ([`Experiment::with_cluster`]): sharded workloads in the grid then
    /// fan out across this cluster's devices, each cell reducing its shards
    /// with the cluster's interconnect model.
    pub fn on_cluster(mut self, cluster: Cluster) -> Self {
        self.base = self.base.with_cluster(cluster);
        self
    }

    /// Attaches a [`CampaignCache`] to the campaign's base experiment:
    /// cells whose fingerprint (workload, scheme, seed, pooling factor,
    /// device/model configuration, scale, engine mode) was already executed
    /// — inside this grid, by an overlapping campaign sharing the cache, or
    /// by an earlier run — are served from the cache instead of
    /// re-simulating. Results are exact clones, so grid determinism is
    /// unaffected.
    pub fn with_cache(mut self, cache: Arc<CampaignCache>) -> Self {
        self.base = self.base.with_cache(cache);
        self
    }

    /// Number of cells in the grid.
    pub fn len(&self) -> usize {
        self.workloads.len()
            * self.schemes.len()
            * self.seeds.len().max(1)
            * self.pooling_factors.len()
    }

    /// Whether the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Executes every cell and returns the reports in grid order.
    ///
    /// Cells are distributed over worker threads; each cell clones the base
    /// experiment, applies its seed and pooling factor, and calls
    /// [`Experiment::run`]. Because cells share no mutable state, the
    /// resulting reports are bit-identical for any thread count.
    pub fn run(&self) -> CampaignRun {
        let seeds = if self.seeds.is_empty() {
            vec![self.base.seed()]
        } else {
            self.seeds.clone()
        };
        let mut cells = Vec::with_capacity(self.len());
        for workload in &self.workloads {
            for scheme in &self.schemes {
                for &seed in &seeds {
                    for &pooling in &self.pooling_factors {
                        cells.push((workload, scheme, seed, pooling));
                    }
                }
            }
        }

        // When this campaign already runs cells in parallel, the cells
        // themselves (and thus the per-shard fan-out of a sharded cell) run
        // serially so worker counts do not multiply past the configured
        // cap; a single-worker campaign hands its thread budget down
        // instead.
        let cell_threads = if resolve_worker_count(self.threads, cells.len()) > 1 {
            1
        } else {
            self.threads
        };
        let reports = run_jobs(self.threads, cells.len(), |index| {
            let (workload, scheme, seed, pooling) = cells[index];
            let mut experiment = self.base.clone().with_threads(cell_threads).with_seed(seed);
            if let Some(pooling) = pooling {
                experiment = experiment.with_pooling_factor(pooling);
            }
            experiment.run(workload, scheme)
        });

        CampaignRun {
            schemes: self.schemes.len(),
            seeds: seeds.len(),
            pooling_factors: self.pooling_factors.len(),
            reports,
        }
    }
}

/// The completed grid: every cell's [`RunReport`] in deterministic grid
/// order (workload-major, then scheme, then seed, then pooling factor).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRun {
    schemes: usize,
    seeds: usize,
    pooling_factors: usize,
    reports: Vec<RunReport>,
}

impl CampaignRun {
    /// All reports in grid order.
    pub fn reports(&self) -> &[RunReport] {
        &self.reports
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// Whether the run had no cells.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// The report of one cell, addressed by its grid coordinates
    /// (indices into the campaign's workload/scheme/seed/pooling axes).
    ///
    /// # Panics
    /// Panics if any coordinate is out of range.
    pub fn get(&self, workload: usize, scheme: usize, seed: usize, pooling: usize) -> &RunReport {
        let workloads =
            self.reports.len() / (self.schemes * self.seeds * self.pooling_factors).max(1);
        assert!(
            workload < workloads,
            "workload index {workload} out of range"
        );
        assert!(scheme < self.schemes, "scheme index {scheme} out of range");
        assert!(seed < self.seeds, "seed index {seed} out of range");
        assert!(
            pooling < self.pooling_factors,
            "pooling index {pooling} out of range"
        );
        let index = ((workload * self.schemes + scheme) * self.seeds + seed) * self.pooling_factors
            + pooling;
        &self.reports[index]
    }

    /// Serializes the whole run as a JSON array of run reports.
    pub fn to_json(&self) -> String {
        crate::json::Json::Arr(self.reports.iter().map(|r| r.to_json_value()).collect()).render()
    }

    /// Parses a run back from [`CampaignRun::to_json`] output. The grid
    /// shape collapses to one axis (`get` coordinates are not preserved);
    /// use this to reload archived reports.
    ///
    /// # Errors
    /// Returns a [`crate::json::JsonError`] on syntax or schema errors.
    pub fn from_json(text: &str) -> Result<Vec<RunReport>, crate::json::JsonError> {
        let doc = crate::json::Json::parse(text)?;
        let items = doc
            .as_array()
            .ok_or_else(|| crate::json::JsonError::schema("expected a JSON array of reports"))?;
        items.iter().map(RunReport::from_json_value).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrm::WorkloadScale;
    use dlrm_datasets::AccessPattern;
    use gpu_sim::GpuConfig;

    fn base() -> Experiment {
        Experiment::new(GpuConfig::test_small(), WorkloadScale::Test)
    }

    fn small_grid() -> Campaign {
        Campaign::new(base())
            .workloads([
                Workload::kernel(AccessPattern::HighHot),
                Workload::stage(AccessPattern::Random),
            ])
            .schemes([Scheme::base(), Scheme::optmt()])
    }

    #[test]
    fn grid_order_is_workload_major() {
        let run = small_grid().run();
        assert_eq!(run.len(), 4);
        assert_eq!(run.reports()[0].workload, "high hot");
        assert_eq!(run.reports()[0].scheme, "base");
        assert_eq!(run.reports()[1].scheme, "OptMT");
        assert_eq!(run.reports()[2].workload, "random");
        assert_eq!(run.get(1, 1, 0, 0).scheme, "OptMT");
        assert_eq!(run.get(1, 1, 0, 0).workload, "random");
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let serial = small_grid().threads(1).run();
        let parallel = small_grid().threads(4).run();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn cells_match_direct_experiment_runs() {
        let run = small_grid().threads(3).run();
        let direct = base().run(&Workload::stage(AccessPattern::Random), &Scheme::optmt());
        assert_eq!(*run.get(1, 1, 0, 0), direct);
    }

    #[test]
    fn seed_axis_overrides_the_base_seed() {
        let run = Campaign::new(base())
            .workload(Workload::kernel(AccessPattern::MedHot))
            .scheme(Scheme::base())
            .seeds([1, 2])
            .run();
        assert_eq!(run.len(), 2);
        assert_eq!(run.get(0, 0, 0, 0).seed, 1);
        assert_eq!(run.get(0, 0, 1, 0).seed, 2);
        assert_ne!(run.get(0, 0, 0, 0).stats, run.get(0, 0, 1, 0).stats);
    }

    #[test]
    fn pooling_axis_reconfigures_the_model() {
        let run = Campaign::new(base())
            .workload(Workload::kernel(AccessPattern::MedHot))
            .scheme(Scheme::base())
            .pooling_factors([4, 16])
            .run();
        assert_eq!(run.get(0, 0, 0, 0).pooling_factor, 4);
        assert_eq!(run.get(0, 0, 0, 1).pooling_factor, 16);
        assert!(
            run.get(0, 0, 0, 1).stats.counters.load_insts
                > run.get(0, 0, 0, 0).stats.counters.load_insts
        );
    }

    #[test]
    fn empty_campaigns_run_to_empty_results() {
        let run = Campaign::new(base()).run();
        assert!(run.is_empty());
        assert_eq!(run.to_json(), "[]");
    }

    #[test]
    fn campaign_json_round_trips() {
        let run = small_grid().run();
        let reports = CampaignRun::from_json(&run.to_json()).unwrap();
        assert_eq!(reports, run.reports());
    }

    #[test]
    fn on_cluster_reaches_sharded_cells() {
        use crate::topology::{InterconnectConfig, ShardingSpec};
        use dlrm_datasets::HeterogeneousMix;
        let mix = HeterogeneousMix::paper_mix(dlrm_datasets::MixKind::Mix2, 0.02);
        let run = Campaign::new(base())
            .on_cluster(Cluster::homogeneous(
                GpuConfig::test_small(),
                2,
                InterconnectConfig::nvlink3(),
            ))
            .workload(Workload::stage(mix).with_sharding(ShardingSpec::RoundRobin))
            .scheme(Scheme::base())
            .run();
        let cluster = run.reports()[0].devices.as_ref().unwrap();
        assert_eq!(cluster.num_devices(), 2);
    }

    #[test]
    fn with_cache_serves_repeated_grids() {
        let cache = crate::cache::CampaignCache::new();
        let first = small_grid().with_cache(cache.clone()).run();
        assert_eq!(cache.misses() as usize, first.len());
        let second = small_grid().with_cache(cache.clone()).threads(2).run();
        assert_eq!(cache.hits() as usize, second.len());
        assert_eq!(first, second);
    }
}
