//! Fleet-scale serving: replica sets behind a router, autoscaling, and a
//! device-hours cost model — the layer that turns one priced deployment
//! into a planet of them.
//!
//! A [`Fleet`] owns a fleet-wide arrival trace (a [`TrafficModel`], request
//! count and seed, exactly like a [`ServingScenario`]) and a set of
//! [`ReplicaGroup`]s: each group is a `ServingScenario` template over its
//! own [`Experiment`] deployment (cluster, streams, engine mode), expanded
//! into `replicas` identical replica instances. [`Fleet::simulate`] routes
//! every arrival to exactly one replica with a [`RoutingPolicy`], optionally
//! resizes the live set per interval with an [`AutoscalePolicy`] driven by
//! the [`max_sustainable_qps`] capacity search, then runs each replica's sub-trace through the
//! unchanged [`ServingScenario`] dispatch loop and aggregates a
//! [`FleetReport`] (exact fleet-wide percentiles, request conservation,
//! per-replica serving reports, autoscale timeline, and a device-hours
//! cost summary).
//!
//! Three contracts the test suite (`tests/fleet_equivalence.rs`) anchors:
//!
//! * **Degenerate equivalence** — a 1-replica fleet with identity routing
//!   (round-robin) and no autoscaling is **bit-exact** with
//!   [`ServingScenario::simulate`] on both engine modes, sharded and
//!   K-streamed: the router degenerates to "send everything to replica 0"
//!   and the replica runs the very same dispatch loop on the very same
//!   arrival trace. The identity fleet's [`Fleet::fingerprint`] is also
//!   byte-identical to its replica's plain cell key, so a degenerate fleet
//!   shares persisted cache cells with the scenario it wraps.
//! * **Request conservation** — every offered request is routed to exactly
//!   one replica and accounted exactly once: summed over replicas,
//!   `served + shed + failed = offered`.
//! * **The drain contract on scale-in** — deactivating a replica only stops
//!   *routing* to it; requests already routed are still simulated to
//!   completion (and billed), so autoscaling never loses in-flight work.
//!
//! The router is deliberately an *estimating* router, the way a real L7
//! balancer is: it never sees inside a replica's queue. Least-outstanding
//! and latency-aware routing run on router-side estimates (a per-replica
//! service-time probe priced through the ordinary experiment path, so the
//! probe cell caches and shares like any other) updated as requests are
//! assigned. Round-robin needs no estimates and prices no probe.
//!
//! # Adding a routing policy
//!
//! Routing is a pure decision function in the style of
//! [`BatchingPolicy`](crate::BatchingPolicy): given the router cursor (how
//! many requests have been routed so far) and one [`ReplicaView`] per live
//! replica, [`RoutingPolicy::route`] returns the index of the chosen view —
//! no I/O, no clocks, no randomness, so fleet reports stay deterministic
//! and thread-count-invariant. To add a policy:
//!
//! 1. Add a variant to [`RoutingKind`] and wire `name`/`from_name`.
//! 2. Add a constructor on [`RoutingPolicy`] validating its parameters
//!    (panic on invalid values, like `latency_aware` does).
//! 3. Implement the decision in [`RoutingPolicy::route`] using only the
//!    cursor and the views. Break ties toward the lowest replica index so
//!    the decision stays deterministic.
//! 4. Extend `label` (and the JSON round trip) and register any new
//!    config fields with the `analysis` auditor — routing partitions the
//!    fleet fingerprint, so new knobs must appear in
//!    `crates/core/src/fingerprint.rs` or the manifest.
//!
//! Autoscaling follows the same pattern: [`AutoscalePolicy::decide`] is a
//! pure function from (offered rate, live capacity, live/pool counts,
//! cooldown) to an [`AutoscaleAction`].

use std::collections::VecDeque;
use std::sync::Arc;

use crate::cache::CampaignCache;
use crate::json::{Json, JsonError};
use crate::runner::Experiment;
use crate::scheme::Scheme;
use crate::serving::TrafficModel;
use crate::serving::{max_sustainable_qps, LatencyStats, ServingReport, ServingScenario};
use crate::workload::Workload;

/// Identifier of the fleet-report JSON schema produced by this crate
/// version.
pub const FLEET_REPORT_SCHEMA: &str = "perf-envelope/fleet-report/v1";

/// Which routing decision a [`RoutingPolicy`] makes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingKind {
    /// Cycle through live replicas in index order — the identity policy
    /// (with one replica it degenerates to "always replica 0").
    RoundRobin,
    /// Send each request to the live replica with the fewest
    /// requests outstanding on the router's estimate, ties to the lowest
    /// index.
    LeastOutstanding,
    /// Send each request to the live replica with the lowest
    /// exponentially-weighted moving average of estimated latency, ties to
    /// the lowest index.
    LatencyAware,
}

impl RoutingKind {
    /// Stable machine name (used in labels, JSON and the fingerprint).
    pub fn name(&self) -> &'static str {
        match self {
            RoutingKind::RoundRobin => "round_robin",
            RoutingKind::LeastOutstanding => "least_outstanding",
            RoutingKind::LatencyAware => "latency_aware",
        }
    }

    /// Parses [`RoutingKind::name`] back; `None` for unknown names.
    pub fn from_name(name: &str) -> Option<RoutingKind> {
        match name {
            "round_robin" => Some(RoutingKind::RoundRobin),
            "least_outstanding" => Some(RoutingKind::LeastOutstanding),
            "latency_aware" => Some(RoutingKind::LatencyAware),
            _ => None,
        }
    }
}

/// The router's view of one live replica — everything a
/// [`RoutingPolicy::route`] decision may depend on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaView {
    /// Pool index of the replica (stable across scale events).
    pub replica: u32,
    /// Requests routed to this replica so far.
    pub routed: u64,
    /// Requests routed but not yet complete on the router's estimate.
    pub outstanding: u32,
    /// Exponentially-weighted moving average of the router's estimated
    /// request latency for this replica, in microseconds.
    pub ewma_latency_us: f64,
}

/// How the fleet router picks a replica for each arriving request: a
/// deterministic pure decision function in the style of
/// [`BatchingPolicy`](crate::BatchingPolicy).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutingPolicy {
    kind: RoutingKind,
    ewma_alpha: f64,
}

impl RoutingPolicy {
    /// Round-robin over live replicas — the identity policy.
    pub fn round_robin() -> RoutingPolicy {
        RoutingPolicy {
            kind: RoutingKind::RoundRobin,
            ewma_alpha: 0.0,
        }
    }

    /// Route to the live replica with the fewest outstanding requests on
    /// the router's estimate.
    pub fn least_outstanding() -> RoutingPolicy {
        RoutingPolicy {
            kind: RoutingKind::LeastOutstanding,
            ewma_alpha: 0.0,
        }
    }

    /// Route to the live replica with the lowest EWMA of estimated
    /// latency; `alpha` is the EWMA smoothing factor (the weight of the
    /// newest sample).
    ///
    /// # Panics
    /// Panics unless `alpha` is in `(0, 1]`.
    pub fn latency_aware(alpha: f64) -> RoutingPolicy {
        assert!(
            alpha.is_finite() && alpha > 0.0 && alpha <= 1.0,
            "the EWMA smoothing factor must be in (0, 1]"
        );
        RoutingPolicy {
            kind: RoutingKind::LatencyAware,
            ewma_alpha: alpha,
        }
    }

    /// Which decision this policy makes.
    pub fn kind(&self) -> RoutingKind {
        self.kind
    }

    /// The EWMA smoothing factor (`0.0` for policies that keep no EWMA).
    pub fn ewma_alpha(&self) -> f64 {
        self.ewma_alpha
    }

    /// Whether this is the identity policy (round-robin): with one replica
    /// it routes everything to replica 0, which is what the degenerate
    /// fleet anchor and the fingerprint identity lean on.
    pub fn is_identity(&self) -> bool {
        self.kind == RoutingKind::RoundRobin
    }

    /// Human-readable label, e.g. `"latency_aware(0.3)"`.
    pub fn label(&self) -> String {
        match self.kind {
            RoutingKind::LatencyAware => format!("latency_aware({})", self.ewma_alpha),
            kind => kind.name().to_string(),
        }
    }

    /// The pure routing decision: given the router `cursor` (requests
    /// routed so far, fleet-wide) and one view per live replica (in pool
    /// order), returns the index **into `views`** of the chosen replica.
    /// Ties break to the earliest view, i.e. the lowest pool index.
    ///
    /// # Panics
    /// Panics if `views` is empty.
    pub fn route(&self, cursor: u64, views: &[ReplicaView]) -> usize {
        assert!(!views.is_empty(), "routing needs at least one live replica");
        match self.kind {
            RoutingKind::RoundRobin => (cursor % views.len() as u64) as usize,
            RoutingKind::LeastOutstanding => argmin(views, |v| v.outstanding as f64),
            RoutingKind::LatencyAware => argmin(views, |v| v.ewma_latency_us),
        }
    }

    /// The policy as a [`Json`] document.
    pub fn to_json_value(&self) -> Json {
        let mut doc = Json::object();
        doc.set("kind", Json::Str(self.kind.name().to_string()));
        doc.set("ewma_alpha", Json::Num(self.ewma_alpha));
        doc
    }

    /// Serializes the policy to compact JSON.
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// Parses a policy from a [`RoutingPolicy::to_json_value`] document.
    ///
    /// # Errors
    /// Returns a [`JsonError`] on unknown kinds or invalid parameters.
    pub fn from_json_value(doc: &Json) -> Result<RoutingPolicy, JsonError> {
        let kind = req_str(doc, "kind")?;
        let kind = RoutingKind::from_name(kind)
            .ok_or_else(|| JsonError::schema(format!("unknown routing kind '{kind}'")))?;
        let ewma_alpha = req_f64(doc, "ewma_alpha")?;
        match kind {
            RoutingKind::LatencyAware => {
                if !(ewma_alpha.is_finite() && ewma_alpha > 0.0 && ewma_alpha <= 1.0) {
                    return Err(JsonError::schema(
                        "the EWMA smoothing factor must be in (0, 1]",
                    ));
                }
            }
            _ => {
                if ewma_alpha != 0.0 {
                    return Err(JsonError::schema(
                        "ewma_alpha must be 0 for policies that keep no EWMA",
                    ));
                }
            }
        }
        Ok(RoutingPolicy { kind, ewma_alpha })
    }

    /// Parses a policy back from [`RoutingPolicy::to_json`] output.
    ///
    /// # Errors
    /// Returns a [`JsonError`] on syntax errors or invalid fields.
    pub fn from_json(text: &str) -> Result<RoutingPolicy, JsonError> {
        Self::from_json_value(&Json::parse(text)?)
    }
}

impl Default for RoutingPolicy {
    fn default() -> Self {
        RoutingPolicy::round_robin()
    }
}

fn argmin(views: &[ReplicaView], key: impl Fn(&ReplicaView) -> f64) -> usize {
    let mut best = 0usize;
    for (i, view) in views.iter().enumerate().skip(1) {
        if key(view) < key(&views[best]) {
            best = i;
        }
    }
    best
}

/// Whether an [`AutoscalePolicy`] is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AutoscaleKind {
    /// No autoscaling: the whole replica pool serves for the whole day —
    /// the identity policy (static provisioning).
    None,
    /// Threshold-reactive scaling on fleet utilization per interval.
    Reactive,
}

impl AutoscaleKind {
    /// Stable machine name (used in labels, JSON and the fingerprint).
    pub fn name(&self) -> &'static str {
        match self {
            AutoscaleKind::None => "none",
            AutoscaleKind::Reactive => "reactive",
        }
    }
}

/// One autoscale decision at an interval boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AutoscaleAction {
    /// Activate one more pool replica.
    ScaleOut,
    /// Drain one live replica (it finishes routed work, gets no new
    /// traffic).
    ScaleIn,
    /// Leave the live set unchanged.
    Hold,
}

impl AutoscaleAction {
    /// Stable machine name (used in the autoscale timeline).
    pub fn name(&self) -> &'static str {
        match self {
            AutoscaleAction::ScaleOut => "scale_out",
            AutoscaleAction::ScaleIn => "scale_in",
            AutoscaleAction::Hold => "hold",
        }
    }
}

/// When and how the fleet resizes its live replica set, driven by the
/// [`max_sustainable_qps`] capacity search: fleet utilization is the
/// interval's offered rate over the summed capacity of the live replicas.
///
/// [`AutoscalePolicy::none`] — the default — keeps every pool replica live
/// for the whole day (static provisioning) and is the identity the
/// degenerate-fleet anchor leans on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscalePolicy {
    kind: AutoscaleKind,
    scale_out_threshold: f64,
    scale_in_threshold: f64,
    cooldown_intervals: u32,
    min_replicas: u32,
    max_replicas: u32,
}

impl AutoscalePolicy {
    /// No autoscaling (static provisioning) — the identity policy.
    pub fn none() -> AutoscalePolicy {
        AutoscalePolicy {
            kind: AutoscaleKind::None,
            scale_out_threshold: 0.0,
            scale_in_threshold: 0.0,
            cooldown_intervals: 0,
            min_replicas: 0,
            max_replicas: 0,
        }
    }

    /// Threshold-reactive scaling: scale out when interval utilization
    /// exceeds `scale_out_threshold`, scale in below `scale_in_threshold`,
    /// waiting `cooldown_intervals` full intervals after each action, and
    /// keeping the live count within `[min_replicas, max_replicas]`.
    ///
    /// # Panics
    /// Panics unless `0 < scale_in_threshold < scale_out_threshold` (both
    /// finite) and `1 <= min_replicas <= max_replicas`.
    pub fn reactive(
        scale_out_threshold: f64,
        scale_in_threshold: f64,
        cooldown_intervals: u32,
        min_replicas: u32,
        max_replicas: u32,
    ) -> AutoscalePolicy {
        assert!(
            scale_in_threshold.is_finite()
                && scale_out_threshold.is_finite()
                && scale_in_threshold > 0.0
                && scale_in_threshold < scale_out_threshold,
            "thresholds must satisfy 0 < scale_in < scale_out"
        );
        assert!(
            min_replicas >= 1 && min_replicas <= max_replicas,
            "replica bounds must satisfy 1 <= min <= max"
        );
        AutoscalePolicy {
            kind: AutoscaleKind::Reactive,
            scale_out_threshold,
            scale_in_threshold,
            cooldown_intervals,
            min_replicas,
            max_replicas,
        }
    }

    /// Whether this is the no-op identity policy.
    pub fn is_none(&self) -> bool {
        self.kind == AutoscaleKind::None
    }

    /// Whether the policy is active.
    pub fn kind(&self) -> AutoscaleKind {
        self.kind
    }

    /// Utilization above which the fleet scales out.
    pub fn scale_out_threshold(&self) -> f64 {
        self.scale_out_threshold
    }

    /// Utilization below which the fleet scales in.
    pub fn scale_in_threshold(&self) -> f64 {
        self.scale_in_threshold
    }

    /// Full intervals to hold after each scaling action.
    pub fn cooldown_intervals(&self) -> u32 {
        self.cooldown_intervals
    }

    /// Fewest replicas the policy keeps live.
    pub fn min_replicas(&self) -> u32 {
        self.min_replicas
    }

    /// Most replicas the policy activates.
    pub fn max_replicas(&self) -> u32 {
        self.max_replicas
    }

    /// Human-readable label, e.g. `"reactive(0.8/0.4, cooldown 2, 1..4)"`.
    pub fn label(&self) -> String {
        match self.kind {
            AutoscaleKind::None => "none".to_string(),
            AutoscaleKind::Reactive => format!(
                "reactive({}/{}, cooldown {}, {}..{})",
                self.scale_out_threshold,
                self.scale_in_threshold,
                self.cooldown_intervals,
                self.min_replicas,
                self.max_replicas
            ),
        }
    }

    /// The pure scaling decision at one interval boundary: `offered_qps`
    /// is the upcoming interval's mean offered rate, `live_capacity_qps`
    /// the summed [`max_sustainable_qps`] capacity of the live replicas,
    /// `live`/`pool` the live and provisioned replica counts, and
    /// `cooldown_remaining` how many intervals of a previous action's
    /// cooldown are still pending.
    pub fn decide(
        &self,
        offered_qps: f64,
        live_capacity_qps: f64,
        live: u32,
        pool: u32,
        cooldown_remaining: u32,
    ) -> AutoscaleAction {
        if self.kind == AutoscaleKind::None || cooldown_remaining > 0 {
            return AutoscaleAction::Hold;
        }
        let utilization = if live_capacity_qps > 0.0 {
            offered_qps / live_capacity_qps
        } else {
            f64::INFINITY
        };
        let ceiling = self.max_replicas.min(pool);
        if utilization > self.scale_out_threshold && live < ceiling {
            AutoscaleAction::ScaleOut
        } else if utilization < self.scale_in_threshold && live > self.min_replicas.max(1) {
            AutoscaleAction::ScaleIn
        } else {
            AutoscaleAction::Hold
        }
    }

    /// The policy as a [`Json`] document.
    pub fn to_json_value(&self) -> Json {
        let mut doc = Json::object();
        doc.set("kind", Json::Str(self.kind.name().to_string()));
        doc.set("scale_out_threshold", Json::Num(self.scale_out_threshold));
        doc.set("scale_in_threshold", Json::Num(self.scale_in_threshold));
        doc.set(
            "cooldown_intervals",
            Json::UInt(self.cooldown_intervals as u64),
        );
        doc.set("min_replicas", Json::UInt(self.min_replicas as u64));
        doc.set("max_replicas", Json::UInt(self.max_replicas as u64));
        doc
    }

    /// Serializes the policy to compact JSON.
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// Parses a policy from an [`AutoscalePolicy::to_json_value`] document.
    ///
    /// # Errors
    /// Returns a [`JsonError`] on unknown kinds or invalid parameters.
    pub fn from_json_value(doc: &Json) -> Result<AutoscalePolicy, JsonError> {
        let kind = req_str(doc, "kind")?;
        let scale_out_threshold = req_f64(doc, "scale_out_threshold")?;
        let scale_in_threshold = req_f64(doc, "scale_in_threshold")?;
        let cooldown_intervals = req_u32(doc, "cooldown_intervals")?;
        let min_replicas = req_u32(doc, "min_replicas")?;
        let max_replicas = req_u32(doc, "max_replicas")?;
        match kind {
            "none" => {
                let policy = AutoscalePolicy::none();
                if (scale_out_threshold, scale_in_threshold, cooldown_intervals) != (0.0, 0.0, 0)
                    || (min_replicas, max_replicas) != (0, 0)
                {
                    return Err(JsonError::schema(
                        "an inactive autoscale policy carries all-zero parameters",
                    ));
                }
                Ok(policy)
            }
            "reactive" => {
                if !(scale_in_threshold.is_finite()
                    && scale_out_threshold.is_finite()
                    && scale_in_threshold > 0.0
                    && scale_in_threshold < scale_out_threshold)
                {
                    return Err(JsonError::schema(
                        "thresholds must satisfy 0 < scale_in < scale_out",
                    ));
                }
                if !(min_replicas >= 1 && min_replicas <= max_replicas) {
                    return Err(JsonError::schema(
                        "replica bounds must satisfy 1 <= min <= max",
                    ));
                }
                Ok(AutoscalePolicy {
                    kind: AutoscaleKind::Reactive,
                    scale_out_threshold,
                    scale_in_threshold,
                    cooldown_intervals,
                    min_replicas,
                    max_replicas,
                })
            }
            other => Err(JsonError::schema(format!(
                "unknown autoscale kind '{other}'"
            ))),
        }
    }

    /// Parses a policy back from [`AutoscalePolicy::to_json`] output.
    ///
    /// # Errors
    /// Returns a [`JsonError`] on syntax errors or invalid fields.
    pub fn from_json(text: &str) -> Result<AutoscalePolicy, JsonError> {
        Self::from_json_value(&Json::parse(text)?)
    }
}

impl Default for AutoscalePolicy {
    fn default() -> Self {
        AutoscalePolicy::none()
    }
}

/// Default autoscale interval: one simulated second.
pub const DEFAULT_AUTOSCALE_INTERVAL_US: f64 = 1_000_000.0;

/// The pure-data fleet configuration: routing, autoscaling and the
/// autoscale interval. Everything here partitions the fleet fingerprint
/// (except for the identity spec on a 1-replica fleet, whose key is
/// byte-identical to the plain serving cell key).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetSpec {
    routing: RoutingPolicy,
    autoscale: AutoscalePolicy,
    interval_us: f64,
}

impl FleetSpec {
    /// The identity spec: round-robin routing, no autoscaling.
    pub fn new() -> FleetSpec {
        FleetSpec {
            routing: RoutingPolicy::round_robin(),
            autoscale: AutoscalePolicy::none(),
            interval_us: DEFAULT_AUTOSCALE_INTERVAL_US,
        }
    }

    /// Replaces the routing policy.
    pub fn with_routing(mut self, routing: RoutingPolicy) -> Self {
        self.routing = routing;
        self
    }

    /// Replaces the autoscale policy.
    pub fn with_autoscale(mut self, autoscale: AutoscalePolicy) -> Self {
        self.autoscale = autoscale;
        self
    }

    /// Sets the autoscale decision interval in microseconds.
    ///
    /// # Panics
    /// Panics unless the interval is finite and positive.
    pub fn with_interval_us(mut self, interval_us: f64) -> Self {
        assert!(
            interval_us.is_finite() && interval_us > 0.0,
            "the autoscale interval must be finite and positive"
        );
        self.interval_us = interval_us;
        self
    }

    /// The routing policy.
    pub fn routing(&self) -> RoutingPolicy {
        self.routing
    }

    /// The autoscale policy.
    pub fn autoscale(&self) -> AutoscalePolicy {
        self.autoscale
    }

    /// The autoscale decision interval in microseconds.
    pub fn interval_us(&self) -> f64 {
        self.interval_us
    }

    /// Whether both policies are the identity (round-robin, no
    /// autoscaling): on a 1-replica fleet an identity spec changes nothing
    /// versus plain [`ServingScenario::simulate`].
    pub fn is_identity(&self) -> bool {
        self.routing.is_identity() && self.autoscale.is_none()
    }

    /// The spec as a [`Json`] document.
    pub fn to_json_value(&self) -> Json {
        let mut doc = Json::object();
        doc.set("routing", self.routing.to_json_value());
        doc.set("autoscale", self.autoscale.to_json_value());
        doc.set("interval_us", Json::Num(self.interval_us));
        doc
    }

    /// Serializes the spec to compact JSON.
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// Parses a spec from a [`FleetSpec::to_json_value`] document.
    ///
    /// # Errors
    /// Returns a [`JsonError`] on invalid policies or intervals.
    pub fn from_json_value(doc: &Json) -> Result<FleetSpec, JsonError> {
        let routing = doc
            .get("routing")
            .ok_or_else(|| JsonError::schema("missing field 'routing'"))?;
        let autoscale = doc
            .get("autoscale")
            .ok_or_else(|| JsonError::schema("missing field 'autoscale'"))?;
        let interval_us = req_f64(doc, "interval_us")?;
        if !(interval_us.is_finite() && interval_us > 0.0) {
            return Err(JsonError::schema(
                "the autoscale interval must be finite and positive",
            ));
        }
        Ok(FleetSpec {
            routing: RoutingPolicy::from_json_value(routing)?,
            autoscale: AutoscalePolicy::from_json_value(autoscale)?,
            interval_us,
        })
    }

    /// Parses a spec back from [`FleetSpec::to_json`] output.
    ///
    /// # Errors
    /// Returns a [`JsonError`] on syntax errors or invalid fields.
    pub fn from_json(text: &str) -> Result<FleetSpec, JsonError> {
        Self::from_json_value(&Json::parse(text)?)
    }
}

impl Default for FleetSpec {
    fn default() -> Self {
        FleetSpec::new()
    }
}

/// One replica group: a [`ServingScenario`] template over its own
/// [`Experiment`] deployment, expanded into `replicas` identical replica
/// instances. The scenario carries the group's batching policy, SLA,
/// retry/admission policies and — per-replica fault domains being the
/// fleet layer's job — its [`FaultPlan`](crate::FaultPlan), applied to
/// every replica of the group (give failing replicas their own
/// single-replica group). The scenario's *own* traffic, request count and
/// seed are ignored at fleet level: arrivals come from the fleet-wide
/// trace via routing.
#[derive(Debug, Clone)]
pub struct ReplicaGroup {
    experiment: Experiment,
    scenario: ServingScenario,
    replicas: u32,
}

impl ReplicaGroup {
    /// A group of one replica serving `scenario` on `experiment`'s
    /// deployment.
    ///
    /// # Panics
    /// Panics when the scenario's fault plan names a device outside the
    /// experiment's deployment.
    pub fn new(experiment: Experiment, scenario: ServingScenario) -> ReplicaGroup {
        scenario
            .faults()
            .validate(experiment.cluster().num_devices());
        ReplicaGroup {
            experiment,
            scenario,
            replicas: 1,
        }
    }

    /// Sets how many identical replicas the group expands into.
    ///
    /// # Panics
    /// Panics if `replicas` is zero.
    pub fn with_replicas(mut self, replicas: u32) -> Self {
        assert!(replicas > 0, "a replica group needs at least one replica");
        self.replicas = replicas;
        self
    }

    /// The group's deployment template.
    pub fn experiment(&self) -> &Experiment {
        &self.experiment
    }

    /// The group's serving-scenario template.
    pub fn scenario(&self) -> &ServingScenario {
        &self.scenario
    }

    /// Number of replica instances the group expands into.
    pub fn replicas(&self) -> u32 {
        self.replicas
    }
}

/// A fleet: a fleet-wide arrival trace routed across replica groups, with
/// optional autoscaling and a shared [`CampaignCache`]. See the module
/// docs for the architecture and the invariants the test suite anchors.
#[derive(Debug, Clone)]
pub struct Fleet {
    traffic: TrafficModel,
    requests: u32,
    seed: u64,
    spec: FleetSpec,
    groups: Vec<ReplicaGroup>,
    cache: Option<Arc<CampaignCache>>,
}

impl Fleet {
    /// A fleet offering `requests` arrivals drawn from `traffic` with
    /// `seed`, with no replica groups yet (add at least one with
    /// [`Fleet::with_group`]) and the identity spec.
    ///
    /// # Panics
    /// Panics if `requests` is zero.
    pub fn new(traffic: TrafficModel, requests: u32, seed: u64) -> Fleet {
        assert!(requests > 0, "a fleet needs at least one request");
        Fleet {
            traffic,
            requests,
            seed,
            spec: FleetSpec::new(),
            groups: Vec::new(),
            cache: None,
        }
    }

    /// The degenerate 1-replica fleet over `scenario`: fleet traffic,
    /// request count and seed are taken from the scenario, so with the
    /// default identity spec the fleet is bit-exact with
    /// `scenario.simulate(&experiment, ...)`.
    pub fn single(experiment: Experiment, scenario: ServingScenario) -> Fleet {
        let traffic = scenario.traffic();
        let requests = scenario.requests();
        let seed = scenario.seed();
        Fleet::new(traffic, requests, seed).with_group(ReplicaGroup::new(experiment, scenario))
    }

    /// Adds a replica group.
    pub fn with_group(mut self, group: ReplicaGroup) -> Self {
        self.groups.push(group);
        self
    }

    /// Replaces the whole fleet spec.
    pub fn with_spec(mut self, spec: FleetSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Replaces the routing policy.
    pub fn with_routing(mut self, routing: RoutingPolicy) -> Self {
        self.spec = self.spec.with_routing(routing);
        self
    }

    /// Replaces the autoscale policy.
    pub fn with_autoscale(mut self, autoscale: AutoscalePolicy) -> Self {
        self.spec = self.spec.with_autoscale(autoscale);
        self
    }

    /// Sets the autoscale decision interval in microseconds.
    ///
    /// # Panics
    /// Panics unless the interval is finite and positive.
    pub fn with_interval_us(mut self, interval_us: f64) -> Self {
        self.spec = self.spec.with_interval_us(interval_us);
        self
    }

    /// Attaches a shared [`CampaignCache`]: every replica's pricing (and
    /// the capacity probes) key through it, so N identical replicas price
    /// each distinct batch shape exactly once.
    pub fn with_cache(mut self, cache: Arc<CampaignCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The fleet-wide traffic model.
    pub fn traffic(&self) -> TrafficModel {
        self.traffic
    }

    /// Number of requests in the fleet-wide arrival trace.
    pub fn requests(&self) -> u32 {
        self.requests
    }

    /// The arrival-trace seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The fleet spec (routing, autoscaling, interval).
    pub fn spec(&self) -> FleetSpec {
        self.spec
    }

    /// The replica groups.
    pub fn groups(&self) -> &[ReplicaGroup] {
        &self.groups
    }

    /// Total provisioned replicas across all groups.
    pub fn pool_size(&self) -> u32 {
        self.groups.iter().map(|g| g.replicas).sum()
    }

    /// Whether this fleet is the degenerate identity: exactly one replica
    /// under the identity spec.
    pub fn is_identity(&self) -> bool {
        self.pool_size() == 1 && self.spec.is_identity()
    }

    /// The canonical fleet cell key: the replica-0 cell document extended
    /// with a `fleet` axis — except for the identity fleet, whose key is
    /// **byte-identical** to its replica's plain
    /// [`Experiment::fingerprint`] cell key (with the scenario's fault
    /// plan folded in the way serving pricing folds it), so a degenerate
    /// fleet shares cells with the scenario it wraps.
    ///
    /// # Panics
    /// Panics if the fleet has no replica groups.
    pub fn fingerprint(&self, workload: &Workload, scheme: &Scheme) -> String {
        let g0 = self
            .groups
            .first()
            .expect("a fleet needs at least one replica group");
        let replica0 = pricing_experiment(g0).cell_doc(workload, scheme);
        let groups: Vec<_> = self
            .groups
            .iter()
            .map(|g| {
                (
                    g.experiment.cluster().clone(),
                    g.experiment.streams(),
                    g.scenario.faults().clone(),
                    g.replicas,
                )
            })
            .collect();
        crate::fingerprint::fleet_key(
            replica0,
            &self.spec.routing,
            &self.spec.autoscale,
            self.spec.interval_us,
            &groups,
            self.is_identity(),
        )
    }

    /// Routes the fleet-wide arrival trace across replicas, applies the
    /// autoscale policy per interval, runs every replica's sub-trace
    /// through the [`ServingScenario`] dispatch loop, and aggregates the
    /// [`FleetReport`].
    ///
    /// Deterministic and thread-count-invariant: the router and autoscaler
    /// are pure functions, each replica simulation is the unchanged
    /// single-threaded serving loop, and pricing inherits the experiment
    /// layer's invariance.
    ///
    /// # Panics
    /// Panics if the fleet has no replica groups.
    pub fn simulate(&self, workload: &Workload, scheme: &Scheme) -> FleetReport {
        assert!(
            !self.groups.is_empty(),
            "a fleet needs at least one replica group"
        );
        let routing = self.spec.routing;
        let autoscale = self.spec.autoscale;
        let interval_us = self.spec.interval_us;

        // Expand groups into the replica pool, attaching the shared cache.
        struct Replica {
            group: u32,
            experiment: Experiment,
            scenario: ServingScenario,
            arrivals: Vec<f64>,
            // Active [join, leave) windows; `f64::INFINITY` marks "still
            // live" until the fleet makespan is known.
            windows: Vec<(f64, f64)>,
            // Router-side state.
            routed: u64,
            outstanding: VecDeque<f64>,
            est_free_us: f64,
            est_service_us: f64,
            ewma_us: f64,
        }
        let mut pool: Vec<Replica> = Vec::new();
        for (gi, group) in self.groups.iter().enumerate() {
            let experiment = match &self.cache {
                Some(cache) => group.experiment.clone().with_cache(cache.clone()),
                None => group.experiment.clone(),
            };
            for _ in 0..group.replicas {
                pool.push(Replica {
                    group: gi as u32,
                    experiment: experiment.clone(),
                    scenario: group.scenario.clone(),
                    arrivals: Vec::new(),
                    windows: Vec::new(),
                    routed: 0,
                    outstanding: VecDeque::new(),
                    est_free_us: 0.0,
                    est_service_us: 0.0,
                    ewma_us: 0.0,
                });
            }
        }

        // Router-side service estimates: one probe per replica, priced
        // through the ordinary (cached) experiment path. Round-robin
        // needs none.
        if routing.kind != RoutingKind::RoundRobin {
            for replica in &mut pool {
                let shape = replica.scenario.policy().shape(1);
                let report = pricing_experiment_parts(&replica.experiment, &replica.scenario)
                    .with_batch_size(shape)
                    .run(workload, scheme);
                replica.est_service_us = report.latency_us;
                replica.ewma_us = report.latency_us;
            }
        }

        // Per-group replica capacity, driving autoscale utilization.
        let autoscaling = !autoscale.is_none();
        let group_capacity: Vec<f64> = if autoscaling {
            self.groups
                .iter()
                .map(|group| {
                    let experiment = match &self.cache {
                        Some(cache) => group.experiment.clone().with_cache(cache.clone()),
                        None => group.experiment.clone(),
                    };
                    max_sustainable_qps(&experiment, workload, scheme, &group.scenario).max_qps
                })
                .collect()
        } else {
            vec![0.0; self.groups.len()]
        };

        let arrivals = self.traffic.arrival_times_us(self.requests, self.seed);

        // The live set: pool indices, ascending. Without autoscaling the
        // whole pool serves all day; with it, the day starts at
        // min_replicas and the policy takes over at interval boundaries.
        let pool_size = pool.len() as u32;
        let initial = if autoscaling {
            autoscale.min_replicas().clamp(1, pool_size) as usize
        } else {
            pool.len()
        };
        let mut live: Vec<usize> = (0..initial).collect();
        for &r in &live {
            pool[r].windows.push((0.0, f64::INFINITY));
        }
        let mut events: Vec<AutoscaleEvent> = Vec::new();
        let mut cursor = 0u64;
        let needs_estimates = routing.kind != RoutingKind::RoundRobin;

        // Walk arrivals in order; at each interval boundary (autoscaling
        // only) decide on the upcoming interval's offered rate before
        // routing its arrivals.
        let mut next_boundary = if autoscaling {
            interval_us
        } else {
            f64::INFINITY
        };
        let mut i = 0usize;
        while i < arrivals.len() {
            let t = arrivals[i];
            if autoscaling && t >= next_boundary {
                // Entering a new interval: count its offered arrivals.
                let boundary =
                    next_boundary + interval_us * ((t - next_boundary) / interval_us).floor();
                let window_end = boundary + interval_us;
                let count = arrivals[i..]
                    .iter()
                    .take_while(|&&a| a < window_end)
                    .count();
                let offered_qps = count as f64 * 1e6 / interval_us;
                let interval = (boundary / interval_us).round() as u32;
                // Remaining cooldown = the policy's cooldown minus full
                // intervals elapsed since the last action.
                let cooldown = match events.last() {
                    Some(last) => autoscale
                        .cooldown_intervals()
                        .saturating_sub(interval.saturating_sub(last.interval)),
                    None => 0,
                };
                let live_capacity: f64 = live
                    .iter()
                    .map(|&r| group_capacity[pool[r].group as usize])
                    .sum();
                let action = autoscale.decide(
                    offered_qps,
                    live_capacity,
                    live.len() as u32,
                    pool_size,
                    cooldown,
                );
                match action {
                    AutoscaleAction::ScaleOut => {
                        // Activate the lowest-index replica not currently
                        // live (a previously drained replica may rejoin).
                        let joiner = (0..pool.len())
                            .find(|r| !live.contains(r))
                            .expect("decide() only scales out below the pool size");
                        live.push(joiner);
                        live.sort_unstable();
                        pool[joiner].windows.push((boundary, f64::INFINITY));
                    }
                    AutoscaleAction::ScaleIn => {
                        // Drain the highest-index live replica: it stops
                        // receiving traffic but finishes every routed
                        // request (the drain contract — zero loss).
                        let leaver = live.pop().expect("decide() only scales in above one");
                        let window = pool[leaver]
                            .windows
                            .last_mut()
                            .expect("a live replica has an open window");
                        window.1 = boundary;
                    }
                    AutoscaleAction::Hold => {}
                }
                if action != AutoscaleAction::Hold {
                    events.push(AutoscaleEvent {
                        interval,
                        at_us: boundary,
                        action: action.name().to_string(),
                        live_replicas: live.len() as u32,
                        offered_qps,
                        utilization: if live_capacity > 0.0 {
                            offered_qps / live_capacity
                        } else {
                            f64::INFINITY
                        },
                    });
                }
                next_boundary = window_end;
            }

            // Retire estimated completions, then route.
            if needs_estimates {
                for &r in &live {
                    while pool[r].outstanding.front().is_some_and(|&done| done <= t) {
                        pool[r].outstanding.pop_front();
                    }
                }
            }
            let views: Vec<ReplicaView> = live
                .iter()
                .map(|&r| ReplicaView {
                    replica: r as u32,
                    routed: pool[r].routed,
                    outstanding: pool[r].outstanding.len() as u32,
                    ewma_latency_us: pool[r].ewma_us,
                })
                .collect();
            let choice = live[routing.route(cursor, &views)];
            let replica = &mut pool[choice];
            replica.arrivals.push(t);
            replica.routed += 1;
            cursor += 1;
            if needs_estimates {
                let start = if replica.est_free_us > t {
                    replica.est_free_us
                } else {
                    t
                };
                let done = start + replica.est_service_us;
                replica.est_free_us = done;
                replica.outstanding.push_back(done);
                if routing.kind == RoutingKind::LatencyAware {
                    let alpha = routing.ewma_alpha;
                    replica.ewma_us = alpha * (done - t) + (1.0 - alpha) * replica.ewma_us;
                }
            }
            i += 1;
        }

        // Simulate every replica that was ever live on its routed
        // sub-trace (an idle-but-live replica yields an idle report and
        // still bills device time; a never-activated one costs nothing and
        // is excluded).
        let mut replicas: Vec<FleetReplicaReport> = Vec::new();
        let mut all_latencies: Vec<f64> = Vec::new();
        let mut served = 0u32;
        let mut shed = 0u32;
        let mut failed = 0u32;
        let mut routed_total = 0u64;
        let mut within_sla = 0u64;
        let mut makespan_us = 0.0f64;
        for (r, replica) in pool.iter().enumerate() {
            if replica.windows.is_empty() {
                debug_assert!(replica.arrivals.is_empty());
                continue;
            }
            let (report, latencies) = replica.scenario.simulate_trace(
                &replica.experiment,
                workload,
                scheme,
                &replica.arrivals,
            );
            served += report.served_requests;
            shed += report.shed_requests;
            failed += report.failed_requests;
            routed_total += report.requests as u64;
            within_sla += latencies.partition_point(|&l| l <= replica.scenario.sla_us()) as u64;
            if report.makespan_us > makespan_us {
                makespan_us = report.makespan_us;
            }
            all_latencies.extend_from_slice(&latencies);
            replicas.push(FleetReplicaReport {
                replica: r as u32,
                group: replica.group,
                device: replica.experiment.gpu().name.clone(),
                devices: replica.experiment.cluster().num_devices() as u32,
                routed_requests: report.requests,
                active_from_us: replica.windows[0].0,
                active_until_us: 0.0, // patched below once the makespan is known
                report,
            });
        }
        debug_assert_eq!(routed_total, self.requests as u64);
        debug_assert_eq!(served + shed + failed, self.requests);

        // Cost: each replica bills its devices over its live windows, a
        // still-open window closing at the fleet makespan, and a drained
        // replica whose routed work overran its drain point billing until
        // its own last completion (the drain contract is not free).
        let mut device_us = 0.0f64;
        for entry in &mut replicas {
            let replica = &pool[entry.replica as usize];
            let mut active_until = entry.active_from_us;
            let mut active_us = 0.0f64;
            let last = replica.windows.len() - 1;
            for (w, &(join, leave)) in replica.windows.iter().enumerate() {
                let mut leave = if leave.is_finite() {
                    leave
                } else {
                    makespan_us
                };
                if w == last && entry.report.makespan_us > leave {
                    leave = entry.report.makespan_us;
                }
                active_us += leave - join;
                active_until = leave;
            }
            entry.active_until_us = active_until;
            device_us += entry.devices as f64 * active_us;
        }

        all_latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let served_f = served as f64;
        let offered_f = self.requests as f64;
        FleetReport {
            workload: workload.dataset_label(),
            scheme: scheme.paper_label(),
            traffic: self.traffic.name().to_string(),
            offered_qps: self.traffic.offered_qps(),
            requests: self.requests,
            seed: self.seed,
            routing: routing.label(),
            autoscale: autoscale.label(),
            served_requests: served,
            shed_requests: shed,
            failed_requests: failed,
            availability: served_f / offered_f,
            achieved_qps: if makespan_us > 0.0 {
                served_f / makespan_us * 1e6
            } else {
                0.0
            },
            goodput_qps: if makespan_us > 0.0 {
                within_sla as f64 / makespan_us * 1e6
            } else {
                0.0
            },
            sla_attainment: within_sla as f64 / offered_f,
            latency: if all_latencies.is_empty() {
                LatencyStats::zeroed()
            } else {
                LatencyStats::from_sorted(&all_latencies)
            },
            makespan_us,
            cost: FleetCost {
                device_us,
                device_hours: device_us / 3.6e9,
            },
            autoscale_events: events,
            replicas,
        }
    }
}

/// The pricing experiment of one replica group: the group's experiment
/// with the scenario's fault plan folded in, exactly the way
/// [`ServingScenario::simulate`] prices — so fleet probes and replica
/// pricing share cache cells with plain serving runs.
fn pricing_experiment(group: &ReplicaGroup) -> Experiment {
    pricing_experiment_parts(&group.experiment, &group.scenario)
}

fn pricing_experiment_parts(experiment: &Experiment, scenario: &ServingScenario) -> Experiment {
    if scenario.faults().is_empty() {
        experiment.clone()
    } else {
        experiment.clone().with_faults(scenario.faults().clone())
    }
}

/// One replica's share of a fleet day.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReplicaReport {
    /// Pool index of the replica (stable across scale events).
    pub replica: u32,
    /// Index of the [`ReplicaGroup`] the replica was expanded from.
    pub group: u32,
    /// Root device name of the replica's deployment.
    pub device: String,
    /// Devices in the replica's cluster.
    pub devices: u32,
    /// Requests the router assigned to this replica.
    pub routed_requests: u32,
    /// When the replica first joined the live set, in microseconds.
    pub active_from_us: f64,
    /// When the replica's billing window closed: the fleet makespan for a
    /// still-live replica, or the later of its drain point and its own
    /// last completion for a drained one.
    pub active_until_us: f64,
    /// The replica's full serving report over its routed sub-trace.
    pub report: ServingReport,
}

/// One autoscale action on the fleet timeline (holds are not recorded).
#[derive(Debug, Clone, PartialEq)]
pub struct AutoscaleEvent {
    /// Interval index (interval 0 starts at time zero).
    pub interval: u32,
    /// When the action took effect, in microseconds.
    pub at_us: f64,
    /// [`AutoscaleAction::name`] of the action (`"scale_out"` /
    /// `"scale_in"`).
    pub action: String,
    /// Live replicas after the action.
    pub live_replicas: u32,
    /// The upcoming interval's mean offered rate, in requests per second.
    pub offered_qps: f64,
    /// Offered rate over live capacity at decision time.
    pub utilization: f64,
}

/// The fleet's device-time bill.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetCost {
    /// Summed device-microseconds across replicas' live windows.
    pub device_us: f64,
    /// `device_us` in device-hours — the cost axis of the cost/SLA Pareto
    /// frontier.
    pub device_hours: f64,
}

/// The result of one [`Fleet::simulate`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Dataset label of the served workload.
    pub workload: String,
    /// Paper-style scheme label.
    pub scheme: String,
    /// Traffic-model name of the fleet-wide trace.
    pub traffic: String,
    /// Mean offered load in requests per second.
    pub offered_qps: f64,
    /// Requests the fleet-wide trace offered.
    pub requests: u32,
    /// Arrival-trace seed.
    pub seed: u64,
    /// [`RoutingPolicy::label`] of the routing policy.
    pub routing: String,
    /// [`AutoscalePolicy::label`] of the autoscale policy.
    pub autoscale: String,
    /// Requests that completed, summed over replicas.
    pub served_requests: u32,
    /// Requests shed by replicas' admission policies.
    pub shed_requests: u32,
    /// Requests lost to crashes and not recovered.
    pub failed_requests: u32,
    /// `served_requests / requests`, in `[0, 1]`.
    pub availability: f64,
    /// Requests per second completed over the fleet makespan.
    pub achieved_qps: f64,
    /// Requests per second completed *within* their replica's SLA over the
    /// fleet makespan.
    pub goodput_qps: f64,
    /// Fraction of **offered** requests served within their replica's SLA,
    /// in `[0, 1]` — the attainment axis of the cost/SLA Pareto frontier.
    pub sla_attainment: f64,
    /// Exact fleet-wide per-request latency distribution (merged over all
    /// replicas' served requests).
    pub latency: LatencyStats,
    /// Completion time of the last batch on any replica, in microseconds
    /// from the first arrival.
    pub makespan_us: f64,
    /// The device-time bill.
    pub cost: FleetCost,
    /// Scale-out/in actions in timeline order.
    pub autoscale_events: Vec<AutoscaleEvent>,
    /// Per-replica reports, in pool order (only replicas that were live at
    /// some point appear).
    pub replicas: Vec<FleetReplicaReport>,
}

impl FleetReport {
    /// Serializes the report to compact JSON.
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// The report as a [`Json`] document.
    pub fn to_json_value(&self) -> Json {
        let mut doc = Json::object();
        doc.set("schema", Json::Str(FLEET_REPORT_SCHEMA.to_string()));
        doc.set("workload", Json::Str(self.workload.clone()));
        doc.set("scheme", Json::Str(self.scheme.clone()));
        doc.set("traffic", Json::Str(self.traffic.clone()));
        doc.set("offered_qps", Json::Num(self.offered_qps));
        doc.set("requests", Json::UInt(self.requests as u64));
        doc.set("seed", Json::UInt(self.seed));
        doc.set("routing", Json::Str(self.routing.clone()));
        doc.set("autoscale", Json::Str(self.autoscale.clone()));
        doc.set("served_requests", Json::UInt(self.served_requests as u64));
        doc.set("shed_requests", Json::UInt(self.shed_requests as u64));
        doc.set("failed_requests", Json::UInt(self.failed_requests as u64));
        doc.set("availability", Json::Num(self.availability));
        doc.set("achieved_qps", Json::Num(self.achieved_qps));
        doc.set("goodput_qps", Json::Num(self.goodput_qps));
        doc.set("sla_attainment", Json::Num(self.sla_attainment));
        let mut latency = Json::object();
        latency.set("p50_us", Json::Num(self.latency.p50_us));
        latency.set("p95_us", Json::Num(self.latency.p95_us));
        latency.set("p99_us", Json::Num(self.latency.p99_us));
        latency.set("max_us", Json::Num(self.latency.max_us));
        latency.set("mean_us", Json::Num(self.latency.mean_us));
        doc.set("latency", latency);
        doc.set("makespan_us", Json::Num(self.makespan_us));
        let mut cost = Json::object();
        cost.set("device_us", Json::Num(self.cost.device_us));
        cost.set("device_hours", Json::Num(self.cost.device_hours));
        doc.set("cost", cost);
        doc.set(
            "autoscale_events",
            Json::Arr(
                self.autoscale_events
                    .iter()
                    .map(|e| {
                        let mut obj = Json::object();
                        obj.set("interval", Json::UInt(e.interval as u64));
                        obj.set("at_us", Json::Num(e.at_us));
                        obj.set("action", Json::Str(e.action.clone()));
                        obj.set("live_replicas", Json::UInt(e.live_replicas as u64));
                        obj.set("offered_qps", Json::Num(e.offered_qps));
                        obj.set("utilization", Json::Num(e.utilization));
                        obj
                    })
                    .collect(),
            ),
        );
        doc.set(
            "replicas",
            Json::Arr(
                self.replicas
                    .iter()
                    .map(|r| {
                        let mut obj = Json::object();
                        obj.set("replica", Json::UInt(r.replica as u64));
                        obj.set("group", Json::UInt(r.group as u64));
                        obj.set("device", Json::Str(r.device.clone()));
                        obj.set("devices", Json::UInt(r.devices as u64));
                        obj.set("routed_requests", Json::UInt(r.routed_requests as u64));
                        obj.set("active_from_us", Json::Num(r.active_from_us));
                        obj.set("active_until_us", Json::Num(r.active_until_us));
                        obj.set("report", r.report.to_json_value());
                        obj
                    })
                    .collect(),
            ),
        );
        doc
    }

    /// Parses a report back from [`FleetReport::to_json`] output.
    ///
    /// # Errors
    /// Returns a [`JsonError`] on syntax errors, a wrong `schema` tag, or
    /// missing/mistyped fields.
    pub fn from_json(text: &str) -> Result<FleetReport, JsonError> {
        Self::from_json_value(&Json::parse(text)?)
    }

    /// Parses a report from an already-parsed [`Json`] document.
    ///
    /// # Errors
    /// Returns a [`JsonError`] on a wrong `schema` tag or missing fields.
    pub fn from_json_value(doc: &Json) -> Result<FleetReport, JsonError> {
        let schema = req_str(doc, "schema")?;
        if schema != FLEET_REPORT_SCHEMA {
            return Err(JsonError::schema(format!(
                "unsupported fleet-report schema '{schema}'"
            )));
        }
        let latency_doc = doc
            .get("latency")
            .ok_or_else(|| JsonError::schema("missing field 'latency'"))?;
        let latency = LatencyStats {
            p50_us: req_f64(latency_doc, "p50_us")?,
            p95_us: req_f64(latency_doc, "p95_us")?,
            p99_us: req_f64(latency_doc, "p99_us")?,
            max_us: req_f64(latency_doc, "max_us")?,
            mean_us: req_f64(latency_doc, "mean_us")?,
        };
        let cost_doc = doc
            .get("cost")
            .ok_or_else(|| JsonError::schema("missing field 'cost'"))?;
        let cost = FleetCost {
            device_us: req_f64(cost_doc, "device_us")?,
            device_hours: req_f64(cost_doc, "device_hours")?,
        };
        let autoscale_events = doc
            .get("autoscale_events")
            .and_then(Json::as_array)
            .ok_or_else(|| JsonError::schema("field 'autoscale_events' is not an array"))?
            .iter()
            .map(|e| {
                Ok(AutoscaleEvent {
                    interval: req_u32(e, "interval")?,
                    at_us: req_f64(e, "at_us")?,
                    action: req_str(e, "action")?.to_string(),
                    live_replicas: req_u32(e, "live_replicas")?,
                    offered_qps: req_f64(e, "offered_qps")?,
                    utilization: req_f64(e, "utilization")?,
                })
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        let replicas = doc
            .get("replicas")
            .and_then(Json::as_array)
            .ok_or_else(|| JsonError::schema("field 'replicas' is not an array"))?
            .iter()
            .map(|r| {
                let report = r
                    .get("report")
                    .ok_or_else(|| JsonError::schema("missing field 'report'"))?;
                Ok(FleetReplicaReport {
                    replica: req_u32(r, "replica")?,
                    group: req_u32(r, "group")?,
                    device: req_str(r, "device")?.to_string(),
                    devices: req_u32(r, "devices")?,
                    routed_requests: req_u32(r, "routed_requests")?,
                    active_from_us: req_f64(r, "active_from_us")?,
                    active_until_us: req_f64(r, "active_until_us")?,
                    report: ServingReport::from_json_value(report)?,
                })
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        Ok(FleetReport {
            workload: req_str(doc, "workload")?.to_string(),
            scheme: req_str(doc, "scheme")?.to_string(),
            traffic: req_str(doc, "traffic")?.to_string(),
            offered_qps: req_f64(doc, "offered_qps")?,
            requests: req_u32(doc, "requests")?,
            seed: req_u64(doc, "seed")?,
            routing: req_str(doc, "routing")?.to_string(),
            autoscale: req_str(doc, "autoscale")?.to_string(),
            served_requests: req_u32(doc, "served_requests")?,
            shed_requests: req_u32(doc, "shed_requests")?,
            failed_requests: req_u32(doc, "failed_requests")?,
            availability: req_f64(doc, "availability")?,
            achieved_qps: req_f64(doc, "achieved_qps")?,
            goodput_qps: req_f64(doc, "goodput_qps")?,
            sla_attainment: req_f64(doc, "sla_attainment")?,
            latency,
            makespan_us: req_f64(doc, "makespan_us")?,
            cost,
            autoscale_events,
            replicas,
        })
    }
}

impl std::fmt::Display for FleetReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} under {} across {} replica(s) via {}: p99 {:.1} us, {:.1}% SLA attainment, {:.4} device-hours",
            self.workload,
            self.scheme,
            self.replicas.len(),
            self.routing,
            self.latency.p99_us,
            self.sla_attainment * 100.0,
            self.cost.device_hours
        )
    }
}

/// Indices of the Pareto-optimal `(device_hours, sla_attainment)` points:
/// a point survives unless some other point costs no more AND attains no
/// less, with at least one strict improvement. Returned ascending by cost
/// (then by attainment, then by index, for determinism).
pub fn pareto_frontier(points: &[(f64, f64)]) -> Vec<usize> {
    let mut frontier: Vec<usize> = (0..points.len())
        .filter(|&i| {
            let (cost_i, sla_i) = points[i];
            !points.iter().enumerate().any(|(j, &(cost_j, sla_j))| {
                let dominates =
                    cost_j <= cost_i && sla_j >= sla_i && (cost_j < cost_i || sla_j > sla_i);
                // Of exact duplicates, only the first survives.
                let duplicate = cost_j == cost_i && sla_j == sla_i && j < i;
                dominates || duplicate
            })
        })
        .collect();
    frontier.sort_by(|&a, &b| {
        points[a]
            .0
            .partial_cmp(&points[b].0)
            .expect("costs are finite")
            .then(
                points[a]
                    .1
                    .partial_cmp(&points[b].1)
                    .expect("attainments are finite"),
            )
            .then(a.cmp(&b))
    });
    frontier
}

fn req<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, JsonError> {
    doc.get(key)
        .ok_or_else(|| JsonError::schema(format!("missing field '{key}'")))
}

fn req_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, JsonError> {
    req(doc, key)?
        .as_str()
        .ok_or_else(|| JsonError::schema(format!("field '{key}' is not a string")))
}

fn req_f64(doc: &Json, key: &str) -> Result<f64, JsonError> {
    req(doc, key)?
        .as_f64()
        .ok_or_else(|| JsonError::schema(format!("field '{key}' is not a number")))
}

fn req_u64(doc: &Json, key: &str) -> Result<u64, JsonError> {
    req(doc, key)?
        .as_u64()
        .ok_or_else(|| JsonError::schema(format!("field '{key}' is not an unsigned integer")))
}

fn req_u32(doc: &Json, key: &str) -> Result<u32, JsonError> {
    req(doc, key)?
        .as_u32()
        .ok_or_else(|| JsonError::schema(format!("field '{key}' is not a 32-bit unsigned integer")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serving::BatchingPolicy;
    use dlrm::WorkloadScale;
    use gpu_sim::GpuConfig;

    fn test_workload() -> Workload {
        Workload::stage(dlrm_datasets::AccessPattern::MedHot)
    }

    fn test_fleet(replicas: u32) -> Fleet {
        let experiment = Experiment::new(GpuConfig::test_small(), WorkloadScale::Test);
        let scenario = ServingScenario::new(
            TrafficModel::poisson(5_000.0),
            BatchingPolicy::fixed_size(64),
        )
        .with_requests(256);
        Fleet::single(experiment, scenario.clone()).with_group(
            ReplicaGroup::new(
                Experiment::new(GpuConfig::test_small(), WorkloadScale::Test),
                scenario,
            )
            .with_replicas(replicas),
        )
    }

    #[test]
    fn round_robin_cycles_and_ties_break_low() {
        let views: Vec<ReplicaView> = (0..3)
            .map(|r| ReplicaView {
                replica: r,
                routed: 0,
                outstanding: 0,
                ewma_latency_us: 0.0,
            })
            .collect();
        let rr = RoutingPolicy::round_robin();
        let picks: Vec<usize> = (0..6).map(|c| rr.route(c, &views)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn least_outstanding_picks_the_emptiest_replica() {
        let mut views: Vec<ReplicaView> = (0..3)
            .map(|r| ReplicaView {
                replica: r,
                routed: 0,
                outstanding: 5,
                ewma_latency_us: 0.0,
            })
            .collect();
        views[1].outstanding = 2;
        assert_eq!(RoutingPolicy::least_outstanding().route(0, &views), 1);
        // Ties break to the earliest view.
        views[2].outstanding = 2;
        assert_eq!(RoutingPolicy::least_outstanding().route(0, &views), 1);
    }

    #[test]
    fn latency_aware_picks_the_fastest_estimate() {
        let mut views: Vec<ReplicaView> = (0..3)
            .map(|r| ReplicaView {
                replica: r,
                routed: 0,
                outstanding: 0,
                ewma_latency_us: 900.0,
            })
            .collect();
        views[2].ewma_latency_us = 450.0;
        assert_eq!(RoutingPolicy::latency_aware(0.3).route(7, &views), 2);
    }

    #[test]
    fn routing_policies_round_trip_through_json() {
        for policy in [
            RoutingPolicy::round_robin(),
            RoutingPolicy::least_outstanding(),
            RoutingPolicy::latency_aware(0.25),
        ] {
            let text = policy.to_json();
            let back = RoutingPolicy::from_json(&text).unwrap();
            assert_eq!(back, policy);
            assert_eq!(back.to_json(), text);
        }
        assert!(RoutingPolicy::from_json("{\"ewma_alpha\":0.0,\"kind\":\"x\"}").is_err());
    }

    #[test]
    fn autoscale_policies_round_trip_through_json() {
        for policy in [
            AutoscalePolicy::none(),
            AutoscalePolicy::reactive(0.8, 0.3, 2, 1, 4),
        ] {
            let text = policy.to_json();
            let back = AutoscalePolicy::from_json(&text).unwrap();
            assert_eq!(back, policy);
            assert_eq!(back.to_json(), text);
        }
    }

    #[test]
    fn autoscale_decisions_respect_thresholds_bounds_and_cooldown() {
        let policy = AutoscalePolicy::reactive(0.8, 0.3, 2, 1, 4);
        // Overloaded: scale out — unless cooling down or at the ceiling.
        assert_eq!(
            policy.decide(900.0, 1000.0, 2, 4, 0),
            AutoscaleAction::ScaleOut
        );
        assert_eq!(policy.decide(900.0, 1000.0, 2, 4, 1), AutoscaleAction::Hold);
        assert_eq!(policy.decide(900.0, 1000.0, 4, 4, 0), AutoscaleAction::Hold);
        // The ceiling is also capped by the provisioned pool.
        assert_eq!(policy.decide(900.0, 1000.0, 3, 3, 0), AutoscaleAction::Hold);
        // Idle: scale in — but never below the floor.
        assert_eq!(
            policy.decide(100.0, 1000.0, 2, 4, 0),
            AutoscaleAction::ScaleIn
        );
        assert_eq!(policy.decide(100.0, 1000.0, 1, 4, 0), AutoscaleAction::Hold);
        // In-band utilization holds.
        assert_eq!(policy.decide(500.0, 1000.0, 2, 4, 0), AutoscaleAction::Hold);
        // The identity policy never acts.
        assert_eq!(
            AutoscalePolicy::none().decide(1e9, 1.0, 1, 4, 0),
            AutoscaleAction::Hold
        );
    }

    #[test]
    fn fleet_specs_round_trip_through_json() {
        let spec = FleetSpec::new()
            .with_routing(RoutingPolicy::latency_aware(0.5))
            .with_autoscale(AutoscalePolicy::reactive(0.9, 0.2, 1, 1, 8))
            .with_interval_us(250_000.0);
        let text = spec.to_json();
        let back = FleetSpec::from_json(&text).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn identity_is_one_replica_with_identity_policies() {
        let experiment = Experiment::new(GpuConfig::test_small(), WorkloadScale::Test);
        let scenario = ServingScenario::new(
            TrafficModel::poisson(5_000.0),
            BatchingPolicy::fixed_size(64),
        )
        .with_requests(8);
        let fleet = Fleet::single(experiment, scenario);
        assert!(fleet.is_identity());
        assert!(!fleet
            .clone()
            .with_routing(RoutingPolicy::least_outstanding())
            .is_identity());
        assert!(!fleet
            .clone()
            .with_autoscale(AutoscalePolicy::reactive(0.8, 0.3, 1, 1, 2))
            .is_identity());
        assert!(!test_fleet(1).is_identity()); // two groups -> two replicas
    }

    #[test]
    fn request_conservation_across_replicas() {
        let fleet = test_fleet(2);
        let report = fleet.simulate(&test_workload(), &Scheme::base());
        let offered: u32 = report.replicas.iter().map(|r| r.routed_requests).sum();
        assert_eq!(offered, fleet.requests());
        assert_eq!(
            report.served_requests + report.shed_requests + report.failed_requests,
            fleet.requests()
        );
        assert_eq!(report.replicas.len(), 3);
    }

    #[test]
    fn fleet_reports_are_deterministic() {
        let fleet = test_fleet(2).with_routing(RoutingPolicy::least_outstanding());
        let workload = test_workload();
        let scheme = Scheme::combined();
        let a = fleet.simulate(&workload, &scheme);
        let b = fleet.simulate(&workload, &scheme);
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn fleet_reports_round_trip_through_json() {
        let fleet = test_fleet(2);
        let report = fleet.simulate(&test_workload(), &Scheme::base());
        let text = report.to_json();
        let back = FleetReport::from_json(&text).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.to_json(), text);
        // The schema tag is enforced.
        let bad = text.replace(FLEET_REPORT_SCHEMA, "something/else");
        assert!(FleetReport::from_json(&bad).is_err());
    }

    #[test]
    fn pareto_frontier_drops_dominated_points() {
        // (cost, attainment): point 1 dominates point 2 (cheaper, better);
        // 0 and 3 trade off; 4 duplicates 1 and is dropped.
        let points = [
            (1.0, 0.50),
            (2.0, 0.90),
            (3.0, 0.80),
            (4.0, 0.99),
            (2.0, 0.90),
        ];
        assert_eq!(pareto_frontier(&points), vec![0, 1, 3]);
        assert!(pareto_frontier(&[]).is_empty());
    }
}
