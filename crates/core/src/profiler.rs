//! The static profiling framework of the paper's Section VII.
//!
//! The paper argues against analytical models or heuristics (the hardware's
//! in-place optimizations and the proprietary compiler make them brittle) and
//! instead prescribes a profiling-driven decision procedure:
//!
//! 1. check whether the kernel is memory-latency bound (access patterns,
//!    cache misses, long-scoreboard stalls),
//! 2. check whether occupancy is maximal; if not, inspect register usage,
//! 3. if register usage is high, find OptMT by sweeping `-maxrregcount`,
//! 4. re-assess: if still latency bound,
//! 5. check for high-reuse data whose footprint fits the L2 set-aside and
//!    apply pinning,
//! 6. if latency bound persists and bandwidth is not saturated (< 80%),
//!    apply prefetching and sweep buffer stations / distances,
//! 7. combine prefetching and pinning.
//!
//! [`StaticProfiler::analyze`] walks these steps over a kernel's statistics
//! and produces both a human-readable report and a recommended [`Scheme`].

use embedding_kernels::{BufferStation, PrefetchConfig};
use gpu_sim::{GpuConfig, KernelStats};

use crate::scheme::{Multithreading, Scheme};

/// Characteristics of the workload the profiler cannot read off the kernel
/// statistics alone: the data's reuse structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadHint {
    /// Bytes of distinct data the kernel touches (its working set).
    pub working_set_bytes: u64,
    /// Skew of the access distribution in `[0, 1]` (0 = uniform, 1 = a single
    /// item dominates); see `dlrm_datasets::CoverageCurve::skew`.
    pub access_skew: f64,
}

/// One step of the profiling procedure and its outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfilingStep {
    /// Step number (matches the paper's (i)..(vii)).
    pub number: u8,
    /// What the step examines.
    pub title: String,
    /// What was observed in the statistics.
    pub observation: String,
    /// The decision taken.
    pub decision: String,
}

/// The profiler's full report: every step plus the recommended scheme.
#[derive(Debug, Clone)]
pub struct ProfilerReport {
    /// The executed steps in order.
    pub steps: Vec<ProfilingStep>,
    /// Whether the kernel was classified as memory-latency bound.
    pub memory_latency_bound: bool,
    /// The scheme the framework recommends.
    pub recommended: Scheme,
}

impl ProfilerReport {
    /// Renders the report as plain text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for step in &self.steps {
            out.push_str(&format!(
                "({}) {}\n    observed: {}\n    decision: {}\n",
                step.number, step.title, step.observation, step.decision
            ));
        }
        out.push_str(&format!(
            "recommended scheme: {}\n",
            self.recommended.paper_label()
        ));
        out
    }
}

/// Decision thresholds of the static profiling framework.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticProfiler {
    /// Long-scoreboard stall cycles per instruction above which the kernel is
    /// considered latency bound.
    pub long_scoreboard_threshold: f64,
    /// Occupancy (in percent) below which multithreading is considered
    /// insufficient.
    pub occupancy_threshold_pct: f64,
    /// HBM bandwidth utilization (in percent) above which prefetching is
    /// considered unsafe (the paper's 80% headroom rule).
    pub bandwidth_headroom_threshold_pct: f64,
    /// Access skew above which L2 pinning is expected to help.
    pub skew_threshold: f64,
}

impl Default for StaticProfiler {
    fn default() -> Self {
        StaticProfiler {
            long_scoreboard_threshold: 4.0,
            occupancy_threshold_pct: 60.0,
            bandwidth_headroom_threshold_pct: 80.0,
            skew_threshold: 0.3,
        }
    }
}

impl StaticProfiler {
    /// Creates a profiler with the default thresholds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Walks the Section VII procedure over the statistics of a baseline
    /// kernel execution and recommends a scheme.
    pub fn analyze(
        &self,
        stats: &KernelStats,
        gpu: &GpuConfig,
        hint: &WorkloadHint,
    ) -> ProfilerReport {
        let mut steps = Vec::new();
        let mut scheme = Scheme::base();

        // (i) Is the kernel memory latency bound?
        let stalls = stats.long_scoreboard_per_inst();
        let bw_util = stats.hbm_read_bw_utilization_pct();
        let latency_bound = stalls > self.long_scoreboard_threshold
            && bw_util < self.bandwidth_headroom_threshold_pct;
        steps.push(ProfilingStep {
            number: 1,
            title: "memory-latency-bound check".into(),
            observation: format!(
                "long scoreboard stalls {:.1} cycles/inst, L1 hit {:.1}%, L2 hit {:.1}%, HBM read BW {:.1}% of peak",
                stalls,
                stats.l1_hit_rate_pct(),
                stats.l2_hit_rate_pct(),
                bw_util
            ),
            decision: if latency_bound {
                "kernel is memory latency bound; continue".into()
            } else {
                "kernel is not memory latency bound; no optimization needed".into()
            },
        });
        if !latency_bound {
            return ProfilerReport {
                steps,
                memory_latency_bound: false,
                recommended: scheme,
            };
        }

        // (ii)/(iii) Occupancy and register pressure.
        let occupancy = stats.theoretical_occupancy_pct;
        if occupancy < self.occupancy_threshold_pct {
            let optmt_regs = Scheme::optmt_registers_for(gpu);
            scheme = scheme.with_multithreading(Multithreading::OptMt);
            steps.push(ProfilingStep {
                number: 2,
                title: "occupancy / register-pressure check".into(),
                observation: format!(
                    "theoretical occupancy {:.1}% ({} warps/SM) with {} registers/thread",
                    occupancy, stats.theoretical_warps_per_sm, stats.allocated_regs_per_thread
                ),
                decision: format!(
                    "occupancy is register limited; apply -maxrregcount {} (OptMT)",
                    optmt_regs
                ),
            });
        } else {
            steps.push(ProfilingStep {
                number: 2,
                title: "occupancy / register-pressure check".into(),
                observation: format!("theoretical occupancy {occupancy:.1}% is already high"),
                decision: "keep the compiler's register allocation".into(),
            });
        }

        // (v) L2 pinning applicability.
        let carveout = gpu.l2_max_persisting_bytes();
        let reuse_worth_pinning =
            hint.access_skew >= self.skew_threshold || hint.working_set_bytes <= carveout;
        if reuse_worth_pinning {
            scheme = scheme.with_l2_pinning(None);
            steps.push(ProfilingStep {
                number: 5,
                title: "L2 residency-control check".into(),
                observation: format!(
                    "access skew {:.2}, working set {} MB vs {} MB carve-out",
                    hint.access_skew,
                    hint.working_set_bytes / (1024 * 1024),
                    carveout / (1024 * 1024)
                ),
                decision: "high-reuse accesses detected; pin the hottest rows in L2".into(),
            });
        } else {
            steps.push(ProfilingStep {
                number: 5,
                title: "L2 residency-control check".into(),
                observation: format!(
                    "access skew {:.2} below threshold and working set exceeds the carve-out",
                    hint.access_skew
                ),
                decision: "skip L2 pinning".into(),
            });
        }

        // (vi) Prefetching if bandwidth headroom remains.
        if bw_util < self.bandwidth_headroom_threshold_pct {
            scheme = scheme.with_prefetch(PrefetchConfig::new(
                BufferStation::Register,
                BufferStation::Register.optimal_distance_with_optmt(),
            ));
            steps.push(ProfilingStep {
                number: 6,
                title: "bandwidth-headroom / prefetching check".into(),
                observation: format!("HBM read bandwidth at {bw_util:.1}% of peak"),
                decision:
                    "headroom available; add software prefetching (sweep stations and distances)"
                        .into(),
            });
        } else {
            steps.push(ProfilingStep {
                number: 6,
                title: "bandwidth-headroom / prefetching check".into(),
                observation: format!("HBM read bandwidth at {bw_util:.1}% of peak"),
                decision: "bandwidth saturated; prefetching would throttle demand loads".into(),
            });
        }

        // (vii) Combination is implicit in the accumulated scheme.
        steps.push(ProfilingStep {
            number: 7,
            title: "combine the selected techniques".into(),
            observation: "prefetching hides residual latency; pinning improves its timeliness and cuts HBM traffic".into(),
            decision: format!("apply {}", scheme.paper_label()),
        });

        ProfilerReport {
            steps,
            memory_latency_bound: true,
            recommended: scheme,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Experiment;
    use crate::workload::Workload;
    use dlrm::WorkloadScale;
    use dlrm_datasets::AccessPattern;
    use gpu_sim::GpuConfig;

    fn hint(skew: f64, ws_mb: u64) -> WorkloadHint {
        WorkloadHint {
            working_set_bytes: ws_mb * 1024 * 1024,
            access_skew: skew,
        }
    }

    fn baseline_stats(pattern: AccessPattern) -> KernelStats {
        let experiment = Experiment::new(GpuConfig::test_small(), WorkloadScale::Test);
        experiment
            .run(&Workload::kernel(pattern), &Scheme::base())
            .stats
    }

    #[test]
    fn latency_bound_kernel_gets_the_full_combined_recommendation() {
        let stats = baseline_stats(AccessPattern::HighHot);
        let report = StaticProfiler::new().analyze(&stats, &GpuConfig::a100(), &hint(0.7, 10));
        assert!(report.memory_latency_bound);
        assert_eq!(report.recommended.paper_label(), "RPF+L2P+OptMT");
        assert!(report.steps.len() >= 4);
    }

    #[test]
    fn uniform_huge_working_set_skips_pinning() {
        let stats = baseline_stats(AccessPattern::Random);
        let report = StaticProfiler::new().analyze(&stats, &GpuConfig::a100(), &hint(0.05, 4096));
        assert!(report.recommended.l2_pinning().is_none());
        assert!(report.recommended.prefetch().is_some());
    }

    #[test]
    fn compute_bound_kernel_needs_no_optimization() {
        let mut stats = baseline_stats(AccessPattern::OneItem);
        // Force the counters into a clearly compute-bound shape.
        stats.counters.long_scoreboard_cycles = 0;
        let report = StaticProfiler::new().analyze(&stats, &GpuConfig::a100(), &hint(0.9, 1));
        assert!(!report.memory_latency_bound);
        assert_eq!(report.recommended, Scheme::base());
        assert_eq!(report.steps.len(), 1);
    }

    #[test]
    fn saturated_bandwidth_disables_prefetching() {
        let mut stats = baseline_stats(AccessPattern::Random);
        // Pretend the kernel already pushes 90% of peak bandwidth but keep
        // the latency-bound classification possible via stalls.
        stats.dram_bytes_read =
            (0.9 * stats.peak_dram_bandwidth_gbps * 1e9 * (stats.kernel_time_us() * 1e-6)) as u64;
        let profiler = StaticProfiler {
            bandwidth_headroom_threshold_pct: 80.0,
            ..Default::default()
        };
        let report = profiler.analyze(&stats, &GpuConfig::a100(), &hint(0.5, 10));
        // Either it is no longer latency bound (step 1 bails) or prefetching
        // is skipped; in both cases no prefetch is recommended.
        assert!(report.recommended.prefetch().is_none());
    }

    #[test]
    fn high_occupancy_kernels_keep_their_register_allocation() {
        let mut stats = baseline_stats(AccessPattern::LowHot);
        stats.theoretical_occupancy_pct = 93.75;
        stats.theoretical_warps_per_sm = 60;
        let report = StaticProfiler::new().analyze(&stats, &GpuConfig::a100(), &hint(0.5, 10));
        assert_eq!(report.recommended.multithreading(), Multithreading::Default);
    }

    #[test]
    fn report_renders_every_step() {
        let stats = baseline_stats(AccessPattern::MedHot);
        let report = StaticProfiler::new().analyze(&stats, &GpuConfig::a100(), &hint(0.6, 20));
        let text = report.render();
        assert!(text.contains("(1) memory-latency-bound check"));
        assert!(text.contains("recommended scheme:"));
    }
}
