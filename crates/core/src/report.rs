//! The unified result of one experiment run: [`RunReport`].
//!
//! `RunReport` supersedes the seed's fragmented result types (raw
//! `KernelStats` for kernel runs, `EmbeddingStageResult` for stage runs,
//! `EndToEndResult` for end-to-end runs): every [`crate::Experiment::run`]
//! call — whatever the [`crate::Workload`] — produces one `RunReport`
//! carrying latency, the per-table breakdown, NCU-style counters, and the
//! scheme/workload/device metadata needed to interpret the numbers later.
//! Reports serialize to JSON ([`RunReport::to_json`]) and parse back
//! ([`RunReport::from_json`]) so campaigns can be archived and diffed.

use dlrm::BatchLatency;
use gpu_sim::stats::RawCounters;
use gpu_sim::KernelStats;

use crate::json::{Json, JsonError};
use crate::workload::WorkloadKind;

/// Identifier of the report JSON schema produced by this crate version.
pub const RUN_REPORT_SCHEMA: &str = "perf-envelope/run-report/v1";

/// Per-table breakdown of an embedding-stage (or end-to-end) run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableBreakdown {
    /// Average simulated latency of one table, in microseconds.
    pub per_table_us: f64,
    /// Number of tables in the model.
    pub tables_total: u32,
    /// Number of tables actually simulated before extrapolation.
    pub tables_simulated: u32,
}

/// End-to-end latency split of an end-to-end run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EndToEndBreakdown {
    /// Embedding-stage latency in microseconds.
    pub embedding_us: f64,
    /// Non-embedding (MLPs + interaction) latency in microseconds.
    pub non_embedding_us: f64,
}

impl EndToEndBreakdown {
    /// The equivalent [`BatchLatency`] (for its formatting/share helpers).
    pub fn batch_latency(&self) -> BatchLatency {
        BatchLatency::new(self.embedding_us, self.non_embedding_us)
    }
}

/// One device's share of a sharded run.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceBreakdown {
    /// Device name (from its [`gpu_sim::GpuConfig`]).
    pub device: String,
    /// Number of tables the shard plan assigned to this device.
    pub tables: u32,
    /// Number of those tables actually simulated before extrapolation.
    pub tables_simulated: u32,
    /// Extrapolated embedding-stage latency of this device's shard, in
    /// microseconds.
    pub embedding_us: f64,
}

/// Cross-device breakdown of a sharded run: per-device latencies plus the
/// reduction that models the all-to-all and takes the critical-path max.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterBreakdown {
    /// Name of the sharding strategy that produced the plan.
    pub strategy: String,
    /// Per-device shard results, in device order (root first).
    pub per_device: Vec<DeviceBreakdown>,
    /// The embedding-stage critical path: the maximum per-device latency,
    /// in microseconds (devices execute their shards concurrently).
    pub critical_path_us: f64,
    /// Modelled all-to-all time gathering pooled embeddings to the root
    /// device, in microseconds (exactly zero on a single-device cluster).
    pub all_to_all_us: f64,
}

impl ClusterBreakdown {
    /// Number of devices that executed the run.
    pub fn num_devices(&self) -> usize {
        self.per_device.len()
    }

    /// Total sharded embedding-stage latency: critical path plus all-to-all.
    pub fn embedding_stage_us(&self) -> f64 {
        self.critical_path_us + self.all_to_all_us
    }
}

/// The unified result of one [`crate::Experiment::run`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Which kind of workload produced this report.
    pub kind: WorkloadKind,
    /// Dataset label (`"random"`, `"Mix2"`, ...).
    pub workload: String,
    /// Paper-style scheme label (`"RPF+L2P+OptMT"`, `"base"`, ...).
    pub scheme: String,
    /// Simulated device name.
    pub device: String,
    /// Workload scale name (`"test"`, `"default"`, `"paper"`).
    pub scale: String,
    /// Trace-generation seed the run used.
    pub seed: u64,
    /// Lookups per sample the run used.
    pub pooling_factor: u32,
    /// Headline latency of the run target in microseconds: kernel time for
    /// kernel workloads, extrapolated stage latency for stage workloads,
    /// total batch latency for end-to-end workloads.
    pub latency_us: f64,
    /// Per-table breakdown (stage and end-to-end workloads).
    pub tables: Option<TableBreakdown>,
    /// End-to-end latency split (end-to-end workloads only).
    pub end_to_end: Option<EndToEndBreakdown>,
    /// Cross-device breakdown (sharded workloads only). Unsharded runs —
    /// including any archived before sharding existed — carry `None`.
    pub devices: Option<ClusterBreakdown>,
    /// Merged NCU-style statistics over the simulated kernels (summed
    /// across devices for sharded runs).
    pub stats: KernelStats,
}

impl RunReport {
    /// Speedup of this run over `baseline` on the headline latency
    /// (`baseline.latency_us / self.latency_us`).
    pub fn speedup_over(&self, baseline: &RunReport) -> f64 {
        baseline.latency_us / self.latency_us
    }

    /// The embedding-only latency in microseconds: for end-to-end runs the
    /// embedding component, otherwise the headline latency itself.
    pub fn embedding_latency_us(&self) -> f64 {
        match self.end_to_end {
            Some(e2e) => e2e.embedding_us,
            None => self.latency_us,
        }
    }

    /// Embedding-only speedup over `baseline`.
    pub fn embedding_speedup_over(&self, baseline: &RunReport) -> f64 {
        baseline.embedding_latency_us() / self.embedding_latency_us()
    }

    /// The end-to-end latency split as a [`BatchLatency`], if this was an
    /// end-to-end run.
    pub fn batch_latency(&self) -> Option<BatchLatency> {
        self.end_to_end.map(|e2e| e2e.batch_latency())
    }

    /// Headline latency in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        self.latency_us / 1e3
    }

    /// Serializes the report to compact JSON.
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// The report as a [`Json`] document (for embedding into larger
    /// documents, e.g. a whole campaign).
    pub fn to_json_value(&self) -> Json {
        let mut doc = Json::object();
        doc.set("schema", Json::Str(RUN_REPORT_SCHEMA.to_string()));
        doc.set("kind", Json::Str(self.kind.name().to_string()));
        doc.set("workload", Json::Str(self.workload.clone()));
        doc.set("scheme", Json::Str(self.scheme.clone()));
        doc.set("device", Json::Str(self.device.clone()));
        doc.set("scale", Json::Str(self.scale.clone()));
        doc.set("seed", Json::UInt(self.seed));
        doc.set("pooling_factor", Json::UInt(self.pooling_factor as u64));
        doc.set("latency_us", Json::Num(self.latency_us));
        doc.set(
            "tables",
            match self.tables {
                Some(t) => {
                    let mut obj = Json::object();
                    obj.set("per_table_us", Json::Num(t.per_table_us));
                    obj.set("tables_total", Json::UInt(t.tables_total as u64));
                    obj.set("tables_simulated", Json::UInt(t.tables_simulated as u64));
                    obj
                }
                None => Json::Null,
            },
        );
        doc.set(
            "end_to_end",
            match self.end_to_end {
                Some(e2e) => {
                    let mut obj = Json::object();
                    obj.set("embedding_us", Json::Num(e2e.embedding_us));
                    obj.set("non_embedding_us", Json::Num(e2e.non_embedding_us));
                    obj
                }
                None => Json::Null,
            },
        );
        doc.set(
            "devices",
            match &self.devices {
                Some(cluster) => {
                    let mut obj = Json::object();
                    obj.set("strategy", Json::Str(cluster.strategy.clone()));
                    obj.set("critical_path_us", Json::Num(cluster.critical_path_us));
                    obj.set("all_to_all_us", Json::Num(cluster.all_to_all_us));
                    obj.set(
                        "per_device",
                        Json::Arr(
                            cluster
                                .per_device
                                .iter()
                                .map(|d| {
                                    let mut dev = Json::object();
                                    dev.set("device", Json::Str(d.device.clone()));
                                    dev.set("tables", Json::UInt(d.tables as u64));
                                    dev.set(
                                        "tables_simulated",
                                        Json::UInt(d.tables_simulated as u64),
                                    );
                                    dev.set("embedding_us", Json::Num(d.embedding_us));
                                    dev
                                })
                                .collect(),
                        ),
                    );
                    obj
                }
                None => Json::Null,
            },
        );
        doc.set("stats", stats_to_json(&self.stats));
        doc
    }

    /// Parses a report back from [`RunReport::to_json`] output.
    ///
    /// # Errors
    /// Returns a [`JsonError`] on syntax errors, a wrong `schema` tag, or
    /// missing/mistyped fields.
    pub fn from_json(text: &str) -> Result<RunReport, JsonError> {
        Self::from_json_value(&Json::parse(text)?)
    }

    /// Parses a report from an already-parsed [`Json`] document.
    ///
    /// # Errors
    /// Returns a [`JsonError`] on a wrong `schema` tag or missing fields.
    pub fn from_json_value(doc: &Json) -> Result<RunReport, JsonError> {
        let schema = req_str(doc, "schema")?;
        if schema != RUN_REPORT_SCHEMA {
            return Err(JsonError::schema(format!(
                "unsupported report schema '{schema}'"
            )));
        }
        let kind = WorkloadKind::from_name(req_str(doc, "kind")?)
            .ok_or_else(|| JsonError::schema("unknown workload kind"))?;
        let tables = match doc.get("tables") {
            None | Some(Json::Null) => None,
            Some(t) => Some(TableBreakdown {
                per_table_us: req_f64(t, "per_table_us")?,
                tables_total: req_u32(t, "tables_total")?,
                tables_simulated: req_u32(t, "tables_simulated")?,
            }),
        };
        let end_to_end = match doc.get("end_to_end") {
            None | Some(Json::Null) => None,
            Some(e) => Some(EndToEndBreakdown {
                embedding_us: req_f64(e, "embedding_us")?,
                non_embedding_us: req_f64(e, "non_embedding_us")?,
            }),
        };
        let devices = match doc.get("devices") {
            None | Some(Json::Null) => None,
            Some(c) => {
                let per_device = c
                    .get("per_device")
                    .and_then(Json::as_array)
                    .ok_or_else(|| JsonError::schema("field 'per_device' is not an array"))?
                    .iter()
                    .map(|d| {
                        Ok(DeviceBreakdown {
                            device: req_str(d, "device")?.to_string(),
                            tables: req_u32(d, "tables")?,
                            tables_simulated: req_u32(d, "tables_simulated")?,
                            embedding_us: req_f64(d, "embedding_us")?,
                        })
                    })
                    .collect::<Result<Vec<_>, JsonError>>()?;
                Some(ClusterBreakdown {
                    strategy: req_str(c, "strategy")?.to_string(),
                    per_device,
                    critical_path_us: req_f64(c, "critical_path_us")?,
                    all_to_all_us: req_f64(c, "all_to_all_us")?,
                })
            }
        };
        let stats_doc = doc
            .get("stats")
            .ok_or_else(|| JsonError::schema("missing field 'stats'"))?;
        Ok(RunReport {
            kind,
            workload: req_str(doc, "workload")?.to_string(),
            scheme: req_str(doc, "scheme")?.to_string(),
            device: req_str(doc, "device")?.to_string(),
            scale: req_str(doc, "scale")?.to_string(),
            seed: req_u64(doc, "seed")?,
            pooling_factor: req_u32(doc, "pooling_factor")?,
            latency_us: req_f64(doc, "latency_us")?,
            tables,
            end_to_end,
            devices,
            stats: stats_from_json(stats_doc)?,
        })
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} under {} on {}: {:.2} us",
            self.kind.name(),
            self.workload,
            self.scheme,
            self.device,
            self.latency_us
        )
    }
}

fn stats_to_json(stats: &KernelStats) -> Json {
    let mut counters = Json::object();
    let c = &stats.counters;
    counters.set("insts_issued", Json::UInt(c.insts_issued));
    counters.set("load_insts", Json::UInt(c.load_insts));
    counters.set("local_load_insts", Json::UInt(c.local_load_insts));
    counters.set("store_insts", Json::UInt(c.store_insts));
    counters.set("prefetch_insts", Json::UInt(c.prefetch_insts));
    counters.set(
        "long_scoreboard_cycles",
        Json::UInt(c.long_scoreboard_cycles),
    );
    counters.set(
        "short_scoreboard_cycles",
        Json::UInt(c.short_scoreboard_cycles),
    );
    counters.set("not_selected_cycles", Json::UInt(c.not_selected_cycles));
    counters.set("resident_warp_cycles", Json::UInt(c.resident_warp_cycles));
    counters.set("warps_launched", Json::UInt(c.warps_launched));
    counters.set("blocks_launched", Json::UInt(c.blocks_launched));

    let mut doc = Json::object();
    doc.set("kernel_name", Json::Str(stats.kernel_name.clone()));
    doc.set("device_name", Json::Str(stats.device_name.clone()));
    doc.set("clock_ghz", Json::Num(stats.clock_ghz));
    doc.set("total_schedulers", Json::UInt(stats.total_schedulers));
    doc.set(
        "peak_dram_bandwidth_gbps",
        Json::Num(stats.peak_dram_bandwidth_gbps),
    );
    doc.set("elapsed_cycles", Json::UInt(stats.elapsed_cycles));
    doc.set("counters", counters);
    doc.set("l1_accesses", Json::UInt(stats.l1_accesses));
    doc.set("l1_hits", Json::UInt(stats.l1_hits));
    doc.set("l2_accesses", Json::UInt(stats.l2_accesses));
    doc.set("l2_hits", Json::UInt(stats.l2_hits));
    doc.set("dram_bytes_read", Json::UInt(stats.dram_bytes_read));
    doc.set("dram_bytes_written", Json::UInt(stats.dram_bytes_written));
    doc.set(
        "theoretical_warps_per_sm",
        Json::UInt(stats.theoretical_warps_per_sm as u64),
    );
    doc.set(
        "theoretical_occupancy_pct",
        Json::Num(stats.theoretical_occupancy_pct),
    );
    doc.set(
        "allocated_regs_per_thread",
        Json::UInt(stats.allocated_regs_per_thread as u64),
    );
    doc
}

fn stats_from_json(doc: &Json) -> Result<KernelStats, JsonError> {
    let counters_doc = doc
        .get("counters")
        .ok_or_else(|| JsonError::schema("missing field 'counters'"))?;
    let counters = RawCounters {
        insts_issued: req_u64(counters_doc, "insts_issued")?,
        load_insts: req_u64(counters_doc, "load_insts")?,
        local_load_insts: req_u64(counters_doc, "local_load_insts")?,
        store_insts: req_u64(counters_doc, "store_insts")?,
        prefetch_insts: req_u64(counters_doc, "prefetch_insts")?,
        long_scoreboard_cycles: req_u64(counters_doc, "long_scoreboard_cycles")?,
        short_scoreboard_cycles: req_u64(counters_doc, "short_scoreboard_cycles")?,
        not_selected_cycles: req_u64(counters_doc, "not_selected_cycles")?,
        resident_warp_cycles: req_u64(counters_doc, "resident_warp_cycles")?,
        warps_launched: req_u64(counters_doc, "warps_launched")?,
        blocks_launched: req_u64(counters_doc, "blocks_launched")?,
    };
    Ok(KernelStats {
        kernel_name: req_str(doc, "kernel_name")?.to_string(),
        device_name: req_str(doc, "device_name")?.to_string(),
        clock_ghz: req_f64(doc, "clock_ghz")?,
        total_schedulers: req_u64(doc, "total_schedulers")?,
        peak_dram_bandwidth_gbps: req_f64(doc, "peak_dram_bandwidth_gbps")?,
        elapsed_cycles: req_u64(doc, "elapsed_cycles")?,
        counters,
        l1_accesses: req_u64(doc, "l1_accesses")?,
        l1_hits: req_u64(doc, "l1_hits")?,
        l2_accesses: req_u64(doc, "l2_accesses")?,
        l2_hits: req_u64(doc, "l2_hits")?,
        dram_bytes_read: req_u64(doc, "dram_bytes_read")?,
        dram_bytes_written: req_u64(doc, "dram_bytes_written")?,
        theoretical_warps_per_sm: req_u32(doc, "theoretical_warps_per_sm")?,
        theoretical_occupancy_pct: req_f64(doc, "theoretical_occupancy_pct")?,
        allocated_regs_per_thread: req_u32(doc, "allocated_regs_per_thread")?,
    })
}

fn req<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, JsonError> {
    doc.get(key)
        .ok_or_else(|| JsonError::schema(format!("missing field '{key}'")))
}

fn req_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, JsonError> {
    req(doc, key)?
        .as_str()
        .ok_or_else(|| JsonError::schema(format!("field '{key}' is not a string")))
}

fn req_f64(doc: &Json, key: &str) -> Result<f64, JsonError> {
    req(doc, key)?
        .as_f64()
        .ok_or_else(|| JsonError::schema(format!("field '{key}' is not a number")))
}

fn req_u64(doc: &Json, key: &str) -> Result<u64, JsonError> {
    req(doc, key)?
        .as_u64()
        .ok_or_else(|| JsonError::schema(format!("field '{key}' is not an unsigned integer")))
}

fn req_u32(doc: &Json, key: &str) -> Result<u32, JsonError> {
    req(doc, key)?
        .as_u32()
        .ok_or_else(|| JsonError::schema(format!("field '{key}' is not a 32-bit unsigned integer")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuConfig;

    fn sample_report() -> RunReport {
        let mut stats = KernelStats::empty("sample", &GpuConfig::test_small());
        stats.elapsed_cycles = 12_345;
        stats.counters.insts_issued = 999;
        stats.counters.load_insts = 4;
        stats.l2_accesses = 77;
        stats.l2_hits = 33;
        stats.theoretical_warps_per_sm = 40;
        stats.theoretical_occupancy_pct = 62.5;
        stats.allocated_regs_per_thread = 48;
        RunReport {
            kind: WorkloadKind::EndToEnd,
            workload: "random".to_string(),
            scheme: "RPF+L2P+OptMT".to_string(),
            device: "Test GPU".to_string(),
            scale: "test".to_string(),
            seed: 0x5EED,
            pooling_factor: 8,
            latency_us: 1234.5678901234,
            tables: Some(TableBreakdown {
                per_table_us: 205.76131502056665,
                tables_total: 6,
                tables_simulated: 2,
            }),
            end_to_end: Some(EndToEndBreakdown {
                embedding_us: 1000.1,
                non_embedding_us: 234.46779012340002,
            }),
            devices: None,
            stats,
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let report = sample_report();
        let text = report.to_json();
        let back = RunReport::from_json(&text).unwrap();
        assert_eq!(back, report);
        // And the rendered form is stable across a second trip.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn device_breakdowns_round_trip() {
        let mut report = sample_report();
        report.devices = Some(ClusterBreakdown {
            strategy: "hot_cold".to_string(),
            per_device: vec![
                DeviceBreakdown {
                    device: "A100-SXM4-80GB".to_string(),
                    tables: 4,
                    tables_simulated: 2,
                    embedding_us: 750.25,
                },
                DeviceBreakdown {
                    device: "A100-SXM4-80GB".to_string(),
                    tables: 2,
                    tables_simulated: 1,
                    embedding_us: 1000.1,
                },
            ],
            critical_path_us: 1000.1,
            all_to_all_us: 12.5,
        });
        let text = report.to_json();
        let back = RunReport::from_json(&text).unwrap();
        assert_eq!(back, report);
        let cluster = back.devices.unwrap();
        assert_eq!(cluster.num_devices(), 2);
        assert_eq!(cluster.embedding_stage_us(), 1012.6);
    }

    #[test]
    fn reports_without_devices_parse_as_unsharded() {
        // Archives written before the topology layer existed have no
        // "devices" key at all; they must keep parsing.
        let text = sample_report().to_json().replace(",\"devices\":null", "");
        let back = RunReport::from_json(&text).unwrap();
        assert_eq!(back.devices, None);
    }

    #[test]
    fn kernel_reports_omit_breakdowns() {
        let mut report = sample_report();
        report.kind = WorkloadKind::Kernel;
        report.tables = None;
        report.end_to_end = None;
        let text = report.to_json();
        assert!(text.contains("\"tables\":null"));
        assert_eq!(RunReport::from_json(&text).unwrap(), report);
    }

    #[test]
    fn schema_tag_is_enforced() {
        let text = sample_report()
            .to_json()
            .replace(RUN_REPORT_SCHEMA, "something/else");
        let err = RunReport::from_json(&text).unwrap_err();
        assert!(err.message.contains("unsupported report schema"));
    }

    #[test]
    fn missing_fields_are_reported_by_name() {
        let doc = sample_report().to_json().replace("\"seed\":24301,", "");
        let err = RunReport::from_json(&doc).unwrap_err();
        assert!(err.message.contains("seed"), "{err}");
    }

    #[test]
    fn speedups_and_shares_derive_from_the_breakdowns() {
        let base = sample_report();
        let mut fast = sample_report();
        fast.latency_us = base.latency_us / 2.0;
        fast.end_to_end = Some(EndToEndBreakdown {
            embedding_us: 500.05,
            non_embedding_us: 234.46779012340002,
        });
        assert!((fast.speedup_over(&base) - 2.0).abs() < 1e-12);
        assert!((fast.embedding_speedup_over(&base) - 2.0).abs() < 1e-9);
        let share = base.batch_latency().unwrap().embedding_share_pct();
        assert!(share > 0.0 && share < 100.0);
    }
}
