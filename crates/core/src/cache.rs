//! Campaign result caching: [`CampaignCache`].
//!
//! The paper's evaluation keeps re-running the same cells: a grid with a
//! duplicated axis value revisits cells inside one run, the five DSE sweeps
//! all contain the base-scheme column for the same patterns, and benchmark /
//! figure regeneration re-executes entire grids. Since every cell is a pure
//! function of its inputs — the experiment's device and model configuration,
//! scale, seed, pooling factor, plus the workload and scheme — its
//! [`RunReport`] can be memoized on that fingerprint and served from cache
//! on every later request.
//!
//! A cache is attached to an [`Experiment`] with
//! [`Experiment::with_cache`]; every [`Experiment::run`] call through that
//! experiment (including every [`crate::Campaign`] built over it, which
//! clones the experiment per cell) consults the cache first. Reports are
//! exact clones of the originals, so cached campaigns remain deterministic
//! and thread-count-independent.
//!
//! ```
//! use dlrm::WorkloadScale;
//! use dlrm_datasets::AccessPattern;
//! use gpu_sim::GpuConfig;
//! use perf_envelope::{CampaignCache, Experiment, Scheme, Workload};
//!
//! let cache = CampaignCache::new();
//! let experiment = Experiment::new(GpuConfig::test_small(), WorkloadScale::Test)
//!     .with_cache(cache.clone());
//! let workload = Workload::kernel(AccessPattern::MedHot);
//! let first = experiment.run(&workload, &Scheme::base());
//! let second = experiment.run(&workload, &Scheme::base());
//! assert_eq!(first, second);
//! assert_eq!(cache.hits(), 1);
//! assert_eq!(cache.misses(), 1);
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::report::RunReport;
use crate::runner::Experiment;
use crate::scheme::Scheme;
use crate::workload::Workload;

/// A thread-safe memo of [`RunReport`]s keyed by the full cell fingerprint
/// (workload, scheme, seed, pooling factor, device and model configuration,
/// scale, engine mode).
#[derive(Debug, Default)]
pub struct CampaignCache {
    map: Mutex<HashMap<String, RunReport>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CampaignCache {
    /// Creates an empty cache, shareable across experiments, campaigns and
    /// worker threads.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Returns the cached report for the cell, or runs it and caches the
    /// result. Two workers racing on the same cold cell both execute it;
    /// determinism makes the duplicate insert harmless.
    pub(crate) fn get_or_run(
        &self,
        experiment: &Experiment,
        workload: &Workload,
        scheme: &Scheme,
    ) -> RunReport {
        let key = experiment.cell_fingerprint(workload, scheme);
        if let Some(report) = self.map.lock().expect("cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return report.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let report = experiment.run_uncached(workload, scheme);
        self.map
            .lock()
            .expect("cache poisoned")
            .insert(key, report.clone());
        report
    }

    /// Number of requests served from cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of requests that had to execute their cell.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct cells currently cached.
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache poisoned").len()
    }

    /// Whether the cache holds no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached report (statistics are preserved).
    pub fn clear(&self) {
        self.map.lock().expect("cache poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Campaign;
    use dlrm::WorkloadScale;
    use dlrm_datasets::AccessPattern;
    use gpu_sim::{EngineMode, GpuConfig};

    fn cached_experiment(cache: &Arc<CampaignCache>) -> Experiment {
        Experiment::new(GpuConfig::test_small(), WorkloadScale::Test).with_cache(cache.clone())
    }

    #[test]
    fn identical_cells_hit() {
        let cache = CampaignCache::new();
        let e = cached_experiment(&cache);
        let w = Workload::kernel(AccessPattern::MedHot);
        let a = e.run(&w, &Scheme::base());
        let b = e.run(&w, &Scheme::base());
        assert_eq!(a, b);
        assert_eq!((cache.misses(), cache.hits()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn changed_seed_misses() {
        let cache = CampaignCache::new();
        let e = cached_experiment(&cache);
        let w = Workload::kernel(AccessPattern::MedHot);
        let a = e.run(&w, &Scheme::base());
        let b = e.clone().with_seed(99).run(&w, &Scheme::base());
        assert_ne!(a.stats, b.stats);
        assert_eq!((cache.misses(), cache.hits()), (2, 0));
    }

    #[test]
    fn changed_pooling_factor_misses() {
        let cache = CampaignCache::new();
        let e = cached_experiment(&cache);
        let w = Workload::kernel(AccessPattern::MedHot);
        let _ = e.clone().with_pooling_factor(4).run(&w, &Scheme::base());
        let _ = e.clone().with_pooling_factor(16).run(&w, &Scheme::base());
        assert_eq!((cache.misses(), cache.hits()), (2, 0));
    }

    #[test]
    fn workload_scheme_device_and_mode_distinguish_cells() {
        let cache = CampaignCache::new();
        let e = cached_experiment(&cache);
        let w = Workload::kernel(AccessPattern::MedHot);
        let _ = e.run(&w, &Scheme::base());
        let _ = e.run(&w, &Scheme::optmt());
        let _ = e.run(&Workload::kernel(AccessPattern::Random), &Scheme::base());
        let _ = e.run(&Workload::stage(AccessPattern::MedHot), &Scheme::base());
        let other_device =
            Experiment::new(GpuConfig::test_small().with_num_sms(2), WorkloadScale::Test)
                .with_cache(cache.clone());
        let _ = other_device.run(&w, &Scheme::base());
        let reference = e.clone().with_engine_mode(EngineMode::CycleAccurate);
        let _ = reference.run(&w, &Scheme::base());
        assert_eq!((cache.misses(), cache.hits()), (6, 0));
    }

    #[test]
    fn cached_report_is_bit_identical_to_uncached() {
        let cache = CampaignCache::new();
        let cached = cached_experiment(&cache);
        let plain = Experiment::new(GpuConfig::test_small(), WorkloadScale::Test);
        let w = Workload::stage(AccessPattern::LowHot);
        let warm = cached.run(&w, &Scheme::combined());
        let warm_again = cached.run(&w, &Scheme::combined());
        assert_eq!(warm, warm_again);
        assert_eq!(warm, plain.run(&w, &Scheme::combined()));
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn campaigns_share_the_cache_across_runs() {
        let cache = CampaignCache::new();
        let grid = || {
            Campaign::new(cached_experiment(&cache))
                .workloads([
                    Workload::kernel(AccessPattern::HighHot),
                    Workload::kernel(AccessPattern::Random),
                ])
                .schemes([Scheme::base(), Scheme::optmt()])
        };
        let first = grid().run();
        assert_eq!((cache.misses(), cache.hits()), (4, 0));
        // The re-run (e.g. a second sweep overlapping the first) is served
        // entirely from cache and stays deterministic across thread counts.
        let second = grid().threads(3).run();
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.hits(), 4);
        assert_eq!(first, second);
    }

    #[test]
    fn duplicated_grid_axis_values_are_served_from_cache() {
        let cache = CampaignCache::new();
        let run = Campaign::new(cached_experiment(&cache))
            .workload(Workload::kernel(AccessPattern::MedHot))
            .scheme(Scheme::base())
            .seeds([7, 7, 7])
            .run();
        assert_eq!(run.len(), 3);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 2);
        assert_eq!(run.reports()[0], run.reports()[2]);
    }

    #[test]
    fn clear_empties_the_cache() {
        let cache = CampaignCache::new();
        let e = cached_experiment(&cache);
        let _ = e.run(&Workload::kernel(AccessPattern::MedHot), &Scheme::base());
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        let _ = e.run(&Workload::kernel(AccessPattern::MedHot), &Scheme::base());
        assert_eq!(cache.misses(), 2);
    }
}
