//! Campaign result caching: [`CampaignCache`].
//!
//! The paper's evaluation keeps re-running the same cells: a grid with a
//! duplicated axis value revisits cells inside one run, the five DSE sweeps
//! all contain the base-scheme column for the same patterns, and benchmark /
//! figure regeneration re-executes entire grids. Since every cell is a pure
//! function of its inputs — the experiment's device and model configuration,
//! scale, seed, pooling factor, plus the workload and scheme — its
//! [`RunReport`] can be memoized on that fingerprint and served from cache
//! on every later request.
//!
//! A cache is attached to an [`Experiment`] with
//! [`Experiment::with_cache`]; every [`Experiment::run`] call through that
//! experiment (including every [`crate::Campaign`] built over it, which
//! clones the experiment per cell, and every per-shard cell of a sharded
//! workload) consults the cache first. Reports are exact clones of the
//! originals, so cached campaigns remain deterministic and
//! thread-count-independent.
//!
//! Keys are a canonical fingerprint encoding (a JSON rendering with sorted
//! keys and shortest-round-trip floats, replacing the seed's `Debug`-string
//! keys) — byte-identical across processes — so a cache can be persisted with
//! [`CampaignCache::save_to`] and reloaded with [`CampaignCache::load_from`]
//! for incremental re-runs across processes: a sweep that overlaps an
//! earlier archived sweep only executes its genuinely new cells.
//!
//! ```
//! use dlrm::WorkloadScale;
//! use dlrm_datasets::AccessPattern;
//! use gpu_sim::GpuConfig;
//! use perf_envelope::{CampaignCache, Experiment, Scheme, Workload};
//!
//! let cache = CampaignCache::new();
//! let experiment = Experiment::new(GpuConfig::test_small(), WorkloadScale::Test)
//!     .with_cache(cache.clone());
//! let workload = Workload::kernel(AccessPattern::MedHot);
//! let first = experiment.run(&workload, &Scheme::base());
//! let second = experiment.run(&workload, &Scheme::base());
//! assert_eq!(first, second);
//! assert_eq!(cache.hits(), 1);
//! assert_eq!(cache.misses(), 1);
//! ```

use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::{Json, JsonError};
use crate::report::RunReport;
use crate::runner::Experiment;
use crate::scheme::Scheme;
use crate::workload::Workload;

/// Identifier of the persisted-cache JSON schema produced by this crate
/// version.
pub const CAMPAIGN_CACHE_SCHEMA: &str = "perf-envelope/campaign-cache/v1";

/// A thread-safe memo of [`RunReport`]s keyed by the canonical cell
/// fingerprint (workload incl. sharding spec, scheme, seed, pooling factor,
/// cluster topology and model configuration, scale, engine mode).
#[derive(Debug, Default)]
pub struct CampaignCache {
    // audit:allow(unordered_collection): keyed fingerprint lookups only;
    // to_json sorts cells by key before rendering
    map: Mutex<HashMap<String, RunReport>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CampaignCache {
    /// Creates an empty cache, shareable across experiments, campaigns and
    /// worker threads.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Returns the cached report for the cell, or runs it and caches the
    /// result. Two workers racing on the same cold cell both execute it;
    /// determinism makes the duplicate insert harmless.
    pub(crate) fn get_or_run(
        &self,
        experiment: &Experiment,
        workload: &Workload,
        scheme: &Scheme,
    ) -> RunReport {
        let key = experiment.cell_fingerprint(workload, scheme);
        if let Some(report) = self.map.lock().expect("cache poisoned").get(&key) {
            // audit:allow(thread_accumulation): monotonic counter; the total
            // is order-insensitive and never feeds a simulated result
            self.hits.fetch_add(1, Ordering::Relaxed);
            return report.clone();
        }
        // audit:allow(thread_accumulation): monotonic counter, order-insensitive
        self.misses.fetch_add(1, Ordering::Relaxed);
        let report = experiment.run_uncached(workload, scheme);
        self.map
            .lock()
            .expect("cache poisoned")
            .insert(key, report.clone());
        report
    }

    /// Number of requests served from cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of requests that had to execute their cell.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct cells currently cached.
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache poisoned").len()
    }

    /// Whether the cache holds no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached report (statistics are preserved).
    pub fn clear(&self) {
        self.map.lock().expect("cache poisoned").clear();
    }

    /// Serializes the cache as a JSON document: every cell's canonical
    /// fingerprint key together with its report, sorted by key so the
    /// rendering is stable for identical contents.
    pub fn to_json(&self) -> String {
        let mut cells: Vec<(String, RunReport)> = self
            .map
            .lock()
            .expect("cache poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        cells.sort_by(|a, b| a.0.cmp(&b.0));
        let mut doc = Json::object();
        doc.set("schema", Json::Str(CAMPAIGN_CACHE_SCHEMA.to_string()));
        doc.set(
            "cells",
            Json::Arr(
                cells
                    .into_iter()
                    .map(|(key, report)| {
                        let mut cell = Json::object();
                        cell.set("key", Json::Str(key));
                        cell.set("report", report.to_json_value());
                        cell
                    })
                    .collect(),
            ),
        );
        doc.render()
    }

    /// Parses a cache back from [`CampaignCache::to_json`] output. The
    /// returned cache starts with fresh hit/miss statistics.
    ///
    /// # Errors
    /// Returns a [`JsonError`] on syntax errors, a wrong `schema` tag, or
    /// malformed cells.
    pub fn from_json(text: &str) -> Result<Arc<Self>, JsonError> {
        let doc = Json::parse(text)?;
        match doc.get("schema").and_then(Json::as_str) {
            Some(CAMPAIGN_CACHE_SCHEMA) => {}
            Some(other) => {
                return Err(JsonError::schema(format!(
                    "unsupported cache schema '{other}'"
                )))
            }
            None => return Err(JsonError::schema("missing field 'schema'")),
        }
        let cells = doc
            .get("cells")
            .and_then(Json::as_array)
            .ok_or_else(|| JsonError::schema("field 'cells' is not an array"))?;
        // audit:allow(unordered_collection): keyed lookups only (see the map field)
        let mut map = HashMap::with_capacity(cells.len());
        for cell in cells {
            let key = cell
                .get("key")
                .and_then(Json::as_str)
                .ok_or_else(|| JsonError::schema("cell is missing a string 'key'"))?;
            let report = cell
                .get("report")
                .ok_or_else(|| JsonError::schema("cell is missing its 'report'"))?;
            map.insert(key.to_string(), RunReport::from_json_value(report)?);
        }
        Ok(Arc::new(CampaignCache {
            map: Mutex::new(map),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }))
    }

    /// Writes the cache to `path` (see [`CampaignCache::to_json`]) so a
    /// later process can pick up where this one left off.
    ///
    /// # Errors
    /// Returns the underlying I/O error if the file cannot be written.
    pub fn save_to(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Reads a cache previously written by [`CampaignCache::save_to`].
    /// Attach the result with [`Experiment::with_cache`] (or
    /// [`crate::Campaign::with_cache`]) and previously executed cells are
    /// served without re-simulation.
    ///
    /// # Errors
    /// Returns a [`CacheLoadError`] if the file cannot be read or does not
    /// parse as a persisted cache.
    pub fn load_from(path: impl AsRef<Path>) -> Result<Arc<Self>, CacheLoadError> {
        let text = std::fs::read_to_string(path).map_err(CacheLoadError::Io)?;
        Self::from_json(&text).map_err(CacheLoadError::Json)
    }
}

/// Why [`CampaignCache::load_from`] failed.
#[derive(Debug)]
pub enum CacheLoadError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The file's contents are not a valid persisted cache.
    Json(JsonError),
}

impl fmt::Display for CacheLoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheLoadError::Io(e) => write!(f, "failed to read the cache file: {e}"),
            CacheLoadError::Json(e) => write!(f, "failed to parse the cache file: {e}"),
        }
    }
}

impl std::error::Error for CacheLoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CacheLoadError::Io(e) => Some(e),
            CacheLoadError::Json(e) => Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Campaign;
    use dlrm::WorkloadScale;
    use dlrm_datasets::AccessPattern;
    use gpu_sim::{EngineMode, GpuConfig};

    fn cached_experiment(cache: &Arc<CampaignCache>) -> Experiment {
        Experiment::new(GpuConfig::test_small(), WorkloadScale::Test).with_cache(cache.clone())
    }

    #[test]
    fn identical_cells_hit() {
        let cache = CampaignCache::new();
        let e = cached_experiment(&cache);
        let w = Workload::kernel(AccessPattern::MedHot);
        let a = e.run(&w, &Scheme::base());
        let b = e.run(&w, &Scheme::base());
        assert_eq!(a, b);
        assert_eq!((cache.misses(), cache.hits()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn changed_seed_misses() {
        let cache = CampaignCache::new();
        let e = cached_experiment(&cache);
        let w = Workload::kernel(AccessPattern::MedHot);
        let a = e.run(&w, &Scheme::base());
        let b = e.clone().with_seed(99).run(&w, &Scheme::base());
        assert_ne!(a.stats, b.stats);
        assert_eq!((cache.misses(), cache.hits()), (2, 0));
    }

    #[test]
    fn changed_pooling_factor_misses() {
        let cache = CampaignCache::new();
        let e = cached_experiment(&cache);
        let w = Workload::kernel(AccessPattern::MedHot);
        let _ = e.clone().with_pooling_factor(4).run(&w, &Scheme::base());
        let _ = e.clone().with_pooling_factor(16).run(&w, &Scheme::base());
        assert_eq!((cache.misses(), cache.hits()), (2, 0));
    }

    #[test]
    fn workload_scheme_device_and_mode_distinguish_cells() {
        let cache = CampaignCache::new();
        let e = cached_experiment(&cache);
        let w = Workload::kernel(AccessPattern::MedHot);
        let _ = e.run(&w, &Scheme::base());
        let _ = e.run(&w, &Scheme::optmt());
        let _ = e.run(&Workload::kernel(AccessPattern::Random), &Scheme::base());
        let _ = e.run(&Workload::stage(AccessPattern::MedHot), &Scheme::base());
        let other_device =
            Experiment::new(GpuConfig::test_small().with_num_sms(2), WorkloadScale::Test)
                .with_cache(cache.clone());
        let _ = other_device.run(&w, &Scheme::base());
        let reference = e.clone().with_engine_mode(EngineMode::CycleAccurate);
        let _ = reference.run(&w, &Scheme::base());
        assert_eq!((cache.misses(), cache.hits()), (6, 0));
    }

    #[test]
    fn cached_report_is_bit_identical_to_uncached() {
        let cache = CampaignCache::new();
        let cached = cached_experiment(&cache);
        let plain = Experiment::new(GpuConfig::test_small(), WorkloadScale::Test);
        let w = Workload::stage(AccessPattern::LowHot);
        let warm = cached.run(&w, &Scheme::combined());
        let warm_again = cached.run(&w, &Scheme::combined());
        assert_eq!(warm, warm_again);
        assert_eq!(warm, plain.run(&w, &Scheme::combined()));
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn campaigns_share_the_cache_across_runs() {
        let cache = CampaignCache::new();
        let grid = || {
            Campaign::new(cached_experiment(&cache))
                .workloads([
                    Workload::kernel(AccessPattern::HighHot),
                    Workload::kernel(AccessPattern::Random),
                ])
                .schemes([Scheme::base(), Scheme::optmt()])
        };
        let first = grid().run();
        assert_eq!((cache.misses(), cache.hits()), (4, 0));
        // The re-run (e.g. a second sweep overlapping the first) is served
        // entirely from cache and stays deterministic across thread counts.
        let second = grid().threads(3).run();
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.hits(), 4);
        assert_eq!(first, second);
    }

    #[test]
    fn duplicated_grid_axis_values_are_served_from_cache() {
        let cache = CampaignCache::new();
        let run = Campaign::new(cached_experiment(&cache))
            .workload(Workload::kernel(AccessPattern::MedHot))
            .scheme(Scheme::base())
            .seeds([7, 7, 7])
            .run();
        assert_eq!(run.len(), 3);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 2);
        assert_eq!(run.reports()[0], run.reports()[2]);
    }

    #[test]
    fn json_round_trip_preserves_every_cell() {
        let cache = CampaignCache::new();
        let e = cached_experiment(&cache);
        let w = Workload::stage(AccessPattern::MedHot);
        let original = e.run(&w, &Scheme::combined());
        let _ = e.run(&Workload::kernel(AccessPattern::Random), &Scheme::base());

        let reloaded = CampaignCache::from_json(&cache.to_json()).unwrap();
        assert_eq!(reloaded.len(), 2);
        assert_eq!((reloaded.hits(), reloaded.misses()), (0, 0));
        // A fresh experiment over the reloaded cache serves both cells
        // without re-simulating, bit-identically.
        let e2 = Experiment::new(GpuConfig::test_small(), WorkloadScale::Test)
            .with_cache(reloaded.clone());
        assert_eq!(e2.run(&w, &Scheme::combined()), original);
        assert_eq!((reloaded.hits(), reloaded.misses()), (1, 0));
        // Rendering is canonical: a second trip is byte-identical.
        assert_eq!(reloaded.to_json(), cache.to_json());
    }

    #[test]
    fn save_and_load_work_across_the_filesystem() {
        let cache = CampaignCache::new();
        let e = cached_experiment(&cache);
        let w = Workload::kernel(AccessPattern::MedHot);
        let original = e.run(&w, &Scheme::base());

        let path = std::env::temp_dir().join(format!(
            "perf-envelope-cache-test-{}.json",
            std::process::id()
        ));
        cache.save_to(&path).unwrap();
        let reloaded = CampaignCache::load_from(&path).unwrap();
        std::fs::remove_file(&path).ok();

        let e2 = Experiment::new(GpuConfig::test_small(), WorkloadScale::Test)
            .with_cache(reloaded.clone());
        assert_eq!(e2.run(&w, &Scheme::base()), original);
        assert_eq!((reloaded.hits(), reloaded.misses()), (1, 0));
    }

    #[test]
    fn load_rejects_garbage_and_wrong_schemas() {
        assert!(CampaignCache::from_json("not json").is_err());
        assert!(CampaignCache::from_json("{\"schema\":\"other/v9\",\"cells\":[]}").is_err());
        assert!(CampaignCache::from_json("{\"cells\":[]}").is_err());
        let missing = CampaignCache::load_from("/nonexistent/path/cache.json");
        assert!(matches!(missing, Err(CacheLoadError::Io(_))));
    }

    #[test]
    fn clear_empties_the_cache() {
        let cache = CampaignCache::new();
        let e = cached_experiment(&cache);
        let _ = e.run(&Workload::kernel(AccessPattern::MedHot), &Scheme::base());
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        let _ = e.run(&Workload::kernel(AccessPattern::MedHot), &Scheme::base());
        assert_eq!(cache.misses(), 2);
    }
}
